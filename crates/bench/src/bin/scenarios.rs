//! Command-line front end of the parallel scenario engine.
//!
//! Runs a `(spec × workload × seed × fault pattern × fault schedule ×
//! wavelength count)` grid across worker threads and **streams** one row per
//! cell, in deterministic grid order, to stdout or a file, as a table, CSV
//! or JSON Lines:
//!
//! ```text
//! cargo run -p otis-bench --bin scenarios -- \
//!     --specs "SK(4,2,2),POPS(4,6),DB(2,5)" \
//!     --traffic "uniform(0.2),hotspot(0.4,0,0.2),perm(0.5,7)" \
//!     --slots 2000 --seeds 42 --faults 1 --threads 8 \
//!     --format jsonl --output rows.jsonl
//! ```
//!
//! A whole study can also live in one config file (see
//! `otis_net::config` for the grammar and `examples/sweep.scn` for a
//! checked-in example):
//!
//! ```text
//! cargo run -p otis-bench --bin scenarios -- --file examples/sweep.scn
//! ```
//!
//! Flags given *after* `--file` override what the file declares.
//! `--faults N` sweeps nested fault patterns `{}`, `{0}`, `{0,1}`, …,
//! `{0..N-1}`: fault ids name quotient groups for multi-OPS networks and
//! processors for point-to-point networks.  `--fault-schedule` makes faults
//! dynamic — `"fail(node 3)@32;recover@96"` swaps the active kernel
//! mid-run and adds the restoration columns to every format.  Results are
//! independent of `--threads`; the flag only changes wall-clock time.
//!
//! Rows are delivered by `otis_net::engine::run_grid_streaming` while later
//! cells are still running — peak memory is bounded by the reorder window,
//! not the cell count, so grids of any size stream to disk.  Run metadata
//! (cell counts, timing) goes to stderr, keeping stdout machine-clean for
//! `--format csv` and `--format jsonl`.

use otis_net::{
    parse_scenario_config, run_grid_streaming, split_top_level, FaultSchedule, FaultSet,
    NetworkSpec, OutputFormat, ScenarioGrid, TrafficSpec,
};
use std::io::{self, BufWriter, Write};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: scenarios [--file STUDY.scn] [--specs S1,S2,...] [--traffic W1,W2,...]
                 [--loads L1,L2,...] [--seeds N1,N2,...] [--slots N]
                 [--faults N] [--fault-schedule SCH1,SCH2,...]
                 [--wavelengths W1,W2,...] [--alt-paths N]
                 [--threads N] [--format table|csv|jsonl] [--output FILE]

  --file     scenario config file declaring the whole study (specs,
             workloads, seeds, slots, faults, fault_schedules, wavelengths,
             alt_paths, threads, format, output); flags given after --file
             override it
  --specs    comma-separated network specs        (default SK(4,2,2),POPS(4,6),DB(2,5))
             (--spec is an alias)
  --traffic  comma-separated workload specs: stationary patterns
             uniform(0.3), perm(0.5,7), hotspot(0.4,0,0.2), transpose(0.5),
             bitrev(0.5), or demand processes poisson(0.3), poisson(0.3,0),
             onoff(0.6,16,48), mix(0.1,0.9,0.05), trace(file.trc)
             (--workload is an alias)
  --loads    comma-separated offered loads — sugar for uniform workloads
             (default 0.05,0.2,0.5,0.9; --traffic and --loads both set the
             workload axis, last one wins)
  --seeds    comma-separated random seeds         (default 42)
  --slots    slots simulated per cell             (default 2000)
  --faults   sweep 0..=N nested node faults       (default 0; ids are quotient
             groups for multi-OPS networks, processors for point-to-point)
  --fault-schedule
             comma-separated fault timelines to sweep, each a ';'-joined
             event list like \"fail(node 3)@32;recover@96\" (default none =
             static runs; any non-empty schedule swaps kernels mid-run and
             adds the restoration columns; 'none' names the static entry)
  --wavelengths
             comma-separated wavelength counts to sweep, each >= 1
             (default 1 = the legacy capacity-1 simulators; any count > 1
             adds the blocking-ratio / utilization / cost columns)
  --alt-paths
             routes tried per hop in wavelength mode: the primary plus
             N-1 Yen alternates (default 1; multi-OPS networks only —
             hot-potato deflection is already alternate routing)
  --threads  worker threads                       (default: available parallelism)
  --format   result format: table, csv or jsonl   (default table; undefined
             averages render '-' / empty / null respectively, never NaN)
  --output   stream results to FILE               (default stdout; rows stream
             as cells finish — memory stays bounded at any grid size)";

struct Args {
    grid: ScenarioGrid,
    threads: usize,
    format: OutputFormat,
    output: Option<String>,
}

/// A writer that creates (and truncates) its file only on the first write.
/// The engine's first sink write happens *after* the grid has validated and
/// bound, so a run that fails up front — a bad spec, an unbindable workload —
/// leaves an existing `--output` file from a previous run untouched.
struct LazyFile {
    path: String,
    file: Option<BufWriter<std::fs::File>>,
}

impl LazyFile {
    fn new(path: String) -> Self {
        LazyFile { path, file: None }
    }

    fn open(&mut self) -> io::Result<&mut BufWriter<std::fs::File>> {
        if self.file.is_none() {
            let file = std::fs::File::create(&self.path).map_err(|e| {
                io::Error::new(e.kind(), format!("cannot create '{}': {e}", self.path))
            })?;
            self.file = Some(BufWriter::new(file));
        }
        Ok(self.file.as_mut().expect("just opened"))
    }
}

impl Write for LazyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.open()?.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        match &mut self.file {
            Some(file) => file.flush(),
            None => Ok(()),
        }
    }
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Result<Vec<T>, String> {
    value
        .split(',')
        .map(|item| {
            item.trim()
                .parse::<T>()
                .map_err(|_| format!("{flag}: cannot parse '{}'", item.trim()))
        })
        .collect()
}

/// Parses a spec list, splitting only on the commas between specs.
fn parse_specs(value: &str) -> Result<Vec<NetworkSpec>, String> {
    split_top_level(value)
        .into_iter()
        .map(|s| s.parse::<NetworkSpec>().map_err(|e| e.to_string()))
        .collect()
}

/// Parses a workload list, splitting only on the commas between workloads:
/// `"uniform(0.2),hotspot(0.4,0,0.2)"` is two workloads, not five.
fn parse_workloads(value: &str) -> Result<Vec<TrafficSpec>, String> {
    split_top_level(value)
        .into_iter()
        .map(|w| w.parse::<TrafficSpec>().map_err(|e| e.to_string()))
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut grid =
        ScenarioGrid::new(parse_specs("SK(4,2,2),POPS(4,6),DB(2,5)").expect("default specs parse"))
            .loads(&[0.05, 0.2, 0.5, 0.9])
            .seeds(&[42])
            .slots(2000);
    let mut threads = otis_net::default_thread_count();
    let mut format = OutputFormat::Table;
    let mut output: Option<String> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
        match flag.as_str() {
            "--file" => {
                let text = std::fs::read_to_string(value)
                    .map_err(|e| format!("--file: cannot read '{value}': {e}"))?;
                let config = parse_scenario_config(&text).map_err(|e| format!("{value}: {e}"))?;
                // The file replaces the *whole* study — every flag given
                // before it is discarded, uniformly, so that a flag's fate
                // never depends on whether the file happens to pin that key.
                grid = config.grid;
                threads = config
                    .threads
                    .unwrap_or_else(otis_net::default_thread_count);
                format = config.format.unwrap_or_default();
                output = config.output;
            }
            "--spec" | "--specs" => grid.specs = parse_specs(value)?,
            "--traffic" | "--workload" | "--workloads" => grid.workloads = parse_workloads(value)?,
            "--loads" => grid = grid.loads(&parse_list::<f64>(flag, value)?),
            "--seeds" => grid.seeds = parse_list(flag, value)?,
            "--slots" => {
                grid.options.slots = value
                    .parse()
                    .map_err(|_| format!("--slots: cannot parse '{value}'"))?
            }
            "--faults" => {
                let faults: usize = value
                    .parse()
                    .map_err(|_| format!("--faults: cannot parse '{value}'"))?;
                grid.fault_sets = (0..=faults)
                    .map(|count| FaultSet::from_nodes(0..count))
                    .collect();
            }
            "--fault-schedule" | "--fault-schedules" => {
                grid.fault_schedules = split_top_level(value)
                    .into_iter()
                    .map(|s| {
                        s.parse::<FaultSchedule>()
                            .map_err(|e| format!("{flag}: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--wavelengths" => {
                let counts = parse_list::<usize>(flag, value)?;
                if counts.contains(&0) {
                    return Err("--wavelengths: counts must be at least 1".to_string());
                }
                grid.wavelengths = counts;
            }
            "--alt-paths" => {
                let alt_paths: usize = value
                    .parse()
                    .map_err(|_| format!("--alt-paths: cannot parse '{value}'"))?;
                if alt_paths == 0 {
                    return Err("--alt-paths: must be at least 1".to_string());
                }
                grid.options.alt_paths = alt_paths;
            }
            "--threads" => {
                threads = value
                    .parse()
                    .map_err(|_| format!("--threads: cannot parse '{value}'"))?
            }
            "--format" => {
                format = value
                    .parse::<OutputFormat>()
                    .map_err(|e| format!("--format: {e}"))?
            }
            "--output" => output = Some(value.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Some(Args {
        grid,
        threads,
        format,
        output,
    }))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("scenarios: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let grid = args.grid;
    // Metadata goes to stderr: stdout carries only the rows, so csv/jsonl
    // output stays machine-readable when piped.
    eprintln!(
        "# {} cells ({} specs x {} workloads x {} seeds x {} fault patterns x {} fault schedules x {} wavelength counts), {} slots each, {} threads, {} format{}{}",
        grid.cell_count(),
        grid.specs.len(),
        grid.workloads.len(),
        grid.seeds.len(),
        grid.fault_sets.len(),
        grid.fault_schedules.len(),
        grid.wavelengths.len(),
        grid.options.slots,
        args.threads,
        args.format,
        if grid.wavelength_layer_enabled() {
            format!(
                ", wavelength layer on (counts {:?}, {} route(s) per hop)",
                grid.wavelengths, grid.options.alt_paths
            )
        } else {
            String::new()
        },
        if grid.fault_schedule_enabled() {
            ", restoration columns on"
        } else {
            ""
        }
    );
    for warning in grid.warnings() {
        eprintln!("# warning: {warning}");
    }
    let writer: Box<dyn Write> = match &args.output {
        Some(path) => Box::new(LazyFile::new(path.clone())),
        None => Box::new(BufWriter::new(io::stdout())),
    };
    let mut sink = args.format.sink(writer);
    let started = Instant::now();
    match run_grid_streaming(&grid, args.threads, sink.as_mut()) {
        Ok(summary) => {
            let elapsed = started.elapsed().as_secs_f64();
            eprintln!(
                "# {} rows in {:.2}s wall-clock (peak reorder buffer: {} rows, \
                 kernels: {} built + {} repaired, {} mid-run swaps, {:.0} node-slots/s){}",
                summary.rows,
                elapsed,
                summary.peak_buffered,
                summary.kernels_built,
                summary.kernels_repaired,
                summary.kernel_swaps,
                summary.node_slots as f64 / elapsed.max(f64::EPSILON),
                args.output
                    .as_deref()
                    .map(|path| format!(", written to {path}"))
                    .unwrap_or_default()
            );
            // One machine-readable `key=value` perf line for harnesses (CI
            // greps it): same numbers as the prose postamble above.
            eprintln!(
                "# perf node_slots_per_sec={:.0} node_slots={} rows={} scratch_reuses={} \
                 kernels_built={} kernels_repaired={} kernel_swaps={} elapsed_s={:.3}",
                summary.node_slots as f64 / elapsed.max(f64::EPSILON),
                summary.node_slots,
                summary.rows,
                summary.scratch_reuses,
                summary.kernels_built,
                summary.kernels_repaired,
                summary.kernel_swaps,
                elapsed,
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("scenarios: {error}");
            ExitCode::FAILURE
        }
    }
}
