//! Command-line front end of the parallel scenario engine.
//!
//! Runs a `(spec × load × seed × fault pattern)` grid across worker threads
//! and prints one table row per cell, in deterministic grid order:
//!
//! ```text
//! cargo run -p otis-bench --bin scenarios -- \
//!     --specs "SK(4,2,2),POPS(4,6),DB(2,5)" \
//!     --loads 0.05,0.2,0.5,0.9 \
//!     --slots 2000 --seeds 42 --faults 1 --threads 8
//! ```
//!
//! `--faults N` sweeps nested fault patterns `{}`, `{0}`, `{0,1}`, …,
//! `{0..N-1}`: fault ids name quotient groups for multi-OPS networks and
//! processors for point-to-point networks.  Results are independent of
//! `--threads`; the flag only changes wall-clock time.

use otis_net::{run_grid, FaultSet, NetworkSpec, ScenarioGrid, ScenarioRow, SimOptions};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: scenarios [--specs S1,S2,...] [--loads L1,L2,...] [--seeds N1,N2,...]
                 [--slots N] [--faults N] [--threads N]

  --specs    comma-separated network specs        (default SK(4,2,2),POPS(4,6),DB(2,5))
  --loads    comma-separated offered loads        (default 0.05,0.2,0.5,0.9)
  --seeds    comma-separated random seeds         (default 42)
  --slots    slots simulated per cell             (default 2000)
  --faults   sweep 0..=N nested node faults       (default 0; ids are quotient
             groups for multi-OPS networks, processors for point-to-point)
  --threads  worker threads                       (default: available parallelism)";

struct Args {
    specs: Vec<NetworkSpec>,
    loads: Vec<f64>,
    seeds: Vec<u64>,
    slots: u64,
    faults: usize,
    threads: usize,
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Result<Vec<T>, String> {
    value
        .split(',')
        .map(|item| {
            item.trim()
                .parse::<T>()
                .map_err(|_| format!("{flag}: cannot parse '{}'", item.trim()))
        })
        .collect()
}

/// Splits a spec list on the commas *between* specs, not the ones inside
/// their parentheses: `"SK(4,2,2),POPS(4,6)"` → `["SK(4,2,2)", "POPS(4,6)"]`.
fn parse_specs(value: &str) -> Result<Vec<NetworkSpec>, String> {
    let mut specs = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in value.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                specs.push(&value[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    specs.push(&value[start..]);
    specs
        .into_iter()
        .map(|s| s.trim().parse::<NetworkSpec>().map_err(|e| e.to_string()))
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        specs: parse_specs("SK(4,2,2),POPS(4,6),DB(2,5)").expect("default specs parse"),
        loads: vec![0.05, 0.2, 0.5, 0.9],
        seeds: vec![42],
        slots: 2000,
        faults: 0,
        threads: otis_net::default_thread_count(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
        match flag.as_str() {
            "--specs" => args.specs = parse_specs(value)?,
            "--loads" => args.loads = parse_list(flag, value)?,
            "--seeds" => args.seeds = parse_list(flag, value)?,
            "--slots" => {
                args.slots = value
                    .parse()
                    .map_err(|_| format!("--slots: cannot parse '{value}'"))?
            }
            "--faults" => {
                args.faults = value
                    .parse()
                    .map_err(|_| format!("--faults: cannot parse '{value}'"))?
            }
            "--threads" => {
                args.threads = value
                    .parse()
                    .map_err(|_| format!("--threads: cannot parse '{value}'"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("scenarios: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let grid = ScenarioGrid {
        specs: args.specs,
        loads: args.loads,
        seeds: args.seeds,
        fault_sets: (0..=args.faults)
            .map(|count| FaultSet::from_nodes(0..count))
            .collect(),
        options: SimOptions {
            slots: args.slots,
            ..SimOptions::default()
        },
    };
    println!(
        "# {} cells ({} specs x {} loads x {} seeds x {} fault patterns), {} slots each, {} threads",
        grid.cell_count(),
        grid.specs.len(),
        grid.loads.len(),
        grid.seeds.len(),
        grid.fault_sets.len(),
        grid.options.slots,
        args.threads
    );
    let started = Instant::now();
    let rows = match run_grid(&grid, args.threads) {
        Ok(rows) => rows,
        Err(error) => {
            eprintln!("scenarios: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", ScenarioRow::table_header());
    for row in &rows {
        println!("{}", row.as_table_row());
    }
    println!(
        "# {} rows in {:.2}s wall-clock",
        rows.len(),
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
