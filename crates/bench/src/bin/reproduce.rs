//! Command-line entry point regenerating the paper's figures and tables.
//!
//! ```text
//! cargo run -p otis-bench --bin reproduce -- list     # list experiment ids
//! cargo run -p otis-bench --bin reproduce -- fig12    # one experiment
//! cargo run -p otis-bench --bin reproduce -- all      # everything
//! ```

use otis_bench::{available_experiments, run_experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" || args[0] == "--help" || args[0] == "-h" {
        println!("usage: reproduce <experiment-id | all | list>");
        println!();
        println!("available experiments:");
        for (id, description) in available_experiments() {
            println!("  {id:<14} {description}");
        }
        return;
    }
    if args[0] == "all" {
        for (id, description) in available_experiments() {
            println!("==================================================================");
            println!("== {id}: {description}");
            println!("==================================================================");
            println!("{}", run_experiment(id));
        }
        return;
    }
    for id in &args {
        println!("{}", run_experiment(id));
    }
}
