//! Regeneration of every figure and table of the paper.
//!
//! Each experiment id maps to a function that rebuilds the corresponding
//! artefact from the library and renders it as text: the permutation tables
//! and constructions behind Figs. 1–12, the topology property tables implied
//! by §2.5–2.7, the hardware inventories of §4, and the comparison tables
//! (cost, routing, simulation) that reproduce the *shape* of the companion
//! evaluations the paper builds on.  `EXPERIMENTS.md` records, for every id,
//! what the paper states and what this code measures.
//!
//! Every network is instantiated through the [`otis_net::Network`] facade —
//! an experiment names networks by spec string (`"SK(6,3,2)"`, `"II(3,12)"`,
//! …) and asks the facade for topology, design, verification, routing or
//! simulation, so adding a scenario means adding data, not plumbing.

use otis_graphs::algorithms::{is_eulerian, is_hamiltonian};
use otis_graphs::{are_isomorphic, line_digraph, StackGraph};
use otis_net::{
    compare_specs, default_thread_count, run_grid, run_grid_streaming, ComparisonRow, Network,
    NetworkSpec, ScenarioGrid, ScenarioRow, TableSink, TrafficSpec,
};
use otis_optics::components::ComponentKind;
use otis_optics::electrical::InterconnectModel;
use otis_optics::power::{splitting_loss_db, PowerBudget};
use otis_optics::Otis;
use otis_routing::fault_tolerant::validate_kautz_fault_bound;
use otis_routing::node_fault_patterns_up_to;
use otis_topologies::imase_itoh::imase_itoh_diameter_bound;
use otis_topologies::{complete_digraph_with_loops, kautz_node_count, moore_bound};
use std::fmt::Write as _;

/// Builds a network from a spec literal the experiment tables name.
///
/// # Panics
/// Panics on an invalid spec — experiment specs are compile-time data, so a
/// bad one is a bug in the experiment, not an input error.
fn net(spec: &str) -> Network {
    Network::from_spec(spec).unwrap_or_else(|e| panic!("experiment spec '{spec}': {e}"))
}

/// The list of experiment identifiers together with a one-line description.
pub fn available_experiments() -> Vec<(&'static str, &'static str)> {
    vec![
        ("fig1", "OTIS(3,6) transpose permutation (Fig. 1)"),
        ("fig2", "degree-4 OPS coupler model (Fig. 2)"),
        ("fig3", "OPS coupler as a hyperarc (Fig. 3)"),
        ("fig4", "POPS(4,2) construction (Fig. 4)"),
        ("fig5", "POPS(4,2) as the stack-graph ς(4,K⁺₂) (Fig. 5)"),
        ("fig6", "Kautz line-digraph iterations KG(2,1..3) (Fig. 6)"),
        (
            "table-kautz",
            "Kautz property table incl. KG(5,4) row (§2.5)",
        ),
        (
            "table-ii",
            "Imase–Itoh property table and II=KG identification (§2.6)",
        ),
        ("fig7", "stack-Kautz SK(6,3,2) properties (Fig. 7)"),
        (
            "fig8",
            "group of 6 processors to 4 multiplexers via OTIS(6,4) (Fig. 8)",
        ),
        (
            "fig9",
            "3 beam-splitters to a group of 5 processors via OTIS(3,5) (Fig. 9)",
        ),
        (
            "fig10",
            "Proposition 1: II(3,12) realized by OTIS(3,12) (Fig. 10)",
        ),
        ("cor1", "Corollary 1: Kautz graphs on OTIS"),
        ("fig11", "POPS(4,2) optical design on OTIS (Fig. 11)"),
        ("fig12", "SK(6,3,2) optical design on OTIS (Fig. 12)"),
        (
            "table-cost",
            "hardware cost and power scaling of the designs (T3)",
        ),
        (
            "table-routing",
            "routing length and fault-tolerance bounds (T4)",
        ),
        (
            "table-sim",
            "POPS vs stack-Kautz vs hot-potato simulation (T5)",
        ),
    ]
}

/// Runs one experiment by id and returns its text report.
///
/// # Panics
/// Panics on an unknown experiment id; use [`available_experiments`] to list
/// the valid ones.
pub fn run_experiment(id: &str) -> String {
    match id {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "table-kautz" => table_kautz(),
        "table-ii" => table_ii(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "cor1" => cor1(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "table-cost" => table_cost(),
        "table-routing" => table_routing(),
        "table-sim" => table_sim(),
        other => panic!("unknown experiment id '{other}'; see `reproduce list`"),
    }
}

fn fig1() -> String {
    let mut out = String::new();
    let otis = Otis::new(3, 6);
    writeln!(
        out,
        "Fig. 1 — OTIS(3,6): transmitter (i,j) -> receiver (T-1-j, G-1-i)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>6} {:>6}   {:>6} {:>6}",
        "tx i", "tx j", "rx grp", "rx off"
    )
    .unwrap();
    for i in 0..otis.groups() {
        for j in 0..otis.group_size() {
            let (p, q) = otis.map_pair(i, j);
            writeln!(out, "{i:>6} {j:>6}   {p:>6} {q:>6}").unwrap();
        }
    }
    let perm = otis.permutation();
    let bijective = {
        let mut seen = vec![false; perm.len()];
        perm.iter().all(|&r| !std::mem::replace(&mut seen[r], true))
    };
    writeln!(
        out,
        "permutation is a bijection on {} positions: {}",
        perm.len(),
        bijective
    )
    .unwrap();
    writeln!(
        out,
        "back-to-back with OTIS(6,3) restores every position: {}",
        {
            let back = otis.transposed();
            (0..otis.groups()).all(|i| {
                (0..otis.group_size()).all(|j| {
                    let (p, q) = otis.map_pair(i, j);
                    back.map_pair(p, q) == (i, j)
                })
            })
        }
    )
    .unwrap();
    out
}

fn fig2() -> String {
    let mut out = String::new();
    let coupler = ComponentKind::OpsCoupler { degree: 4 };
    writeln!(out, "Fig. 2 — a degree-4 optical passive star coupler").unwrap();
    writeln!(
        out,
        "inputs: {}, outputs: {}",
        coupler.input_count(),
        coupler.output_count()
    )
    .unwrap();
    for input in 0..4 {
        let outs = coupler.propagate(input);
        writeln!(
            out,
            "input {input} reaches outputs {:?} with {:.2} dB loss each (1/4 split = {:.2} dB + excess)",
            outs.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            outs[0].1,
            splitting_loss_db(4)
        )
        .unwrap();
    }
    let budget = PowerBudget::with_path_loss(splitting_loss_db(4));
    writeln!(
        out,
        "passive: no power source needed; link margin at degree 4: {:.1} dB",
        budget.margin_db()
    )
    .unwrap();
    out
}

fn fig3() -> String {
    let mut out = String::new();
    writeln!(out, "Fig. 3 — modelling an OPS coupler by a hyperarc").unwrap();
    // The degree-4 coupler with sources 0..3 and destinations 4..7, as a
    // one-hyperarc hypergraph, flattens to the complete bipartite digraph.
    let mut h = otis_graphs::Hypergraph::new(8);
    h.add_hyperarc(otis_graphs::HyperArc::new(
        vec![0, 1, 2, 3],
        vec![4, 5, 6, 7],
    ))
    .unwrap();
    let flat = h.flatten();
    writeln!(
        out,
        "hyperarc: tail {{0,1,2,3}} -> head {{4,5,6,7}} (OPS degree {:?})",
        h.hyperarc(0).unwrap().ops_degree()
    )
    .unwrap();
    writeln!(
        out,
        "flattened arcs: {} (= 4 x 4 source-destination pairs)",
        flat.arc_count()
    )
    .unwrap();
    writeln!(
        out,
        "every source reaches every destination in one hop: {}",
        (0..4).all(|u| (4..8).all(|v| flat.has_arc(u, v)))
    )
    .unwrap();
    out
}

fn fig4() -> String {
    let mut out = String::new();
    let pops = net("POPS(4,2)");
    let stack = pops.topology().stack_graph().expect("POPS is multi-OPS");
    let (t, g) = (stack.stacking_factor(), stack.group_count());
    writeln!(
        out,
        "Fig. 4 — POPS(4,2): {} processors in {} groups of {}, {} couplers of degree {}",
        pops.node_count(),
        g,
        t,
        pops.link_count(),
        t
    )
    .unwrap();
    let h = stack.to_hypergraph();
    for i in 0..g {
        for j in 0..g {
            // Coupler (i, j) is hyperarc i·g + j, matching the paper's labels.
            let arc = h.hyperarc(i * g + j).unwrap();
            writeln!(
                out,
                "coupler ({i},{j}): inputs from processors {:?}, outputs to {:?}",
                arc.tail, arc.head
            )
            .unwrap();
        }
    }
    writeln!(out, "single-hop (diameter {:?})", pops.summary().diameter).unwrap();
    out
}

fn fig5() -> String {
    let mut out = String::new();
    let pops = net("POPS(4,2)");
    let stack = StackGraph::new(4, complete_digraph_with_loops(2)).unwrap();
    writeln!(out, "Fig. 5 — POPS(4,2) modelled as ς(4, K⁺₂)").unwrap();
    writeln!(
        out,
        "stack-graph: {} nodes, {} hyperarcs, stacking factor {}",
        stack.node_count(),
        stack.hyperarc_count(),
        stack.stacking_factor()
    )
    .unwrap();
    let same = pops
        .topology()
        .stack_graph()
        .expect("POPS is multi-OPS")
        .to_hypergraph()
        .same_hyperarcs(&stack.to_hypergraph());
    writeln!(
        out,
        "hyperarc sets of POPS(4,2) and ς(4,K⁺₂) coincide: {same}"
    )
    .unwrap();
    writeln!(out, "{}", otis_topologies::TopologySummary::table_header()).unwrap();
    writeln!(out, "{}", pops.summary().as_table_row()).unwrap();
    out
}

fn fig6() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Fig. 6 — Kautz graphs by line-digraph iteration (d = 2)"
    )
    .unwrap();
    writeln!(out, "{}", otis_topologies::TopologySummary::table_header()).unwrap();
    for k in 1..=3usize {
        writeln!(
            out,
            "{}",
            net(&format!("KG(2,{k})")).summary().as_table_row()
        )
        .unwrap();
    }
    let kg21_is_k3 = net("KG(2,1)")
        .topology()
        .one_hop_digraph()
        .same_arcs(&net("K(3)").topology().one_hop_digraph());
    writeln!(out, "KG(2,1) equals K_3: {kg21_is_k3}").unwrap();
    for k in 1..=2usize {
        let smaller = net(&format!("KG(2,{k})"));
        let larger = net(&format!("KG(2,{})", k + 1));
        let iso = are_isomorphic(
            &line_digraph(smaller.topology().digraph().expect("KG is point-to-point")),
            larger.topology().digraph().expect("KG is point-to-point"),
        );
        writeln!(out, "L(KG(2,{k})) isomorphic to KG(2,{}): {iso}", k + 1).unwrap();
    }
    out
}

fn table_kautz() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "T1 — Kautz graph properties (§2.5): N = d^(k-1)(d+1), degree d, diameter k"
    )
    .unwrap();
    writeln!(
        out,
        "{}  {:>8} {:>9} {:>11}",
        otis_topologies::TopologySummary::table_header(),
        "eulerian",
        "hamilton",
        "moore ratio"
    )
    .unwrap();
    for (d, k) in [
        (2usize, 2usize),
        (2, 3),
        (2, 4),
        (3, 2),
        (3, 3),
        (4, 2),
        (4, 3),
        (5, 2),
    ] {
        let network = net(&format!("KG({d},{k})"));
        let g = network.topology().digraph().expect("KG is point-to-point");
        let summary = network.summary();
        let eul = is_eulerian(g);
        let ham = if g.node_count() <= 100 {
            is_hamiltonian(g)
        } else {
            true
        };
        let ratio = kautz_node_count(d, k) as f64 / moore_bound(d, k) as f64;
        writeln!(
            out,
            "{}  {:>8} {:>9} {:>11.3}",
            summary.as_table_row(),
            eul,
            ham,
            ratio
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "paper's §2.5 example: 'KG(5,4) has N = 3750 nodes, degree 5 and diameter 4'"
    )
    .unwrap();
    writeln!(
        out,
        "formula N = d^(k-1)(d+1) gives KG(5,4) = {} nodes (3750 = 5^4·6 is KG(5,5));",
        kautz_node_count(5, 4)
    )
    .unwrap();
    writeln!(
        out,
        "we follow the formula and note the discrepancy in EXPERIMENTS.md."
    )
    .unwrap();
    out
}

fn table_ii() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "T2 — Imase–Itoh graph properties (§2.6): degree d, any n, diameter <= ceil(log_d n)"
    )
    .unwrap();
    writeln!(
        out,
        "{} {:>8}",
        otis_topologies::TopologySummary::table_header(),
        "bound"
    )
    .unwrap();
    for (d, n) in [
        (2usize, 7usize),
        (2, 12),
        (2, 20),
        (3, 12),
        (3, 17),
        (3, 30),
        (4, 30),
        (4, 64),
        (5, 100),
    ] {
        let network = net(&format!("II({d},{n})"));
        let bound = imase_itoh_diameter_bound(d, n);
        writeln!(out, "{} {:>8}", network.summary().as_table_row(), bound).unwrap();
    }
    writeln!(out).unwrap();
    for (d, k) in [(2usize, 2usize), (2, 3), (3, 2)] {
        let n = kautz_node_count(d, k);
        let iso = are_isomorphic(
            net(&format!("II({d},{n})"))
                .topology()
                .digraph()
                .expect("II is point-to-point"),
            net(&format!("KG({d},{k})"))
                .topology()
                .digraph()
                .expect("KG is point-to-point"),
        );
        writeln!(out, "II({d},{n}) isomorphic to KG({d},{k}): {iso}").unwrap();
    }
    out
}

fn fig7() -> String {
    let mut out = String::new();
    let sk = net("SK(6,3,2)");
    let stack = sk.topology().stack_graph().expect("SK is multi-OPS");
    writeln!(out, "Fig. 7 — stack-Kautz SK(6,3,2)").unwrap();
    writeln!(
        out,
        "processors: {} ({} groups of {}), node degree {}, couplers {} of degree {}, diameter {:?}",
        sk.node_count(),
        stack.group_count(),
        stack.stacking_factor(),
        stack.node_out_degree(0),
        sk.link_count(),
        stack.stacking_factor(),
        sk.summary().diameter
    )
    .unwrap();
    writeln!(out, "{}", otis_topologies::TopologySummary::table_header()).unwrap();
    for (s, d, k) in [(6usize, 3usize, 2usize), (2, 2, 2), (4, 2, 3), (3, 4, 2)] {
        writeln!(
            out,
            "{}",
            net(&format!("SK({s},{d},{k})")).summary().as_table_row()
        )
        .unwrap();
    }
    out
}

fn fig8() -> String {
    let mut out = String::new();
    let mut netlist = otis_optics::Netlist::new();
    let group = otis_core::group::add_transmitter_side_group(&mut netlist, 6, 4, "fig8");
    writeln!(
        out,
        "Fig. 8 — group of 6 processors to 4 multiplexers through OTIS(6,4)"
    )
    .unwrap();
    let inv = netlist.inventory();
    write!(out, "{inv}").unwrap();
    // Show which multiplexer each transmitter of processor 0 feeds.
    for alpha in 0..4usize {
        let tx = group.transmitters[0][alpha];
        let dest = netlist
            .destination(otis_optics::netlist::PortRef::new(tx, 0))
            .unwrap();
        let outs = netlist.component(group.otis).kind.propagate(dest.port);
        let mux_port = netlist
            .destination(otis_optics::netlist::PortRef::new(group.otis, outs[0].0))
            .unwrap();
        let mux_index = group
            .multiplexers
            .iter()
            .position(|&m| m == mux_port.component)
            .unwrap();
        writeln!(
            out,
            "processor 0, transmitter {alpha} -> multiplexer {mux_index} (input {})",
            mux_port.port
        )
        .unwrap();
    }
    out
}

fn fig9() -> String {
    let mut out = String::new();
    let mut netlist = otis_optics::Netlist::new();
    let group = otis_core::group::add_receiver_side_group(&mut netlist, 5, 3, "fig9");
    writeln!(
        out,
        "Fig. 9 — 3 beam-splitters to a group of 5 processors through OTIS(3,5)"
    )
    .unwrap();
    let inv = netlist.inventory();
    write!(out, "{inv}").unwrap();
    // Probe each splitter and report the processors it reaches.
    for i in 0..3usize {
        let probe = netlist.add(ComponentKind::Transmitter, format!("probe {i}"));
        netlist.connect(
            otis_optics::netlist::PortRef::new(probe, 0),
            otis_optics::netlist::PortRef::new(group.splitters[i], 0),
        );
        let reached = otis_optics::trace::reachable_receivers(&netlist, probe);
        let processors: Vec<usize> = (0..5)
            .filter(|&p| group.receivers[p].iter().any(|rx| reached.contains(rx)))
            .collect();
        writeln!(out, "beam-splitter {i} reaches processors {processors:?}").unwrap();
    }
    out
}

fn fig10() -> String {
    let mut out = String::new();
    let network = net("II(3,12)");
    writeln!(
        out,
        "Fig. 10 / Proposition 1 — II(3,12) realized by OTIS(3,12)"
    )
    .unwrap();
    match network.verify() {
        Ok(report) => writeln!(out, "{report}").unwrap(),
        Err(e) => writeln!(out, "VERIFICATION FAILED: {e}").unwrap(),
    }
    write!(
        out,
        "{}",
        network.design().expect("II has an OTIS design").inventory()
    )
    .unwrap();
    writeln!(out, "\nsweep of Proposition 1 over (d, n):").unwrap();
    for (d, n) in [
        (2usize, 5usize),
        (2, 12),
        (3, 7),
        (3, 12),
        (4, 9),
        (4, 30),
        (5, 26),
        (2, 40),
    ] {
        let ok = net(&format!("II({d},{n})")).verify().is_ok();
        writeln!(
            out,
            "  II({d},{n}) on OTIS({d},{n}): {}",
            if ok { "realized exactly" } else { "FAILED" }
        )
        .unwrap();
    }
    out
}

fn cor1() -> String {
    let mut out = String::new();
    writeln!(out, "Corollary 1 — Kautz graphs on OTIS(d, d^(k-1)(d+1))").unwrap();
    for (d, k) in [(2usize, 2usize), (2, 3), (3, 2), (2, 4), (3, 3), (4, 2)] {
        let kg = net(&format!("KG({d},{k})"));
        let n = kg.node_count();
        let verified = kg.verify().is_ok();
        let iso = if n <= 40 {
            // The OTIS design realizes II(d, n); Corollary 1 rests on that
            // graph being the Kautz graph itself.
            are_isomorphic(
                net(&format!("II({d},{n})"))
                    .topology()
                    .digraph()
                    .expect("II is point-to-point"),
                kg.topology().digraph().expect("KG is point-to-point"),
            )
            .to_string()
        } else {
            "(skipped, size)".to_string()
        };
        writeln!(
            out,
            "  KG({d},{k}) = II({d},{n}): OTIS realization verified = {verified}, isomorphic to word construction = {iso}",
        )
        .unwrap();
    }
    out
}

fn fig11() -> String {
    let mut out = String::new();
    let pops = net("POPS(4,2)");
    writeln!(out, "Fig. 11 — POPS(4,2) optical design with OTIS").unwrap();
    match pops.verify() {
        Ok(report) => writeln!(out, "{report}").unwrap(),
        Err(e) => writeln!(out, "VERIFICATION FAILED: {e}").unwrap(),
    }
    write!(
        out,
        "{}",
        pops.design().expect("POPS has an OTIS design").inventory()
    )
    .unwrap();
    writeln!(out, "\nverification sweep:").unwrap();
    for (t, g) in [(2usize, 2usize), (4, 2), (3, 3), (2, 4), (6, 3)] {
        let ok = net(&format!("POPS({t},{g})")).verify().is_ok();
        writeln!(
            out,
            "  POPS({t},{g}): {}",
            if ok { "realized exactly" } else { "FAILED" }
        )
        .unwrap();
    }
    out
}

fn fig12() -> String {
    let mut out = String::new();
    let sk = net("SK(6,3,2)");
    writeln!(out, "Fig. 12 — SK(6,3,2) optical design with OTIS").unwrap();
    match sk.verify() {
        Ok(report) => writeln!(out, "{report}").unwrap(),
        Err(e) => writeln!(out, "VERIFICATION FAILED: {e}").unwrap(),
    }
    writeln!(out, "hardware inventory (paper: 12 OTIS(6,4), 12 OTIS(4,6), 48 multiplexers, 48 beam-splitters, 1 OTIS(3,12)):").unwrap();
    let inventory = sk.design().expect("SK has an OTIS design").inventory();
    write!(out, "{inventory}").unwrap();
    writeln!(
        out,
        "matches the closed-form prediction: {}",
        Some(inventory) == sk.predicted_inventory()
    )
    .unwrap();
    writeln!(out, "\nverification sweep:").unwrap();
    for (s, d, k) in [(2usize, 2usize, 2usize), (3, 2, 2), (2, 3, 2), (2, 2, 3)] {
        let ok = net(&format!("SK({s},{d},{k})")).verify().is_ok();
        writeln!(
            out,
            "  SK({s},{d},{k}): {}",
            if ok { "realized exactly" } else { "FAILED" }
        )
        .unwrap();
    }
    out
}

fn table_cost() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "T3 — hardware cost of the OTIS designs (couplers / OTIS units / lenses / transceivers)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>7} {:>9} {:>7} {:>8} {:>8} {:>8} {:>10}",
        "design", "procs", "couplers", "OTIS", "lenses", "tx", "rx", "loss dB"
    )
    .unwrap();
    let cost_specs = [
        "POPS(4,2)",
        "POPS(4,4)",
        "POPS(8,4)",
        "POPS(8,8)",
        "SK(4,3,2)",
        "SK(6,3,2)",
        "SK(8,3,2)",
        "SK(4,2,3)",
    ];
    for spec in cost_specs {
        let network = net(spec);
        let design = network.design().expect("cost table families have designs");
        let inv = design.inventory();
        writeln!(
            out,
            "{:<14} {:>7} {:>9} {:>7} {:>8} {:>8} {:>8} {:>10.2}",
            network.name(),
            network.node_count(),
            inv.multiplexer_count(),
            inv.otis_units(),
            inv.lens_count(),
            inv.transmitter_count(),
            inv.receiver_count(),
            design.worst_case_loss_db()
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "scaling comparison at equal group size s: POPS(s,g) needs g² couplers and each"
    )
    .unwrap();
    writeln!(
        out,
        "processor needs g transceiver pairs, while SK(s,d,k) with g = d^(k-1)(d+1) groups"
    )
    .unwrap();
    writeln!(
        out,
        "needs only g(d+1) couplers and d+1 transceiver pairs per processor:"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>8} {:>14} {:>14} {:>12} {:>12}",
        "groups g", "N (s=8)", "POPS couplers", "SK couplers", "POPS tx/proc", "SK tx/proc"
    )
    .unwrap();
    for (d, k) in [(2usize, 2usize), (2, 3), (3, 2), (3, 3), (4, 3)] {
        let g = kautz_node_count(d, k);
        writeln!(
            out,
            "{:<10} {:>8} {:>14} {:>14} {:>12} {:>12}",
            g,
            8 * g,
            g * g,
            g * (d + 1),
            g,
            d + 1
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    let model = InterconnectModel::default();
    writeln!(
        out,
        "electrical vs free-space optical interconnect (ref [12] model):"
    )
    .unwrap();
    writeln!(
        out,
        "  energy crossover length: {:.1} mm (optics wins beyond it)",
        model.energy_crossover_mm()
    )
    .unwrap();
    for &len in &[1.0, 5.0, 20.0, 100.0] {
        writeln!(out, "  length {:>5.1} mm: electrical {:>7.2} pJ/bit, optical {:>5.2} pJ/bit, optics wins: {}",
            len, model.electrical_energy_pj(len), model.optical_energy_pj(len), model.optics_wins_energy(len)).unwrap();
    }
    out
}

fn table_routing() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "T4 — routing on Kautz / Imase–Itoh / stack-Kautz networks"
    )
    .unwrap();
    // Label routing length distribution on KG(3,2) and KG(2,3).
    for (d, k) in [(3usize, 2usize), (2, 3), (2, 4)] {
        let router = net(&format!("KG({d},{k})")).router();
        let n = router.node_count();
        let mut hist = vec![0usize; k + 1];
        for src in 0..n {
            for dst in 0..n {
                let len = router
                    .hop_count(src, dst)
                    .expect("KG is strongly connected");
                hist[len] += 1;
            }
        }
        writeln!(
            out,
            "  KG({d},{k}) label-routing path lengths (all {} pairs): {:?} (max = k = {k})",
            n * n,
            hist
        )
        .unwrap();
    }
    // Arithmetic routing distances on II.
    for (d, n) in [(3usize, 12usize), (3, 17), (4, 30)] {
        let router = net(&format!("II({d},{n})")).router();
        let mut max = 0usize;
        let mut total = 0usize;
        for u in 0..n {
            for v in 0..n {
                let dist = router.hop_count(u, v).expect("II is strongly connected");
                max = max.max(dist);
                total += dist;
            }
        }
        writeln!(
            out,
            "  II({d},{n}) arithmetic routing: max {} (bound {}), mean {:.3}",
            max,
            imase_itoh_diameter_bound(d, n),
            total as f64 / (n * n) as f64
        )
        .unwrap();
    }
    // Fault tolerance: <= k+2 under d-1 node faults.
    for (d, k) in [(2usize, 2usize), (3, 2)] {
        let network = net(&format!("KG({d},{k})"));
        let g = network.topology().digraph().expect("KG is point-to-point");
        let mut patterns = Vec::new();
        if d - 1 == 1 {
            patterns.extend((0..g.node_count()).map(|u| vec![u]));
        } else {
            for a in 0..g.node_count() {
                for b in (a + 1)..g.node_count() {
                    patterns.push(vec![a, b]);
                }
            }
        }
        let report = validate_kautz_fault_bound(g, d, k, &patterns);
        writeln!(out, "  KG({d},{k}) with up to {} node faults: {} cases, worst route {} hops (bound k+2 = {}), disconnected {} -> claim holds: {}",
            d - 1, report.cases, report.worst_length, report.bound, report.disconnected, report.holds()).unwrap();
    }
    out
}

fn table_sim() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "T5 — slotted simulation: stack-Kautz vs POPS vs single-OPS hot-potato de Bruijn"
    )
    .unwrap();
    writeln!(
        out,
        "(uniform traffic, OldestFirst coupler arbitration, 2000 slots per point)"
    )
    .unwrap();
    writeln!(out, "{}", ComparisonRow::table_header()).unwrap();
    // The comparison scenario is data: three size-matched specs, four loads.
    let specs: Vec<NetworkSpec> = ["SK(4,2,2)", "POPS(4,6)", "DB(2,5)"]
        .iter()
        .map(|s| s.parse().expect("experiment specs are valid"))
        .collect();
    let rows = compare_specs(&specs, &[0.05, 0.2, 0.5, 0.9], 2000, 42)
        .expect("experiment specs are valid");
    for row in &rows {
        writeln!(out, "{}", row.as_table_row()).unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "expected shape: POPS delivers ~1 hop latency but its throughput is bounded by"
    )
    .unwrap();
    writeln!(
        out,
        "g² couplers shared by N processors; the stack-Kautz takes up to k hops but its"
    )
    .unwrap();
    writeln!(
        out,
        "couplers are less contended per processor; the single-OPS hot-potato baseline"
    )
    .unwrap();
    writeln!(
        out,
        "deflects under load, inflating hop counts and latency first."
    )
    .unwrap();

    // Non-uniform workloads through the same engine: the workload axis is a
    // list of TrafficSpec strings, so adversarial demand matrices
    // (permutation shifts, hotspots) sweep exactly like loads do.
    let workloads: Vec<TrafficSpec> = ["uniform(0.2)", "perm(0.2,1)", "hotspot(0.2,0,0.3)"]
        .iter()
        .map(|w| w.parse().expect("experiment workloads are valid"))
        .collect();
    let grid = ScenarioGrid::new(specs)
        .workloads(workloads)
        .seeds(&[42])
        .slots(2000);
    writeln!(out).unwrap();
    writeln!(
        out,
        "non-uniform traffic at equal load 0.2 (static shift permutation, 30% hotspot on"
    )
    .unwrap();
    writeln!(
        out,
        "processor 0): skewed demand loads couplers unevenly, so throughput drops and"
    )
    .unwrap();
    writeln!(out, "latency climbs relative to the uniform row:").unwrap();
    // Rendered through the streaming result surface: rows reach the table
    // sink in grid order while later cells are still simulating.
    let mut table = TableSink::new(Vec::new());
    run_grid_streaming(&grid, default_thread_count(), &mut table)
        .expect("experiment specs are valid");
    out.push_str(&String::from_utf8(table.into_inner()).expect("table rows are UTF-8"));

    // Fault-injection sweep through the same engine (§2.5 at system level):
    // SK(4,2,2) has the Kautz quotient KG(2,2) — d = 2, k = 2, 6 groups —
    // so every single-group fault is within the d − 1 survivability claim
    // and delivered routes must stay within k + 2 hops.
    let (d, k, groups) = (2usize, 2usize, 6usize);
    let grid = ScenarioGrid::new(vec!["SK(4,2,2)".parse().expect("experiment spec is valid")])
        .loads(&[0.2])
        .seeds(&[42])
        .fault_sets(node_fault_patterns_up_to(groups, d - 1))
        .slots(2000);
    let rows = run_grid(&grid, default_thread_count()).expect("experiment specs are valid");
    writeln!(out).unwrap();
    writeln!(
        out,
        "fault sweep on SK(4,2,2) (quotient KG(2,2), every fault pattern of size <= d-1 = {}):",
        d - 1
    )
    .unwrap();
    writeln!(out, "{}", ScenarioRow::table_header()).unwrap();
    for row in &rows {
        writeln!(out, "{}", row.as_table_row()).unwrap();
    }
    let worst = rows.iter().map(|r| r.metrics.max_hops).max().unwrap_or(0);
    let all_delivering = rows.iter().all(|r| r.metrics.delivered > 0);
    let holds = worst as usize <= k + 2 && all_delivering;
    writeln!(
        out,
        "worst delivered route: {} hops (bound k+2 = {}), every cell delivering: {} -> {}",
        worst,
        k + 2,
        all_delivering,
        if holds { "claim holds" } else { "FAILED" }
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs() {
        for (id, _) in available_experiments() {
            // table-sim is comparatively slow; shrink implicitly by running it
            // like the others — all experiments are laptop-scale.
            let report = run_experiment(id);
            assert!(!report.is_empty(), "experiment {id} produced no output");
            assert!(
                !report.contains("FAILED"),
                "experiment {id} reported a failure:\n{report}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        run_experiment("fig99");
    }

    #[test]
    fn fig12_report_contains_paper_counts() {
        let report = run_experiment("fig12");
        assert!(report.contains("12 x OTIS(6,4)"));
        assert!(report.contains("12 x OTIS(4,6)"));
        assert!(report.contains("1 x OTIS(3,12)"));
        assert!(report.contains("48 x optical multiplexer"));
        assert!(report.contains("48 x beam-splitter"));
        assert!(report.contains("matches the closed-form prediction: true"));
    }

    #[test]
    fn table_kautz_contains_the_paper_example_row() {
        let report = run_experiment("table-kautz");
        assert!(report.contains("KG(5,4)"));
        assert!(report.contains("750"));
    }

    #[test]
    fn no_per_family_constructors_needed_for_new_scenarios() {
        // The acceptance shape of the facade redesign: a new comparison
        // scenario is a list of spec strings, nothing else.
        let rows = otis_net::compare_spec_strs(&["SK(2,2,2)", "SII(2,2,6)"], &[0.1], 50, 1)
            .expect("specs are valid");
        assert_eq!(rows.len(), 2);
    }
}
