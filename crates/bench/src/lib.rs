//! # otis-bench
//!
//! Benchmark and paper-reproduction harness.
//!
//! * The [`reproduce`] module regenerates, in text form, every figure and
//!   in-text table of the paper — run
//!   `cargo run -p otis-bench --bin reproduce -- all`, or a single experiment
//!   id such as `fig10` (see [`reproduce::available_experiments`]).
//! * The `scenarios` binary is the CLI front end of the parallel scenario
//!   engine (`otis_net::engine`): it expands a
//!   `(spec × workload × seed × fault pattern)` grid, runs every cell across
//!   worker threads and **streams** one row per cell in deterministic grid
//!   order (`run_grid_streaming` + a `RowSink`), so peak memory is bounded
//!   by the reorder window, not the cell count.  Flags (all optional):
//!
//!   | flag        | meaning                                         | default |
//!   |-------------|--------------------------------------------------|---------|
//!   | `--file`    | scenario config file declaring the whole study; flags given after it override it | — |
//!   | `--specs`   | comma-separated network specs                    | `SK(4,2,2),POPS(4,6),DB(2,5)` |
//!   | `--traffic` | comma-separated workload specs — see the traffic grammar below (`--workload` is an alias) | uniform at the default loads |
//!   | `--loads`   | comma-separated offered loads — sugar for uniform workloads (`--traffic`/`--loads` both set the workload axis, last one wins) | `0.05,0.2,0.5,0.9` |
//!   | `--seeds`   | comma-separated random seeds                     | `42` |
//!   | `--slots`   | slots simulated per cell                         | `2000` |
//!   | `--faults`  | sweep 0..=N nested node faults (quotient groups for multi-OPS, processors for point-to-point) | `0` |
//!   | `--threads` | worker threads (results are thread-count independent) | available parallelism |
//!   | `--format`  | result format: `table`, `csv` or `jsonl` (undefined averages render `-` / empty field / `null` respectively, never `NaN`) | `table` |
//!   | `--output`  | stream results to a file instead of stdout       | stdout |
//!
//!   The traffic grammar (`otis_net::TrafficSpec`) covers stationary
//!   patterns and, since PR 9, the demand subsystem's arrival processes:
//!
//!   | workload | meaning | offered load column |
//!   |----------|---------|---------------------|
//!   | `uniform(L)` | every processor injects with probability `L`, destination uniform | `L` |
//!   | `perm(L,K)` | fixed permutation `dst = (src + K) mod N` at load `L` | `L` |
//!   | `hotspot(L,H,F)` | uniform at `L`, fraction `F` redirected to hot node `H` | `L` |
//!   | `transpose(L)` | matrix-transpose partner (needs square `N`) | `L` |
//!   | `bitrev(L)` | bit-reversal partner (needs `N` a power of two) | `L` |
//!   | `poisson(R)` | Poisson arrivals at rate `R` per processor per slot, destination uniform | `1 − e^−R` |
//!   | `poisson(R,D)` | Poisson arrivals, all addressed to node `D` | `1 − e^−R` |
//!   | `onoff(R,B,I)` | each source cycles a `B`-slot burst at rate `R` and `I` idle slots (phases staggered per seed) | `(1 − e^−R) · B/(B+I)` |
//!   | `mix(F,E,M)` | elephants-and-mice: fraction `F` of sources inject at rate `E`, the rest at `M` | `F·p(E) + (1−F)·p(M)` |
//!   | `trace(PATH)` | replay of a recorded `.trc` demand stream, streamed lazily in bounded memory | undefined (`-`/empty/`null`) |
//!
//!   Rates are validated at parse time (finite, non-negative; NaN refused)
//!   and trace node ids against the network size at bind time, with
//!   line-numbered errors mirroring `.scn`.  Stochastic cells stay
//!   deterministic per seed and thread-count independent; trace replay
//!   ignores the seed entirely (the engine warns when a trace is crossed
//!   with several seeds).
//!
//!   Run metadata (the cell-count banner, wall-clock timing) goes to
//!   stderr, so `--format csv`/`jsonl` piped or written via `--output`
//!   stays machine-clean.  Examples:
//!   `cargo run --release -p otis-bench --bin scenarios -- --traffic "hotspot(0.4,0,0.2)" --faults 1`
//!   and `cargo run --release -p otis-bench --bin scenarios -- --file examples/sweep.scn --format jsonl --output rows.jsonl`.
//!
//!   The config-file format (`otis_net::config`) is line-oriented: one
//!   `key value` per line, `#` starts a comment, list values are split on
//!   top-level commas.  Keys: `spec`/`specs`, `workload`/`workloads`,
//!   `load`/`loads` (uniform sugar), `seed`/`seeds` (list keys append
//!   across lines) and the scalars `slots`, `faults`, `threads`, `format`
//!   (`table`/`csv`/`jsonl`) and `output` (a file path), once each.
//!   `examples/sweep.scn` is a checked-in study that CI smoke-runs; CI also
//!   asserts that a `--format jsonl --output` fault sweep emits exactly one
//!   line per grid cell.
//! * The Criterion benches under `benches/` measure the performance of the
//!   building blocks: topology construction, diameter computation, routing,
//!   OTIS design construction + verification, and simulation throughput.
//!   `scenario_grid` measures the engine end to end — cells/second on a
//!   representative `SK(2,2,2) × 3 workloads × 8 seeds × fault-sweep` grid —
//!   against a fresh-kernel-per-cell baseline, making the prepare/execute
//!   split's cache win visible in the bench trajectory (CI compiles every
//!   bench via `cargo bench --no-run`).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod reproduce;

pub use reproduce::{available_experiments, run_experiment};
