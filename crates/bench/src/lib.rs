//! # otis-bench
//!
//! Benchmark and paper-reproduction harness.
//!
//! * The [`reproduce`] module regenerates, in text form, every figure and
//!   in-text table of the paper — run
//!   `cargo run -p otis-bench --bin reproduce -- all`, or a single experiment
//!   id such as `fig10` (see [`reproduce::available_experiments`]).
//! * The Criterion benches under `benches/` measure the performance of the
//!   building blocks: topology construction, diameter computation, routing,
//!   OTIS design construction + verification, and simulation throughput.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod reproduce;

pub use reproduce::{available_experiments, run_experiment};
