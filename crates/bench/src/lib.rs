//! # otis-bench
//!
//! Benchmark and paper-reproduction harness.
//!
//! * The [`reproduce`] module regenerates, in text form, every figure and
//!   in-text table of the paper — run
//!   `cargo run -p otis-bench --bin reproduce -- all`, or a single experiment
//!   id such as `fig10` (see [`reproduce::available_experiments`]).
//! * The `scenarios` binary is the CLI front end of the parallel scenario
//!   engine (`otis_net::engine`): it expands a
//!   `(spec × workload × seed × fault pattern)` grid, runs every cell across
//!   worker threads and **streams** one row per cell in deterministic grid
//!   order (`run_grid_streaming` + a `RowSink`), so peak memory is bounded
//!   by the reorder window, not the cell count.  Flags (all optional):
//!
//!   | flag        | meaning                                         | default |
//!   |-------------|--------------------------------------------------|---------|
//!   | `--file`    | scenario config file declaring the whole study; flags given after it override it | — |
//!   | `--specs`   | comma-separated network specs                    | `SK(4,2,2),POPS(4,6),DB(2,5)` |
//!   | `--traffic` | comma-separated workload specs (`uniform(0.3)`, `perm(0.5,7)`, `hotspot(0.4,0,0.2)`, `transpose(0.5)`, `bitrev(0.5)`) | uniform at the default loads |
//!   | `--loads`   | comma-separated offered loads — sugar for uniform workloads (`--traffic`/`--loads` both set the workload axis, last one wins) | `0.05,0.2,0.5,0.9` |
//!   | `--seeds`   | comma-separated random seeds                     | `42` |
//!   | `--slots`   | slots simulated per cell                         | `2000` |
//!   | `--faults`  | sweep 0..=N nested node faults (quotient groups for multi-OPS, processors for point-to-point) | `0` |
//!   | `--threads` | worker threads (results are thread-count independent) | available parallelism |
//!   | `--format`  | result format: `table`, `csv` or `jsonl` (undefined averages render `-` / empty field / `null` respectively, never `NaN`) | `table` |
//!   | `--output`  | stream results to a file instead of stdout       | stdout |
//!
//!   Run metadata (the cell-count banner, wall-clock timing) goes to
//!   stderr, so `--format csv`/`jsonl` piped or written via `--output`
//!   stays machine-clean.  Examples:
//!   `cargo run --release -p otis-bench --bin scenarios -- --traffic "hotspot(0.4,0,0.2)" --faults 1`
//!   and `cargo run --release -p otis-bench --bin scenarios -- --file examples/sweep.scn --format jsonl --output rows.jsonl`.
//!
//!   The config-file format (`otis_net::config`) is line-oriented: one
//!   `key value` per line, `#` starts a comment, list values are split on
//!   top-level commas.  Keys: `spec`/`specs`, `workload`/`workloads`,
//!   `load`/`loads` (uniform sugar), `seed`/`seeds` (list keys append
//!   across lines) and the scalars `slots`, `faults`, `threads`, `format`
//!   (`table`/`csv`/`jsonl`) and `output` (a file path), once each.
//!   `examples/sweep.scn` is a checked-in study that CI smoke-runs; CI also
//!   asserts that a `--format jsonl --output` fault sweep emits exactly one
//!   line per grid cell.
//! * The Criterion benches under `benches/` measure the performance of the
//!   building blocks: topology construction, diameter computation, routing,
//!   OTIS design construction + verification, and simulation throughput.
//!   `scenario_grid` measures the engine end to end — cells/second on a
//!   representative `SK(2,2,2) × 3 workloads × 8 seeds × fault-sweep` grid —
//!   against a fresh-kernel-per-cell baseline, making the prepare/execute
//!   split's cache win visible in the bench trajectory (CI compiles every
//!   bench via `cargo bench --no-run`).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod reproduce;

pub use reproduce::{available_experiments, run_experiment};
