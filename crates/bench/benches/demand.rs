//! Demand-generator overhead: what does a stochastic arrival process or a
//! trace replay cost per slot, against the stationary `uniform` baseline?
//!
//! Every bench runs the same prepared hot-potato kernel — DB(2,8), 256
//! processors, 500 slots — so the slot loop, routing and metrics work are
//! identical across rows and the deltas isolate the injection side:
//! `uniform` via the legacy pattern path, the same pattern through the
//! `DemandSource` indirection (pricing the dispatch itself), Poisson,
//! on/off bursts, the elephants-and-mice mix, and replay of a synthetic
//! in-memory trace with one event per slot.

use criterion::{criterion_group, criterion_main, Criterion};
use otis_routing::FaultSet;
use otis_sim::{
    DemandSource, DemandSpec, HotPotatoSimConfig, PreparedHotPotato, TraceReplay, TrafficPattern,
};
use otis_topologies::de_bruijn;
use std::io::Cursor;
use std::time::Duration;

fn bench_demand(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));

    let kernel = PreparedHotPotato::new(std::sync::Arc::new(de_bruijn(2, 8)), FaultSet::new());
    let config = HotPotatoSimConfig {
        slots: 500,
        seed: 42,
        ..Default::default()
    };
    let n = 256usize;

    // The stationary baseline on the legacy entry point.
    let uniform = TrafficPattern::Uniform { load: 0.4 };
    group.bench_function("uniform_pattern_path", |b| {
        b.iter(|| kernel.run(&uniform, &config))
    });

    // The same pattern through the demand indirection: the delta against
    // the row above is the price of the `DemandSource` dispatch (the RNG
    // draws are byte-identical by contract).
    group.bench_function("uniform_demand_path", |b| {
        b.iter(|| {
            let mut source = DemandSource::from_pattern(uniform.clone());
            kernel.run_demand(&mut source, &config)
        })
    });

    // Stochastic generators at a comparable mean rate.
    for (name, spec) in [
        (
            "poisson",
            DemandSpec::Poisson {
                rate: 0.5,
                dst: None,
            },
        ),
        (
            "onoff",
            DemandSpec::OnOff {
                rate: 2.0,
                burst_len: 16,
                idle_len: 48,
            },
        ),
        (
            "mix",
            DemandSpec::Mix {
                fraction: 0.1,
                elephant_rate: 2.0,
                mice_rate: 0.25,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut source = spec.source().expect("no trace: building never fails");
                kernel.run_demand(&mut source, &config)
            })
        });
    }

    // Trace replay from an in-memory buffer: one scripted event per slot.
    // Rendering the text once outside the loop leaves (re)parsing and the
    // replay state machine as the measured cost.
    let mut text = String::new();
    for slot in 0..config.slots {
        let src = slot as usize % n;
        let dst = (src + 1) % n;
        text.push_str(&format!("{slot} {src} {dst}\n"));
    }
    group.bench_function("trace_replay", |b| {
        b.iter(|| {
            let mut source = DemandSource::Trace(TraceReplay::new(Cursor::new(text.clone())));
            kernel.run_demand(&mut source, &config)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_demand);
criterion_main!(benches);
