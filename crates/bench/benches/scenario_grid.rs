//! Scenario-engine throughput: cells/second on a representative grid.
//!
//! The grid mirrors the comparison studies of §4 — one network, several
//! workloads, several seeds, the full `d − 1` fault sweep of §2.5 — which
//! is exactly the shape where the engine's prepared-kernel cache pays off:
//! 168 cells share 7 distinct `(spec, fault-pattern)` kernels, so the
//! routing state is materialised 7 times instead of 168 and every cell only
//! pays for its slot loop.  The `fresh_kernel_per_cell` baseline simulates
//! the pre-cache behaviour (prepare + run per cell, serially) for
//! comparison, and `wavelength_sweep` prices the wavelength layer: the same
//! study with the wavelength-count axis swept over `{1, 4, 16}`.
//!
//! The `large_n` group scales the node count three orders of magnitude past
//! the study networks — DB(2,11), 2 048 processors — with a bounded slot
//! count, and reports the size-independent throughput unit of the engine:
//! **node-slots/second** (divide the printed node-slots per iteration by a
//! bench's mean time).  Its three kernel-construction benches price the
//! delta-repair path against a full rebuild: `base_prepare` and
//! `fresh_faulted_prepare` both pay the from-scratch O(n²) routing-state
//! construction, while `delta_repair` derives the same faulted kernel from
//! a prebuilt base and should beat the rebuild by a wide margin.  The
//! `*_alternates_sk632` pair prices the same contrast for multi-OPS
//! kernels with Yen alternates, where the repair-aware path recomputes
//! alternates only for fault-disturbed pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use otis_net::{
    run_grid, run_grid_streaming, CollectSink, DemandSpec, FaultSet, NetworkSpec, ScenarioGrid,
    SimOptions, TrafficSpec,
};
use otis_routing::node_fault_patterns_up_to;
use std::time::Duration;

/// SK(2,2,2) × 3 workloads × 8 seeds × (intact + 6 single-group faults)
/// = 168 cells at 200 slots each.
fn representative_grid() -> ScenarioGrid {
    let specs: Vec<NetworkSpec> = vec!["SK(2,2,2)".parse().unwrap()];
    let workloads: Vec<TrafficSpec> = ["uniform(0.3)", "perm(0.5,7)", "hotspot(0.4,0,0.2)"]
        .iter()
        .map(|w| w.parse().unwrap())
        .collect();
    ScenarioGrid::new(specs)
        .workloads(workloads)
        .seeds(&[1, 2, 3, 4, 5, 6, 7, 8])
        .fault_sets(node_fault_patterns_up_to(6, 1))
        .slots(200)
}

fn bench_scenario_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_grid");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));

    let grid = representative_grid();
    let cells = grid.cell_count();
    assert_eq!(cells, 168);

    // The engine path: cached kernels, one worker.  Dividing the reported
    // time by 168 gives seconds/cell; its inverse is cells/second.
    group.bench_function(format!("engine_cached_{cells}cells_1thread"), |b| {
        b.iter(|| run_grid(&grid, 1).unwrap())
    });

    // The same grid across 4 workers (on multi-core hardware this divides
    // wall-clock; results stay byte-identical either way).
    group.bench_function(format!("engine_cached_{cells}cells_4threads"), |b| {
        b.iter(|| run_grid(&grid, 4).unwrap())
    });

    // The wavelength layer's overhead: the same study shape with the
    // wavelength-count axis swept over {1, 4, 16}.  Capacity-1 cells take
    // the legacy slot loop; the others pay for per-coupler spectrum masks
    // and first-fit slot searches.  Comparing per-cell time against the
    // capacity-1 engine benches above bounds the cost of the accounting.
    let blocking_grid = representative_grid().wavelengths(&[1, 4, 16]);
    let blocking_cells = blocking_grid.cell_count();
    assert_eq!(blocking_cells, 504);
    group.bench_function(
        format!("wavelength_sweep_{blocking_cells}cells_4threads"),
        |b| b.iter(|| run_grid(&blocking_grid, 4).unwrap()),
    );

    // Pre-cache baseline: rebuild the routing state for every cell, the way
    // the engine worked before the prepare/execute split.
    group.bench_function(format!("fresh_kernel_per_cell_{cells}cells"), |b| {
        let networks: Vec<otis_net::Network> = grid
            .specs
            .iter()
            .map(|&spec| otis_net::Network::new(spec).unwrap())
            .collect();
        b.iter(|| {
            let mut delivered = 0u64;
            for workload in &grid.workloads {
                for (network, _) in networks.iter().zip(&grid.specs) {
                    let pattern = match workload.bind(network.node_count()).unwrap() {
                        DemandSpec::Pattern(pattern) => pattern,
                        _ => unreachable!("this grid only sweeps stationary workloads"),
                    };
                    for &seed in &grid.seeds {
                        for faults in &grid.fault_sets {
                            let options = SimOptions {
                                seed,
                                faults: faults.clone(),
                                ..grid.options.clone()
                            };
                            // prepare + run per cell: no reuse.
                            let kernel = network.prepare(&options.faults);
                            delivered += kernel.run(&pattern, &options).delivered;
                        }
                    }
                }
            }
            delivered
        })
    });

    group.finish();
}

/// DB(2,11) — 2 048 processors, degree 2 — at a bounded 64 slots:
/// 1 workload × 2 seeds × (intact + 2 single faults) = 6 cells.
fn large_n_grid() -> ScenarioGrid {
    let specs: Vec<NetworkSpec> = vec!["DB(2,11)".parse().unwrap()];
    ScenarioGrid::new(specs)
        .loads(&[0.3])
        .seeds(&[1, 2])
        .fault_sets(node_fault_patterns_up_to(2, 1))
        .slots(64)
}

fn bench_large_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_n");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    let grid = large_n_grid();
    let cells = grid.cell_count();
    assert_eq!(cells, 6);
    let network = otis_net::Network::new(grid.specs[0]).unwrap();
    let nodes = network.node_count();
    assert_eq!(nodes, 2048);

    // One streaming run up front surfaces the work unit: dividing these
    // node-slots by a bench's mean time gives node-slots/second.
    let mut sink = CollectSink::new();
    let summary = run_grid_streaming(&grid, 4, &mut sink).unwrap();
    eprintln!(
        "# large_n engine benches: {} node-slots per iteration \
         ({cells} cells x {nodes} nodes x {} slots; kernels: {} built + {} repaired)",
        summary.node_slots, grid.options.slots, summary.kernels_built, summary.kernels_repaired,
    );

    // The engine path at scale: one base build, two delta repairs, six slot
    // loops over 2 048 nodes each.
    group.bench_function(
        format!("engine_cached_{cells}cells_{nodes}nodes_4threads"),
        |b| b.iter(|| run_grid(&grid, 4).unwrap()),
    );

    // Kernel construction in isolation — the delta-vs-rebuild comparison.
    let single_fault = FaultSet::from_nodes([0]);
    group.bench_function(format!("base_prepare_{nodes}nodes"), |b| {
        b.iter(|| network.prepare(&FaultSet::new()))
    });
    group.bench_function(format!("fresh_faulted_prepare_{nodes}nodes"), |b| {
        b.iter(|| network.prepare(&single_fault))
    });
    group.bench_function(format!("delta_repair_{nodes}nodes"), |b| {
        let base = network.prepare(&FaultSet::new());
        b.iter(|| base.repair(&single_fault, 1))
    });

    // Repair-aware Yen alternates: a faulted multi-OPS kernel prepared
    // with alternates pays a full Yen k-shortest pass per group pair from
    // scratch, while the delta path recomputes alternates only for the
    // pairs the fault disturbs (undisturbed pairs reuse the base's cached
    // paths, proven bit-identical in tests/delta_kernels.rs).
    let sk = otis_net::Network::from_spec("SK(6,3,2)").unwrap();
    let sk_fault = FaultSet::from_nodes([1]);
    group.bench_function("fresh_alternates_prepare_sk632", |b| {
        b.iter(|| sk.prepare_with_alternates(&sk_fault, 3))
    });
    group.bench_function("delta_repair_alternates_sk632", |b| {
        let base = sk.prepare_with_alternates(&FaultSet::new(), 3);
        b.iter(|| base.repair(&sk_fault, 3))
    });

    group.finish();
}

criterion_group!(benches, bench_scenario_grid, bench_large_n);
criterion_main!(benches);
