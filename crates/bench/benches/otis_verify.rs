//! Construction + exact verification of the OTIS designs
//! (Proposition 1 / Corollary 1 / Figs. 11-12, experiments F10-F12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otis_core::{ImaseItohDesign, PopsDesign, StackKautzDesign};
use std::time::Duration;

fn bench_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("otis_designs");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));

    for &(d, n) in &[(3usize, 12usize), (4, 100), (5, 300)] {
        group.bench_with_input(
            BenchmarkId::new("imase_itoh_design_verify", format!("d{d}n{n}")),
            &(d, n),
            |b, &(d, n)| {
                b.iter(|| {
                    let design = ImaseItohDesign::new(d, n);
                    design.verify().expect("Proposition 1 holds")
                })
            },
        );
    }

    for &(t, g) in &[(4usize, 2usize), (8, 4)] {
        group.bench_with_input(
            BenchmarkId::new("pops_design_verify", format!("t{t}g{g}")),
            &(t, g),
            |b, &(t, g)| {
                b.iter(|| {
                    let design = PopsDesign::new(t, g);
                    design.verify().expect("POPS design verifies")
                })
            },
        );
    }

    group.bench_function("stack_kautz_design_verify_6_3_2", |b| {
        b.iter(|| {
            let design = StackKautzDesign::new(6, 3, 2);
            design.verify().expect("SK(6,3,2) design verifies")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_designs);
criterion_main!(benches);
