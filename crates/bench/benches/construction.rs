//! Construction time of the topology families (experiments T1/T2/F7 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otis_topologies::{de_bruijn, imase_itoh, kautz, Pops, StackKautz};
use std::time::Duration;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for &(d, k) in &[(2usize, 6usize), (3, 4), (4, 4), (5, 3)] {
        group.bench_with_input(
            BenchmarkId::new("kautz", format!("d{d}k{k}")),
            &(d, k),
            |b, &(d, k)| b.iter(|| kautz(d, k)),
        );
    }
    for &(d, n) in &[(3usize, 1000usize), (4, 5000), (5, 10000)] {
        group.bench_with_input(
            BenchmarkId::new("imase_itoh", format!("d{d}n{n}")),
            &(d, n),
            |b, &(d, n)| b.iter(|| imase_itoh(d, n)),
        );
    }
    group.bench_function("de_bruijn_d4k5", |b| b.iter(|| de_bruijn(4, 5)));
    group.bench_function("pops_16x16", |b| b.iter(|| Pops::new(16, 16)));
    group.bench_function("stack_kautz_8_3_3", |b| b.iter(|| StackKautz::new(8, 3, 3)));
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
