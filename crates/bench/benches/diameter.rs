//! Diameter / property computation cost (experiment T1/T2 validation path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otis_graphs::algorithms::{average_distance, diameter};
use otis_topologies::{de_bruijn, imase_itoh, kautz};
use std::time::Duration;

fn bench_diameter(c: &mut Criterion) {
    let mut group = c.benchmark_group("diameter");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for &(d, k) in &[(2usize, 5usize), (3, 3), (4, 3)] {
        let g = kautz(d, k);
        group.bench_with_input(
            BenchmarkId::new("kautz", format!("d{d}k{k}_n{}", g.node_count())),
            &g,
            |b, g| b.iter(|| diameter(g)),
        );
    }
    let ii = imase_itoh(3, 500);
    group.bench_function("imase_itoh_d3_n500", |b| b.iter(|| diameter(&ii)));
    let db = de_bruijn(2, 8);
    group.bench_function("de_bruijn_d2_k8", |b| b.iter(|| diameter(&db)));
    let small = kautz(3, 3);
    group.bench_function("average_distance_kautz_3_3", |b| {
        b.iter(|| average_distance(&small))
    });
    group.finish();
}

criterion_group!(benches, bench_diameter);
criterion_main!(benches);
