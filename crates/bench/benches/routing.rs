//! Routing cost: label routing, arithmetic routing, table construction,
//! stack-graph routing (experiment T4 substrate).

use criterion::{criterion_group, criterion_main, Criterion};
use otis_routing::{imase_itoh_route, kautz_route, RoutingTable, StackRouter};
use otis_topologies::{kautz, kautz_node_count, StackKautz};
use std::time::Duration;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));

    let (d, k) = (4usize, 4usize);
    let n = kautz_node_count(d, k);
    group.bench_function("kautz_label_route_d4k4_all_from_0", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for dst in 0..n {
                total += kautz_route(d, k, 0, dst).len();
            }
            total
        })
    });

    group.bench_function("imase_itoh_route_d4_n1000_sample", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for v in (0..1000).step_by(7) {
                total += imase_itoh_route(4, 1000, 3, v).len();
            }
            total
        })
    });

    let g = kautz(3, 3);
    group.bench_function("routing_table_kautz_3_3", |b| {
        b.iter(|| RoutingTable::new(&g))
    });

    let sk = StackKautz::new(4, 3, 2);
    let router = StackRouter::new(sk.stack_graph().clone());
    group.bench_function("stack_route_sk_4_3_2_all_pairs", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for src in 0..sk.node_count() {
                for dst in 0..sk.node_count() {
                    hops += router.route(src, dst).map(|r| r.len()).unwrap_or(0);
                }
            }
            hops
        })
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
