//! Slotted-simulation throughput (experiment T5 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otis_routing::FaultSet;
use otis_sim::{
    FaultSchedule, HotPotatoSim, HotPotatoSimConfig, MultiOpsSim, MultiOpsSimConfig,
    PreparedHotPotato, PreparedMultiOps, TrafficPattern,
};
use otis_topologies::{de_bruijn, Pops, StackKautz};
use std::time::Duration;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let traffic = TrafficPattern::Uniform { load: 0.5 };

    for &(s, d, k) in &[(4usize, 2usize, 2usize), (6, 3, 2)] {
        let sk = StackKautz::new(s, d, k);
        group.bench_with_input(
            BenchmarkId::new("stack_kautz_500_slots", format!("s{s}d{d}k{k}")),
            &sk,
            |b, sk| {
                b.iter(|| {
                    MultiOpsSim::new(
                        sk.stack_graph().clone(),
                        MultiOpsSimConfig {
                            slots: 500,
                            ..Default::default()
                        },
                    )
                    .run(&traffic)
                })
            },
        );
    }

    let pops = Pops::new(8, 8);
    group.bench_function("pops_8x8_500_slots", |b| {
        b.iter(|| {
            MultiOpsSim::new(
                pops.stack_graph().clone(),
                MultiOpsSimConfig {
                    slots: 500,
                    ..Default::default()
                },
            )
            .run(&traffic)
        })
    });

    let db = de_bruijn(2, 6);
    group.bench_function("hot_potato_de_bruijn_2_6_500_slots", |b| {
        b.iter(|| {
            HotPotatoSim::new(
                db.clone(),
                HotPotatoSimConfig {
                    slots: 500,
                    ..Default::default()
                },
            )
            .run(&traffic)
        })
    });
    group.finish();
}

fn bench_fault_timeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_timeline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let traffic = TrafficPattern::Uniform { load: 0.5 };
    let schedule: FaultSchedule = "fail(node 3)@150; recover@350".parse().unwrap();

    // The delta-repair cost of deriving a whole timeline's epoch kernels
    // from the fault-free base — the work the engine caches per
    // (spec, fault set, schedule) triple.
    let sk = StackKautz::new(6, 3, 2);
    let sk_base = PreparedMultiOps::from_stack(sk.stack_graph().clone(), FaultSet::new());
    group.bench_function("timeline_from_sk_6_3_2", |b| {
        b.iter(|| PreparedMultiOps::timeline_from(&sk_base, &sk_base, &schedule, 1).unwrap())
    });

    // The run-time cost of the kernel swaps themselves, against the plain
    // run of the same kernel: the delta is what a two-event schedule adds
    // to a 500-slot multi-OPS run.
    let sk_timeline = PreparedMultiOps::timeline_from(&sk_base, &sk_base, &schedule, 1).unwrap();
    let multi_config = MultiOpsSimConfig {
        slots: 500,
        ..Default::default()
    };
    group.bench_function("multi_ops_sk_6_3_2_500_slots_static", |b| {
        b.iter(|| sk_base.run(&traffic, &multi_config))
    });
    group.bench_function("multi_ops_sk_6_3_2_500_slots_two_swaps", |b| {
        b.iter(|| sk_base.run_with_timeline(&sk_timeline, &traffic, &multi_config))
    });

    // Same comparison for the point-to-point deflection simulator.
    let db_base = PreparedHotPotato::from_graph(de_bruijn(2, 8), FaultSet::new());
    let db_timeline = PreparedHotPotato::timeline_from(&db_base, &db_base, &schedule).unwrap();
    let hot_config = HotPotatoSimConfig {
        slots: 500,
        ..Default::default()
    };
    group.bench_function("hot_potato_db_2_8_500_slots_static", |b| {
        b.iter(|| db_base.run(&traffic, &hot_config))
    });
    group.bench_function("hot_potato_db_2_8_500_slots_two_swaps", |b| {
        b.iter(|| db_base.run_with_timeline(&db_timeline, &traffic, &hot_config))
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_fault_timeline);
criterion_main!(benches);
