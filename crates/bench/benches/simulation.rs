//! Slotted-simulation throughput (experiment T5 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use otis_sim::{HotPotatoSim, HotPotatoSimConfig, MultiOpsSim, MultiOpsSimConfig, TrafficPattern};
use otis_topologies::{de_bruijn, Pops, StackKautz};
use std::time::Duration;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let traffic = TrafficPattern::Uniform { load: 0.5 };

    for &(s, d, k) in &[(4usize, 2usize, 2usize), (6, 3, 2)] {
        let sk = StackKautz::new(s, d, k);
        group.bench_with_input(
            BenchmarkId::new("stack_kautz_500_slots", format!("s{s}d{d}k{k}")),
            &sk,
            |b, sk| {
                b.iter(|| {
                    MultiOpsSim::new(
                        sk.stack_graph().clone(),
                        MultiOpsSimConfig {
                            slots: 500,
                            ..Default::default()
                        },
                    )
                    .run(&traffic)
                })
            },
        );
    }

    let pops = Pops::new(8, 8);
    group.bench_function("pops_8x8_500_slots", |b| {
        b.iter(|| {
            MultiOpsSim::new(
                pops.stack_graph().clone(),
                MultiOpsSimConfig {
                    slots: 500,
                    ..Default::default()
                },
            )
            .run(&traffic)
        })
    });

    let db = de_bruijn(2, 6);
    group.bench_function("hot_potato_de_bruijn_2_6_500_slots", |b| {
        b.iter(|| {
            HotPotatoSim::new(
                db.clone(),
                HotPotatoSimConfig {
                    slots: 500,
                    ..Default::default()
                },
            )
            .run(&traffic)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
