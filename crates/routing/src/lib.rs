//! # otis-routing
//!
//! Routing algorithms for the topologies of the OTIS lightwave-network
//! reproduction.
//!
//! The paper's §2.5 notes that "routing on the Kautz graph is very simple,
//! since a shortest path routing algorithm (every path is of length at most
//! k) is induced by the label of the nodes.  It can be extended to generate a
//! path of length at most k + 2 which survives d − 1 link or node faults",
//! and that the stack-Kautz network "inherits most of the properties of the
//! Kautz graph, like shortest path routing, fault tolerance and others".
//! This crate implements those routers and the checks behind those claims:
//!
//! * [`kautz`] — word-label routing on `KG(d, k)` (longest suffix/prefix
//!   overlap, at most `k` hops);
//! * [`imase_itoh`] — arithmetic routing on `II(d, n)` (base `−d` digit
//!   decomposition, provably shortest);
//! * [`fault_tolerant`] — fault-avoiding routing and the empirical validation
//!   of the `≤ k + 2` bound under up to `d − 1` faults;
//! * [`stack`] — routing in stack-graphs (group-level route plus coupler and
//!   in-group processor selection), which covers the stack-Kautz and
//!   stack-Imase–Itoh networks;
//! * [`pops`] — single-hop POPS communication: coupler selection, broadcast
//!   and permutation/all-to-all slot schedules under the one-sender-per-
//!   coupler-per-slot constraint;
//! * [`hot_potato`] — the deflection-routing baseline used for the
//!   single-OPS comparison (Zhang & Acampora style hot-potato);
//! * [`table`] — generic next-hop routing tables computed from any digraph,
//!   used as the reference the specialised routers are checked against.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod fault_tolerant;
pub mod hot_potato;
pub mod imase_itoh;
pub mod kautz;
pub mod pops;
pub mod stack;
pub mod table;

pub use fault_tolerant::{
    fault_tolerant_route, node_fault_patterns, node_fault_patterns_iter, node_fault_patterns_up_to,
    node_fault_patterns_up_to_iter, surviving_subgraph, FaultSet, NodeFaultPatterns,
};
pub use hot_potato::HotPotatoRouter;
pub use imase_itoh::{imase_itoh_distance, imase_itoh_route};
pub use kautz::{kautz_route, kautz_route_words};
pub use pops::{PopsRouter, SlotSchedule};
pub use stack::{StackHop, StackRepair, StackRoute, StackRouter};
pub use table::{RoutingTable, TableRepair};
