//! Generic next-hop routing tables.
//!
//! A [`RoutingTable`] holds, for every (current node, destination) pair, the
//! next node to forward to along one shortest path.  It is computed by a
//! reverse BFS from every destination, works for any strongly connected
//! digraph, and serves two purposes in the reproduction: it is the reference
//! against which the specialised label/arithmetic routers are validated, and
//! it is the routing oracle handed to the slotted simulator for topologies
//! that have no label structure (meshes, hypercubes, …).

use crate::fault_tolerant::FaultSet;
use otis_graphs::algorithms::bfs::UNREACHABLE;
use otis_graphs::{Digraph, NodeId};
use std::collections::VecDeque;

/// Result of [`RoutingTable::repaired`]: the repaired table plus, per
/// destination column, whether live-node entries may differ from the base.
///
/// `changed[dst]` is `true` when the column was recomputed by BFS or the
/// destination itself failed; when it is `false` the column is a verbatim
/// copy of the base except for failed-source rows (which become
/// unreachable), so any cached route *between live nodes* towards `dst`
/// remains valid.
#[derive(Debug, Clone)]
pub struct TableRepair {
    /// The repaired table, identical to `RoutingTable::new` on the
    /// surviving subgraph.
    pub table: RoutingTable,
    /// `changed[dst]`: whether live-node entries of column `dst` may differ
    /// from the base table.
    pub changed: Vec<bool>,
    /// Number of destination columns recomputed by BFS (the rest were
    /// copied).
    pub recomputed: usize,
}

/// Precomputed next-hop table and distance matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    n: usize,
    /// `next[dst * n + u]`: next hop from `u` towards `dst` (`usize::MAX`
    /// when unreachable or `u == dst`).
    next: Vec<usize>,
    /// `dist[dst * n + u]`: distance from `u` to `dst` in arcs.
    dist: Vec<u32>,
}

impl RoutingTable {
    /// Builds the table for a digraph.  Time `O(n·(n + m))`, memory `O(n²)`.
    pub fn new(g: &Digraph) -> Self {
        let n = g.node_count();
        let reverse = g.reverse();
        let mut next = vec![usize::MAX; n * n];
        let mut dist = vec![UNREACHABLE; n * n];
        let mut queue = VecDeque::new();
        for dst in 0..n {
            let base = dst * n;
            dist[base + dst] = 0;
            queue.clear();
            queue.push_back(dst);
            // BFS on the reverse graph: when we reach u from w (i.e. the
            // original graph has arc u -> w), then forwarding from u towards
            // dst can go through w.
            while let Some(w) = queue.pop_front() {
                let dw = dist[base + w];
                for &u in reverse.out_neighbors(w) {
                    if dist[base + u] == UNREACHABLE {
                        dist[base + u] = dw + 1;
                        next[base + u] = w;
                        queue.push_back(u);
                    }
                }
            }
        }
        RoutingTable { n, next, dist }
    }

    /// Delta-repairs a base table for a fault set instead of recomputing all
    /// pairs.
    ///
    /// `self` must be the table of the intact graph and `survivor` its
    /// surviving subgraph under `faults` (see
    /// [`crate::surviving_subgraph`]); the result is **identical** — next
    /// hops and distances — to `RoutingTable::new(survivor)`, but only the
    /// destination columns actually touched by the faults pay for a BFS.
    ///
    /// A column for destination `dst` can be copied verbatim exactly when no
    /// live node's tree arc `(u, next[u → dst])` is blocked by the faults:
    /// every arc the faults remove is then a *non-tree* arc for that column,
    /// examined by the reference BFS only after its tail was already
    /// discovered, so deleting it cannot perturb the discovery order — the
    /// from-scratch BFS on the survivor retraces the base BFS exactly.
    /// Failed sources are patched to unreachable on copied columns (a failed
    /// node has no surviving out-arcs, so the reference BFS never reaches
    /// it).  Columns failing the criterion — and columns of failed
    /// destinations — are recomputed with the same reverse BFS as
    /// [`RoutingTable::new`].
    pub fn repaired(&self, survivor: &Digraph, faults: &FaultSet) -> TableRepair {
        let n = self.n;
        assert_eq!(
            survivor.node_count(),
            n,
            "survivor node count must match the base table"
        );
        if faults.is_empty() {
            return TableRepair {
                table: self.clone(),
                changed: vec![false; n],
                recomputed: 0,
            };
        }
        let reverse = survivor.reverse();
        let failed_nodes = faults.sorted_nodes();
        // The copyable criterion scans every (node, column) pair; a bitmap
        // keeps that O(n²) pass at an indexed load per node instead of a
        // hash lookup, and the arc-fault set is only consulted at all when
        // it is non-empty (node faults dominate the sweeps).
        let mut node_failed = vec![false; n];
        for &f in &failed_nodes {
            node_failed[f] = true;
        }
        let has_arc_faults = !faults.sorted_arcs().is_empty();
        let mut next = self.next.clone();
        let mut dist = self.dist.clone();
        let mut changed = vec![false; n];
        let mut recomputed = 0usize;
        let mut queue = VecDeque::new();
        for dst in 0..n {
            let base = dst * n;
            if node_failed[dst] {
                // A failed destination has no surviving in-arcs: the
                // reference BFS discovers nothing beyond `dst` itself.
                for u in 0..n {
                    next[base + u] = usize::MAX;
                    dist[base + u] = UNREACHABLE;
                }
                dist[base + dst] = 0;
                changed[dst] = true;
                continue;
            }
            let copyable = (0..n).all(|u| {
                if u == dst || node_failed[u] || self.dist[base + u] == UNREACHABLE {
                    return true;
                }
                let hop = self.next[base + u];
                !(node_failed[hop] || has_arc_faults && faults.blocks(u, hop))
            });
            if copyable {
                for &f in &failed_nodes {
                    next[base + f] = usize::MAX;
                    dist[base + f] = UNREACHABLE;
                }
                continue;
            }
            recomputed += 1;
            changed[dst] = true;
            for u in 0..n {
                next[base + u] = usize::MAX;
                dist[base + u] = UNREACHABLE;
            }
            dist[base + dst] = 0;
            queue.clear();
            queue.push_back(dst);
            while let Some(w) = queue.pop_front() {
                let dw = dist[base + w];
                for &u in reverse.out_neighbors(w) {
                    if dist[base + u] == UNREACHABLE {
                        dist[base + u] = dw + 1;
                        next[base + u] = w;
                        queue.push_back(u);
                    }
                }
            }
        }
        TableRepair {
            table: RoutingTable { n, next, dist },
            changed,
            recomputed,
        }
    }

    /// Delta-repairs toward *fewer* faults — the direction
    /// [`RoutingTable::repaired`] cannot express, since repairs always grow
    /// the fault set from a fault-free base while a recovery event shrinks
    /// it mid-run.
    ///
    /// `self` is the table currently in force under the fault set
    /// `previous`, `base` the table of the intact graph, and `survivor` the
    /// surviving subgraph under `faults` (a subset of `previous`).  The
    /// returned table is **identical** to `RoutingTable::new(survivor)` —
    /// it is produced by [`RoutingTable::repaired`] from the base, so the
    /// bit-for-bit guarantee carries over.  What recovery adds is the
    /// `changed` report *against the current table*: `changed[dst]` is an
    /// exact comparison of column `dst` restricted to rows that live under
    /// `previous`.  When it is `false`, every route between
    /// `previous`-live nodes towards `dst` is unchanged — route-following
    /// from a live node only visits live next hops, and all of their
    /// entries compare equal — so downstream per-column caches (the
    /// flattened multi-OPS route tables) can carry routes between
    /// previously-live nodes across the recovery swap.  Routes from or to
    /// newly-recovered nodes are *not* covered by an unchanged flag and
    /// must be recomputed by the caller.
    pub fn recovered(
        &self,
        base: &RoutingTable,
        survivor: &Digraph,
        previous: &FaultSet,
        faults: &FaultSet,
    ) -> TableRepair {
        let n = self.n;
        assert_eq!(base.n, n, "base node count must match the current table");
        debug_assert!(
            faults.is_subset_of(previous),
            "recovery must move toward fewer faults"
        );
        let repair = base.repaired(survivor, faults);
        let table = repair.table;
        let mut changed = vec![false; n];
        let mut live = vec![true; n];
        for &f in &previous.sorted_nodes() {
            live[f] = false;
        }
        for (dst, flag) in changed.iter_mut().enumerate() {
            let col = dst * n;
            *flag = (0..n).any(|u| {
                live[u]
                    && (table.next[col + u] != self.next[col + u]
                        || table.dist[col + u] != self.dist[col + u])
            });
        }
        TableRepair {
            table,
            changed,
            recomputed: repair.recomputed,
        }
    }

    /// Number of nodes the table covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Next hop from `current` towards `dst`; `None` when `current == dst` or
    /// `dst` is unreachable.
    pub fn next_hop(&self, current: NodeId, dst: NodeId) -> Option<NodeId> {
        assert!(current < self.n && dst < self.n, "node out of range");
        if current == dst {
            return None;
        }
        let hop = self.next[dst * self.n + current];
        if hop == usize::MAX {
            None
        } else {
            Some(hop)
        }
    }

    /// Distance from `src` to `dst`; `None` when unreachable.
    pub fn distance(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        assert!(src < self.n && dst < self.n, "node out of range");
        let d = self.dist[dst * self.n + src];
        if d == UNREACHABLE {
            None
        } else {
            Some(d)
        }
    }

    /// The complete route from `src` to `dst` following the table, or `None`
    /// if unreachable.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.distance(src, dst)?;
        let mut path = vec![src];
        let mut current = src;
        while current != dst {
            current = self.next_hop(current, dst)?;
            path.push(current);
        }
        Some(path)
    }

    /// The eccentricity-maximum of the table: the largest finite distance
    /// (the diameter when the graph is strongly connected).
    pub fn max_distance(&self) -> Option<u32> {
        let mut max = 0;
        for &d in &self.dist {
            if d == UNREACHABLE {
                return None;
            }
            max = max.max(d);
        }
        Some(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::{diameter, is_valid_path};
    use otis_topologies::{de_bruijn, kautz};

    #[test]
    fn table_routes_are_shortest_on_kautz() {
        let g = kautz(2, 3);
        let table = RoutingTable::new(&g);
        assert_eq!(table.max_distance(), diameter(&g));
        for src in 0..g.node_count() {
            for dst in 0..g.node_count() {
                let route = table.route(src, dst).unwrap();
                assert!(is_valid_path(&g, &route));
                assert_eq!((route.len() - 1) as u32, table.distance(src, dst).unwrap());
            }
        }
    }

    #[test]
    fn table_on_de_bruijn() {
        let g = de_bruijn(2, 3);
        let table = RoutingTable::new(&g);
        assert_eq!(table.max_distance(), Some(3));
        assert_eq!(table.node_count(), 8);
    }

    #[test]
    fn next_hop_of_destination_is_none() {
        let g = kautz(2, 2);
        let table = RoutingTable::new(&g);
        assert_eq!(table.next_hop(3, 3), None);
        assert_eq!(table.distance(3, 3), Some(0));
        assert_eq!(table.route(3, 3), Some(vec![3]));
    }

    #[test]
    fn unreachable_pairs() {
        let g = Digraph::from_edges(3, &[(0, 1)]);
        let table = RoutingTable::new(&g);
        assert_eq!(table.distance(1, 0), None);
        assert_eq!(table.route(1, 0), None);
        assert_eq!(table.next_hop(1, 0), None);
        assert_eq!(table.max_distance(), None);
        assert_eq!(table.distance(0, 1), Some(1));
    }

    #[test]
    fn repaired_tables_equal_from_scratch_on_kautz_singles_and_pairs() {
        use crate::fault_tolerant::{node_fault_patterns_up_to, surviving_subgraph};
        let g = kautz(3, 2);
        let base = RoutingTable::new(&g);
        for faults in node_fault_patterns_up_to(g.node_count(), 2) {
            let survivor = surviving_subgraph(&g, &faults);
            let repair = base.repaired(&survivor, &faults);
            assert_eq!(
                repair.table,
                RoutingTable::new(&survivor),
                "faults {:?}",
                faults.sorted_nodes()
            );
            if faults.is_empty() {
                assert_eq!(repair.recomputed, 0);
                assert!(repair.changed.iter().all(|&c| !c));
            }
        }
    }

    #[test]
    fn repaired_table_handles_arc_faults() {
        use crate::fault_tolerant::{surviving_subgraph, FaultSet};
        let g = de_bruijn(2, 3);
        let base = RoutingTable::new(&g);
        for arc in g.arcs() {
            let mut faults = FaultSet::new();
            faults.fail_arc(arc.source, arc.target);
            let survivor = surviving_subgraph(&g, &faults);
            assert_eq!(
                base.repaired(&survivor, &faults).table,
                RoutingTable::new(&survivor),
                "arc fault {arc:?}"
            );
        }
    }

    #[test]
    fn unchanged_columns_keep_live_routes_valid() {
        use crate::fault_tolerant::{surviving_subgraph, FaultSet};
        let g = kautz(2, 3);
        let base = RoutingTable::new(&g);
        let faults = FaultSet::from_nodes([0]);
        let survivor = surviving_subgraph(&g, &faults);
        let repair = base.repaired(&survivor, &faults);
        for dst in 0..g.node_count() {
            if repair.changed[dst] {
                continue;
            }
            for u in 0..g.node_count() {
                if faults.node_failed(u) {
                    assert_eq!(repair.table.distance(u, dst), None);
                } else {
                    assert_eq!(repair.table.next_hop(u, dst), base.next_hop(u, dst));
                    assert_eq!(repair.table.distance(u, dst), base.distance(u, dst));
                }
            }
        }
    }

    #[test]
    fn recovered_tables_equal_from_scratch_and_flag_exact_changes() {
        use crate::fault_tolerant::{surviving_subgraph, FaultSet};
        let g = kautz(3, 2);
        let base = RoutingTable::new(&g);
        let mut previous = FaultSet::from_nodes([0, 5]);
        previous.fail_arc(2, 7);
        let current = RoutingTable::new(&surviving_subgraph(&g, &previous));
        let shrunk = [
            FaultSet::from_nodes([0]),
            FaultSet::from_nodes([5]),
            FaultSet::new(),
            previous.clone(),
        ];
        for faults in shrunk {
            let survivor = surviving_subgraph(&g, &faults);
            let rec = current.recovered(&base, &survivor, &previous, &faults);
            let scratch = RoutingTable::new(&survivor);
            assert_eq!(rec.table, scratch, "faults {:?}", faults.sorted_nodes());
            // The changed flags are an exact column comparison restricted to
            // previously-live rows.
            for dst in 0..g.node_count() {
                let differs = (0..g.node_count()).any(|u| {
                    !previous.node_failed(u)
                        && (scratch.next_hop(u, dst) != current.next_hop(u, dst)
                            || scratch.distance(u, dst) != current.distance(u, dst))
                });
                assert_eq!(
                    rec.changed[dst],
                    differs,
                    "dst {dst}, faults {:?}",
                    faults.sorted_nodes()
                );
            }
        }
    }

    #[test]
    fn next_hop_is_an_out_neighbor() {
        let g = kautz(3, 2);
        let table = RoutingTable::new(&g);
        for src in 0..g.node_count() {
            for dst in 0..g.node_count() {
                if let Some(hop) = table.next_hop(src, dst) {
                    assert!(g.out_neighbors(src).contains(&hop));
                }
            }
        }
    }
}
