//! Generic next-hop routing tables.
//!
//! A [`RoutingTable`] holds, for every (current node, destination) pair, the
//! next node to forward to along one shortest path.  It is computed by a
//! reverse BFS from every destination, works for any strongly connected
//! digraph, and serves two purposes in the reproduction: it is the reference
//! against which the specialised label/arithmetic routers are validated, and
//! it is the routing oracle handed to the slotted simulator for topologies
//! that have no label structure (meshes, hypercubes, …).

use otis_graphs::algorithms::bfs::UNREACHABLE;
use otis_graphs::{Digraph, NodeId};
use std::collections::VecDeque;

/// Precomputed next-hop table and distance matrix.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n: usize,
    /// `next[dst * n + u]`: next hop from `u` towards `dst` (`usize::MAX`
    /// when unreachable or `u == dst`).
    next: Vec<usize>,
    /// `dist[dst * n + u]`: distance from `u` to `dst` in arcs.
    dist: Vec<u32>,
}

impl RoutingTable {
    /// Builds the table for a digraph.  Time `O(n·(n + m))`, memory `O(n²)`.
    pub fn new(g: &Digraph) -> Self {
        let n = g.node_count();
        let reverse = g.reverse();
        let mut next = vec![usize::MAX; n * n];
        let mut dist = vec![UNREACHABLE; n * n];
        let mut queue = VecDeque::new();
        for dst in 0..n {
            let base = dst * n;
            dist[base + dst] = 0;
            queue.clear();
            queue.push_back(dst);
            // BFS on the reverse graph: when we reach u from w (i.e. the
            // original graph has arc u -> w), then forwarding from u towards
            // dst can go through w.
            while let Some(w) = queue.pop_front() {
                let dw = dist[base + w];
                for &u in reverse.out_neighbors(w) {
                    if dist[base + u] == UNREACHABLE {
                        dist[base + u] = dw + 1;
                        next[base + u] = w;
                        queue.push_back(u);
                    }
                }
            }
        }
        RoutingTable { n, next, dist }
    }

    /// Number of nodes the table covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Next hop from `current` towards `dst`; `None` when `current == dst` or
    /// `dst` is unreachable.
    pub fn next_hop(&self, current: NodeId, dst: NodeId) -> Option<NodeId> {
        assert!(current < self.n && dst < self.n, "node out of range");
        if current == dst {
            return None;
        }
        let hop = self.next[dst * self.n + current];
        if hop == usize::MAX {
            None
        } else {
            Some(hop)
        }
    }

    /// Distance from `src` to `dst`; `None` when unreachable.
    pub fn distance(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        assert!(src < self.n && dst < self.n, "node out of range");
        let d = self.dist[dst * self.n + src];
        if d == UNREACHABLE {
            None
        } else {
            Some(d)
        }
    }

    /// The complete route from `src` to `dst` following the table, or `None`
    /// if unreachable.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.distance(src, dst)?;
        let mut path = vec![src];
        let mut current = src;
        while current != dst {
            current = self.next_hop(current, dst)?;
            path.push(current);
        }
        Some(path)
    }

    /// The eccentricity-maximum of the table: the largest finite distance
    /// (the diameter when the graph is strongly connected).
    pub fn max_distance(&self) -> Option<u32> {
        let mut max = 0;
        for &d in &self.dist {
            if d == UNREACHABLE {
                return None;
            }
            max = max.max(d);
        }
        Some(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::{diameter, is_valid_path};
    use otis_topologies::{de_bruijn, kautz};

    #[test]
    fn table_routes_are_shortest_on_kautz() {
        let g = kautz(2, 3);
        let table = RoutingTable::new(&g);
        assert_eq!(table.max_distance(), diameter(&g));
        for src in 0..g.node_count() {
            for dst in 0..g.node_count() {
                let route = table.route(src, dst).unwrap();
                assert!(is_valid_path(&g, &route));
                assert_eq!((route.len() - 1) as u32, table.distance(src, dst).unwrap());
            }
        }
    }

    #[test]
    fn table_on_de_bruijn() {
        let g = de_bruijn(2, 3);
        let table = RoutingTable::new(&g);
        assert_eq!(table.max_distance(), Some(3));
        assert_eq!(table.node_count(), 8);
    }

    #[test]
    fn next_hop_of_destination_is_none() {
        let g = kautz(2, 2);
        let table = RoutingTable::new(&g);
        assert_eq!(table.next_hop(3, 3), None);
        assert_eq!(table.distance(3, 3), Some(0));
        assert_eq!(table.route(3, 3), Some(vec![3]));
    }

    #[test]
    fn unreachable_pairs() {
        let g = Digraph::from_edges(3, &[(0, 1)]);
        let table = RoutingTable::new(&g);
        assert_eq!(table.distance(1, 0), None);
        assert_eq!(table.route(1, 0), None);
        assert_eq!(table.next_hop(1, 0), None);
        assert_eq!(table.max_distance(), None);
        assert_eq!(table.distance(0, 1), Some(1));
    }

    #[test]
    fn next_hop_is_an_out_neighbor() {
        let g = kautz(3, 2);
        let table = RoutingTable::new(&g);
        for src in 0..g.node_count() {
            for dst in 0..g.node_count() {
                if let Some(hop) = table.next_hop(src, dst) {
                    assert!(g.out_neighbors(src).contains(&hop));
                }
            }
        }
    }
}
