//! Routing in stack-graphs (stack-Kautz, stack-Imase–Itoh, POPS).
//!
//! A route in a multi-OPS network modelled by a stack-graph `ς(s, G)` is a
//! sequence of optical hops; each hop uses one OPS coupler, i.e. one arc of
//! the quotient `G`.  Because every processor of a group can transmit on all
//! of its group's couplers and every processor of the destination group hears
//! them, routing reduces to routing in the quotient: the group-level path is
//! computed first (here with a [`RoutingTable`] over the quotient, so any
//! quotient works), and the in-group destination index only matters at the
//! final hop.  This is exactly why the paper says the stack-Kautz network
//! "inherits" the Kautz graph's shortest-path routing.

use crate::fault_tolerant::{surviving_subgraph, FaultSet};
use crate::table::RoutingTable;
use otis_graphs::{NodeId, StackGraph};
use std::sync::Arc;

/// One hop of a stack-graph route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackHop {
    /// The quotient arc (OPS coupler) used, identified by its arc index in
    /// the quotient digraph.
    pub coupler: usize,
    /// The processor that receives the message at the end of this hop.
    pub receiver: NodeId,
}

/// A complete route between two processors of a stack-graph network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackRoute {
    /// The source processor (flat identifier).
    pub source: NodeId,
    /// The destination processor (flat identifier).
    pub destination: NodeId,
    /// The optical hops, in order.  Empty when source == destination.
    pub hops: Vec<StackHop>,
}

impl StackRoute {
    /// Number of optical hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the route is empty (source equals destination).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// A router for one stack-graph network.
///
/// The stack-graph is held behind an [`Arc`], so long-lived prepared
/// simulation kernels and route oracles can share one graph instance
/// instead of deep-cloning it per router — see
/// [`StackRouter::from_shared`].
#[derive(Debug, Clone)]
pub struct StackRouter {
    stack: Arc<StackGraph>,
    quotient_table: RoutingTable,
    faults: FaultSet,
}

/// Result of [`StackRouter::from_repair`]: the repaired router plus which
/// destination *groups* (quotient columns) changed relative to the
/// fault-free base.  Callers caching per-destination route state — such as
/// the flattened route tables of the prepared multi-OPS kernels — can keep
/// every cached route towards an unchanged live group and rebuild only the
/// rest.
#[derive(Debug, Clone)]
pub struct StackRepair {
    /// The repaired router, identical to
    /// [`StackRouter::from_shared`] with the same faults.
    pub router: StackRouter,
    /// `changed_groups[g]`: whether routes towards destination group `g`
    /// may differ from the fault-free base (recomputed column or failed
    /// group).
    pub changed_groups: Vec<bool>,
}

impl StackRouter {
    /// Builds a router for the given stack-graph (precomputes the quotient
    /// routing table).
    pub fn new(stack: StackGraph) -> Self {
        Self::with_faults(stack, FaultSet::new())
    }

    /// Builds a router that avoids the given faults.  The fault set is
    /// interpreted over the *quotient*: a failed node is a whole group (its
    /// processors neither send nor receive) and a failed arc disables the
    /// coupler(s) from one group to another.  Routes are shortest paths in
    /// the surviving quotient; [`StackRouter::route`] returns `None` when an
    /// endpoint's group has failed or the faults disconnect the pair.
    pub fn with_faults(stack: StackGraph, faults: FaultSet) -> Self {
        Self::from_shared(Arc::new(stack), faults)
    }

    /// Borrow-based construction: builds a fault-avoiding router over an
    /// already-shared stack-graph without copying any graph data — only the
    /// quotient routing table is computed (over the surviving quotient when
    /// faults are present).  This is the constructor prepared simulation
    /// kernels use.
    pub fn from_shared(stack: Arc<StackGraph>, faults: FaultSet) -> Self {
        let quotient_table = if faults.is_empty() {
            RoutingTable::new(stack.quotient())
        } else {
            RoutingTable::new(&surviving_subgraph(stack.quotient(), &faults))
        };
        StackRouter {
            stack,
            quotient_table,
            faults,
        }
    }

    /// Delta-repair construction: derives a fault-avoiding router from the
    /// fault-free `base` by patching only the quotient-table columns the
    /// faults touch (see [`RoutingTable::repaired`]) instead of recomputing
    /// the all-pairs table.  The result routes identically to
    /// `StackRouter::from_shared(stack, faults)`.
    ///
    /// # Panics
    /// Panics when `base` already avoids faults — repairs always start from
    /// the fault-free table.
    pub fn from_repair(base: &StackRouter, faults: &FaultSet) -> StackRepair {
        assert!(
            base.faults.is_empty(),
            "delta repair must start from a fault-free router"
        );
        let quotient = base.stack.quotient();
        if faults.is_empty() {
            return StackRepair {
                router: base.clone(),
                changed_groups: vec![false; quotient.node_count()],
            };
        }
        let survivor = surviving_subgraph(quotient, faults);
        let repair = base.quotient_table.repaired(&survivor, faults);
        StackRepair {
            router: StackRouter {
                stack: base.stack.clone(),
                quotient_table: repair.table,
                faults: faults.clone(),
            },
            changed_groups: repair.changed,
        }
    }

    /// Recovery construction: derives the router for `faults` — a *subset*
    /// of the faults `current` avoids — from the fault-free `base`.  This is
    /// the routing direction [`StackRouter::from_repair`] cannot express:
    /// repairs always grow the fault set from a fault-free base, while a
    /// mid-run recovery event shrinks it.  The resulting router is identical
    /// to `StackRouter::from_shared(stack, faults)`, and `changed_groups` is
    /// an exact per-column comparison *against `current`* (see
    /// [`RoutingTable::recovered`]): kernel caches can keep every route
    /// between groups that were live before the recovery and whose
    /// destination column did not move, rebuilding only the rest.
    ///
    /// # Panics
    /// Panics when `base` is not fault-free or (in debug builds) when
    /// `faults` is not a subset of `current`'s faults.
    pub fn from_recovery(
        current: &StackRouter,
        base: &StackRouter,
        faults: &FaultSet,
    ) -> StackRepair {
        assert!(
            base.faults.is_empty(),
            "recovery must derive from a fault-free base"
        );
        let quotient = base.stack.quotient();
        let survivor = surviving_subgraph(quotient, faults);
        let repair = current.quotient_table.recovered(
            &base.quotient_table,
            &survivor,
            &current.faults,
            faults,
        );
        StackRepair {
            router: StackRouter {
                stack: base.stack.clone(),
                quotient_table: repair.table,
                faults: faults.clone(),
            },
            changed_groups: repair.changed,
        }
    }

    /// The stack-graph this router serves.
    pub fn stack_graph(&self) -> &StackGraph {
        &self.stack
    }

    /// The quotient-level faults this router avoids (empty by default).
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Routes from processor `src` to processor `dst` (flat identifiers).
    ///
    /// Intermediate hops are received by the processor of the intermediate
    /// group whose in-group index equals the destination's index (any choice
    /// would do — the coupler broadcast reaches the whole group — and this
    /// deterministic choice makes routes reproducible).  Returns `None` when
    /// the quotient offers no path.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<StackRoute> {
        let src_sn = self.stack.to_stack_node(src);
        let dst_sn = self.stack.to_stack_node(dst);
        if self.faults.node_failed(src_sn.group) || self.faults.node_failed(dst_sn.group) {
            return None;
        }
        if src == dst {
            return Some(StackRoute {
                source: src,
                destination: dst,
                hops: Vec::new(),
            });
        }

        // Same group, different processor: one hop over the group's loop
        // coupler if the quotient has one, otherwise route around.
        let quotient = self.stack.quotient();
        let mut group_path: Vec<NodeId> = if src_sn.group == dst_sn.group {
            if quotient.has_arc(src_sn.group, src_sn.group)
                && !self.faults.blocks(src_sn.group, src_sn.group)
            {
                vec![src_sn.group, src_sn.group]
            } else {
                // No usable loop coupler: go out and come back via the quotient.
                let out = self.quotient_table.route(src_sn.group, dst_sn.group)?;
                if out.len() == 1 {
                    // Route of length 0 but no loop: find a neighbour to bounce off.
                    let via = quotient
                        .out_neighbors(src_sn.group)
                        .iter()
                        .copied()
                        .find(|&v| !self.faults.blocks(src_sn.group, v))?;
                    let back = self.quotient_table.route(via, dst_sn.group)?;
                    let mut p = vec![src_sn.group];
                    p.extend(back);
                    p
                } else {
                    out
                }
            }
        } else {
            self.quotient_table.route(src_sn.group, dst_sn.group)?
        };

        // Degenerate safety: ensure the path starts at the source group.
        debug_assert_eq!(group_path.first(), Some(&src_sn.group));
        if group_path.len() == 1 {
            group_path.push(dst_sn.group);
        }

        self.route_via_groups(src, dst, &group_path)
    }

    /// Materialises the hop sequence that realises `group_path` (a quotient
    /// path starting at `src`'s group and ending at `dst`'s group) as a route
    /// from processor `src` to processor `dst`.  Intermediate receivers use
    /// the same deterministic in-group choice as [`StackRouter::route`]; the
    /// last hop delivers to `dst` itself.
    ///
    /// This is the building block for *alternate* routing: callers obtain
    /// extra group-level paths (e.g. with Yen's k-shortest-path on the
    /// quotient) and convert each into a concrete route here.  Returns `None`
    /// when a consecutive pair of the group path is not a quotient arc.
    pub fn route_via_groups(
        &self,
        src: NodeId,
        dst: NodeId,
        group_path: &[NodeId],
    ) -> Option<StackRoute> {
        let s = self.stack.stacking_factor();
        let dst_sn = self.stack.to_stack_node(dst);
        let quotient = self.stack.quotient();
        debug_assert_eq!(
            group_path.first(),
            Some(&self.stack.to_stack_node(src).group)
        );
        debug_assert_eq!(group_path.last(), Some(&dst_sn.group));
        let mut hops = Vec::with_capacity(group_path.len().saturating_sub(1));
        for w in group_path.windows(2) {
            let (from, to) = (w[0], w[1]);
            // The coupler is the quotient arc from `from` to `to`; use the
            // first matching arc id (parallel arcs are interchangeable).
            let coupler = quotient
                .out_arc_ids(from)
                .iter()
                .copied()
                .find(|&id| quotient.arc(id).unwrap().target == to)?;
            let receiver_group = to;
            let receiver = self.stack.to_flat(otis_graphs::StackNode::new(
                dst_sn.index.min(s - 1),
                receiver_group,
            ));
            hops.push(StackHop { coupler, receiver });
        }
        // The last hop must deliver to the actual destination processor.
        if let Some(last) = hops.last_mut() {
            last.receiver = dst;
        }
        Some(StackRoute {
            source: src,
            destination: dst,
            hops,
        })
    }

    /// The number of optical hops of the route from `src` to `dst`, or `None`
    /// when unreachable.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        self.route(src, dst).map(|r| r.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_topologies::{Pops, StackKautz};

    fn validate_route(router: &StackRouter, route: &StackRoute) {
        let stack = router.stack_graph();
        let quotient = stack.quotient();
        let mut current_group = stack.to_stack_node(route.source).group;
        for hop in &route.hops {
            let arc = quotient.arc(hop.coupler).unwrap();
            assert_eq!(arc.source, current_group, "hop leaves the wrong group");
            assert_eq!(
                stack.to_stack_node(hop.receiver).group,
                arc.target,
                "hop receiver not in the coupler's destination group"
            );
            current_group = arc.target;
        }
        assert_eq!(
            current_group,
            stack.to_stack_node(route.destination).group,
            "route does not end in the destination group"
        );
        if let Some(last) = route.hops.last() {
            assert_eq!(last.receiver, route.destination);
        }
    }

    #[test]
    fn stack_kautz_routes_within_diameter() {
        let sk = StackKautz::new(3, 2, 2);
        let router = StackRouter::new(sk.stack_graph().clone());
        for src in 0..sk.node_count() {
            for dst in 0..sk.node_count() {
                let route = router.route(src, dst).expect("SK is strongly connected");
                validate_route(&router, &route);
                assert!(
                    route.len() <= 2,
                    "SK(3,2,2) has diameter 2, route {src}->{dst} used {} hops",
                    route.len()
                );
                if src == dst {
                    assert!(route.is_empty());
                }
            }
        }
    }

    #[test]
    fn pops_routes_are_single_hop() {
        let pops = Pops::new(4, 2);
        let router = StackRouter::new(pops.stack_graph().clone());
        for src in 0..pops.node_count() {
            for dst in 0..pops.node_count() {
                if src == dst {
                    continue;
                }
                let route = router.route(src, dst).unwrap();
                validate_route(&router, &route);
                assert_eq!(route.len(), 1, "POPS is single-hop");
            }
        }
    }

    #[test]
    fn same_group_uses_loop_coupler() {
        let sk = StackKautz::new(4, 2, 2);
        let router = StackRouter::new(sk.stack_graph().clone());
        let a = sk.processor(3, 0);
        let b = sk.processor(3, 2);
        let route = router.route(a, b).unwrap();
        assert_eq!(route.len(), 1);
        let arc = sk
            .stack_graph()
            .quotient()
            .arc(route.hops[0].coupler)
            .unwrap();
        assert!(arc.is_loop());
    }

    #[test]
    fn hop_count_matches_route_length() {
        let sk = StackKautz::new(2, 2, 3);
        let router = StackRouter::new(sk.stack_graph().clone());
        for src in (0..sk.node_count()).step_by(5) {
            for dst in (0..sk.node_count()).step_by(7) {
                assert_eq!(
                    router.hop_count(src, dst).unwrap(),
                    router.route(src, dst).unwrap().len()
                );
            }
        }
    }

    #[test]
    fn faulty_group_routes_around_and_respects_k_plus_2() {
        // SK(2,2,2): quotient KG(2,2) with loops, 6 groups, d = 2 so the
        // §2.5 claim covers one failed group; surviving routes stay <= k + 2.
        let sk = StackKautz::new(2, 2, 2);
        let (d, k) = (2usize, 2usize);
        for failed_group in 0..sk.stack_graph().group_count() {
            let router = StackRouter::with_faults(
                sk.stack_graph().clone(),
                FaultSet::from_nodes([failed_group]),
            );
            for src in 0..sk.node_count() {
                for dst in 0..sk.node_count() {
                    let src_group = sk.stack_graph().to_stack_node(src).group;
                    let dst_group = sk.stack_graph().to_stack_node(dst).group;
                    let route = router.route(src, dst);
                    if src_group == failed_group || dst_group == failed_group {
                        assert_eq!(route, None, "{src}->{dst} touches the failed group");
                        continue;
                    }
                    let route = route.unwrap_or_else(|| {
                        panic!("{src}->{dst} disconnected by fewer than d = {d} faults")
                    });
                    validate_route(&router, &route);
                    assert!(
                        route.len() <= k + 2,
                        "{src}->{dst} took {} hops around group {failed_group}",
                        route.len()
                    );
                    for hop in &route.hops {
                        assert_ne!(
                            sk.stack_graph().to_stack_node(hop.receiver).group,
                            failed_group,
                            "route passes through the failed group"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn from_repair_routes_identically_to_from_scratch() {
        use crate::fault_tolerant::node_fault_patterns_up_to;
        let sk = StackKautz::new(2, 2, 2);
        let stack = Arc::new(sk.stack_graph().clone());
        let base = StackRouter::from_shared(stack.clone(), FaultSet::new());
        // d = 2: the §2.5 survivability claim covers every fault set of at
        // most one group; check exhaustively that repair == from scratch.
        for faults in node_fault_patterns_up_to(stack.group_count(), 1) {
            let scratch = StackRouter::from_shared(stack.clone(), faults.clone());
            let repair = StackRouter::from_repair(&base, &faults);
            assert_eq!(repair.router.quotient_table, scratch.quotient_table);
            for src in 0..sk.node_count() {
                for dst in 0..sk.node_count() {
                    assert_eq!(
                        repair.router.route(src, dst),
                        scratch.route(src, dst),
                        "{src}->{dst} under faults {:?}",
                        faults.sorted_nodes()
                    );
                }
            }
            // Routes towards unchanged live groups must be reusable as-is.
            for dst in 0..sk.node_count() {
                let g = stack.to_stack_node(dst).group;
                if repair.changed_groups[g] {
                    continue;
                }
                for src in 0..sk.node_count() {
                    let gs = stack.to_stack_node(src).group;
                    if faults.node_failed(gs) || gs == g {
                        continue;
                    }
                    assert_eq!(repair.router.route(src, dst), base.route(src, dst));
                }
            }
        }
    }

    #[test]
    fn from_recovery_routes_identically_to_from_scratch() {
        use crate::fault_tolerant::node_fault_patterns_up_to;
        let sk = StackKautz::new(2, 2, 2);
        let stack = Arc::new(sk.stack_graph().clone());
        let base = StackRouter::from_shared(stack.clone(), FaultSet::new());
        let previous = FaultSet::from_nodes([0, 3]);
        let current = StackRouter::from_shared(stack.clone(), previous.clone());
        // Every subset of the current faults is a legal recovery target.
        for faults in node_fault_patterns_up_to(stack.group_count(), 2) {
            if !faults.is_subset_of(&previous) {
                continue;
            }
            let scratch = StackRouter::from_shared(stack.clone(), faults.clone());
            let recovery = StackRouter::from_recovery(&current, &base, &faults);
            assert_eq!(recovery.router.quotient_table, scratch.quotient_table);
            for src in 0..sk.node_count() {
                for dst in 0..sk.node_count() {
                    assert_eq!(
                        recovery.router.route(src, dst),
                        scratch.route(src, dst),
                        "{src}->{dst} recovering to {:?}",
                        faults.sorted_nodes()
                    );
                }
            }
            // Routes between previously-live groups towards unchanged
            // columns must be reusable from the *current* router as-is.
            for dst in 0..sk.node_count() {
                let gd = stack.to_stack_node(dst).group;
                if recovery.changed_groups[gd] || previous.node_failed(gd) {
                    continue;
                }
                for src in 0..sk.node_count() {
                    let gs = stack.to_stack_node(src).group;
                    if previous.node_failed(gs) || gs == gd {
                        continue;
                    }
                    assert_eq!(
                        recovery.router.route(src, dst),
                        current.route(src, dst),
                        "{src}->{dst} should carry over from the faulted router"
                    );
                }
            }
        }
    }

    #[test]
    fn route_via_groups_materialises_alternate_group_paths() {
        let sk = StackKautz::new(2, 2, 2);
        let router = StackRouter::new(sk.stack_graph().clone());
        let quotient = sk.stack_graph().quotient();
        let src = sk.processor(0, 0);
        let dst = sk.processor(1, 1);
        let paths = otis_graphs::algorithms::k_shortest_paths(quotient, 0, 1, 3);
        assert!(!paths.is_empty(), "quotient must connect groups 0 and 1");
        for group_path in &paths {
            let route = router.route_via_groups(src, dst, group_path).unwrap();
            validate_route(&router, &route);
            assert_eq!(route.len(), group_path.len() - 1);
        }
        // The shortest alternate agrees with the primary router's length.
        assert_eq!(paths[0].len() - 1, router.route(src, dst).unwrap().len());
    }

    #[test]
    fn route_via_groups_rejects_non_arcs() {
        let sk = StackKautz::new(2, 2, 2);
        let router = StackRouter::new(sk.stack_graph().clone());
        let quotient = sk.stack_graph().quotient();
        let groups = sk.stack_graph().group_count();
        let (a, b) = (0..groups)
            .flat_map(|a| (0..groups).map(move |b| (a, b)))
            .find(|&(a, b)| a != b && !quotient.has_arc(a, b))
            .expect("KG(2,2) is far from complete");
        let src = sk.processor(a, 0);
        let dst = sk.processor(b, 0);
        assert!(router.route_via_groups(src, dst, &[a, b]).is_none());
    }

    #[test]
    fn stack_kautz_diameter_bound_over_all_pairs() {
        let sk = StackKautz::new(2, 2, 3);
        let router = StackRouter::new(sk.stack_graph().clone());
        let mut worst = 0;
        for src in 0..sk.node_count() {
            for dst in 0..sk.node_count() {
                worst = worst.max(router.route(src, dst).unwrap().len());
            }
        }
        assert_eq!(
            worst, 3,
            "SK(2,2,3) routes must peak at the quotient diameter"
        );
    }
}
