//! Hot-potato (deflection) routing.
//!
//! The single-OPS / point-to-point baseline the multi-OPS designs are
//! compared against (Zhang & Acampora, ref [25] of the paper) uses hot-potato
//! routing: a node never buffers a transit message — in every slot each
//! incoming message must leave on *some* output link, preferably one on a
//! shortest path to its destination, otherwise it is *deflected* onto any
//! free link.  This module provides the per-node decision procedure; the
//! slotted simulator drives it.

use crate::fault_tolerant::{surviving_subgraph, FaultSet};
use crate::table::RoutingTable;
use otis_graphs::{Digraph, NodeId};
use rand::Rng;
use std::sync::Arc;

/// A hot-potato routing oracle for one digraph.
///
/// The digraph is held behind an [`Arc`], so long-lived prepared simulation
/// kernels can share one graph instance instead of deep-cloning it per
/// router — see [`HotPotatoRouter::from_shared`].
#[derive(Debug, Clone)]
pub struct HotPotatoRouter {
    graph: Arc<Digraph>,
    table: RoutingTable,
}

impl HotPotatoRouter {
    /// Builds the oracle (precomputes shortest-path distances).
    pub fn new(graph: Digraph) -> Self {
        Self::from_shared(Arc::new(graph))
    }

    /// Borrow-based construction: builds the oracle over an already-shared
    /// digraph without copying any arc data — only the distance table is
    /// computed.  This is the constructor prepared simulation kernels use.
    pub fn from_shared(graph: Arc<Digraph>) -> Self {
        let table = RoutingTable::new(&graph);
        HotPotatoRouter { graph, table }
    }

    /// Delta-repair construction: derives the router for the surviving
    /// subgraph of `base` under `faults` by patching only the distance-table
    /// columns the faults actually touch, instead of recomputing all pairs.
    ///
    /// `base` is the fault-free router (its graph is the intact network);
    /// the result is identical to
    /// `HotPotatoRouter::new(surviving_subgraph(base.graph(), faults))` —
    /// see [`RoutingTable::repaired`] for why the shortcut is exact.
    pub fn from_repair(base: &HotPotatoRouter, faults: &FaultSet) -> Self {
        let survivor = Arc::new(surviving_subgraph(&base.graph, faults));
        let table = base.table.repaired(&survivor, faults).table;
        HotPotatoRouter {
            graph: survivor,
            table,
        }
    }

    /// The underlying digraph.
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// The precomputed distance table underneath — the bit-identity oracle
    /// of the delta-repair acceptance tests.  Hidden from docs: routing
    /// decisions go through [`HotPotatoRouter::distance`] and the port
    /// rankers, not the raw table.
    #[doc(hidden)]
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Distance oracle (hops) from `src` to `dst`.
    pub fn distance(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        self.table.distance(src, dst)
    }

    /// Ranks the output ports of `node` for a message heading to `dst`:
    /// returns the out-neighbour indices (positions within
    /// `graph.out_neighbors(node)`) sorted from most preferred (closest to
    /// the destination) to least preferred.  Deflection = being assigned a
    /// port far down this list.
    pub fn ranked_ports(&self, node: NodeId, dst: NodeId) -> Vec<usize> {
        let neighbors = self.graph.out_neighbors(node);
        let mut ranked: Vec<(u32, usize)> = neighbors
            .iter()
            .enumerate()
            .map(|(port, &next)| {
                let d = self.table.distance(next, dst).unwrap_or(u32::MAX);
                (d, port)
            })
            .collect();
        ranked.sort();
        ranked.into_iter().map(|(_, port)| port).collect()
    }

    /// Chooses an output port for a message at `node` heading to `dst`, given
    /// which ports are still free this slot.  Returns the most preferred free
    /// port, or `None` when every port is taken (the caller must then drop or
    /// buffer, depending on its model).
    pub fn choose_port(&self, node: NodeId, dst: NodeId, port_free: &[bool]) -> Option<usize> {
        assert_eq!(
            port_free.len(),
            self.graph.out_degree(node),
            "port mask length mismatch"
        );
        self.ranked_ports(node, dst)
            .into_iter()
            .find(|&p| port_free[p])
    }

    /// Like [`HotPotatoRouter::choose_port`] but breaks ties among equally
    /// good free ports uniformly at random (the classical randomised
    /// deflection rule); still prefers strictly closer ports first.
    pub fn choose_port_randomized<R: Rng>(
        &self,
        node: NodeId,
        dst: NodeId,
        port_free: &[bool],
        rng: &mut R,
    ) -> Option<usize> {
        let mut ties = Vec::new();
        self.choose_port_randomized_into(node, dst, port_free, rng, &mut ties)
    }

    /// Allocation-free form of [`HotPotatoRouter::choose_port_randomized`]:
    /// the caller provides the scratch buffer that collects the equally-good
    /// candidate ports, so per-slot simulation loops can reuse one buffer
    /// across every decision.  Consumes the RNG identically to the
    /// allocating form (one draw per decision that finds a free port), so
    /// the two variants produce byte-identical simulations.
    pub fn choose_port_randomized_into<R: Rng>(
        &self,
        node: NodeId,
        dst: NodeId,
        port_free: &[bool],
        rng: &mut R,
        ties: &mut Vec<usize>,
    ) -> Option<usize> {
        assert_eq!(
            port_free.len(),
            self.graph.out_degree(node),
            "port mask length mismatch"
        );
        let neighbors = self.graph.out_neighbors(node);
        ties.clear();
        let mut best: Option<u32> = None;
        for (port, &next) in neighbors.iter().enumerate() {
            if !port_free[port] {
                continue;
            }
            let d = self.table.distance(next, dst).unwrap_or(u32::MAX);
            match best {
                None => {
                    best = Some(d);
                    ties.push(port);
                }
                Some(bd) if d < bd => {
                    best = Some(d);
                    ties.clear();
                    ties.push(port);
                }
                Some(bd) if d == bd => ties.push(port),
                Some(_) => {}
            }
        }
        if ties.is_empty() {
            None
        } else {
            Some(ties[rng.gen_range(0..ties.len())])
        }
    }

    /// Bitset form of [`HotPotatoRouter::choose_port_randomized_into`]: port
    /// `p` is free when bit `p & 63` of `free_words[p >> 6]` is set, so the
    /// per-slot simulation loop can keep its port occupancy as a few `u64`
    /// words instead of a `Vec<bool>`.  Consumes the RNG identically to the
    /// slice form (one draw per decision that finds a free port), so either
    /// mask representation produces byte-identical simulations.
    ///
    /// The scan is chunked word at a time: busy ports are skipped by bit
    /// tricks (`trailing_zeros` over each 64-port word) instead of a
    /// per-port load-and-test, and only free ports pay the distance lookup.
    /// Free ports are still visited in ascending order and the tie set
    /// depends only on that ordered set, so the chunked walk is
    /// byte-identical to the per-port one.
    pub fn choose_port_randomized_masked<R: Rng>(
        &self,
        node: NodeId,
        dst: NodeId,
        free_words: &[u64],
        rng: &mut R,
        ties: &mut Vec<usize>,
    ) -> Option<usize> {
        let neighbors = self.graph.out_neighbors(node);
        assert!(
            free_words.len() * 64 >= neighbors.len(),
            "port mask too short for out-degree {}",
            neighbors.len()
        );
        ties.clear();
        let mut best: Option<u32> = None;
        for (w, &word) in free_words.iter().enumerate() {
            let base = w << 6;
            if base >= neighbors.len() {
                break;
            }
            // Mask off bits past the declared out-degree: `PortBits::reset`
            // leaves them set, but they name no port.
            let width = neighbors.len() - base;
            let mut bits = if width < 64 {
                word & ((1u64 << width) - 1)
            } else {
                word
            };
            while bits != 0 {
                let port = base + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let d = self
                    .table
                    .distance(neighbors[port], dst)
                    .unwrap_or(u32::MAX);
                match best {
                    None => {
                        best = Some(d);
                        ties.push(port);
                    }
                    Some(bd) if d < bd => {
                        best = Some(d);
                        ties.clear();
                        ties.push(port);
                    }
                    Some(bd) if d == bd => ties.push(port),
                    Some(_) => {}
                }
            }
        }
        if ties.is_empty() {
            None
        } else {
            Some(ties[rng.gen_range(0..ties.len())])
        }
    }

    /// Whether sending through `port` at `node` makes progress (strictly
    /// decreases the distance) towards `dst`.
    pub fn is_progress_port(&self, node: NodeId, dst: NodeId, port: usize) -> bool {
        let next = self.graph.out_neighbors(node)[port];
        match (
            self.table.distance(node, dst),
            self.table.distance(next, dst),
        ) {
            (Some(here), Some(there)) => there < here,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_topologies::de_bruijn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preferred_port_is_on_a_shortest_path() {
        let router = HotPotatoRouter::new(de_bruijn(2, 3));
        let g = router.graph().clone();
        for src in 0..g.node_count() {
            for dst in 0..g.node_count() {
                if src == dst {
                    continue;
                }
                let all_free = vec![true; g.out_degree(src)];
                let port = router.choose_port(src, dst, &all_free).unwrap();
                let next = g.out_neighbors(src)[port];
                assert_eq!(
                    router.distance(next, dst).unwrap() + 1,
                    router.distance(src, dst).unwrap().max(1),
                    "{src}->{dst} via {next}"
                );
            }
        }
    }

    #[test]
    fn deflection_when_preferred_port_is_busy() {
        let router = HotPotatoRouter::new(de_bruijn(2, 2));
        let g = router.graph().clone();
        let src = 1;
        let dst = 2;
        let ranked = router.ranked_ports(src, dst);
        // Block the preferred port: the router must pick another one.
        let mut free = vec![true; g.out_degree(src)];
        free[ranked[0]] = false;
        let chosen = router.choose_port(src, dst, &free).unwrap();
        assert_ne!(chosen, ranked[0]);
    }

    #[test]
    fn no_free_port_returns_none() {
        let router = HotPotatoRouter::new(de_bruijn(2, 2));
        assert_eq!(router.choose_port(0, 3, &[false, false]), None);
    }

    #[test]
    fn randomized_choice_is_among_best_free_ports() {
        let router = HotPotatoRouter::new(de_bruijn(2, 3));
        let mut rng = StdRng::seed_from_u64(7);
        let g = router.graph().clone();
        for src in 0..g.node_count() {
            for dst in 0..g.node_count() {
                if src == dst {
                    continue;
                }
                let free = vec![true; g.out_degree(src)];
                let det = router.choose_port(src, dst, &free).unwrap();
                let rand_port = router
                    .choose_port_randomized(src, dst, &free, &mut rng)
                    .unwrap();
                let next_det = g.out_neighbors(src)[det];
                let next_rand = g.out_neighbors(src)[rand_port];
                assert_eq!(
                    router.distance(next_det, dst),
                    router.distance(next_rand, dst),
                    "randomized pick must be as good as the deterministic one"
                );
            }
        }
    }

    #[test]
    fn progress_port_detection() {
        let router = HotPotatoRouter::new(de_bruijn(2, 3));
        let g = router.graph().clone();
        for src in 0..g.node_count() {
            for dst in 0..g.node_count() {
                if src == dst {
                    continue;
                }
                let ranked = router.ranked_ports(src, dst);
                // The top-ranked port always makes progress in a de Bruijn
                // graph (there is always a shortest-path port).
                assert!(
                    router.is_progress_port(src, dst, ranked[0])
                        || !g.has_arc(src, dst) && router.distance(src, dst) == Some(0)
                );
            }
        }
    }

    #[test]
    fn masked_chooser_matches_slice_chooser_and_rng_stream() {
        let router = HotPotatoRouter::new(de_bruijn(2, 3));
        let g = router.graph().clone();
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let mut ties_a = Vec::new();
        let mut ties_b = Vec::new();
        for src in 0..g.node_count() {
            for dst in 0..g.node_count() {
                for mask in 0..(1u64 << g.out_degree(src)) {
                    let free: Vec<bool> =
                        (0..g.out_degree(src)).map(|p| mask >> p & 1 == 1).collect();
                    let a = router.choose_port_randomized_into(
                        src,
                        dst,
                        &free,
                        &mut rng_a,
                        &mut ties_a,
                    );
                    let b = router.choose_port_randomized_masked(
                        src,
                        dst,
                        &[mask],
                        &mut rng_b,
                        &mut ties_b,
                    );
                    assert_eq!(a, b, "src={src} dst={dst} mask={mask:b}");
                }
            }
        }
    }

    #[test]
    fn from_repair_matches_from_scratch_on_survivor() {
        use crate::fault_tolerant::node_fault_patterns_up_to;
        let g = de_bruijn(2, 3);
        let base = HotPotatoRouter::new(g.clone());
        for faults in node_fault_patterns_up_to(g.node_count(), 1) {
            let repaired = HotPotatoRouter::from_repair(&base, &faults);
            let scratch = HotPotatoRouter::new(surviving_subgraph(&g, &faults));
            assert!(repaired.graph().same_arcs(scratch.graph()));
            assert_eq!(
                repaired.table,
                scratch.table,
                "faults {:?}",
                faults.sorted_nodes()
            );
        }
    }

    #[test]
    fn ranked_ports_cover_all_out_arcs() {
        let router = HotPotatoRouter::new(de_bruijn(3, 2));
        for node in 0..router.graph().node_count() {
            let ranked = router.ranked_ports(node, 0);
            assert_eq!(ranked.len(), router.graph().out_degree(node));
            let set: std::collections::HashSet<_> = ranked.iter().collect();
            assert_eq!(set.len(), ranked.len());
        }
    }
}
