//! Fault-tolerant routing.
//!
//! §2.5 of the paper cites Imase, Soneoka and Okada: the label routing of the
//! Kautz graph "can be extended to generate a path of length at most `k + 2`
//! which survives `d − 1` link or node faults".  This module provides
//!
//! * a [`FaultSet`] describing failed nodes and arcs,
//! * [`fault_tolerant_route`], which finds a shortest fault-avoiding path,
//! * [`validate_kautz_fault_bound`], which checks the `≤ k + 2` claim on a
//!   concrete Kautz instance under every (or a sampled set of) fault pattern
//!   of size `d − 1` — the empirical validation used by experiment T4.

use otis_graphs::algorithms::shortest_path_avoiding;
use otis_graphs::{Digraph, DigraphBuilder, NodeId};
use std::collections::HashSet;

/// A set of failed nodes and failed arcs.
///
/// For point-to-point networks the nodes are processors and the arcs are
/// links; for multi-OPS (stack-graph) networks the fault domain is the
/// *quotient*: a failed node is a whole group and a failed arc is the
/// coupler(s) between two groups — the granularity at which §2.5 states the
/// `d − 1` survivability bound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    failed_nodes: HashSet<NodeId>,
    failed_arcs: HashSet<(NodeId, NodeId)>,
}

impl FaultSet {
    /// An empty fault set.
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// A fault set with exactly the given failed nodes.
    pub fn from_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut faults = FaultSet::new();
        for node in nodes {
            faults.fail_node(node);
        }
        faults
    }

    /// Marks a node as failed (all its incident arcs become unusable).
    pub fn fail_node(&mut self, node: NodeId) -> &mut Self {
        self.failed_nodes.insert(node);
        self
    }

    /// Marks a single arc as failed.
    pub fn fail_arc(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.failed_arcs.insert((from, to));
        self
    }

    /// Marks a failed node as recovered; returns whether it was failed.
    pub fn recover_node(&mut self, node: NodeId) -> bool {
        self.failed_nodes.remove(&node)
    }

    /// Marks a failed arc as recovered; returns whether it was failed.
    pub fn recover_arc(&mut self, from: NodeId, to: NodeId) -> bool {
        self.failed_arcs.remove(&(from, to))
    }

    /// Whether the arc `(from, to)` itself is in the set (endpoint-node
    /// faults do **not** count, unlike [`FaultSet::blocks`]).
    pub fn arc_failed(&self, from: NodeId, to: NodeId) -> bool {
        self.failed_arcs.contains(&(from, to))
    }

    /// Whether every fault of `self` also appears in `other` — the test that
    /// decides whether a mid-run kernel swap moves *toward* faults (a
    /// repair) or away from them (a recovery).
    pub fn is_subset_of(&self, other: &FaultSet) -> bool {
        self.failed_nodes.is_subset(&other.failed_nodes)
            && self.failed_arcs.is_subset(&other.failed_arcs)
    }

    /// The union of two fault sets — e.g. a static fault pattern overlaid
    /// with the scheduled faults active at some slot.
    pub fn union(&self, other: &FaultSet) -> FaultSet {
        FaultSet {
            failed_nodes: self
                .failed_nodes
                .union(&other.failed_nodes)
                .copied()
                .collect(),
            failed_arcs: self
                .failed_arcs
                .union(&other.failed_arcs)
                .copied()
                .collect(),
        }
    }

    /// Total number of faults (failed nodes plus failed arcs).
    pub fn len(&self) -> usize {
        self.failed_nodes.len() + self.failed_arcs.len()
    }

    /// Whether the fault set is empty.
    pub fn is_empty(&self) -> bool {
        self.failed_nodes.is_empty() && self.failed_arcs.is_empty()
    }

    /// Whether a node has failed.
    pub fn node_failed(&self, node: NodeId) -> bool {
        self.failed_nodes.contains(&node)
    }

    /// Whether traversing the arc `(from, to)` is forbidden (the arc itself
    /// failed, or one of its endpoints failed).
    pub fn blocks(&self, from: NodeId, to: NodeId) -> bool {
        self.failed_arcs.contains(&(from, to))
            || self.failed_nodes.contains(&from)
            || self.failed_nodes.contains(&to)
    }

    /// The failed nodes in ascending order (stable across runs despite the
    /// hash-set storage — used for reporting and deterministic output).
    pub fn sorted_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.failed_nodes.iter().copied().collect();
        nodes.sort_unstable();
        nodes
    }

    /// The failed arcs in ascending `(from, to)` order.
    pub fn sorted_arcs(&self) -> Vec<(NodeId, NodeId)> {
        let mut arcs: Vec<(NodeId, NodeId)> = self.failed_arcs.iter().copied().collect();
        arcs.sort_unstable();
        arcs
    }
}

/// The subgraph of `g` that survives the faults: same node set, minus every
/// arc that [`FaultSet::blocks`] — i.e. failed arcs and all arcs incident to
/// failed nodes.  Node identifiers are preserved, so routing tables built on
/// the surviving subgraph are directly comparable with the intact graph.
pub fn surviving_subgraph(g: &Digraph, faults: &FaultSet) -> Digraph {
    let mut builder = DigraphBuilder::with_capacity(g.node_count(), g.arc_count());
    for arc in g.arcs() {
        if !faults.blocks(arc.source, arc.target) {
            builder.add_arc(arc.source, arc.target);
        }
    }
    builder.build()
}

/// Lazy enumeration of the size-`size` node fault patterns from `0..n`, in
/// lexicographic order of the node combination — see
/// [`node_fault_patterns_iter`].
#[derive(Debug, Clone)]
pub struct NodeFaultPatterns {
    n: usize,
    size: usize,
    /// The next combination to yield; `None` once exhausted.
    combo: Option<Vec<usize>>,
}

impl Iterator for NodeFaultPatterns {
    type Item = FaultSet;

    fn next(&mut self) -> Option<FaultSet> {
        let combo = self.combo.as_mut()?;
        let faults = FaultSet::from_nodes(combo.iter().copied());
        // Advance to the next combination: find the rightmost index that can
        // still move, bump it, and reset everything to its right.
        let (n, size) = (self.n, self.size);
        let mut i = size;
        let advanced = loop {
            if i == 0 {
                break false;
            }
            i -= 1;
            if combo[i] < n - size + i {
                combo[i] += 1;
                for j in i + 1..size {
                    combo[j] = combo[j - 1] + 1;
                }
                break true;
            }
        };
        if !advanced {
            self.combo = None;
        }
        Some(faults)
    }
}

/// Lazily yields every fault set of exactly `size` failed nodes drawn from
/// `0..n`, in lexicographic order of the node combination.  `size == 0`
/// yields the single empty fault set; `size > n` yields nothing.
///
/// This is the exhaustive enumeration behind the `d − 1` sweeps of
/// experiment T4.  The count is `C(n, size)` — the iterator holds only the
/// current combination, so large-`d` sweeps can stream patterns into the
/// scenario engine without materialising them all; [`node_fault_patterns`]
/// is the collecting wrapper.
pub fn node_fault_patterns_iter(n: usize, size: usize) -> NodeFaultPatterns {
    let combo = if size > n {
        None
    } else {
        Some((0..size).collect())
    };
    NodeFaultPatterns { n, size, combo }
}

/// Every fault set of exactly `size` failed nodes drawn from `0..n`, in
/// lexicographic order: the eager form of [`node_fault_patterns_iter`].
pub fn node_fault_patterns(n: usize, size: usize) -> Vec<FaultSet> {
    node_fault_patterns_iter(n, size).collect()
}

/// Lazily yields every fault set of at most `max_size` failed nodes drawn
/// from `0..n` (including the empty baseline), sizes ascending — the input
/// shape of a fault-injection sweep from 0 to `d − 1` faults, without
/// materialising the `Σ C(n, k)` sets up front.
/// [`node_fault_patterns_up_to`] is the collecting wrapper.
pub fn node_fault_patterns_up_to_iter(n: usize, max_size: usize) -> impl Iterator<Item = FaultSet> {
    (0..=max_size).flat_map(move |size| node_fault_patterns_iter(n, size))
}

/// Every fault set of at most `max_size` failed nodes drawn from `0..n`,
/// sizes ascending: the eager form of [`node_fault_patterns_up_to_iter`].
pub fn node_fault_patterns_up_to(n: usize, max_size: usize) -> Vec<FaultSet> {
    node_fault_patterns_up_to_iter(n, max_size).collect()
}

/// Finds a shortest path from `src` to `dst` avoiding every fault in
/// `faults`.  Returns `None` when the faults disconnect the pair (or when an
/// endpoint itself has failed).
pub fn fault_tolerant_route(
    g: &Digraph,
    src: NodeId,
    dst: NodeId,
    faults: &FaultSet,
) -> Option<Vec<NodeId>> {
    if faults.node_failed(src) || faults.node_failed(dst) {
        return None;
    }
    shortest_path_avoiding(g, src, dst, |u, v| faults.blocks(u, v))
}

/// Outcome of validating the Kautz fault-tolerance bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultBoundReport {
    /// Number of (source, destination, fault-pattern) cases examined.
    pub cases: usize,
    /// Longest fault-avoiding route observed.
    pub worst_length: usize,
    /// The bound that was checked (`k + 2`).
    pub bound: usize,
    /// Number of cases where no route existed (should be 0 for fewer than
    /// `d` node faults on a Kautz graph, whose connectivity is `d`).
    pub disconnected: usize,
}

impl FaultBoundReport {
    /// Whether every examined case satisfied the bound and stayed connected.
    pub fn holds(&self) -> bool {
        self.disconnected == 0 && self.worst_length <= self.bound
    }
}

/// Validates, on the digraph `g` assumed to be `KG(d, k)`, that for every
/// source/destination pair (with both alive) and every provided fault
/// pattern of at most `d − 1` failed nodes, a route of length at most
/// `k + 2` exists.
///
/// `fault_patterns` lets the caller choose exhaustive enumeration (small
/// instances) or random sampling (larger ones).
pub fn validate_kautz_fault_bound(
    g: &Digraph,
    d: usize,
    k: usize,
    fault_patterns: &[Vec<NodeId>],
) -> FaultBoundReport {
    let bound = k + 2;
    let mut cases = 0usize;
    let mut worst = 0usize;
    let mut disconnected = 0usize;
    for pattern in fault_patterns {
        assert!(
            pattern.len() < d,
            "fault pattern has {} faults, the claim only covers up to d-1 = {}",
            pattern.len(),
            d - 1
        );
        let mut faults = FaultSet::new();
        for &node in pattern {
            faults.fail_node(node);
        }
        for src in 0..g.node_count() {
            if faults.node_failed(src) {
                continue;
            }
            for dst in 0..g.node_count() {
                if src == dst || faults.node_failed(dst) {
                    continue;
                }
                cases += 1;
                match fault_tolerant_route(g, src, dst, &faults) {
                    Some(path) => worst = worst.max(path.len() - 1),
                    None => disconnected += 1,
                }
            }
        }
    }
    FaultBoundReport {
        cases,
        worst_length: worst,
        bound,
        disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::is_valid_path;
    use otis_topologies::kautz;

    #[test]
    fn fault_set_blocking_rules() {
        let mut f = FaultSet::new();
        assert!(f.is_empty());
        f.fail_node(3);
        f.fail_arc(0, 1);
        assert_eq!(f.len(), 2);
        assert!(f.blocks(0, 1));
        assert!(f.blocks(3, 2));
        assert!(f.blocks(2, 3));
        assert!(!f.blocks(1, 0));
        assert!(f.node_failed(3));
        assert!(!f.node_failed(0));
    }

    #[test]
    fn recovery_subset_and_union_operations() {
        let mut f = FaultSet::from_nodes([1, 2]);
        f.fail_arc(0, 3);
        assert!(f.arc_failed(0, 3));
        assert!(!f.arc_failed(3, 0));
        assert!(FaultSet::from_nodes([1]).is_subset_of(&f));
        assert!(!f.is_subset_of(&FaultSet::from_nodes([1, 2])));
        assert!(f.recover_node(1));
        assert!(!f.recover_node(1), "already recovered");
        assert!(f.recover_arc(0, 3));
        assert!(!f.arc_failed(0, 3));
        assert_eq!(f.sorted_nodes(), vec![2]);
        let u = FaultSet::from_nodes([0]).union(&f);
        assert_eq!(u.sorted_nodes(), vec![0, 2]);
        assert!(f.is_subset_of(&u));
        assert!(FaultSet::new().is_subset_of(&f));
        assert!(f.is_subset_of(&f));
    }

    #[test]
    fn route_avoids_failed_arc() {
        let g = kautz(2, 2);
        // Pick any arc on some shortest path and fail it; a route must still
        // exist and avoid it.
        let mut faults = FaultSet::new();
        let arc = g.arcs()[0];
        faults.fail_arc(arc.source, arc.target);
        let path = fault_tolerant_route(&g, arc.source, arc.target, &faults)
            .expect("KG(2,2) is 2-connected, one arc fault cannot disconnect it");
        assert!(is_valid_path(&g, &path));
        assert!(!path
            .windows(2)
            .any(|w| (w[0], w[1]) == (arc.source, arc.target)));
    }

    #[test]
    fn failed_endpoint_has_no_route() {
        let g = kautz(2, 2);
        let mut faults = FaultSet::new();
        faults.fail_node(0);
        assert_eq!(fault_tolerant_route(&g, 0, 3, &faults), None);
        assert_eq!(fault_tolerant_route(&g, 3, 0, &faults), None);
    }

    #[test]
    fn kautz_bound_holds_exhaustively_for_small_instances() {
        // KG(2, 2): d - 1 = 1 fault; enumerate every single-node fault.
        let (d, k) = (2, 2);
        let g = kautz(d, k);
        let patterns: Vec<Vec<usize>> = (0..g.node_count()).map(|u| vec![u]).collect();
        let report = validate_kautz_fault_bound(&g, d, k, &patterns);
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.disconnected, 0);
        assert!(report.worst_length <= k + 2);
        assert!(report.cases > 0);
    }

    #[test]
    fn kautz_bound_holds_for_kg_3_2_with_two_faults() {
        let (d, k) = (3, 2);
        let g = kautz(d, k);
        // All unordered pairs of failed nodes (d - 1 = 2 faults).
        let mut patterns = Vec::new();
        for a in 0..g.node_count() {
            for b in (a + 1)..g.node_count() {
                patterns.push(vec![a, b]);
            }
        }
        let report = validate_kautz_fault_bound(&g, d, k, &patterns);
        assert!(report.holds(), "{report:?}");
    }

    #[test]
    #[should_panic(expected = "only covers up to")]
    fn too_many_faults_rejected() {
        let g = kautz(2, 2);
        validate_kautz_fault_bound(&g, 2, 2, &[vec![0, 1]]);
    }

    #[test]
    fn fault_pattern_enumeration_is_exhaustive_and_ordered() {
        assert_eq!(node_fault_patterns(4, 0), vec![FaultSet::new()]);
        assert!(node_fault_patterns(3, 4).is_empty());
        let singles = node_fault_patterns(3, 1);
        assert_eq!(singles.len(), 3);
        assert_eq!(singles[0].sorted_nodes(), vec![0]);
        assert_eq!(singles[2].sorted_nodes(), vec![2]);
        // C(5, 2) = 10 pairs, lexicographic.
        let pairs = node_fault_patterns(5, 2);
        assert_eq!(pairs.len(), 10);
        assert_eq!(pairs[0].sorted_nodes(), vec![0, 1]);
        assert_eq!(pairs[9].sorted_nodes(), vec![3, 4]);
        // Up-to includes the empty baseline plus all smaller sizes.
        let sweep = node_fault_patterns_up_to(5, 2);
        assert_eq!(sweep.len(), 1 + 5 + 10);
        assert!(sweep[0].is_empty());
    }

    #[test]
    fn lazy_iterators_match_the_eager_wrappers() {
        for n in 0..6 {
            for size in 0..=n + 1 {
                let eager = node_fault_patterns(n, size);
                let lazy: Vec<FaultSet> = node_fault_patterns_iter(n, size).collect();
                assert_eq!(lazy, eager, "n={n} size={size}");
                let eager_up = node_fault_patterns_up_to(n, size);
                let lazy_up: Vec<FaultSet> = node_fault_patterns_up_to_iter(n, size).collect();
                assert_eq!(lazy_up, eager_up, "n={n} max={size}");
            }
        }
        // The iterator is genuinely lazy: taking a prefix of a huge sweep
        // does constant work per item.
        let mut it = node_fault_patterns_iter(64, 8);
        assert_eq!(
            it.next().unwrap().sorted_nodes(),
            (0..8).collect::<Vec<_>>()
        );
        assert_eq!(
            it.next().unwrap().sorted_nodes(),
            vec![0, 1, 2, 3, 4, 5, 6, 8]
        );
    }

    #[test]
    fn surviving_subgraph_drops_exactly_the_blocked_arcs() {
        let g = kautz(2, 2);
        let mut faults = FaultSet::new();
        faults.fail_node(0);
        let arc = g
            .arcs()
            .iter()
            .find(|a| a.source != 0 && a.target != 0)
            .copied()
            .unwrap();
        faults.fail_arc(arc.source, arc.target);
        let survivor = surviving_subgraph(&g, &faults);
        assert_eq!(survivor.node_count(), g.node_count());
        assert_eq!(survivor.out_degree(0), 0);
        assert_eq!(survivor.in_degree(0), 0);
        assert!(!survivor.has_arc(arc.source, arc.target));
        let expected = g
            .arcs()
            .iter()
            .filter(|a| !faults.blocks(a.source, a.target))
            .count();
        assert_eq!(survivor.arc_count(), expected);
        // No faults: the graph is unchanged.
        assert!(surviving_subgraph(&g, &FaultSet::new()).same_arcs(&g));
    }

    #[test]
    fn no_faults_reduces_to_shortest_path() {
        let g = kautz(2, 3);
        let faults = FaultSet::new();
        for src in 0..g.node_count() {
            for dst in 0..g.node_count() {
                let path = fault_tolerant_route(&g, src, dst, &faults).unwrap();
                assert!(path.len() - 1 <= 3);
            }
        }
    }
}
