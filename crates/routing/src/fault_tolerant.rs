//! Fault-tolerant routing.
//!
//! §2.5 of the paper cites Imase, Soneoka and Okada: the label routing of the
//! Kautz graph "can be extended to generate a path of length at most `k + 2`
//! which survives `d − 1` link or node faults".  This module provides
//!
//! * a [`FaultSet`] describing failed nodes and arcs,
//! * [`fault_tolerant_route`], which finds a shortest fault-avoiding path,
//! * [`validate_kautz_fault_bound`], which checks the `≤ k + 2` claim on a
//!   concrete Kautz instance under every (or a sampled set of) fault pattern
//!   of size `d − 1` — the empirical validation used by experiment T4.

use otis_graphs::algorithms::shortest_path_avoiding;
use otis_graphs::{Digraph, NodeId};
use std::collections::HashSet;

/// A set of failed nodes and failed arcs.
#[derive(Debug, Clone, Default)]
pub struct FaultSet {
    failed_nodes: HashSet<NodeId>,
    failed_arcs: HashSet<(NodeId, NodeId)>,
}

impl FaultSet {
    /// An empty fault set.
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// Marks a node as failed (all its incident arcs become unusable).
    pub fn fail_node(&mut self, node: NodeId) -> &mut Self {
        self.failed_nodes.insert(node);
        self
    }

    /// Marks a single arc as failed.
    pub fn fail_arc(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.failed_arcs.insert((from, to));
        self
    }

    /// Total number of faults (failed nodes plus failed arcs).
    pub fn len(&self) -> usize {
        self.failed_nodes.len() + self.failed_arcs.len()
    }

    /// Whether the fault set is empty.
    pub fn is_empty(&self) -> bool {
        self.failed_nodes.is_empty() && self.failed_arcs.is_empty()
    }

    /// Whether a node has failed.
    pub fn node_failed(&self, node: NodeId) -> bool {
        self.failed_nodes.contains(&node)
    }

    /// Whether traversing the arc `(from, to)` is forbidden (the arc itself
    /// failed, or one of its endpoints failed).
    pub fn blocks(&self, from: NodeId, to: NodeId) -> bool {
        self.failed_arcs.contains(&(from, to))
            || self.failed_nodes.contains(&from)
            || self.failed_nodes.contains(&to)
    }
}

/// Finds a shortest path from `src` to `dst` avoiding every fault in
/// `faults`.  Returns `None` when the faults disconnect the pair (or when an
/// endpoint itself has failed).
pub fn fault_tolerant_route(
    g: &Digraph,
    src: NodeId,
    dst: NodeId,
    faults: &FaultSet,
) -> Option<Vec<NodeId>> {
    if faults.node_failed(src) || faults.node_failed(dst) {
        return None;
    }
    shortest_path_avoiding(g, src, dst, |u, v| faults.blocks(u, v))
}

/// Outcome of validating the Kautz fault-tolerance bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultBoundReport {
    /// Number of (source, destination, fault-pattern) cases examined.
    pub cases: usize,
    /// Longest fault-avoiding route observed.
    pub worst_length: usize,
    /// The bound that was checked (`k + 2`).
    pub bound: usize,
    /// Number of cases where no route existed (should be 0 for fewer than
    /// `d` node faults on a Kautz graph, whose connectivity is `d`).
    pub disconnected: usize,
}

impl FaultBoundReport {
    /// Whether every examined case satisfied the bound and stayed connected.
    pub fn holds(&self) -> bool {
        self.disconnected == 0 && self.worst_length <= self.bound
    }
}

/// Validates, on the digraph `g` assumed to be `KG(d, k)`, that for every
/// source/destination pair (with both alive) and every provided fault
/// pattern of at most `d − 1` failed nodes, a route of length at most
/// `k + 2` exists.
///
/// `fault_patterns` lets the caller choose exhaustive enumeration (small
/// instances) or random sampling (larger ones).
pub fn validate_kautz_fault_bound(
    g: &Digraph,
    d: usize,
    k: usize,
    fault_patterns: &[Vec<NodeId>],
) -> FaultBoundReport {
    let bound = k + 2;
    let mut cases = 0usize;
    let mut worst = 0usize;
    let mut disconnected = 0usize;
    for pattern in fault_patterns {
        assert!(
            pattern.len() < d,
            "fault pattern has {} faults, the claim only covers up to d-1 = {}",
            pattern.len(),
            d - 1
        );
        let mut faults = FaultSet::new();
        for &node in pattern {
            faults.fail_node(node);
        }
        for src in 0..g.node_count() {
            if faults.node_failed(src) {
                continue;
            }
            for dst in 0..g.node_count() {
                if src == dst || faults.node_failed(dst) {
                    continue;
                }
                cases += 1;
                match fault_tolerant_route(g, src, dst, &faults) {
                    Some(path) => worst = worst.max(path.len() - 1),
                    None => disconnected += 1,
                }
            }
        }
    }
    FaultBoundReport {
        cases,
        worst_length: worst,
        bound,
        disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::is_valid_path;
    use otis_topologies::kautz;

    #[test]
    fn fault_set_blocking_rules() {
        let mut f = FaultSet::new();
        assert!(f.is_empty());
        f.fail_node(3);
        f.fail_arc(0, 1);
        assert_eq!(f.len(), 2);
        assert!(f.blocks(0, 1));
        assert!(f.blocks(3, 2));
        assert!(f.blocks(2, 3));
        assert!(!f.blocks(1, 0));
        assert!(f.node_failed(3));
        assert!(!f.node_failed(0));
    }

    #[test]
    fn route_avoids_failed_arc() {
        let g = kautz(2, 2);
        // Pick any arc on some shortest path and fail it; a route must still
        // exist and avoid it.
        let mut faults = FaultSet::new();
        let arc = g.arcs()[0];
        faults.fail_arc(arc.source, arc.target);
        let path = fault_tolerant_route(&g, arc.source, arc.target, &faults)
            .expect("KG(2,2) is 2-connected, one arc fault cannot disconnect it");
        assert!(is_valid_path(&g, &path));
        assert!(!path
            .windows(2)
            .any(|w| (w[0], w[1]) == (arc.source, arc.target)));
    }

    #[test]
    fn failed_endpoint_has_no_route() {
        let g = kautz(2, 2);
        let mut faults = FaultSet::new();
        faults.fail_node(0);
        assert_eq!(fault_tolerant_route(&g, 0, 3, &faults), None);
        assert_eq!(fault_tolerant_route(&g, 3, 0, &faults), None);
    }

    #[test]
    fn kautz_bound_holds_exhaustively_for_small_instances() {
        // KG(2, 2): d - 1 = 1 fault; enumerate every single-node fault.
        let (d, k) = (2, 2);
        let g = kautz(d, k);
        let patterns: Vec<Vec<usize>> = (0..g.node_count()).map(|u| vec![u]).collect();
        let report = validate_kautz_fault_bound(&g, d, k, &patterns);
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.disconnected, 0);
        assert!(report.worst_length <= k + 2);
        assert!(report.cases > 0);
    }

    #[test]
    fn kautz_bound_holds_for_kg_3_2_with_two_faults() {
        let (d, k) = (3, 2);
        let g = kautz(d, k);
        // All unordered pairs of failed nodes (d - 1 = 2 faults).
        let mut patterns = Vec::new();
        for a in 0..g.node_count() {
            for b in (a + 1)..g.node_count() {
                patterns.push(vec![a, b]);
            }
        }
        let report = validate_kautz_fault_bound(&g, d, k, &patterns);
        assert!(report.holds(), "{report:?}");
    }

    #[test]
    #[should_panic(expected = "only covers up to")]
    fn too_many_faults_rejected() {
        let g = kautz(2, 2);
        validate_kautz_fault_bound(&g, 2, 2, &[vec![0, 1]]);
    }

    #[test]
    fn no_faults_reduces_to_shortest_path() {
        let g = kautz(2, 3);
        let faults = FaultSet::new();
        for src in 0..g.node_count() {
            for dst in 0..g.node_count() {
                let path = fault_tolerant_route(&g, src, dst, &faults).unwrap();
                assert!(path.len() - 1 <= 3);
            }
        }
    }
}
