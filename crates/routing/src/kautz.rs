//! Word-label routing on the Kautz graph.
//!
//! Routing on `KG(d, k)` is induced by the node labels (§2.5 of the paper):
//! to go from `x = (x₁, …, x_k)` to `y = (y₁, …, y_k)`, find the longest
//! suffix of `x` that is a prefix of `y` (say of length `ℓ`) and shift in the
//! remaining letters `y_{ℓ+1}, …, y_k` one per hop.  The resulting path has
//! length `k − ℓ ≤ k` and every hop is a legal Kautz arc.
//!
//! For most pairs this is the unique shortest path; in rare cases the graph
//! distance can be smaller (a shorter walk can re-enter the overlap), so the
//! router's guarantee — matching the paper's claim — is "at most `k` hops",
//! and the tests additionally measure how often it coincides with the BFS
//! distance.

use otis_topologies::{kautz_node_count, KautzWord};

/// Routes from `src` to `dst` in `KG(d, k)` using word labels, returning the
/// sequence of node indices visited (starting with `src`, ending with `dst`).
/// The path length (number of arcs) is at most `k`.
pub fn kautz_route(d: usize, k: usize, src: usize, dst: usize) -> Vec<usize> {
    let n = kautz_node_count(d, k);
    assert!(src < n && dst < n, "node out of range for KG({d},{k})");
    let src_w = KautzWord::from_index(d, k, src).expect("index in range");
    let dst_w = KautzWord::from_index(d, k, dst).expect("index in range");
    kautz_route_words(&src_w, &dst_w)
        .into_iter()
        .map(|w| w.index())
        .collect()
}

/// Word-level variant of [`kautz_route`].
pub fn kautz_route_words(src: &KautzWord, dst: &KautzWord) -> Vec<KautzWord> {
    assert_eq!(src.degree(), dst.degree(), "degree mismatch");
    assert_eq!(src.len(), dst.len(), "length mismatch");
    let k = src.len();
    let x = src.letters();
    let y = dst.letters();

    // Longest l such that the last l letters of x equal the first l of y.
    let mut overlap = 0usize;
    for l in (0..=k).rev() {
        if x[k - l..] == y[..l] {
            overlap = l;
            break;
        }
    }

    let mut path = vec![src.clone()];
    let mut current = src.clone();
    for &letter in &y[overlap..] {
        current = current
            .shift(letter)
            .expect("shifting destination letters always yields valid Kautz words");
        path.push(current.clone());
    }
    debug_assert_eq!(path.last().unwrap().letters(), y);
    path
}

/// The number of hops the label router uses from `src` to `dst`
/// (`k −` longest overlap).
pub fn kautz_route_length(d: usize, k: usize, src: usize, dst: usize) -> usize {
    kautz_route(d, k, src, dst).len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::{bfs_distances, is_valid_path};
    use otis_topologies::kautz;

    #[test]
    fn routes_are_valid_paths_of_length_at_most_k() {
        for (d, k) in [(2, 2), (2, 3), (3, 2), (3, 3), (2, 4)] {
            let g = kautz(d, k);
            for src in 0..g.node_count() {
                for dst in 0..g.node_count() {
                    let path = kautz_route(d, k, src, dst);
                    assert!(is_valid_path(&g, &path), "KG({d},{k}) route {src}->{dst}");
                    assert!(
                        path.len() - 1 <= k,
                        "KG({d},{k}) route {src}->{dst} too long"
                    );
                    assert_eq!(path[0], src);
                    assert_eq!(*path.last().unwrap(), dst);
                }
            }
        }
    }

    #[test]
    fn routes_are_never_shorter_than_graph_distance() {
        let (d, k) = (2, 3);
        let g = kautz(d, k);
        for src in 0..g.node_count() {
            let dist = bfs_distances(&g, src);
            for (dst, &bfs) in dist.iter().enumerate() {
                let len = kautz_route_length(d, k, src, dst) as u32;
                assert!(len >= bfs);
            }
        }
    }

    #[test]
    fn label_routing_is_mostly_shortest() {
        // The overlap router matches the BFS distance for the overwhelming
        // majority of pairs; quantify it so regressions are visible.
        let (d, k) = (2, 3);
        let g = kautz(d, k);
        let mut total = 0usize;
        let mut shortest = 0usize;
        for src in 0..g.node_count() {
            let dist = bfs_distances(&g, src);
            for (dst, &bfs) in dist.iter().enumerate() {
                total += 1;
                if kautz_route_length(d, k, src, dst) as u32 == bfs {
                    shortest += 1;
                }
            }
        }
        assert!(
            shortest * 10 >= total * 9,
            "label routing should be shortest for >= 90% of pairs ({shortest}/{total})"
        );
    }

    #[test]
    fn route_to_self_is_empty() {
        for node in 0..kautz_node_count(2, 3) {
            let path = kautz_route(2, 3, node, node);
            assert_eq!(path, vec![node]);
        }
    }

    #[test]
    fn single_hop_routes_follow_arcs() {
        let g = kautz(3, 2);
        for src in 0..g.node_count() {
            for &dst in g.out_neighbors(src) {
                let path = kautz_route(3, 2, src, dst);
                assert_eq!(path.len(), 2, "neighbour route must be one hop");
            }
        }
    }

    #[test]
    fn word_level_route_matches_index_level() {
        let src = KautzWord::new(2, vec![0, 1, 2]).unwrap();
        let dst = KautzWord::new(2, vec![2, 0, 1]).unwrap();
        let words = kautz_route_words(&src, &dst);
        let indices = kautz_route(2, 3, src.index(), dst.index());
        assert_eq!(words.iter().map(|w| w.index()).collect::<Vec<_>>(), indices);
        // The suffix "2" of src overlaps the prefix "2" of dst: 2 hops.
        assert_eq!(words.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        kautz_route(2, 2, 0, 99);
    }
}
