//! Arithmetic routing on the Imase–Itoh graph `II(d, n)`.
//!
//! Every walk of length `m` from `u` in `II(d, n)` ends at
//!
//! ```text
//! v ≡ (−d)^m · u − Σ_{i=1}^{m} (−d)^{m−i} · α_i   (mod n),   α_i ∈ {1, …, d}
//! ```
//!
//! so routing from `u` to `v` amounts to finding the smallest `m` for which
//! the required constant `c ≡ (−d)^m·u − v (mod n)` is representable as such
//! a digit sum.  Representability is decided exactly by base-`(−d)`
//! digit extraction with digit set `{1, …, d}`: the achievable sums for a
//! given `m` are `d^m` consecutive-free but structured integers, and only
//! `O(d^m / n)` residue representatives need to be tested, each in `O(m)`
//! time.  The smallest such `m` equals the graph distance, so — unlike the
//! Kautz overlap router — this router is provably shortest-path.

/// The distance from `u` to `v` in `II(d, n)` together with the digit string
/// `(α_1, …, α_m)` of one shortest walk.  Returns `(0, [])` when `u == v`.
pub fn imase_itoh_route_digits(d: usize, n: usize, u: usize, v: usize) -> (usize, Vec<usize>) {
    assert!(d >= 1 && n >= 1, "parameters must satisfy d >= 1, n >= 1");
    assert!(u < n && v < n, "node out of range");
    if u == v {
        return (0, Vec::new());
    }
    let n_i = n as i128;
    let d_i = d as i128;
    // Upper bound on the number of hops ever needed: ceil(log_d n) + 2 is a
    // safe cap (the true diameter is at most ceil(log_d n) for d >= 2; for
    // d = 1, II(1, n) is a directed cycle and needs up to n - 1 hops).
    let max_m = if d >= 2 {
        let mut m = 0usize;
        let mut p = 1usize;
        while p < n {
            p = p.saturating_mul(d);
            m += 1;
        }
        m + 2
    } else {
        n
    };

    for m in 1..=max_m {
        // c ≡ (−d)^m·u − v (mod n)
        let mut pow: i128 = 1;
        for _ in 0..m {
            pow = -pow * d_i;
        }
        let c = (pow * (u as i128) - (v as i128)).rem_euclid(n_i);

        // Range of achievable sums T = Σ (−d)^{m−i} α_i.
        // Compute min and max by choosing α per sign of the coefficient.
        let mut t_min: i128 = 0;
        let mut t_max: i128 = 0;
        let mut coeff: i128 = 1; // (−d)^0 for i = m, …, (−d)^{m−1} for i = 1
        for _ in 0..m {
            if coeff > 0 {
                t_min += coeff; // α = 1
                t_max += coeff * d_i; // α = d
            } else {
                t_min += coeff * d_i;
                t_max += coeff;
            }
            coeff = -coeff * d_i;
        }

        // Try every T ≡ c (mod n) in [t_min, t_max].
        let mut t = t_min + (c - t_min).rem_euclid(n_i);
        while t <= t_max {
            if let Some(digits) = represent_base_neg_d(t, d_i, m) {
                return (m, digits);
            }
            t += n_i;
        }
    }
    unreachable!("II({d},{n}) is strongly connected; a route from {u} to {v} must exist")
}

/// Attempts to write `t = Σ_{i=1}^{m} (−d)^{m−i} α_i` with `α_i ∈ {1,…,d}`;
/// returns the digits `(α_1, …, α_m)` on success.
fn represent_base_neg_d(mut t: i128, d: i128, m: usize) -> Option<Vec<usize>> {
    let mut digits_rev = Vec::with_capacity(m);
    for _ in 0..m {
        // t = α + (−d)·t'  with α ∈ {1,…,d}  ⇒  α ≡ t (mod d), α ∈ {1,…,d}.
        let mut alpha = t.rem_euclid(d);
        if alpha == 0 {
            alpha = d;
        }
        digits_rev.push(alpha as usize);
        t = (alpha - t) / d;
    }
    if t == 0 {
        digits_rev.reverse();
        Some(digits_rev)
    } else {
        None
    }
}

/// Shortest-path distance from `u` to `v` in `II(d, n)`.
pub fn imase_itoh_distance(d: usize, n: usize, u: usize, v: usize) -> usize {
    imase_itoh_route_digits(d, n, u, v).0
}

/// The shortest route from `u` to `v` as the sequence of nodes visited.
pub fn imase_itoh_route(d: usize, n: usize, u: usize, v: usize) -> Vec<usize> {
    let (_, digits) = imase_itoh_route_digits(d, n, u, v);
    let mut path = vec![u];
    let mut current = u as i128;
    let n_i = n as i128;
    for &alpha in &digits {
        current = (-(d as i128) * current - alpha as i128).rem_euclid(n_i);
        path.push(current as usize);
    }
    debug_assert_eq!(*path.last().unwrap(), v);
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_graphs::algorithms::{bfs_distances, is_valid_path};
    use otis_topologies::imase_itoh;

    #[test]
    fn routes_match_bfs_distances_exactly() {
        for (d, n) in [(2, 5), (2, 12), (3, 12), (3, 17), (4, 20), (2, 31)] {
            let g = imase_itoh(d, n);
            for u in 0..n {
                let dist = bfs_distances(&g, u);
                for (v, &bfs) in dist.iter().enumerate() {
                    let (m, _) = imase_itoh_route_digits(d, n, u, v);
                    assert_eq!(m as u32, bfs, "II({d},{n}) distance {u}->{v}");
                }
            }
        }
    }

    #[test]
    fn routes_are_valid_paths() {
        for (d, n) in [(2, 7), (3, 12), (4, 15)] {
            let g = imase_itoh(d, n);
            for u in 0..n {
                for v in 0..n {
                    let path = imase_itoh_route(d, n, u, v);
                    assert!(
                        is_valid_path(&g, &path),
                        "II({d},{n}) route {u}->{v}: {path:?}"
                    );
                    assert_eq!(path[0], u);
                    assert_eq!(*path.last().unwrap(), v);
                }
            }
        }
    }

    #[test]
    fn self_route_is_empty() {
        assert_eq!(imase_itoh_route(3, 12, 5, 5), vec![5]);
        assert_eq!(imase_itoh_distance(3, 12, 5, 5), 0);
    }

    #[test]
    fn directed_cycle_case_d_equals_1() {
        // II(1, n): u -> (-u - 1) mod n, an involution-like structure...
        // whatever the shape, routes must match BFS.
        let (d, n) = (1, 6);
        let g = imase_itoh(d, n);
        for u in 0..n {
            let dist = bfs_distances(&g, u);
            for (v, &bfs) in dist.iter().enumerate() {
                if bfs == u32::MAX {
                    continue;
                }
                assert_eq!(imase_itoh_distance(d, n, u, v) as u32, bfs);
            }
        }
    }

    #[test]
    fn kautz_sized_instance_has_diameter_k() {
        // II(3, 12) = KG(3, 2): the arithmetic router never needs more than 2 hops.
        let (d, n) = (3, 12);
        let mut max = 0;
        for u in 0..n {
            for v in 0..n {
                max = max.max(imase_itoh_distance(d, n, u, v));
            }
        }
        assert_eq!(max, 2);
    }

    #[test]
    fn digit_strings_use_valid_alphas() {
        for (d, n) in [(3, 14), (2, 9)] {
            for u in 0..n {
                for v in 0..n {
                    let (_, digits) = imase_itoh_route_digits(d, n, u, v);
                    assert!(digits.iter().all(|&a| (1..=d).contains(&a)));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        imase_itoh_route(2, 5, 0, 7);
    }
}
