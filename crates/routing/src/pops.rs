//! Single-hop communication on the POPS network.
//!
//! In `POPS(t, g)` every ordered pair of processors shares exactly one OPS
//! coupler — the coupler `(source group, destination group)` — so unicast is
//! trivial; what matters is *scheduling*: a single-wavelength coupler carries
//! one message per time slot, so collective operations must be organised into
//! slots with no two senders on the same coupler.  This module provides the
//! coupler-selection rule plus conflict-free slot schedules for one-to-all
//! broadcast and for arbitrary (partial) permutations, the primitives the
//! POPS literature (Chiarulli et al., ref [9]) builds its control protocols
//! on.

use otis_topologies::Pops;
use std::collections::HashSet;

/// A slotted transmission schedule: `slots[s]` lists the transmissions
/// `(source processor, destination processor, coupler)` that happen in slot
/// `s`; within a slot every coupler appears at most once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotSchedule {
    /// The transmissions of each slot.
    pub slots: Vec<Vec<(usize, usize, usize)>>,
}

impl SlotSchedule {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of scheduled transmissions.
    pub fn message_count(&self) -> usize {
        self.slots.iter().map(|s| s.len()).sum()
    }

    /// Checks the single-sender-per-coupler-per-slot constraint.
    pub fn is_conflict_free(&self) -> bool {
        for slot in &self.slots {
            let mut used = HashSet::new();
            for &(_, _, coupler) in slot {
                if !used.insert(coupler) {
                    return false;
                }
            }
        }
        true
    }
}

/// Routing and scheduling helper for one POPS instance.
#[derive(Debug, Clone)]
pub struct PopsRouter {
    pops: Pops,
}

impl PopsRouter {
    /// Creates a router for `POPS(t, g)`.
    pub fn new(pops: Pops) -> Self {
        PopsRouter { pops }
    }

    /// The POPS instance served.
    pub fn pops(&self) -> &Pops {
        &self.pops
    }

    /// The coupler a message from `src` to `dst` must use: coupler
    /// `(group(src), group(dst))`.
    pub fn unicast_coupler(&self, src: usize, dst: usize) -> usize {
        let (sg, _) = self.pops.processor_label(src);
        let (dg, _) = self.pops.processor_label(dst);
        self.pops.coupler_index(sg, dg)
    }

    /// One-to-all broadcast from `src`: the source transmits once on each of
    /// the `g` couplers of its group, all in the same slot (it owns `g`
    /// transmitters and the couplers are distinct), reaching every processor.
    /// Returns a single-slot schedule with one entry per destination group
    /// (destination field holds a representative processor of that group).
    pub fn broadcast_schedule(&self, src: usize) -> SlotSchedule {
        let (sg, _) = self.pops.processor_label(src);
        let g = self.pops.group_count();
        let t = self.pops.group_size();
        let mut slot = Vec::with_capacity(g);
        for dg in 0..g {
            let coupler = self.pops.coupler_index(sg, dg);
            let representative = dg * t; // first processor of the group
            slot.push((src, representative, coupler));
        }
        SlotSchedule { slots: vec![slot] }
    }

    /// Schedules an arbitrary set of unicast messages `(src, dst)` into slots
    /// such that no coupler is used twice in a slot (greedy first-fit).
    ///
    /// For a (partial) permutation — every processor sends at most one
    /// message and receives at most one — the number of slots needed is at
    /// most `⌈t/1⌉`-ish in the worst case (all `t` processors of a group
    /// sending into the same destination group serialise on one coupler); the
    /// greedy schedule is within one slot of the per-coupler load maximum,
    /// which tests verify.
    pub fn schedule_messages(&self, messages: &[(usize, usize)]) -> SlotSchedule {
        let mut slots: Vec<Vec<(usize, usize, usize)>> = Vec::new();
        let mut slot_couplers: Vec<HashSet<usize>> = Vec::new();
        for &(src, dst) in messages {
            let coupler = self.unicast_coupler(src, dst);
            // First slot where this coupler is still free.
            let mut placed = false;
            for (slot, used) in slots.iter_mut().zip(slot_couplers.iter_mut()) {
                if !used.contains(&coupler) {
                    slot.push((src, dst, coupler));
                    used.insert(coupler);
                    placed = true;
                    break;
                }
            }
            if !placed {
                slots.push(vec![(src, dst, coupler)]);
                let mut set = HashSet::new();
                set.insert(coupler);
                slot_couplers.push(set);
            }
        }
        SlotSchedule { slots }
    }

    /// The maximum number of messages any single coupler must carry for the
    /// given message set — a lower bound on the number of slots any schedule
    /// needs.
    pub fn coupler_load_bound(&self, messages: &[(usize, usize)]) -> usize {
        let mut load = vec![0usize; self.pops.coupler_count()];
        for &(src, dst) in messages {
            load[self.unicast_coupler(src, dst)] += 1;
        }
        load.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_coupler_is_the_group_pair() {
        let router = PopsRouter::new(Pops::new(4, 2));
        let p = router.pops();
        let src = p.processor(0, 2);
        let dst = p.processor(1, 3);
        assert_eq!(router.unicast_coupler(src, dst), p.coupler_index(0, 1));
        let same_group = p.processor(0, 0);
        assert_eq!(
            router.unicast_coupler(src, same_group),
            p.coupler_index(0, 0)
        );
    }

    #[test]
    fn broadcast_reaches_every_group_in_one_slot() {
        let router = PopsRouter::new(Pops::new(3, 4));
        let schedule = router.broadcast_schedule(5);
        assert_eq!(schedule.len(), 1);
        assert_eq!(schedule.message_count(), 4);
        assert!(schedule.is_conflict_free());
        // Every destination group appears once.
        let groups: HashSet<usize> = schedule.slots[0]
            .iter()
            .map(|&(_, dst, _)| router.pops().processor_label(dst).0)
            .collect();
        assert_eq!(groups.len(), 4);
    }

    #[test]
    fn permutation_schedule_is_conflict_free_and_near_optimal() {
        let router = PopsRouter::new(Pops::new(4, 2));
        let n = router.pops().node_count();
        // A full shift permutation: processor i sends to (i + 3) mod n.
        let messages: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 3) % n)).collect();
        let schedule = router.schedule_messages(&messages);
        assert!(schedule.is_conflict_free());
        assert_eq!(schedule.message_count(), n);
        let bound = router.coupler_load_bound(&messages);
        assert!(
            schedule.len() == bound,
            "greedy first-fit on a fixed coupler assignment is load-optimal: {} vs {}",
            schedule.len(),
            bound
        );
    }

    #[test]
    fn all_to_one_serialises_on_couplers() {
        // Every processor sends to processor 0: the g couplers (i, 0) each
        // carry t messages (t-1 for group 0 plus... well, up to t), so the
        // schedule needs exactly max-coupler-load slots.
        let router = PopsRouter::new(Pops::new(3, 3));
        let n = router.pops().node_count();
        let messages: Vec<(usize, usize)> = (1..n).map(|i| (i, 0)).collect();
        let schedule = router.schedule_messages(&messages);
        assert!(schedule.is_conflict_free());
        assert_eq!(schedule.len(), router.coupler_load_bound(&messages));
        assert_eq!(schedule.message_count(), n - 1);
    }

    #[test]
    fn empty_message_set() {
        let router = PopsRouter::new(Pops::new(2, 2));
        let schedule = router.schedule_messages(&[]);
        assert!(schedule.is_empty());
        assert_eq!(schedule.message_count(), 0);
        assert!(schedule.is_conflict_free());
        assert_eq!(router.coupler_load_bound(&[]), 0);
    }

    #[test]
    fn conflict_detection_works() {
        let bad = SlotSchedule {
            slots: vec![vec![(0, 1, 5), (2, 3, 5)]],
        };
        assert!(!bad.is_conflict_free());
    }
}
