//! Fault timelines: scheduled failure and recovery events.
//!
//! A [`FaultSchedule`] is an ordered list of `fail`/`recover` events, each
//! pinned to a slot, that both simulators consume by swapping the active
//! prepared kernel at the event slots.  Like `otis_net::TrafficSpec`, the
//! schedule is a parsed, validated little language with a `FromStr`/
//! `Display` round-trip:
//!
//! * `"fail(node 3)@32"` — node (or quotient group) 3 fails at the start of
//!   slot 32, before that slot's injections;
//! * `"fail(arc 2->5)@40"` — the arc (link or coupler set) from 2 to 5
//!   fails at slot 40;
//! * `"recover(node 3)@96"` — a targeted recovery;
//! * `"recover@96"` — every *scheduled* fault recovers at slot 96 (static
//!   faults fixed before slot 0 are never recovered);
//! * `"none"` (or the empty string) — the empty schedule.
//!
//! Events are `;`-separated and must be chronological.  Construction
//! rejects double faults, recoveries of intact targets and bare recoveries
//! with nothing to recover — a malformed timeline never reaches a
//! simulator.  [`FaultSchedule::bind`] turns a schedule into the concrete
//! per-epoch fault sets (static faults overlaid with the scheduled ones),
//! checking target bounds against one network, exactly as
//! `TrafficSpec::bind` checks topology preconditions.

use otis_routing::FaultSet;
use std::fmt;
use std::str::FromStr;

/// What a scheduled event fails or recovers.
///
/// For point-to-point networks nodes are processors and arcs are links; for
/// multi-OPS (stack-graph) networks the fault domain is the quotient —
/// a node is a whole group, an arc the coupler(s) between two groups —
/// matching the [`FaultSet`] granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A node (processor or quotient group).
    Node(usize),
    /// A directed arc (link or coupler set) `from -> to`.
    Arc(usize, usize),
}

/// One scheduled action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The target fails.
    Fail(FaultTarget),
    /// The target recovers (it must be a scheduled fault in force).
    Recover(FaultTarget),
    /// Every scheduled fault in force recovers at once.
    RecoverAll,
}

/// One event of a [`FaultSchedule`]: an action applied at the start of a
/// slot, before that slot's injections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The slot at whose start the action applies.
    pub slot: u64,
    /// What happens.
    pub action: FaultAction,
}

/// An ordered, validated timeline of failure and recovery events.
///
/// The only constructors are [`FaultSchedule::new`], [`FromStr`] and
/// [`FaultSchedule::empty`], so every value in circulation satisfies the
/// invariants: events chronological, no double faults, no recoveries of
/// intact targets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

/// Why a schedule string could not be parsed, a directly-constructed event
/// list was inconsistent, or a schedule could not be bound to a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultScheduleError {
    /// The input does not match the `action@slot[; action@slot...]` shape.
    Syntax {
        /// The offending input.
        input: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// Events are not in chronological order.
    NotChronological {
        /// The slot of the earlier event.
        previous: u64,
        /// The out-of-order slot that followed it.
        slot: u64,
    },
    /// A `fail` targets something already failed at that point of the
    /// timeline.
    AlreadyFailed {
        /// The doubly-failed target.
        target: FaultTarget,
        /// The slot of the offending event.
        slot: u64,
    },
    /// A targeted `recover` names something not failed at that point of the
    /// timeline.
    NotFailed {
        /// The intact target.
        target: FaultTarget,
        /// The slot of the offending event.
        slot: u64,
    },
    /// A bare `recover` fired with no scheduled fault in force.
    NothingToRecover {
        /// The slot of the offending event.
        slot: u64,
    },
    /// A target names a node outside the bound network.
    TargetOutOfRange {
        /// The out-of-range target.
        target: FaultTarget,
        /// The bound network's node count (processors or quotient groups).
        nodes: usize,
    },
    /// A scheduled `fail` duplicates a *static* fault of the run it is
    /// bound to — the event would be a no-op and the matching recovery
    /// ambiguous, so it is refused.
    OverlapsStaticFault {
        /// The already-failed target.
        target: FaultTarget,
        /// The slot of the offending event.
        slot: u64,
    },
}

impl fmt::Display for FaultScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultScheduleError::Syntax { input, reason } => {
                write!(f, "cannot parse fault schedule '{input}': {reason}")
            }
            FaultScheduleError::NotChronological { previous, slot } => write!(
                f,
                "fault schedule events out of order: slot {slot} follows slot {previous}"
            ),
            FaultScheduleError::AlreadyFailed { target, slot } => {
                write!(
                    f,
                    "fail({target})@{slot}: target is already failed at that point"
                )
            }
            FaultScheduleError::NotFailed { target, slot } => {
                write!(
                    f,
                    "recover({target})@{slot}: target is not failed at that point"
                )
            }
            FaultScheduleError::NothingToRecover { slot } => {
                write!(
                    f,
                    "recover@{slot}: no scheduled fault is in force at that point"
                )
            }
            FaultScheduleError::TargetOutOfRange { target, nodes } => write!(
                f,
                "fault schedule target '{target}' is out of range: the network \
                 has {nodes} fault-domain nodes"
            ),
            FaultScheduleError::OverlapsStaticFault { target, slot } => write!(
                f,
                "fail({target})@{slot} duplicates a static fault of this run"
            ),
        }
    }
}

impl std::error::Error for FaultScheduleError {}

impl FaultSchedule {
    /// The empty schedule: no events, simulations run exactly as without a
    /// timeline.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from an event list, validating the invariants the
    /// parser enforces: chronological slots, no fail of an already-failed
    /// target, no recovery of an intact target, no bare recovery with
    /// nothing in force.
    pub fn new(events: Vec<FaultEvent>) -> Result<Self, FaultScheduleError> {
        let mut overlay = FaultSet::new();
        let mut previous: Option<u64> = None;
        for event in &events {
            if let Some(prev) = previous {
                if event.slot < prev {
                    return Err(FaultScheduleError::NotChronological {
                        previous: prev,
                        slot: event.slot,
                    });
                }
            }
            previous = Some(event.slot);
            apply(&mut overlay, event, &FaultSet::new())?;
        }
        Ok(FaultSchedule { events })
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The validated events, chronological.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Binds the schedule to a network of `nodes` fault-domain nodes
    /// (processors for point-to-point families, quotient groups for
    /// multi-OPS) under the run's static `faults`: checks every target is in
    /// range and no scheduled `fail` duplicates a static fault, and returns
    /// the **epochs** — one `(slot, fault set)` pair per distinct event
    /// slot, where the fault set is the static faults overlaid with every
    /// scheduled fault in force from the start of that slot on.  Same-slot
    /// events coalesce into one epoch, so each returned slot is one kernel
    /// swap.
    pub fn bind(
        &self,
        nodes: usize,
        faults: &FaultSet,
    ) -> Result<Vec<(u64, FaultSet)>, FaultScheduleError> {
        let mut overlay = FaultSet::new();
        let mut epochs: Vec<(u64, FaultSet)> = Vec::new();
        for event in &self.events {
            let in_range = match event.action {
                FaultAction::Fail(t) | FaultAction::Recover(t) => match t {
                    FaultTarget::Node(n) => n < nodes,
                    FaultTarget::Arc(a, b) => a < nodes && b < nodes,
                },
                FaultAction::RecoverAll => true,
            };
            if !in_range {
                let target = match event.action {
                    FaultAction::Fail(t) | FaultAction::Recover(t) => t,
                    FaultAction::RecoverAll => unreachable!("bare recover is always in range"),
                };
                return Err(FaultScheduleError::TargetOutOfRange { target, nodes });
            }
            apply(&mut overlay, event, faults)?;
            let epoch = faults.union(&overlay);
            match epochs.last_mut() {
                Some((slot, set)) if *slot == event.slot => *set = epoch,
                _ => epochs.push((event.slot, epoch)),
            }
        }
        Ok(epochs)
    }
}

/// Applies one event to the scheduled overlay, enforcing the timeline
/// invariants.  `static_faults` is consulted only to refuse scheduled
/// fails that duplicate a static fault (empty at parse time, when no run
/// is bound yet).
fn apply(
    overlay: &mut FaultSet,
    event: &FaultEvent,
    static_faults: &FaultSet,
) -> Result<(), FaultScheduleError> {
    match event.action {
        FaultAction::Fail(target) => {
            let statically_failed = match target {
                FaultTarget::Node(n) => static_faults.node_failed(n),
                FaultTarget::Arc(a, b) => static_faults.arc_failed(a, b),
            };
            if statically_failed {
                return Err(FaultScheduleError::OverlapsStaticFault {
                    target,
                    slot: event.slot,
                });
            }
            let fresh = match target {
                FaultTarget::Node(n) => {
                    let fresh = !overlay.node_failed(n);
                    overlay.fail_node(n);
                    fresh
                }
                FaultTarget::Arc(a, b) => {
                    let fresh = !overlay.arc_failed(a, b);
                    overlay.fail_arc(a, b);
                    fresh
                }
            };
            if !fresh {
                return Err(FaultScheduleError::AlreadyFailed {
                    target,
                    slot: event.slot,
                });
            }
        }
        FaultAction::Recover(target) => {
            let was_failed = match target {
                FaultTarget::Node(n) => overlay.recover_node(n),
                FaultTarget::Arc(a, b) => overlay.recover_arc(a, b),
            };
            if !was_failed {
                return Err(FaultScheduleError::NotFailed {
                    target,
                    slot: event.slot,
                });
            }
        }
        FaultAction::RecoverAll => {
            if overlay.is_empty() {
                return Err(FaultScheduleError::NothingToRecover { slot: event.slot });
            }
            *overlay = FaultSet::new();
        }
    }
    Ok(())
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultTarget::Node(n) => write!(f, "node {n}"),
            FaultTarget::Arc(a, b) => write!(f, "arc {a}->{b}"),
        }
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Fail(target) => write!(f, "fail({target})"),
            FaultAction::Recover(target) => write!(f, "recover({target})"),
            FaultAction::RecoverAll => write!(f, "recover"),
        }
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.action, self.slot)
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "none");
        }
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{event}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultSchedule {
    type Err = FaultScheduleError;

    fn from_str(input: &str) -> Result<Self, Self::Err> {
        let text = input.trim();
        if text.is_empty() || text.eq_ignore_ascii_case("none") {
            return Ok(FaultSchedule::empty());
        }
        let syntax = |reason: &'static str| FaultScheduleError::Syntax {
            input: input.to_string(),
            reason,
        };
        let mut events = Vec::new();
        for part in text.split(';') {
            let part = part.trim();
            if part.is_empty() {
                return Err(syntax("empty event between ';' separators"));
            }
            let (action_text, slot_text) = part
                .rsplit_once('@')
                .ok_or_else(|| syntax("expected action@slot"))?;
            let slot: u64 = slot_text
                .trim()
                .parse()
                .map_err(|_| syntax("slots must be non-negative integers"))?;
            let action = parse_action(action_text.trim(), input)?;
            events.push(FaultEvent { slot, action });
        }
        FaultSchedule::new(events)
    }
}

fn parse_action(text: &str, input: &str) -> Result<FaultAction, FaultScheduleError> {
    let syntax = |reason: &'static str| FaultScheduleError::Syntax {
        input: input.to_string(),
        reason,
    };
    let Some(open) = text.find('(') else {
        return if text.eq_ignore_ascii_case("recover") {
            Ok(FaultAction::RecoverAll)
        } else if text.eq_ignore_ascii_case("fail") {
            Err(syntax(
                "fail needs a target: fail(node N) or fail(arc A->B)",
            ))
        } else {
            Err(syntax("unknown event (supported: fail, recover)"))
        };
    };
    if !text.ends_with(')') {
        return Err(syntax("missing closing parenthesis"));
    }
    let keyword = text[..open].trim().to_ascii_lowercase();
    let target = parse_target(text[open + 1..text.len() - 1].trim(), input)?;
    match keyword.as_str() {
        "fail" => Ok(FaultAction::Fail(target)),
        "recover" => Ok(FaultAction::Recover(target)),
        _ => Err(syntax("unknown event (supported: fail, recover)")),
    }
}

fn parse_target(text: &str, input: &str) -> Result<FaultTarget, FaultScheduleError> {
    let syntax = |reason: &'static str| FaultScheduleError::Syntax {
        input: input.to_string(),
        reason,
    };
    let mut words = text.splitn(2, char::is_whitespace);
    let kind = words.next().unwrap_or("").to_ascii_lowercase();
    let rest = words.next().unwrap_or("").trim();
    match kind.as_str() {
        "node" => rest
            .parse::<usize>()
            .map(FaultTarget::Node)
            .map_err(|_| syntax("node targets are 'node N' with N a non-negative integer")),
        "arc" => {
            let (a, b) = rest
                .split_once("->")
                .ok_or_else(|| syntax("arc targets are 'arc A->B'"))?;
            let a = a
                .trim()
                .parse::<usize>()
                .map_err(|_| syntax("arc endpoints must be non-negative integers"))?;
            let b = b
                .trim()
                .parse::<usize>()
                .map_err(|_| syntax("arc endpoints must be non-negative integers"))?;
            Ok(FaultTarget::Arc(a, b))
        }
        _ => Err(syntax("targets are 'node N' or 'arc A->B'")),
    }
}

/// Per-run restoration bookkeeping shared by the two simulators: records
/// the first overlay-growing swap (the *failure*), watches the cumulative
/// post-failure delivery rate until it recovers to ≥ 95% of the pre-failure
/// baseline, and tracks the latency peak among post-failure deliveries.
/// Inert — no state, no arithmetic on the hot path — until a swap happens,
/// so schedule-free runs stay byte-identical to the legacy loop.
#[derive(Debug, Default)]
pub(crate) struct RestoreTracker {
    fail_slot: Option<u64>,
    delivered_at_fail: u64,
    baseline: f64,
}

impl RestoreTracker {
    /// Records one kernel swap.  `introduces_failures` says whether the new
    /// kernel's fault set is *not* a subset of the old one's — the first
    /// such swap is "the failure" the restoration metrics are anchored to.
    /// `live` is the in-flight population before stranding.
    pub(crate) fn on_swap(
        &mut self,
        introduces_failures: bool,
        slot: u64,
        live: u64,
        metrics: &mut crate::SimMetrics,
    ) {
        metrics.fault_events += 1;
        if introduces_failures && self.fail_slot.is_none() {
            self.fail_slot = Some(slot);
            self.delivered_at_fail = metrics.delivered;
            self.baseline = if slot > 0 {
                metrics.delivered as f64 / slot as f64
            } else {
                0.0
            };
            metrics.in_flight_at_failure = live;
            metrics.restore_slots = u64::MAX;
        }
    }

    /// Whether a failure happened, i.e. whether post-failure deliveries
    /// feed the latency peak (test-only observer).
    #[cfg(test)]
    pub(crate) fn tracking(&self) -> bool {
        self.fail_slot.is_some()
    }

    /// Feeds one delivered message's latency into the post-failure peak.
    pub(crate) fn observe_delivery(&self, latency: u64, metrics: &mut crate::SimMetrics) {
        if self.fail_slot.is_some() {
            metrics.post_failure_latency_peak = metrics.post_failure_latency_peak.max(latency);
        }
    }

    /// Checks, at the end of `slot`, whether the cumulative post-failure
    /// delivery rate has recovered to ≥ 95% of the pre-failure baseline;
    /// the first slot where it has pins `restore_slots`.  A failure at slot
    /// 0 or with nothing delivered before it has no baseline — the metric
    /// stays "never restored".
    pub(crate) fn end_slot(&self, slot: u64, metrics: &mut crate::SimMetrics) {
        let Some(fail_slot) = self.fail_slot else {
            return;
        };
        if metrics.restore_slots != u64::MAX || self.baseline <= 0.0 {
            return;
        }
        let elapsed = slot - fail_slot + 1;
        let rate = (metrics.delivered - self.delivered_at_fail) as f64 / elapsed as f64;
        if rate >= 0.95 * self.baseline {
            metrics.restore_slots = elapsed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let cases = [
            "none",
            "fail(node 3)@32",
            "fail(node 3)@32; recover@96",
            "fail(arc 2->5)@40; recover(arc 2->5)@90",
            "fail(node 1)@10; fail(node 2)@10; recover(node 1)@50; recover@70",
        ];
        for text in cases {
            let schedule: FaultSchedule = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(schedule.to_string(), text, "display is canonical");
            let again: FaultSchedule = schedule.to_string().parse().unwrap();
            assert_eq!(again, schedule, "{text} round-trips");
        }
        assert!("".parse::<FaultSchedule>().unwrap().is_empty());
        assert_eq!(FaultSchedule::empty().to_string(), "none");
    }

    #[test]
    fn tolerant_syntax() {
        let schedule: FaultSchedule = "  FAIL( Node 3 ) @ 32 ;Recover@96 "
            .parse()
            .expect("whitespace and case are tolerated");
        assert_eq!(schedule.to_string(), "fail(node 3)@32; recover@96");
        let arcs: FaultSchedule = "fail(arc 2 -> 5)@1; recover(ARC 2->5)@2".parse().unwrap();
        assert_eq!(
            arcs.events()[0].action,
            FaultAction::Fail(FaultTarget::Arc(2, 5))
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "fail(node 3)",
            "fail@32",
            "fail()@32",
            "fail(node)@32",
            "fail(node -1)@32",
            "fail(link 3)@32",
            "fail(arc 2)@32",
            "fail(arc 2->)@32",
            "explode(node 3)@32",
            "fail(node 3)@then",
            "fail(node 3)@32;;recover@96",
            "fail(node 3@32",
        ] {
            let err = bad.parse::<FaultSchedule>().unwrap_err();
            assert!(
                matches!(err, FaultScheduleError::Syntax { .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn rejects_inconsistent_timelines_with_typed_errors() {
        let err = "recover@96".parse::<FaultSchedule>().unwrap_err();
        assert!(
            matches!(err, FaultScheduleError::NothingToRecover { slot: 96 }),
            "{err}"
        );
        let err = "fail(node 3)@32; fail(node 3)@40"
            .parse::<FaultSchedule>()
            .unwrap_err();
        assert!(matches!(
            err,
            FaultScheduleError::AlreadyFailed {
                target: FaultTarget::Node(3),
                slot: 40
            }
        ));
        let err = "fail(node 3)@32; recover(node 4)@40"
            .parse::<FaultSchedule>()
            .unwrap_err();
        assert!(matches!(err, FaultScheduleError::NotFailed { .. }));
        let err = "fail(node 3)@32; fail(node 4)@16"
            .parse::<FaultSchedule>()
            .unwrap_err();
        assert!(matches!(
            err,
            FaultScheduleError::NotChronological {
                previous: 32,
                slot: 16
            }
        ));
        // Recover-then-refail of the same target is legal.
        assert!("fail(node 3)@1; recover@2; fail(node 3)@3"
            .parse::<FaultSchedule>()
            .is_ok());
        // Same-slot fail+recover-all is applied in order and legal.
        assert!("fail(node 3)@5; recover@5".parse::<FaultSchedule>().is_ok());
    }

    #[test]
    fn bind_produces_overlaid_epochs_and_coalesces_slots() {
        let schedule: FaultSchedule =
            "fail(node 1)@10; fail(node 2)@10; recover(node 1)@50; recover@70"
                .parse()
                .unwrap();
        let static_faults = FaultSet::from_nodes([0]);
        let epochs = schedule.bind(8, &static_faults).unwrap();
        assert_eq!(epochs.len(), 3, "same-slot events coalesce into one swap");
        assert_eq!(epochs[0].0, 10);
        assert_eq!(epochs[0].1.sorted_nodes(), vec![0, 1, 2]);
        assert_eq!(epochs[1].0, 50);
        assert_eq!(epochs[1].1.sorted_nodes(), vec![0, 2]);
        assert_eq!(epochs[2].0, 70);
        assert_eq!(
            epochs[2].1, static_faults,
            "bare recover restores exactly the static faults"
        );
        assert!(FaultSchedule::empty()
            .bind(8, &static_faults)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn bind_checks_targets_against_the_network() {
        let schedule: FaultSchedule = "fail(node 9)@10".parse().unwrap();
        let err = schedule.bind(8, &FaultSet::new()).unwrap_err();
        assert!(
            matches!(
                err,
                FaultScheduleError::TargetOutOfRange {
                    target: FaultTarget::Node(9),
                    nodes: 8
                }
            ),
            "{err}"
        );
        let schedule: FaultSchedule = "fail(arc 2->9)@10".parse().unwrap();
        assert!(schedule.bind(8, &FaultSet::new()).is_err());
        // A scheduled fail may not duplicate a static fault.
        let schedule: FaultSchedule = "fail(node 0)@10".parse().unwrap();
        let err = schedule.bind(8, &FaultSet::from_nodes([0])).unwrap_err();
        assert!(
            matches!(err, FaultScheduleError::OverlapsStaticFault { .. }),
            "{err}"
        );
        assert!(schedule.bind(8, &FaultSet::new()).is_ok());
    }

    #[test]
    fn error_displays_are_informative() {
        let err = "explode(node 3)@32".parse::<FaultSchedule>().unwrap_err();
        assert!(err.to_string().contains("fail, recover"), "{err}");
        let err = "recover@96".parse::<FaultSchedule>().unwrap_err();
        assert!(err.to_string().contains("96"), "{err}");
        let err = "fail(node 9)@10"
            .parse::<FaultSchedule>()
            .unwrap()
            .bind(8, &FaultSet::new())
            .unwrap_err();
        assert!(err.to_string().contains("node 9"), "{err}");
        assert!(err.to_string().contains('8'), "{err}");
    }

    #[test]
    fn restore_tracker_pins_the_first_failure_and_the_recovery_rate() {
        let mut metrics = crate::SimMetrics::new(4, 8);
        let mut tracker = RestoreTracker::default();
        assert!(!tracker.tracking());
        // 100 slots of 2 deliveries per slot before the failure.
        metrics.delivered = 200;
        tracker.on_swap(true, 100, 7, &mut metrics);
        assert_eq!(metrics.fault_events, 1);
        assert_eq!(metrics.in_flight_at_failure, 7);
        assert_eq!(metrics.restore_slots, u64::MAX);
        assert!(tracker.tracking());
        // A later recovery swap does not re-anchor the failure.
        tracker.on_swap(false, 120, 3, &mut metrics);
        assert_eq!(metrics.fault_events, 2);
        assert_eq!(metrics.in_flight_at_failure, 7);
        // Depressed rate: 1 delivery over 2 slots < 0.95 * 2.0.
        metrics.delivered = 201;
        tracker.end_slot(101, &mut metrics);
        assert_eq!(metrics.restore_slots, u64::MAX);
        // Recovered rate: 8 more deliveries by slot 103 -> 9/4 >= 1.9.
        metrics.delivered = 209;
        tracker.end_slot(103, &mut metrics);
        assert_eq!(metrics.restore_slots, 4);
        // Post-failure latency peak only grows while tracking.
        tracker.observe_delivery(17, &mut metrics);
        tracker.observe_delivery(5, &mut metrics);
        assert_eq!(metrics.post_failure_latency_peak, 17);
        // Untracked runs never touch the restoration fields.
        let idle = RestoreTracker::default();
        let mut fresh = crate::SimMetrics::new(4, 8);
        idle.observe_delivery(9, &mut fresh);
        idle.end_slot(10, &mut fresh);
        assert_eq!(fresh.post_failure_latency_peak, 0);
        assert_eq!(fresh.fault_events, 0);
    }

    #[test]
    fn failures_without_baseline_never_restore() {
        let mut metrics = crate::SimMetrics::new(4, 8);
        let mut tracker = RestoreTracker::default();
        // Failure at slot 0: no pre-failure slots, no baseline.
        tracker.on_swap(true, 0, 0, &mut metrics);
        metrics.delivered = 1000;
        tracker.end_slot(500, &mut metrics);
        assert_eq!(metrics.restore_slots, u64::MAX);
    }
}
