//! # otis-sim
//!
//! A slotted discrete-event simulator for multi-OPS lightwave networks.
//!
//! The paper itself reports no measurements — its evaluation is the optical
//! constructions — but its motivation rests on companion work comparing
//! graph (single-OPS, point-to-point) and hypergraph (multi-OPS) topologies
//! under load (refs [7], [11], [25]).  This crate provides the simulation
//! substrate needed to regenerate that comparison *shape*:
//!
//! * time is slotted; an OPS coupler carries one message per slot *per
//!   wavelength* — one for the paper's single-wavelength model (the
//!   behavioural fact inherited from `otis-optics`), or `W` under a
//!   [`wavelength::WavelengthConfig`] with `count = W`, which switches both
//!   kernels into blocking-ratio mode (see below);
//! * [`multi_ops`] simulates any stack-graph network (POPS, stack-Kautz,
//!   stack-Imase–Itoh): messages follow the group-level routes of
//!   `otis-routing`, and per-coupler [`arbitration`] decides which waiting
//!   sender wins each slot;
//! * [`hot_potato`] simulates the single-OPS point-to-point baseline
//!   (de Bruijn / Kautz with deflection routing, ref [25]);
//! * [`traffic`] generates uniform, permutation, hot-spot, transpose and
//!   bit-reversal workloads; [`metrics`] aggregates latency, throughput and
//!   utilisation.  The parseable workload front door (`"hotspot(0.4,0,0.2)"`
//!   and friends) is `otis_net::TrafficSpec`, which validates loads and
//!   topology preconditions before handing a `TrafficPattern` to the
//!   simulators;
//! * [`demand`] generalizes the injection side beyond stationary patterns:
//!   a [`DemandSpec`] describes Poisson arrivals, on/off bursts, an
//!   elephants-and-mice mix, or lazy bounded-memory replay of a recorded
//!   `.trc` trace, and the per-run [`DemandSource`] it builds drives the
//!   kernels' `run_demand` entry points through the same allocation-free
//!   `injections_into` shape (stationary patterns wrap as
//!   [`DemandSpec::Pattern`] with byte-identical RNG draws).
//!
//! ## Prepare/execute split and delta-repaired kernels
//!
//! Every simulator is split into an immutable **prepared kernel** and a
//! cheap **run**:
//!
//! * [`PreparedHotPotato`] / [`PreparedMultiOps`] hold the expensive,
//!   run-independent state — the fault-filtered graph, the routing/distance
//!   tables and (for multi-OPS) a flat CSR-style table of every
//!   source/destination route — built once per `(network, fault-pattern)`
//!   pair and shareable across threads (`Send + Sync`);
//! * `run(traffic, config)` owns only per-run mutable state and performs
//!   **no per-slot allocations**.
//!
//! A fault pattern's kernel does not have to be built from scratch: both
//! kernels have `repair_from` constructors that derive it from the
//! fault-free base by **delta repair** — only routing-table columns and
//! route pairs the faults actually touch are recomputed, and the result is
//! bit-identical to a from-scratch build.  A fault-sweep grid therefore
//! pays full routing-state construction once per network and a much
//! cheaper repair per fault pattern; `otis_net::engine` derives its cached
//! kernels exactly this way.  [`HotPotatoSim`] and [`MultiOpsSim`] remain
//! as one-shot conveniences (a kernel bundled with one config) and produce
//! metrics byte-identical to calling the kernel directly.
//!
//! ## Fault timelines and mid-run kernel swaps
//!
//! The prepare/execute split also powers *dynamic* fault injection: a
//! [`schedule::FaultSchedule`] (`"fail(node 3)@32; recover@96"`) binds to a
//! run as a **timeline** — a chronological list of `(slot, kernel)` epochs
//! built by [`PreparedHotPotato::timeline_from`] /
//! [`PreparedMultiOps::timeline_from`], each epoch kernel derived from the
//! fault-free base (`repair_from` when the swap grows the fault set, the
//! recovery constructors of `otis-routing` when it shrinks) and
//! bit-identical to a from-scratch build.  `run_with_timeline` swaps the
//! active kernel at the start of each epoch slot, before injections:
//! in-flight messages are re-resolved against the new routing tables
//! (multi-OPS flights restart their route from the holding processor;
//! hot-potato messages keep deflecting), and messages stranded on a failed
//! node/arc or left unreachable are dropped as `dropped_by_failure` —
//! counted separately from congestion drops.  [`SimMetrics`] gains the
//! restoration columns (`fault_events`, `in_flight_at_failure`,
//! `dropped_by_failure`, `restore_slots`, `post_failure_latency_peak`), all
//! undefined when no swap happened.  An empty timeline takes the exact
//! legacy code path: same RNG draw order, same metrics, byte for byte.
//!
//! ## The struct-of-arrays slot engine
//!
//! Both `run` implementations drive the shared slot engine of [`kernel`]:
//!
//! * [`kernel::RunCore`] — seeded RNG, metrics, injection accounting;
//! * [`kernel::MessageArena`] — messages in flight as parallel
//!   `dst`/`injected_at`/`hops`/`wavelength` arrays indexed by compact
//!   `u32` handles (with a free list, so memory tracks the peak live
//!   population).  Per-node and per-coupler buffers hold handles, not
//!   message structs, so the hot paths are word-wide passes over dense
//!   arrays;
//! * [`kernel::PortBits`] and [`otis_graphs::SpectrumMap`] — `u64`-word
//!   bitsets for port occupancy and per-channel spectrum occupancy.
//!
//! One loop per simulator covers every capacity; the engine reproduces the
//! per-node `Vec<Message>` engine it replaced bit for bit (same RNG draw
//! order, same message ordering, same metrics) at every thread count.
//!
//! ## Hot path anatomy
//!
//! Each kernel's slot body is organised as **batched phases** — one pass
//! over the arena's parallel arrays per phase, instead of interleaving all
//! work per message:
//!
//! * **Hot-potato** runs two phases per slot.  *Deliver/classify* drains
//!   every node bucket in index order, delivering arrivals, dropping
//!   livelocked messages, and appending survivors to one slot-global
//!   transit list with per-node spans (each span stable-sorted by
//!   injection slot); this phase draws nothing from the RNG.
//!   *Arbitrate/inject* then walks nodes in index order, resets the port
//!   bitset once per node, routes each span through the randomized port
//!   chooser, and admits at most one injection — so every RNG draw happens
//!   exactly where the message-at-a-time loop drew it, and the metrics are
//!   byte-identical.
//! * **Multi-OPS** was already phase-shaped: inject, then per-coupler
//!   arbitrate/advance/deliver, then the bufferless overflow/alternate
//!   pass, then the pending-queue swap.
//! * Port masks ([`kernel::PortBits`]) are scanned **word at a time**:
//!   the chooser iterates `u64` words, masks the tail past the declared
//!   port count, and pops set bits with `trailing_zeros`, visiting free
//!   ports in ascending order — the same tie sets, hence the same draws,
//!   as the bit-by-bit probe it replaced.
//!
//! Per-run mutable state lives in a reusable [`kernel::SlotScratch`] pool:
//! the [`kernel::RunCore`], the [`kernel::MessageArena`], the injection
//! buffer, and each kernel's private buckets/queues/bitsets.  Every
//! `run_*_scratch` entry point begins by resetting the pool — cleared
//! lengths, kept allocations — so a reused pool is indistinguishable from
//! a fresh one (the arena hands out the exact handle sequence a fresh one
//! would) while touching the allocator only when a run out-peaks
//! everything before it.  The legacy entry points wrap a fresh pool;
//! `otis_net::engine` hands each worker thread one pool for its whole
//! lifetime and threads every grid cell through it, reporting the saved
//! setups as `StreamSummary::scratch_reuses`.
//!
//! ## Wavelength layer
//!
//! [`wavelength`] configures multi-wavelength channels: at `count > 1` the
//! multi-OPS kernel runs its bufferless transmit-or-block discipline
//! (losers try Yen-precomputed alternate routes, then count as *blocked*)
//! and the hot-potato kernel gives every link `W` parallel wavelengths (a
//! node with all ports exhausted drops the message as blocked).
//! [`SimMetrics`] gains `blocking_ratio`, `wavelength_utilization` and
//! `alt_route_rate`, all `NaN` (undefined) for capacity-1 runs where the
//! layer is off — capacity-1 outputs are unchanged.
//!
//! The packaged head-to-head comparison scenarios (experiment T5) live in the
//! `otis-net` facade crate (`otis_net::scenarios`), where any network is
//! addressable by a spec string and a comparison is plain data.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod arbitration;
pub mod demand;
pub mod hot_potato;
pub mod kernel;
pub mod message;
pub mod metrics;
pub mod multi_ops;
pub mod schedule;
pub mod traffic;
pub mod wavelength;

pub use arbitration::ArbitrationPolicy;
pub use demand::{
    matched_burst_rate, validate_trace, DemandSource, DemandSpec, TraceError, TraceReplay,
    TraceStats,
};
pub use hot_potato::{HotPotatoSim, HotPotatoSimConfig, PreparedHotPotato};
pub use kernel::{MessageArena, PortBits, RunCore, SlotScratch};
pub use message::Message;
pub use metrics::{MetricValue, SimMetrics};
pub use multi_ops::{MultiOpsSim, MultiOpsSimConfig, PreparedMultiOps};
pub use schedule::{FaultAction, FaultEvent, FaultSchedule, FaultScheduleError, FaultTarget};
pub use traffic::TrafficPattern;
pub use wavelength::{WavelengthAssignment, WavelengthConfig};
