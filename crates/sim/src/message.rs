//! Messages travelling through a simulated network.

/// A single message (one slot's worth of payload on one coupler or link).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Unique identifier, assigned at injection time.
    pub id: u64,
    /// Source processor.
    pub source: usize,
    /// Destination processor.
    pub destination: usize,
    /// Slot at which the message was injected.
    pub created_slot: u64,
    /// Slot at which the message was delivered (None while in flight).
    pub delivered_slot: Option<u64>,
    /// Number of optical hops taken so far.
    pub hops: u32,
}

impl Message {
    /// Creates a freshly injected message.
    pub fn new(id: u64, source: usize, destination: usize, created_slot: u64) -> Self {
        Message {
            id,
            source,
            destination,
            created_slot,
            delivered_slot: None,
            hops: 0,
        }
    }

    /// Whether the message has been delivered.
    pub fn is_delivered(&self) -> bool {
        self.delivered_slot.is_some()
    }

    /// End-to-end latency in slots (delivery slot − creation slot), when
    /// delivered.  A message delivered in the slot after its creation has
    /// latency 1.
    pub fn latency(&self) -> Option<u64> {
        self.delivered_slot
            .map(|d| d.saturating_sub(self.created_slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut m = Message::new(7, 1, 5, 10);
        assert!(!m.is_delivered());
        assert_eq!(m.latency(), None);
        m.hops = 2;
        m.delivered_slot = Some(13);
        assert!(m.is_delivered());
        assert_eq!(m.latency(), Some(3));
    }

    #[test]
    fn zero_latency_guard() {
        let mut m = Message::new(0, 0, 0, 5);
        m.delivered_slot = Some(5);
        assert_eq!(m.latency(), Some(0));
        // Clock anomalies saturate instead of underflowing.
        m.delivered_slot = Some(3);
        assert_eq!(m.latency(), Some(0));
    }
}
