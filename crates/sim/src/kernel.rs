//! Shared slot-loop scaffolding of the prepare/execute simulator split.
//!
//! Both simulators — the multi-OPS coupler model and the hot-potato
//! point-to-point baseline — drive the same outer loop: a slot clock, a
//! seeded RNG, injection accounting (fresh message identifiers, the
//! `injected` counter), delivery/drop accumulation into [`SimMetrics`] and a
//! livelock guard.  [`RunCore`] owns exactly that per-run mutable state, so
//! the prepared kernels ([`crate::hot_potato::PreparedHotPotato`],
//! [`crate::multi_ops::PreparedMultiOps`]) stay immutable and shareable
//! across threads while every `run` call builds one `RunCore` and drives it
//! through the slots.
//!
//! Keeping this state in one place also pins the conventions the
//! cross-simulator tests rely on: message identifiers count up from zero per
//! run, `metrics.slots` always equals the number of slots started, and a
//! delivery in slot `s` of a message created in slot `c` has latency
//! `s − c` under whichever convention the calling simulator uses.

use crate::message::Message;
use crate::metrics::SimMetrics;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The per-run mutable core shared by both simulators: seeded RNG, metrics
/// accumulator and the injection identifier counter.  Everything else a
/// simulator needs per run (queues, port masks, message buffers) is its own
/// reusable scratch state; everything immutable (graphs, routing tables,
/// flat route layouts) lives in the prepared kernel.
#[derive(Debug)]
pub struct RunCore {
    /// The run's RNG; traffic generation, arbitration and deflection
    /// tie-breaks all draw from this single stream, which is what makes a
    /// run reproducible from its seed alone.
    pub rng: StdRng,
    /// The metrics accumulated so far.
    pub metrics: SimMetrics,
    next_id: u64,
}

impl RunCore {
    /// A fresh core for one run: RNG seeded with `seed`, zeroed metrics over
    /// `processors` processors and `channels` couplers/links.
    pub fn new(seed: u64, processors: usize, channels: usize) -> Self {
        RunCore {
            rng: StdRng::seed_from_u64(seed),
            metrics: SimMetrics::new(processors, channels),
            next_id: 0,
        }
    }

    /// Advances the slot clock: after this call `metrics.slots` counts the
    /// slot being simulated (slot indices are zero-based, the counter is the
    /// number of slots started).
    pub fn begin_slot(&mut self, slot: u64) {
        self.metrics.slots = slot + 1;
    }

    /// Accounts one accepted injection: assigns the next message identifier,
    /// bumps the `injected` counter and returns the fresh message.  Refused
    /// injections (admission control, faults, back-pressure) must simply not
    /// call this, so they consume neither an identifier nor a counter slot.
    pub fn inject(&mut self, source: usize, destination: usize, slot: u64) -> Message {
        let message = Message::new(self.next_id, source, destination, slot);
        self.next_id += 1;
        self.metrics.injected += 1;
        message
    }

    /// Records a delivery with the given end-to-end latency and hop count.
    pub fn deliver(&mut self, latency: u64, hops: u32) {
        self.metrics.record_delivery(latency, hops);
    }

    /// Records a dropped message.
    pub fn drop_message(&mut self) {
        self.metrics.dropped += 1;
    }

    /// Records one coupler/link grant (a used channel-slot).
    pub fn grant(&mut self) {
        self.metrics.grants += 1;
    }

    /// The livelock guard: whether a message that has taken `hops` hops has
    /// exhausted the `max_hops` budget (`0` disables the guard).
    pub fn livelock_exceeded(max_hops: u32, hops: u32) -> bool {
        max_hops > 0 && hops >= max_hops
    }

    /// Finishes the run: records the messages still in flight and returns
    /// the final metrics.
    pub fn finish(mut self, in_flight: u64) -> SimMetrics {
        self.metrics.in_flight = in_flight;
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_accounting_assigns_sequential_ids() {
        let mut core = RunCore::new(7, 4, 4);
        let a = core.inject(0, 1, 0);
        let b = core.inject(2, 3, 5);
        assert_eq!(a.id, 0);
        assert_eq!(b.id, 1);
        assert_eq!(b.created_slot, 5);
        assert_eq!(core.metrics.injected, 2);
    }

    #[test]
    fn slot_clock_counts_slots_started() {
        let mut core = RunCore::new(1, 2, 2);
        core.begin_slot(0);
        assert_eq!(core.metrics.slots, 1);
        core.begin_slot(41);
        assert_eq!(core.metrics.slots, 42);
    }

    #[test]
    fn livelock_guard_respects_the_disable_sentinel() {
        assert!(!RunCore::livelock_exceeded(0, u32::MAX));
        assert!(!RunCore::livelock_exceeded(5, 4));
        assert!(RunCore::livelock_exceeded(5, 5));
        assert!(RunCore::livelock_exceeded(5, 6));
    }

    #[test]
    fn finish_records_in_flight() {
        let mut core = RunCore::new(1, 2, 2);
        core.begin_slot(0);
        core.deliver(3, 2);
        core.drop_message();
        core.grant();
        let m = core.finish(4);
        assert_eq!(m.delivered, 1);
        assert_eq!(m.total_latency, 3);
        assert_eq!(m.dropped, 1);
        assert_eq!(m.grants, 1);
        assert_eq!(m.in_flight, 4);
    }

    #[test]
    fn same_seed_same_stream() {
        use rand::Rng;
        let mut a = RunCore::new(99, 1, 1);
        let mut b = RunCore::new(99, 1, 1);
        let xs: Vec<usize> = (0..8).map(|_| a.rng.gen_range(0..1000)).collect();
        let ys: Vec<usize> = (0..8).map(|_| b.rng.gen_range(0..1000)).collect();
        assert_eq!(xs, ys);
    }
}
