//! The shared struct-of-arrays slot engine of the prepare/execute
//! simulator split.
//!
//! Both simulators — the multi-OPS coupler model and the hot-potato
//! point-to-point baseline — drive the same outer loop: a slot clock, a
//! seeded RNG, injection accounting (fresh message identifiers, the
//! `injected` counter), delivery/drop accumulation into [`SimMetrics`] and a
//! livelock guard.  This module owns the pieces of that loop the two
//! simulators share:
//!
//! * [`RunCore`] — the per-run mutable core (RNG, metrics, id counter), so
//!   the prepared kernels ([`crate::hot_potato::PreparedHotPotato`],
//!   [`crate::multi_ops::PreparedMultiOps`]) stay immutable and shareable
//!   across threads while every `run` call builds one `RunCore` and drives
//!   it through the slots;
//! * [`MessageArena`] — struct-of-arrays storage for the messages in
//!   flight: parallel `dst`/`injected_at`/`hops`/`wavelength` arrays
//!   indexed by compact `u32` handles, with a free list so the arena's
//!   footprint tracks the *peak live* population, not the total injected.
//!   The slot loops move handles between per-node (or per-coupler) `u32`
//!   buckets instead of shuffling whole `Message` structs, so a slot is a
//!   few word-wide passes over dense arrays;
//! * [`PortBits`] — `u64`-word bitset port occupancy for the hot-potato
//!   loop (the mask consumed by
//!   [`otis_routing::HotPotatoRouter::choose_port_randomized_masked`]);
//!   per-channel *spectrum* masks are the word-wide
//!   [`otis_graphs::SpectrumMap`];
//! * [`assign_wavelength`] — the one wavelength-assignment rule (first-fit
//!   or seeded-random) both kernels apply on a multiplexed grant.
//!
//! Keeping this state in one place also pins the conventions the
//! cross-simulator tests rely on: message identifiers count up from zero per
//! run, `metrics.slots` always equals the number of slots started, and a
//! delivery in slot `s` of a message created in slot `c` has latency
//! `s − c` under whichever convention the calling simulator uses.

use crate::message::Message;
use crate::metrics::SimMetrics;
use crate::wavelength::WavelengthAssignment;
use otis_graphs::SpectrumMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-run mutable core shared by both simulators: seeded RNG, metrics
/// accumulator and the injection identifier counter.  Everything else a
/// simulator needs per run (queues, port masks, message buffers) is its own
/// reusable scratch state; everything immutable (graphs, routing tables,
/// flat route layouts) lives in the prepared kernel.
#[derive(Debug)]
pub struct RunCore {
    /// The run's RNG; traffic generation, arbitration and deflection
    /// tie-breaks all draw from this single stream, which is what makes a
    /// run reproducible from its seed alone.
    pub rng: StdRng,
    /// The metrics accumulated so far.
    pub metrics: SimMetrics,
    next_id: u64,
}

impl Default for RunCore {
    /// A placeholder core (seed 0, no processors), to be re-armed with
    /// [`RunCore::reset`] before use — what a [`SlotScratch`] starts from.
    fn default() -> Self {
        RunCore::new(0, 0, 0)
    }
}

impl RunCore {
    /// A fresh core for one run: RNG seeded with `seed`, zeroed metrics over
    /// `processors` processors and `channels` couplers/links.
    pub fn new(seed: u64, processors: usize, channels: usize) -> Self {
        RunCore {
            rng: StdRng::seed_from_u64(seed),
            metrics: SimMetrics::new(processors, channels),
            next_id: 0,
        }
    }

    /// Re-arms the core for another run — reseeded RNG, zeroed metrics,
    /// identifier counter back to zero.  `SimMetrics` is all scalars, so a
    /// reset core is indistinguishable from a freshly constructed one; this
    /// is what lets a [`SlotScratch`] carry one core across every cell a
    /// scenario worker runs.
    pub fn reset(&mut self, seed: u64, processors: usize, channels: usize) {
        self.rng = StdRng::seed_from_u64(seed);
        self.metrics = SimMetrics::new(processors, channels);
        self.next_id = 0;
    }

    /// Advances the slot clock: after this call `metrics.slots` counts the
    /// slot being simulated (slot indices are zero-based, the counter is the
    /// number of slots started).
    pub fn begin_slot(&mut self, slot: u64) {
        self.metrics.slots = slot + 1;
    }

    /// Accounts one accepted injection: assigns the next message identifier,
    /// bumps the `injected` counter and returns the fresh message.  Refused
    /// injections (admission control, faults, back-pressure) must simply not
    /// call this, so they consume neither an identifier nor a counter slot.
    pub fn inject(&mut self, source: usize, destination: usize, slot: u64) -> Message {
        let message = Message::new(self.next_id, source, destination, slot);
        self.next_id += 1;
        self.metrics.injected += 1;
        message
    }

    /// Records a delivery with the given end-to-end latency and hop count.
    pub fn deliver(&mut self, latency: u64, hops: u32) {
        self.metrics.record_delivery(latency, hops);
    }

    /// Records a dropped message.
    pub fn drop_message(&mut self) {
        self.metrics.dropped += 1;
    }

    /// Records one coupler/link grant (a used channel-slot).
    pub fn grant(&mut self) {
        self.metrics.grants += 1;
    }

    /// The livelock guard: whether a message that has taken `hops` hops has
    /// exhausted the `max_hops` budget (`0` disables the guard).
    pub fn livelock_exceeded(max_hops: u32, hops: u32) -> bool {
        max_hops > 0 && hops >= max_hops
    }

    /// Finishes the run: records the messages still in flight and returns
    /// the final metrics.  The core stays usable — [`RunCore::reset`] re-arms
    /// it for the next run.
    pub fn finish(&mut self, in_flight: u64) -> SimMetrics {
        self.metrics.in_flight = in_flight;
        self.metrics.clone()
    }
}

/// Struct-of-arrays storage for the messages currently in flight.
///
/// Each live message occupies one slot across a set of parallel arrays and
/// is referred to by a compact `u32` handle.  The slot loops keep handles in
/// per-node or per-coupler buckets and index the columns they need
/// (`dst` to test delivery, `injected_at` for latency and age-based
/// ordering, `hops` for the livelock guard), touching one dense array per
/// question instead of a 40-byte struct per message.  Released slots go on
/// a free list and are reused, so the arena's footprint tracks the peak
/// live population of the run.
#[derive(Debug, Default, Clone)]
pub struct MessageArena {
    ids: Vec<u64>,
    srcs: Vec<u32>,
    dsts: Vec<u32>,
    injected_at: Vec<u64>,
    hops: Vec<u32>,
    wavelengths: Vec<u32>,
    free: Vec<u32>,
}

impl MessageArena {
    /// An empty arena.
    pub fn new() -> Self {
        MessageArena::default()
    }

    /// Stores `message` and returns its handle, reusing a released slot when
    /// one is available.  The wavelength column starts at zero and is only
    /// meaningful after [`MessageArena::set_wavelength`].
    pub fn insert(&mut self, message: &Message) -> u32 {
        if let Some(handle) = self.free.pop() {
            let i = handle as usize;
            self.ids[i] = message.id;
            self.srcs[i] = message.source as u32;
            self.dsts[i] = message.destination as u32;
            self.injected_at[i] = message.created_slot;
            self.hops[i] = message.hops;
            self.wavelengths[i] = 0;
            handle
        } else {
            let handle = self.ids.len() as u32;
            self.ids.push(message.id);
            self.srcs.push(message.source as u32);
            self.dsts.push(message.destination as u32);
            self.injected_at.push(message.created_slot);
            self.hops.push(message.hops);
            self.wavelengths.push(0);
            handle
        }
    }

    /// Returns `handle`'s slot to the free list.  The handle must not be
    /// used again until `insert` hands it back out.
    pub fn release(&mut self, handle: u32) {
        self.free.push(handle);
    }

    /// The message identifier stored at `handle`.
    #[inline]
    pub fn id(&self, handle: u32) -> u64 {
        self.ids[handle as usize]
    }

    /// The source processor stored at `handle`.
    #[inline]
    pub fn src(&self, handle: u32) -> usize {
        self.srcs[handle as usize] as usize
    }

    /// The destination processor stored at `handle`.
    #[inline]
    pub fn dst(&self, handle: u32) -> usize {
        self.dsts[handle as usize] as usize
    }

    /// The slot in which the message at `handle` was injected.
    #[inline]
    pub fn injected_at(&self, handle: u32) -> u64 {
        self.injected_at[handle as usize]
    }

    /// The hop count of the message at `handle`.
    #[inline]
    pub fn hops(&self, handle: u32) -> u32 {
        self.hops[handle as usize]
    }

    /// Increments the hop count of the message at `handle`.
    #[inline]
    pub fn add_hop(&mut self, handle: u32) {
        self.hops[handle as usize] += 1;
    }

    /// Overwrites the hop count of the message at `handle`.
    #[inline]
    pub fn set_hops(&mut self, handle: u32, hops: u32) {
        self.hops[handle as usize] = hops;
    }

    /// The wavelength most recently assigned to the message at `handle`.
    #[inline]
    pub fn wavelength(&self, handle: u32) -> usize {
        self.wavelengths[handle as usize] as usize
    }

    /// Records the wavelength granted to the message at `handle` for its
    /// current hop.
    #[inline]
    pub fn set_wavelength(&mut self, handle: u32, wavelength: usize) {
        self.wavelengths[handle as usize] = wavelength as u32;
    }

    /// The number of arena slots allocated so far (live plus free); an upper
    /// bound on every handle, useful for sizing parallel side arrays.
    pub fn capacity(&self) -> usize {
        self.ids.len()
    }

    /// Empties the arena for a new run.  Every column is cleared but keeps
    /// its allocation, so a reused arena hands out the exact handle sequence
    /// a fresh one would — byte-identical runs — while only touching the
    /// allocator when a later run's peak live population exceeds anything
    /// seen before.
    pub fn reset(&mut self) {
        self.ids.clear();
        self.srcs.clear();
        self.dsts.clear();
        self.injected_at.clear();
        self.hops.clear();
        self.wavelengths.clear();
        self.free.clear();
    }

    /// The number of live messages.
    pub fn live(&self) -> usize {
        self.ids.len() - self.free.len()
    }
}

/// `u64`-word bitset of free output ports at one node, rebuilt each slot by
/// the hot-potato loop and consumed as the mask argument of
/// [`otis_routing::HotPotatoRouter::choose_port_randomized_masked`].
#[derive(Debug, Default, Clone)]
pub struct PortBits {
    words: Vec<u64>,
}

impl PortBits {
    /// An empty mask; call [`PortBits::reset`] before use.
    pub fn new() -> Self {
        PortBits::default()
    }

    /// Marks all of `ports` ports free.  Bits beyond `ports` may also be
    /// set; callers must not ask about ports they did not declare.
    pub fn reset(&mut self, ports: usize) {
        self.words.clear();
        self.words.resize(ports.div_ceil(64), !0u64);
    }

    /// Whether `port` is still free.
    #[inline]
    pub fn is_free(&self, port: usize) -> bool {
        self.words[port >> 6] & (1u64 << (port & 63)) != 0
    }

    /// Marks `port` busy for the rest of the slot.
    #[inline]
    pub fn close(&mut self, port: usize) {
        self.words[port >> 6] &= !(1u64 << (port & 63));
    }

    /// The raw words, bit `p % 64` of word `p / 64` set iff port `p` is
    /// free — the layout `choose_port_randomized_masked` expects.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Truncates or grows a bucket array to exactly `n` empty buckets, keeping
/// the allocations of the buckets that survive.  The per-node and
/// per-coupler handle buckets of both slot loops reset through this, so a
/// scratch pool reused across cells of different network sizes always
/// presents the exact initial state a fresh allocation would.
pub(crate) fn reset_buckets(buckets: &mut Vec<Vec<u32>>, n: usize) {
    buckets.truncate(n);
    for bucket in buckets.iter_mut() {
        bucket.clear();
    }
    buckets.resize_with(n, Vec::new);
}

/// The hot-potato half of a [`SlotScratch`]: per-node handle buckets, the
/// slot-global transit list with its per-node spans, the port-occupancy
/// bitset and the deflection tie-break buffer.
#[derive(Debug, Default)]
pub(crate) struct HotScratch {
    /// Handles at each node at the start of the slot.
    pub(crate) at_node: Vec<Vec<u32>>,
    /// Handles arriving at each node for the next slot.
    pub(crate) arriving: Vec<Vec<u32>>,
    /// The slot's transit handles, all nodes back to back.
    pub(crate) transit: Vec<u32>,
    /// `transit[spans[v].0 .. spans[v].1]` is node `v`'s transit traffic.
    pub(crate) spans: Vec<(u32, u32)>,
    /// Free-port bitset, rebuilt per node.
    pub(crate) ports: PortBits,
    /// Equally-good candidate ports of one deflection decision.
    pub(crate) ties: Vec<usize>,
}

impl HotScratch {
    /// Resets the buckets to `n` empty nodes and clears the slot buffers.
    pub(crate) fn begin_run(&mut self, n: usize) {
        reset_buckets(&mut self.at_node, n);
        reset_buckets(&mut self.arriving, n);
        self.transit.clear();
        self.spans.clear();
        self.ties.clear();
    }
}

/// Reusable per-worker hot state for the slot loops of both simulator
/// families: the message arena, the injection decisions and the family
/// specific queue/port/tie buffers, bundled so a scenario worker can thread
/// one pool through every cell it runs.
///
/// Every buffer is *reset* (never reallocated) at the start of a run, and a
/// reset buffer is indistinguishable from a fresh one — so driving a kernel
/// through a scratch pool is byte-identical to the plain entry points while
/// only touching the allocator when a run's peak population exceeds anything
/// the pool has seen.  A pool serves cells of different networks, sizes and
/// families back to back; it is `Send`, so an engine can hand one to each
/// worker thread for the worker's whole lifetime.
#[derive(Debug, Default)]
pub struct SlotScratch {
    /// The per-run mutable core, re-armed by [`RunCore::reset`] per cell.
    pub(crate) core: RunCore,
    /// The struct-of-arrays message store.
    pub(crate) arena: MessageArena,
    /// This slot's injection decisions, one per processor.
    pub(crate) injections: Vec<Option<usize>>,
    /// Hot-potato buffers.
    pub(crate) hot: HotScratch,
    /// Multi-OPS buffers.
    pub(crate) ops: crate::multi_ops::OpsScratch,
}

impl SlotScratch {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        SlotScratch::default()
    }

    /// Arena slots allocated by the most recent run — its peak live message
    /// population, since the arena is emptied between runs.  Scratch-reuse
    /// tests assert this high-water mark matches a fresh arena's, proving
    /// pooling never inflates the handle space.
    pub fn arena_capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Re-arms the shared (family-independent) state for one run.
    pub(crate) fn begin_run(&mut self, seed: u64, processors: usize, channels: usize) {
        self.core.reset(seed, processors, channels);
        self.arena.reset();
        self.injections.clear();
    }
}

/// Picks and occupies a wavelength on `channel` under the given assignment
/// discipline, returning the chosen wavelength index.
///
/// The caller must have checked `!spectrum.is_full(channel)`.  First-fit
/// takes the lowest free wavelength without touching the RNG; random draws
/// one `gen_range` over the free count, so the RNG stream depends only on
/// the discipline, never on which wavelengths happen to be free.
pub(crate) fn assign_wavelength(
    spectrum: &mut SpectrumMap,
    channel: usize,
    assignment: WavelengthAssignment,
    rng: &mut StdRng,
) -> usize {
    let lambda = match assignment {
        WavelengthAssignment::FirstFit => spectrum
            .first_free(channel)
            .expect("assign_wavelength called on a full channel"),
        WavelengthAssignment::Random => {
            let free = spectrum.free_count(channel);
            debug_assert!(free > 0, "assign_wavelength called on a full channel");
            let pick = rng.gen_range(0..free);
            spectrum
                .nth_free(channel, pick)
                .expect("nth_free within free_count")
        }
    };
    let fresh = spectrum.occupy(channel, lambda);
    debug_assert!(fresh, "assigned wavelength was already occupied");
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_accounting_assigns_sequential_ids() {
        let mut core = RunCore::new(7, 4, 4);
        let a = core.inject(0, 1, 0);
        let b = core.inject(2, 3, 5);
        assert_eq!(a.id, 0);
        assert_eq!(b.id, 1);
        assert_eq!(b.created_slot, 5);
        assert_eq!(core.metrics.injected, 2);
    }

    #[test]
    fn slot_clock_counts_slots_started() {
        let mut core = RunCore::new(1, 2, 2);
        core.begin_slot(0);
        assert_eq!(core.metrics.slots, 1);
        core.begin_slot(41);
        assert_eq!(core.metrics.slots, 42);
    }

    #[test]
    fn livelock_guard_respects_the_disable_sentinel() {
        assert!(!RunCore::livelock_exceeded(0, u32::MAX));
        assert!(!RunCore::livelock_exceeded(5, 4));
        assert!(RunCore::livelock_exceeded(5, 5));
        assert!(RunCore::livelock_exceeded(5, 6));
    }

    #[test]
    fn finish_records_in_flight() {
        let mut core = RunCore::new(1, 2, 2);
        core.begin_slot(0);
        core.deliver(3, 2);
        core.drop_message();
        core.grant();
        let m = core.finish(4);
        assert_eq!(m.delivered, 1);
        assert_eq!(m.total_latency, 3);
        assert_eq!(m.dropped, 1);
        assert_eq!(m.grants, 1);
        assert_eq!(m.in_flight, 4);
    }

    #[test]
    fn same_seed_same_stream() {
        use rand::Rng;
        let mut a = RunCore::new(99, 1, 1);
        let mut b = RunCore::new(99, 1, 1);
        let xs: Vec<usize> = (0..8).map(|_| a.rng.gen_range(0..1000)).collect();
        let ys: Vec<usize> = (0..8).map(|_| b.rng.gen_range(0..1000)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn arena_reuses_released_slots() {
        let mut arena = MessageArena::new();
        let a = arena.insert(&Message::new(0, 1, 2, 3));
        let b = arena.insert(&Message::new(1, 4, 5, 6));
        assert_eq!(arena.capacity(), 2);
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.dst(a), 2);
        assert_eq!(arena.injected_at(b), 6);
        arena.release(a);
        assert_eq!(arena.live(), 1);
        let c = arena.insert(&Message::new(2, 7, 8, 9));
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(arena.capacity(), 2);
        assert_eq!(arena.id(c), 2);
        assert_eq!(arena.src(c), 7);
        assert_eq!(arena.dst(c), 8);
        assert_eq!(arena.hops(c), 0);
        assert_eq!(arena.wavelength(c), 0);
        arena.add_hop(c);
        arena.set_hops(b, 5);
        arena.set_wavelength(c, 3);
        assert_eq!(arena.hops(c), 1);
        assert_eq!(arena.hops(b), 5);
        assert_eq!(arena.wavelength(c), 3);
    }

    #[test]
    fn port_bits_track_closures_across_words() {
        let mut bits = PortBits::new();
        bits.reset(70);
        assert_eq!(bits.words().len(), 2);
        assert!(bits.is_free(0));
        assert!(bits.is_free(69));
        bits.close(0);
        bits.close(65);
        assert!(!bits.is_free(0));
        assert!(!bits.is_free(65));
        assert!(bits.is_free(64));
        bits.reset(3);
        assert_eq!(bits.words().len(), 1);
        assert!(bits.is_free(0));
    }

    #[test]
    fn first_fit_assignment_takes_lowest_free_without_rng() {
        let mut spectrum = SpectrumMap::new(2, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let before: Vec<usize> = {
            let mut probe = StdRng::seed_from_u64(1);
            (0..4).map(|_| probe.gen_range(0..1_000_000)).collect()
        };
        assert_eq!(
            assign_wavelength(&mut spectrum, 0, WavelengthAssignment::FirstFit, &mut rng),
            0
        );
        assert_eq!(
            assign_wavelength(&mut spectrum, 0, WavelengthAssignment::FirstFit, &mut rng),
            1
        );
        let after: Vec<usize> = (0..4).map(|_| rng.gen_range(0..1_000_000)).collect();
        assert_eq!(after, before, "first-fit must not consume the RNG");
        assert_eq!(spectrum.occupied_count(0), 2);
        assert_eq!(spectrum.occupied_count(1), 0);
    }

    #[test]
    fn random_assignment_occupies_a_free_wavelength() {
        let mut spectrum = SpectrumMap::new(1, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let lambda =
                assign_wavelength(&mut spectrum, 0, WavelengthAssignment::Random, &mut rng);
            assert!(!seen.contains(&lambda));
            seen.push(lambda);
        }
        assert!(spectrum.is_full(0));
    }
}
