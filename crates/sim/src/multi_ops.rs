//! Slotted simulation of multi-OPS (stack-graph) networks.
//!
//! The model follows the behavioural facts established by the optics layer:
//!
//! * time is divided into slots;
//! * each OPS coupler carries one message per slot *per wavelength*
//!   (capacity 1 in the paper's single-wavelength model, `W` under a
//!   [`WavelengthConfig`] with `count = W`), each chosen by an
//!   [`ArbitrationPolicy`] among the processors of its tail that have a
//!   message queued for it;
//! * a processor has one transmitter per coupler it feeds and one receiver
//!   per coupler it hears (as in the OTIS designs), so it can take part in
//!   several couplers in the same slot;
//! * messages follow the group-level routes of
//!   [`otis_routing::StackRouter`]; intermediate processors re-queue the
//!   message for its next-hop coupler in the following slot.
//!
//! The simulator is split into *prepare* and *execute* phases:
//!
//! * [`PreparedMultiOps`] is the immutable kernel — the fault-filtered
//!   [`StackRouter`] quotient plus a flat CSR-style table of every
//!   source/destination route (one contiguous [`StackHop`] slice per pair),
//!   built once per `(stack-graph, fault-pattern)` pair.  A fault pattern's
//!   kernel can also be *delta-repaired* from the fault-free base
//!   ([`PreparedMultiOps::repair_from`]): only quotient columns and route
//!   pairs the faults actually touch are recomputed, and the result is
//!   bit-identical to building from scratch;
//! * [`PreparedMultiOps::run`] owns only per-run mutable state and drives
//!   the shared struct-of-arrays slot engine of [`crate::kernel`]: messages
//!   live in a [`crate::kernel::MessageArena`], the per-coupler queues hold
//!   `u32` handles, and per-flight routing state (current route, hop
//!   position, holder) sits in parallel arrays indexed by handle.  No
//!   per-slot allocations: routes are precomputed slices, and the
//!   arbitration candidate buffer is reused across couplers and slots.
//!
//! One loop serves both transmission disciplines.  With the default
//! capacity 1 and no alternates, couplers run the *queued* discipline:
//! per-coupler queues, one grant per coupler per slot, back-pressure via
//! `queue_limit`, wavelength layer off.  With `wavelengths.count > 1` (or
//! alternate routes prepared via [`PreparedMultiOps::with_alternates`]) the
//! couplers run the *bufferless transmit-or-block* discipline: every
//! message must transmit in the slot it reaches a coupler.  Up to `W`
//! messages win each coupler per slot (occupancy tracked by a reused
//! [`SpectrumMap`] bitmask); a loser tries the precomputed alternate routes
//! from its current holder, taking the first whose leading coupler still
//! has a free wavelength, and is otherwise counted *blocked* and dropped.
//! The `queue_limit` knob is ignored in bufferless mode — there are no
//! queues to limit.  Both disciplines are byte-identical to the previous
//! per-coupler `VecDeque<InFlight>` engine: same RNG draw order, same
//! arbitration candidate order, same metrics.
//!
//! [`MultiOpsSim`] remains as the one-shot convenience: a prepared kernel
//! bundled with one [`MultiOpsSimConfig`].

use crate::arbitration::ArbitrationPolicy;
use crate::demand::DemandSource;
use crate::kernel::{assign_wavelength, SlotScratch};
use crate::metrics::SimMetrics;
use crate::schedule::{FaultSchedule, FaultScheduleError, RestoreTracker};
use crate::traffic::TrafficPattern;
use crate::wavelength::WavelengthConfig;
use otis_graphs::algorithms::k_shortest_paths_avoiding;
use otis_graphs::{SpectrumMap, StackGraph};
use otis_routing::{FaultSet, StackHop, StackRouter};
use std::sync::Arc;

/// Configuration of one multi-OPS simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiOpsSimConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// Arbitration policy applied at every coupler.
    pub policy: ArbitrationPolicy,
    /// Random seed (traffic and random arbitration).
    pub seed: u64,
    /// Messages a processor may hold queued per coupler before it stops
    /// injecting (back-pressure).  `0` means unlimited.  Ignored in
    /// wavelength mode (the bufferless loop has no queues).
    pub queue_limit: usize,
    /// Wavelength capacity per coupler.  The default (capacity 1) keeps the
    /// legacy queued slot loop; `count > 1` engages the bufferless
    /// transmit-or-block wavelength loop.
    pub wavelengths: WavelengthConfig,
}

impl Default for MultiOpsSimConfig {
    fn default() -> Self {
        MultiOpsSimConfig {
            slots: 1000,
            policy: ArbitrationPolicy::OldestFirst,
            seed: 1,
            queue_limit: 0,
            wavelengths: WavelengthConfig::default(),
        }
    }
}

/// Per-flight routing state of the slot loop, parallel arrays indexed by
/// [`MessageArena`] handle (the arena itself holds the message columns —
/// destination, injection slot, hops).  A flight's route is *not* carried
/// along: it lives in the kernel's flat route tables, identified by
/// `(route_src, alt)` — the primary route from `route_src` when `alt == 0`
/// (for never-rerouted traffic `route_src` is the original source), or the
/// `(alt-1)`-th prepared alternate from `route_src` after an
/// alternate-routing event.  `next_hop` is the position reached within that
/// route slice and `holder` the processor currently holding the message.
#[derive(Debug, Default)]
pub(crate) struct FlightState {
    route_src: Vec<u32>,
    alt: Vec<u32>,
    next_hop: Vec<u32>,
    holder: Vec<u32>,
}

impl FlightState {
    /// Initialises the state of a freshly injected flight at `handle`,
    /// growing the arrays if the arena handed out a new slot.
    fn init(&mut self, handle: u32, src: usize) {
        let i = handle as usize;
        if i >= self.route_src.len() {
            let len = i + 1;
            self.route_src.resize(len, 0);
            self.alt.resize(len, 0);
            self.next_hop.resize(len, 0);
            self.holder.resize(len, 0);
        }
        self.route_src[i] = src as u32;
        self.alt[i] = 0;
        self.next_hop[i] = 0;
        self.holder[i] = src as u32;
    }

    #[inline]
    fn route_src(&self, handle: u32) -> usize {
        self.route_src[handle as usize] as usize
    }

    #[inline]
    fn alt(&self, handle: u32) -> usize {
        self.alt[handle as usize] as usize
    }

    #[inline]
    fn next_hop(&self, handle: u32) -> usize {
        self.next_hop[handle as usize] as usize
    }

    #[inline]
    fn holder(&self, handle: u32) -> usize {
        self.holder[handle as usize] as usize
    }

    /// Re-roots the flight onto the `(alt-1)`-th alternate from `route_src`.
    #[inline]
    fn set_route(&mut self, handle: u32, route_src: usize, alt: usize) {
        self.route_src[handle as usize] = route_src as u32;
        self.alt[handle as usize] = alt as u32;
    }

    /// Advances the flight one hop: new position within its route and new
    /// holding processor.
    #[inline]
    fn advance(&mut self, handle: u32, next_hop: usize, holder: usize) {
        self.next_hop[handle as usize] = next_hop as u32;
        self.holder[handle as usize] = holder as u32;
    }

    /// Empties the arrays for a new run, keeping their allocations; they
    /// regrow as the arena hands out handles, exactly as a fresh state
    /// would.
    fn clear(&mut self) {
        self.route_src.clear();
        self.alt.clear();
        self.next_hop.clear();
        self.holder.clear();
    }
}

/// The multi-OPS half of a [`crate::kernel::SlotScratch`]: flight-state
/// arrays, the per-coupler pending queues of this and the next slot, the
/// round-robin arbitration memory and the candidate/overflow buffers.
#[derive(Debug, Default)]
pub(crate) struct OpsScratch {
    /// Route position and holder of every in-flight message.
    pub(crate) flights: FlightState,
    /// Handles awaiting transmission this slot, per coupler.
    pub(crate) pending: Vec<Vec<u32>>,
    /// Handles forwarded to a lower-index coupler for the next slot.
    pub(crate) next_pending: Vec<Vec<u32>>,
    /// Last winning holder per coupler (round-robin arbitration state).
    pub(crate) last_winner: Vec<Option<usize>>,
    /// `(holder, injected_at)` candidates of one arbitration round.
    pub(crate) candidates: Vec<(usize, u64)>,
    /// Drain buffer for kernel swaps and bufferless overflow.
    pub(crate) overflow: Vec<u32>,
}

impl OpsScratch {
    /// Resets the queues to `couplers` empty couplers and clears the
    /// per-run buffers.
    pub(crate) fn begin_run(&mut self, couplers: usize) {
        self.flights.clear();
        crate::kernel::reset_buckets(&mut self.pending, couplers);
        crate::kernel::reset_buckets(&mut self.next_pending, couplers);
        self.last_winner.clear();
        self.last_winner.resize(couplers, None);
        self.candidates.clear();
        self.overflow.clear();
    }
}

/// All routes of one prepared network, flattened CSR-style: the hops of the
/// route from `src` to `dst` are the contiguous slice
/// `hops[offsets[src·n + dst] .. offsets[src·n + dst + 1]]`.  Pairs the
/// (fault-filtered) quotient cannot connect are marked unreachable.  Memory
/// is `O(n² · diameter)` — the same order as the routing tables already
/// underneath — and lookups are two loads, so the injection path of the
/// slot loop does no route computation and no allocation.
#[derive(Debug, Clone, PartialEq)]
struct FlatRoutes {
    n: usize,
    offsets: Vec<usize>,
    reachable: Vec<bool>,
    hops: Vec<StackHop>,
}

impl FlatRoutes {
    /// Precomputes every route of the router, in source-major order.
    fn new(router: &StackRouter) -> Self {
        let n = router.stack_graph().node_count();
        let mut offsets = Vec::with_capacity(n * n + 1);
        offsets.push(0);
        let mut reachable = Vec::with_capacity(n * n);
        let mut hops = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                match router.route(src, dst) {
                    Some(route) => {
                        reachable.push(true);
                        hops.extend(route.hops);
                    }
                    None => reachable.push(false),
                }
                offsets.push(hops.len());
            }
        }
        FlatRoutes {
            n,
            offsets,
            reachable,
            hops,
        }
    }

    /// The hop slice of the route from `src` to `dst`; `None` when the pair
    /// is unreachable (a failed endpoint group or a disconnected quotient),
    /// `Some(&[])` when `src == dst`.
    fn get(&self, src: usize, dst: usize) -> Option<&[StackHop]> {
        let pair = src * self.n + dst;
        self.reachable[pair].then(|| &self.hops[self.offsets[pair]..self.offsets[pair + 1]])
    }

    /// Delta-rebuild against a fault-free `base`: `router` must be the
    /// repaired (fault-filtered) router and `changed_groups` the per-group
    /// dirty flags from [`StackRouter::from_repair`].  A pair's route is
    /// copied from the base when the faults provably cannot have changed it
    /// — both endpoint groups live and distinct, and the quotient column of
    /// the destination group untouched by the repair — and recomputed
    /// through the repaired router otherwise.  The result is bit-identical
    /// to [`FlatRoutes::new`] over the repaired router.
    fn repaired(base: &FlatRoutes, router: &StackRouter, changed_groups: &[bool]) -> Self {
        let stack = router.stack_graph();
        let n = stack.node_count();
        let faults = router.faults();
        let group_of: Vec<usize> = (0..n).map(|p| stack.to_stack_node(p).group).collect();
        let group_live: Vec<bool> = (0..changed_groups.len())
            .map(|g| !faults.node_failed(g))
            .collect();
        let mut offsets = Vec::with_capacity(n * n + 1);
        offsets.push(0);
        let mut reachable = Vec::with_capacity(n * n);
        let mut hops: Vec<StackHop> = Vec::new();
        for src in 0..n {
            let gs = group_of[src];
            for (dst, &gd) in group_of.iter().enumerate() {
                let reuse = gs != gd && group_live[gs] && group_live[gd] && !changed_groups[gd];
                if reuse {
                    match base.get(src, dst) {
                        Some(slice) => {
                            reachable.push(true);
                            hops.extend_from_slice(slice);
                        }
                        None => reachable.push(false),
                    }
                } else {
                    match router.route(src, dst) {
                        Some(route) => {
                            reachable.push(true);
                            hops.extend(route.hops);
                        }
                        None => reachable.push(false),
                    }
                }
                offsets.push(hops.len());
            }
        }
        FlatRoutes {
            n,
            offsets,
            reachable,
            hops,
        }
    }

    /// Delta-rebuild for *recovery* — the direction [`FlatRoutes::repaired`]
    /// does not cover: `current` is the route table in force before the
    /// swap (prepared under `previous` faults), `router` the recovered
    /// router (fewer faults) and `changed_groups` the per-group dirty flags
    /// from [`StackRouter::from_recovery`] — a group's flag is clear when
    /// its quotient column is unchanged *on every previously-live row*.  A
    /// pair's route is copied from `current` when recovery provably cannot
    /// have changed it: endpoint groups distinct and live under `previous`
    /// (cross-group routes only traverse previously-live rows of the
    /// destination column, so an unchanged column pins the whole route),
    /// and recomputed through the recovered router otherwise.  The result
    /// is bit-identical to [`FlatRoutes::new`] over the recovered router.
    fn recovered(
        current: &FlatRoutes,
        router: &StackRouter,
        previous: &FaultSet,
        changed_groups: &[bool],
    ) -> Self {
        let stack = router.stack_graph();
        let n = stack.node_count();
        let group_of: Vec<usize> = (0..n).map(|p| stack.to_stack_node(p).group).collect();
        let prev_live: Vec<bool> = (0..changed_groups.len())
            .map(|g| !previous.node_failed(g))
            .collect();
        let mut offsets = Vec::with_capacity(n * n + 1);
        offsets.push(0);
        let mut reachable = Vec::with_capacity(n * n);
        let mut hops: Vec<StackHop> = Vec::new();
        for src in 0..n {
            let gs = group_of[src];
            for (dst, &gd) in group_of.iter().enumerate() {
                let reuse = gs != gd && prev_live[gs] && prev_live[gd] && !changed_groups[gd];
                if reuse {
                    match current.get(src, dst) {
                        Some(slice) => {
                            reachable.push(true);
                            hops.extend_from_slice(slice);
                        }
                        None => reachable.push(false),
                    }
                } else {
                    match router.route(src, dst) {
                        Some(route) => {
                            reachable.push(true);
                            hops.extend(route.hops);
                        }
                        None => reachable.push(false),
                    }
                }
                offsets.push(hops.len());
            }
        }
        FlatRoutes {
            n,
            offsets,
            reachable,
            hops,
        }
    }
}

/// Alternate routes for every source/destination pair, precomputed at
/// prepare time with Yen's k-shortest-path on the (fault-filtered) quotient
/// and materialised into concrete hop sequences.  The primary route is
/// excluded; entry order is best-first.  Empty when the kernel was prepared
/// with `alt_paths <= 1`.
#[derive(Debug, Clone, Default)]
struct AltRoutes {
    n: usize,
    /// `routes[src · n + dst]`: alternate hop sequences, best first.
    routes: Vec<Vec<Vec<StackHop>>>,
    /// Group-pair cache of the loopless quotient paths the alternates were
    /// materialised from (`group_paths[sg · groups + dg]`, `None` when the
    /// pair was never needed).  Kept on the fault-free base so delta repair
    /// can decide per group pair whether the faults can have perturbed the
    /// Yen enumeration at all — see [`AltRoutes::repaired`].
    group_paths: Vec<Option<Vec<Vec<usize>>>>,
}

/// Routing-visible equality: the prepared alternates per pair.  The
/// `group_paths` cache is deliberately excluded — a repaired table carries
/// a partial cache (only the group pairs it recomputed), which is invisible
/// to run behaviour.
impl PartialEq for AltRoutes {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.routes == other.routes
    }
}

impl AltRoutes {
    /// Precomputes up to `alt_paths - 1` alternates per pair (so primary
    /// plus alternates total at most `alt_paths` routes).  Group-level Yen
    /// paths are computed once per group pair and materialised per
    /// processor pair, keeping the Yen cost `O(groups²)` instead of `O(n²)`.
    fn new(router: &StackRouter, primary: &FlatRoutes, alt_paths: usize) -> Self {
        let stack = router.stack_graph();
        let n = stack.node_count();
        let quotient = stack.quotient();
        let groups = quotient.node_count();
        let faults = router.faults();
        // Group-pair cache of loopless quotient paths.
        let mut group_paths: Vec<Option<Vec<Vec<usize>>>> = vec![None; groups * groups];
        let mut routes = Vec::with_capacity(n * n);
        for src in 0..n {
            for dst in 0..n {
                if src == dst || primary.get(src, dst).is_none() {
                    routes.push(Vec::new());
                    continue;
                }
                let sg = stack.to_stack_node(src).group;
                let dg = stack.to_stack_node(dst).group;
                let cached = &mut group_paths[sg * groups + dg];
                let paths = cached.get_or_insert_with(|| {
                    k_shortest_paths_avoiding(quotient, sg, dg, alt_paths, |u, v| {
                        faults.node_failed(u) || faults.node_failed(v) || faults.blocks(u, v)
                    })
                });
                let primary_hops = primary.get(src, dst).expect("checked above");
                let mut alts = Vec::new();
                for group_path in paths.iter() {
                    if group_path.len() < 2 {
                        continue;
                    }
                    let Some(route) = router.route_via_groups(src, dst, group_path) else {
                        continue;
                    };
                    if route.hops.as_slice() == primary_hops {
                        continue;
                    }
                    alts.push(route.hops);
                    if alts.len() + 1 >= alt_paths {
                        break;
                    }
                }
                routes.push(alts);
            }
        }
        AltRoutes {
            n,
            routes,
            group_paths,
        }
    }

    /// Delta-rebuild against the fault-free base: recomputes alternates only
    /// for pairs the faults can have perturbed, copying everything else from
    /// `base`.  Bit-identical to [`AltRoutes::new`] over the repaired router.
    ///
    /// A pair is reused when both hold:
    ///
    /// * *its group pair's Yen enumeration is provably undisturbed* — every
    ///   loopless quotient path the fault-free Yen run accepted for
    ///   `(sg, dg)` stays clear of the faults.  The faulted enumeration sees
    ///   the same graph along every path it would accept (removing arcs can
    ///   only delay BFS arrivals, never create earlier ones, so a fault-free
    ///   spur result is stable), hence returns the same list;
    /// * *its primary route is byte-identical* to the base's — the
    ///   primary-exclusion test of the materialisation then filters the same
    ///   entries ([`StackRouter::route_via_groups`] is purely structural, so
    ///   identical group paths materialise identically under both routers).
    ///
    /// Everything else goes through the exact [`AltRoutes::new`] machinery
    /// (same lazy group-pair cache, same skip rules, same cap), so
    /// recomputed pairs are trivially identical too.
    fn repaired(
        base: &AltRoutes,
        base_primary: &FlatRoutes,
        router: &StackRouter,
        primary: &FlatRoutes,
        alt_paths: usize,
    ) -> Self {
        if base.routes.is_empty() {
            // The base never prepared alternates (alt_paths <= 1 there);
            // nothing to delta against.
            return AltRoutes::new(router, primary, alt_paths);
        }
        let stack = router.stack_graph();
        let n = stack.node_count();
        let quotient = stack.quotient();
        let groups = quotient.node_count();
        let faults = router.faults();
        // Per group pair: does every base Yen path avoid the faults?
        // (`None` until first queried.)
        let mut undisturbed: Vec<Option<bool>> = vec![None; groups * groups];
        // Lazy cache of *faulted* Yen enumerations, for recomputed pairs.
        let mut group_paths: Vec<Option<Vec<Vec<usize>>>> = vec![None; groups * groups];
        let mut routes = Vec::with_capacity(n * n);
        for src in 0..n {
            for dst in 0..n {
                if src == dst || primary.get(src, dst).is_none() {
                    routes.push(Vec::new());
                    continue;
                }
                let sg = stack.to_stack_node(src).group;
                let dg = stack.to_stack_node(dst).group;
                let pair = sg * groups + dg;
                let clean = *undisturbed[pair].get_or_insert_with(|| {
                    base.group_paths[pair].as_ref().is_some_and(|paths| {
                        paths
                            .iter()
                            .all(|p| p.windows(2).all(|w| !faults.blocks(w[0], w[1])))
                    })
                });
                if clean && primary.get(src, dst) == base_primary.get(src, dst) {
                    routes.push(base.routes[src * n + dst].clone());
                    continue;
                }
                let paths = group_paths[pair].get_or_insert_with(|| {
                    k_shortest_paths_avoiding(quotient, sg, dg, alt_paths, |u, v| {
                        faults.node_failed(u) || faults.node_failed(v) || faults.blocks(u, v)
                    })
                });
                let primary_hops = primary.get(src, dst).expect("checked above");
                let mut alts = Vec::new();
                for group_path in paths.iter() {
                    if group_path.len() < 2 {
                        continue;
                    }
                    let Some(route) = router.route_via_groups(src, dst, group_path) else {
                        continue;
                    };
                    if route.hops.as_slice() == primary_hops {
                        continue;
                    }
                    alts.push(route.hops);
                    if alts.len() + 1 >= alt_paths {
                        break;
                    }
                }
                routes.push(alts);
            }
        }
        AltRoutes {
            n,
            routes,
            group_paths,
        }
    }

    /// Whether any pair has at least one alternate.
    fn has_any(&self) -> bool {
        self.routes.iter().any(|r| !r.is_empty())
    }

    /// The alternates from `src` to `dst`, best first (empty when none were
    /// prepared).
    fn get(&self, src: usize, dst: usize) -> &[Vec<StackHop>] {
        if self.routes.is_empty() {
            &[]
        } else {
            &self.routes[src * self.n + dst]
        }
    }
}

/// The immutable, shareable kernel of the multi-OPS simulator: the
/// fault-filtered [`StackRouter`] (quotient routing table) plus the
/// [`FlatRoutes`] table of every source/destination route, and — when
/// prepared with [`PreparedMultiOps::with_alternates`] — the [`AltRoutes`]
/// table of Yen alternates.  Building one is
/// the expensive part of a simulation; [`PreparedMultiOps::run`] is the
/// cheap part and can be called any number of times with different seeds,
/// traffic patterns and slot counts.
///
/// The kernel is `Send + Sync`, so a scenario engine can build it once per
/// distinct `(stack-graph, fault-pattern)` pair and share it across worker
/// threads.
#[derive(Debug, Clone)]
pub struct PreparedMultiOps {
    router: StackRouter,
    routes: FlatRoutes,
    alts: AltRoutes,
}

impl PreparedMultiOps {
    /// Prepares a kernel over a shared stack-graph, routing around the given
    /// faults.  The fault set is interpreted over the quotient (see
    /// [`StackRouter::with_faults`]): failed groups neither send nor
    /// receive, blocked couplers carry nothing, and injections the surviving
    /// quotient cannot route are refused at run time (not counted as
    /// injected).
    pub fn new(stack: Arc<StackGraph>, faults: FaultSet) -> Self {
        Self::with_alternates(stack, faults, 1)
    }

    /// Like [`PreparedMultiOps::new`], but additionally precomputes up to
    /// `alt_paths - 1` alternate routes per source/destination pair (Yen's
    /// k-shortest loopless paths on the fault-filtered quotient), for use by
    /// the wavelength-mode slot loop.  `alt_paths <= 1` prepares no
    /// alternates and is exactly [`PreparedMultiOps::new`].
    pub fn with_alternates(stack: Arc<StackGraph>, faults: FaultSet, alt_paths: usize) -> Self {
        let router = StackRouter::from_shared(stack, faults);
        let routes = FlatRoutes::new(&router);
        let alts = if alt_paths > 1 {
            AltRoutes::new(&router, &routes, alt_paths)
        } else {
            AltRoutes::default()
        };
        PreparedMultiOps {
            router,
            routes,
            alts,
        }
    }

    /// Prepares a kernel from an owned stack-graph; see
    /// [`PreparedMultiOps::new`].
    pub fn from_stack(stack: StackGraph, faults: FaultSet) -> Self {
        Self::new(Arc::new(stack), faults)
    }

    /// Derives the kernel for `faults` from a fault-free base kernel by
    /// delta-repair instead of rebuilding from scratch: the quotient routing
    /// table is column-repaired (see [`StackRouter::from_repair`]), only the
    /// flat-route pairs the faults can have touched are recomputed
    /// ([`FlatRoutes::repaired`]), and — when `alt_paths > 1` — alternate
    /// routes are delta-rebuilt too ([`AltRoutes::repaired`]): group-level
    /// Yen reruns only for group pairs whose fault-free enumeration the
    /// faults can have disturbed, and per-pair materialisation only where the
    /// Yen list or the primary route changed.  The result is bit-identical to
    /// [`PreparedMultiOps::with_alternates`] over the base stack-graph and
    /// the same faults, so runs from a repaired kernel match runs from a
    /// fresh one exactly.  `alt_paths` must equal the value the base was
    /// prepared with.
    ///
    /// # Panics
    ///
    /// Panics if `base` was prepared with a non-empty fault set.
    pub fn repair_from(base: &PreparedMultiOps, faults: &FaultSet, alt_paths: usize) -> Self {
        assert!(
            base.router.faults().is_empty(),
            "repair_from requires a fault-free base kernel"
        );
        if faults.is_empty() {
            return base.clone();
        }
        let repair = StackRouter::from_repair(&base.router, faults);
        let routes = FlatRoutes::repaired(&base.routes, &repair.router, &repair.changed_groups);
        let alts = if alt_paths > 1 {
            AltRoutes::repaired(&base.alts, &base.routes, &repair.router, &routes, alt_paths)
        } else {
            AltRoutes::default()
        };
        PreparedMultiOps {
            router: repair.router,
            routes,
            alts,
        }
    }

    /// Derives the kernel for `faults` from the `current` kernel when the
    /// fault set *shrinks* — the recovery direction
    /// [`PreparedMultiOps::repair_from`] does not cover.  The quotient
    /// routing table is rebuilt from the fault-free `base` by column repair
    /// (bit-identical to from-scratch) while the per-group change flags are
    /// computed against `current` restricted to previously-live rows (see
    /// [`StackRouter::from_recovery`]), so [`FlatRoutes::recovered`] can
    /// copy every route recovery provably cannot have changed from
    /// `current` instead of recomputing it.  Alternate routes are recomputed
    /// in full when `alt_paths > 1` — recovery *adds* quotient paths back,
    /// so the current kernel's Yen enumerations bound nothing (unlike the
    /// repair direction, where [`AltRoutes::repaired`] delta-rebuilds).  The
    /// result is bit-identical to [`PreparedMultiOps::with_alternates`]
    /// over the base stack-graph and `faults`.  `alt_paths` must equal the
    /// value `base` and `current` were prepared with.
    ///
    /// # Panics
    ///
    /// Panics if `base` was prepared with a non-empty fault set; debug
    /// builds also assert `faults` is a subset of `current`'s.
    pub fn recover_from(
        current: &PreparedMultiOps,
        base: &PreparedMultiOps,
        faults: &FaultSet,
        alt_paths: usize,
    ) -> Self {
        assert!(
            base.router.faults().is_empty(),
            "recover_from requires a fault-free base kernel"
        );
        if faults.is_empty() {
            return base.clone();
        }
        let previous = current.router.faults().clone();
        let repair = StackRouter::from_recovery(&current.router, &base.router, faults);
        let routes = FlatRoutes::recovered(
            &current.routes,
            &repair.router,
            &previous,
            &repair.changed_groups,
        );
        let alts = if alt_paths > 1 {
            AltRoutes::new(&repair.router, &routes, alt_paths)
        } else {
            AltRoutes::default()
        };
        PreparedMultiOps {
            router: repair.router,
            routes,
            alts,
        }
    }

    /// Builds the epoch timeline a [`FaultSchedule`] prescribes for runs of
    /// the `initial` kernel: one `(slot, kernel)` pair per distinct event
    /// slot (fault targets are quotient groups and couplers, the multi-OPS
    /// fault domain), each kernel bit-identical to preparing its epoch's
    /// fault set from scratch.  Epochs that grow the fault set are
    /// delta-repaired from the fault-free `base`
    /// ([`PreparedMultiOps::repair_from`]); epochs that shrink it are
    /// derived from the preceding epoch's kernel by the recovery path
    /// ([`PreparedMultiOps::recover_from`]).  The result feeds
    /// [`PreparedMultiOps::run_with_timeline`].  `alt_paths` must equal the
    /// value `base` and `initial` were prepared with.
    ///
    /// Fails with a typed [`FaultScheduleError`] when an event targets a
    /// group outside the quotient or a scheduled failure duplicates one of
    /// `initial`'s static faults.
    ///
    /// # Panics
    ///
    /// Panics if `base` was prepared with a non-empty fault set.
    pub fn timeline_from(
        base: &PreparedMultiOps,
        initial: &PreparedMultiOps,
        schedule: &FaultSchedule,
        alt_paths: usize,
    ) -> Result<Vec<(u64, PreparedMultiOps)>, FaultScheduleError> {
        let groups = base.router.stack_graph().quotient().node_count();
        let epochs = schedule.bind(groups, initial.router.faults())?;
        let mut timeline: Vec<(u64, PreparedMultiOps)> = Vec::with_capacity(epochs.len());
        for (slot, faults) in epochs {
            let prev = timeline.last().map(|(_, k)| k).unwrap_or(initial);
            let kernel = if faults.is_subset_of(prev.router.faults()) {
                PreparedMultiOps::recover_from(prev, base, &faults, alt_paths)
            } else {
                PreparedMultiOps::repair_from(base, &faults, alt_paths)
            };
            timeline.push((slot, kernel));
        }
        Ok(timeline)
    }

    /// Number of processors simulated.
    pub fn processor_count(&self) -> usize {
        self.router.stack_graph().node_count()
    }

    /// Number of couplers simulated.
    pub fn coupler_count(&self) -> usize {
        self.router.stack_graph().hyperarc_count()
    }

    /// The fault-avoiding router underneath (exposes the stack-graph and
    /// the faults fixed at prepare time).
    pub fn router(&self) -> &StackRouter {
        &self.router
    }

    /// Structural equality of the routing state — flat routes and prepared
    /// alternates — used by the delta-repair acceptance tests to prove a
    /// repaired kernel bit-identical to a from-scratch build.  Hidden from
    /// docs: not part of the simulation surface.
    #[doc(hidden)]
    pub fn routing_state_eq(&self, other: &PreparedMultiOps) -> bool {
        self.router.faults() == other.router.faults()
            && self.routes == other.routes
            && self.alts == other.alts
    }

    /// Whether alternate routes were prepared (via
    /// [`PreparedMultiOps::with_alternates`] with `alt_paths > 1` and at
    /// least one pair having a second loopless quotient path).  When true,
    /// [`PreparedMultiOps::run`] always uses the wavelength-mode loop, even
    /// at capacity 1.
    pub fn has_alternates(&self) -> bool {
        self.alts.has_any()
    }

    /// The route slice the flight at `handle` is currently following:
    /// primary from `route_src` when `alt == 0`, otherwise the `(alt-1)`-th
    /// prepared alternate from `route_src`.
    fn route_of(&self, route_src: usize, dst: usize, alt: usize) -> &[StackHop] {
        if alt == 0 {
            self.routes
                .get(route_src, dst)
                .expect("flights only enter precomputed routes")
        } else {
            &self.alts.get(route_src, dst)[alt - 1]
        }
    }

    /// Executes one run: `config` carries the run-scoped knobs (slots, seed,
    /// arbitration policy, queue limit, wavelength capacity), `traffic`
    /// drives the injections.  One struct-of-arrays slot loop serves both
    /// transmission disciplines.
    ///
    /// *Queued* (capacity 1, no alternates): per-coupler queues, one grant
    /// per coupler per slot, back-pressure via `queue_limit`, wavelength
    /// layer off.
    ///
    /// *Bufferless transmit-or-block* (`W > 1` or alternates prepared):
    /// couplers are processed in index order and grant up to `W`
    /// transmissions each (winners chosen one at a time by the arbitration
    /// policy, wavelengths by the assignment discipline — occupancy lives in
    /// a reused [`SpectrumMap`], cleared per slot, never reallocated).  A
    /// message that finds its coupler exhausted falls back to the prepared
    /// alternate routes out of its current holder, taking the first whose
    /// leading coupler still has a free wavelength — an alternate grant
    /// bypasses that coupler's arbitration round, consuming spare capacity
    /// directly.  If no alternate can carry it, the message is counted
    /// blocked and dropped.  A forward whose next coupler has a higher index
    /// transmits again within the same slot; otherwise it waits for the next
    /// slot (in queued mode a lower-index forward simply sits in its queue
    /// until the next slot comes around).
    ///
    /// All mutable state is local to this call — the message arena, the
    /// handle buckets, the flight-state arrays and the arbitration candidate
    /// buffer are reused across couplers and slots, no per-slot allocations.
    pub fn run(&self, traffic: &TrafficPattern, config: &MultiOpsSimConfig) -> SimMetrics {
        self.run_with_timeline(&[], traffic, config)
    }

    /// Executes one run driven by a [`DemandSource`] — the demand-side
    /// generalization of [`PreparedMultiOps::run`].  The source is mutable
    /// because demand processes carry mid-run state (burst phases, the
    /// trace lookahead); build a fresh one per run with
    /// [`crate::DemandSpec::source`].  A [`DemandSource::Pattern`] source
    /// draws from the RNG exactly as `run` does — byte-identical metrics.
    pub fn run_demand(&self, demand: &mut DemandSource, config: &MultiOpsSimConfig) -> SimMetrics {
        self.run_demand_with_timeline(&[], demand, config)
    }

    /// Executes one run under a fault timeline: `timeline` is a
    /// chronological list of `(slot, kernel)` epochs (see
    /// [`PreparedMultiOps::timeline_from`]); at the start of each epoch's
    /// slot, before injections, the active kernel is swapped.  Every
    /// in-flight message is re-resolved against the new routing tables —
    /// its route restarts from the processor currently holding it; a
    /// message held by or destined to a failed group, or left unreachable,
    /// is dropped and counted in `dropped_by_failure` (as well as
    /// `dropped`).  The transmission discipline is fixed for the whole run:
    /// bufferless if any kernel of the run (initial or scheduled) has
    /// alternates, or the wavelength layer is on.  The restoration metrics
    /// (`fault_events`, `in_flight_at_failure`, `restore_slots`,
    /// `post_failure_latency_peak`) are anchored to the first swap that
    /// introduces new failures.
    ///
    /// An empty timeline takes the exact legacy code path — same RNG draw
    /// order, same metrics as [`PreparedMultiOps::run`], byte for byte.
    pub fn run_with_timeline(
        &self,
        timeline: &[(u64, PreparedMultiOps)],
        traffic: &TrafficPattern,
        config: &MultiOpsSimConfig,
    ) -> SimMetrics {
        let mut demand = DemandSource::from_pattern(traffic.clone());
        self.run_demand_with_timeline(timeline, &mut demand, config)
    }

    /// Executes one run under a fault timeline, driven by a
    /// [`DemandSource`] — the entry point both
    /// [`PreparedMultiOps::run_with_timeline`] and
    /// [`PreparedMultiOps::run_demand`] reduce to.  Allocates a private
    /// [`SlotScratch`] per call; engines that run many cells should hold one
    /// pool per worker and call
    /// [`PreparedMultiOps::run_demand_with_timeline_scratch`] instead.
    pub fn run_demand_with_timeline(
        &self,
        timeline: &[(u64, PreparedMultiOps)],
        demand: &mut DemandSource,
        config: &MultiOpsSimConfig,
    ) -> SimMetrics {
        let mut scratch = SlotScratch::new();
        self.run_demand_with_timeline_scratch(timeline, demand, config, &mut scratch)
    }

    /// [`PreparedMultiOps::run`] through a caller-owned scratch pool; see
    /// [`PreparedMultiOps::run_demand_with_timeline_scratch`].
    pub fn run_scratch(
        &self,
        traffic: &TrafficPattern,
        config: &MultiOpsSimConfig,
        scratch: &mut SlotScratch,
    ) -> SimMetrics {
        let mut demand = DemandSource::from_pattern(traffic.clone());
        self.run_demand_with_timeline_scratch(&[], &mut demand, config, scratch)
    }

    /// [`PreparedMultiOps::run_demand`] through a caller-owned scratch
    /// pool; see [`PreparedMultiOps::run_demand_with_timeline_scratch`].
    pub fn run_demand_scratch(
        &self,
        demand: &mut DemandSource,
        config: &MultiOpsSimConfig,
        scratch: &mut SlotScratch,
    ) -> SimMetrics {
        self.run_demand_with_timeline_scratch(&[], demand, config, scratch)
    }

    /// [`PreparedMultiOps::run_with_timeline`] through a caller-owned
    /// scratch pool; see
    /// [`PreparedMultiOps::run_demand_with_timeline_scratch`].
    pub fn run_with_timeline_scratch(
        &self,
        timeline: &[(u64, PreparedMultiOps)],
        traffic: &TrafficPattern,
        config: &MultiOpsSimConfig,
        scratch: &mut SlotScratch,
    ) -> SimMetrics {
        let mut demand = DemandSource::from_pattern(traffic.clone());
        self.run_demand_with_timeline_scratch(timeline, &mut demand, config, scratch)
    }

    /// The full-generality entry point every other `run*` method reduces
    /// to, threading a caller-owned [`SlotScratch`] pool so consecutive
    /// runs reuse the arena, flight-state arrays and coupler queues instead
    /// of reallocating.  Byte-identical to the plain entry points — a reset
    /// pool is indistinguishable from fresh state.
    ///
    /// The slot body was already phase-batched (see the *hot path anatomy*
    /// section of the crate docs): the **inject** phase admits this slot's
    /// arrivals in processor order — one pass over the demand decisions and
    /// the route table's first hops; the **arbitrate/advance/deliver** phase
    /// then walks the couplers in index order, each round one pass over the
    /// pending queue's `holder`/`injected_at` columns, advancing winners a
    /// hop and delivering or forwarding them; the bufferless **overflow**
    /// sub-phase re-roots losers onto alternates or drops them blocked.
    pub fn run_demand_with_timeline_scratch(
        &self,
        timeline: &[(u64, PreparedMultiOps)],
        demand: &mut DemandSource,
        config: &MultiOpsSimConfig,
        scratch: &mut SlotScratch,
    ) -> SimMetrics {
        let n = self.processor_count();
        let couplers = self.coupler_count();
        let bufferless = config.wavelengths.is_multiplexed()
            || self.has_alternates()
            || timeline.iter().any(|(_, k)| k.has_alternates());
        scratch.begin_run(config.seed, n, couplers);
        scratch.ops.begin_run(couplers);
        let SlotScratch {
            core,
            arena,
            injections,
            ops,
            ..
        } = scratch;
        let OpsScratch {
            flights,
            pending,
            next_pending,
            last_winner,
            candidates,
            overflow,
        } = ops;
        let mut spectrum = if bufferless {
            let w = config.wavelengths.count.max(1);
            core.metrics.wavelengths = w;
            Some(SpectrumMap::new(couplers, w))
        } else {
            None
        };
        let mut active = self;
        let mut next_epoch = 0usize;
        let mut tracker = RestoreTracker::default();

        for slot in 0..config.slots {
            core.begin_slot(slot);
            // Kernel swaps scheduled for this slot apply before injections:
            // drain every pending queue (coupler-ascending, preserving order)
            // and re-resolve each flight against the new routing tables from
            // the processor currently holding it; flights the new fault set
            // cuts off are stranded.
            while timeline.get(next_epoch).is_some_and(|(s, _)| *s <= slot) {
                let kernel = &timeline[next_epoch].1;
                next_epoch += 1;
                let live: u64 = pending.iter().map(|q| q.len() as u64).sum();
                let introduces = !kernel.router.faults().is_subset_of(active.router.faults());
                tracker.on_swap(introduces, slot, live, &mut core.metrics);
                for queue in pending.iter_mut() {
                    overflow.append(queue);
                }
                for handle in overflow.drain(..) {
                    let holder = flights.holder(handle);
                    let dst = arena.dst(handle);
                    match kernel.routes.get(holder, dst) {
                        Some(route) if !route.is_empty() => {
                            flights.set_route(handle, holder, 0);
                            flights.advance(handle, 0, holder);
                            pending[route[0].coupler].push(handle);
                        }
                        _ => {
                            core.metrics.dropped_by_failure += 1;
                            core.drop_message();
                            arena.release(handle);
                        }
                    }
                }
                active = kernel;
            }
            if let Some(spectrum) = spectrum.as_mut() {
                spectrum.clear();
            }

            // 1. Injection.
            demand.injections_into(n, &mut core.rng, injections);
            for (src, dst) in injections.iter().enumerate() {
                let Some(dst) = *dst else { continue };
                let Some(route) = active.routes.get(src, dst) else {
                    continue;
                };
                if route.is_empty() {
                    continue;
                }
                let first_coupler = route[0].coupler;
                if !bufferless
                    && config.queue_limit > 0
                    && pending[first_coupler].len() >= config.queue_limit
                {
                    // Back-pressure: the injection is refused, not counted.
                    // (Bufferless mode has no queues, hence no back-pressure:
                    // every message the routes can carry enters the slot's
                    // contention.)
                    continue;
                }
                let message = core.inject(src, dst, slot);
                let handle = arena.insert(&message);
                flights.init(handle, src);
                pending[first_coupler].push(handle);
            }

            // 2. Per-coupler arbitration and transmission: one grant per
            // coupler in queued mode, up to `W` in bufferless mode.
            for coupler in 0..couplers {
                loop {
                    if pending[coupler].is_empty() {
                        break;
                    }
                    if let Some(spectrum) = &spectrum {
                        if spectrum.is_full(coupler) {
                            break;
                        }
                    }
                    candidates.clear();
                    candidates.extend(
                        pending[coupler]
                            .iter()
                            .map(|&h| (flights.holder(h), arena.injected_at(h))),
                    );
                    let Some(winner_idx) =
                        config
                            .policy
                            .pick(candidates, last_winner[coupler], &mut core.rng)
                    else {
                        break;
                    };
                    let handle = pending[coupler].remove(winner_idx);
                    last_winner[coupler] = Some(flights.holder(handle));
                    if let Some(spectrum) = spectrum.as_mut() {
                        let lambda = assign_wavelength(
                            spectrum,
                            coupler,
                            config.wavelengths.assignment,
                            &mut core.rng,
                        );
                        arena.set_wavelength(handle, lambda);
                    }
                    core.grant();

                    let route = active.route_of(
                        flights.route_src(handle),
                        arena.dst(handle),
                        flights.alt(handle),
                    );
                    let hop_idx = flights.next_hop(handle);
                    let hop = route[hop_idx];
                    let next_coupler =
                        (hop_idx + 1 < route.len()).then(|| route[hop_idx + 1].coupler);
                    arena.add_hop(handle);
                    flights.advance(handle, hop_idx + 1, hop.receiver);
                    match next_coupler {
                        None => {
                            // Delivered at the end of this slot.
                            let latency = slot + 1 - arena.injected_at(handle);
                            core.deliver(latency, arena.hops(handle));
                            tracker.observe_delivery(latency, &mut core.metrics);
                            arena.release(handle);
                        }
                        Some(next) if !bufferless || next > coupler => pending[next].push(handle),
                        Some(next) => next_pending[next].push(handle),
                    }
                    if !bufferless {
                        break;
                    }
                }

                // 3. Overflow, bufferless mode only: the coupler is exhausted
                // (or arbitration yielded nothing); the stranded messages
                // must re-route or block — bufferless networks cannot hold
                // them.  (Queued mode leaves losers in their queue for the
                // next slot.)
                if !bufferless || pending[coupler].is_empty() {
                    continue;
                }
                overflow.append(&mut pending[coupler]);
                for handle in overflow.drain(..) {
                    let spectrum = spectrum.as_mut().expect("bufferless mode has a spectrum");
                    let dst = arena.dst(handle);
                    let holder = flights.holder(handle);
                    let alts = active.alts.get(holder, dst);
                    let mut taken = false;
                    for (a, alt) in alts.iter().enumerate() {
                        let first = alt[0].coupler;
                        if spectrum.is_full(first) {
                            continue;
                        }
                        // Re-root the flight onto the alternate and transmit
                        // its first hop immediately.
                        core.metrics.alt_routed += 1;
                        flights.set_route(handle, holder, a + 1);
                        let lambda = assign_wavelength(
                            spectrum,
                            first,
                            config.wavelengths.assignment,
                            &mut core.rng,
                        );
                        arena.set_wavelength(handle, lambda);
                        core.grant();
                        last_winner[first] = Some(holder);
                        arena.add_hop(handle);
                        flights.advance(handle, 1, alt[0].receiver);
                        if alt.len() == 1 {
                            let latency = slot + 1 - arena.injected_at(handle);
                            core.deliver(latency, arena.hops(handle));
                            tracker.observe_delivery(latency, &mut core.metrics);
                            arena.release(handle);
                        } else {
                            let next = alt[1].coupler;
                            if next > coupler {
                                pending[next].push(handle);
                            } else {
                                next_pending[next].push(handle);
                            }
                        }
                        taken = true;
                        break;
                    }
                    if !taken {
                        core.metrics.blocked += 1;
                        core.drop_message();
                        arena.release(handle);
                    }
                }
            }
            if bufferless {
                debug_assert!(pending.iter().all(|p| p.is_empty()));
                std::mem::swap(pending, next_pending);
            }
            tracker.end_slot(slot, &mut core.metrics);
        }

        // Messages granted in the final slot but still short of their
        // destination — and, in queued mode, everything still queued — are
        // in flight.
        let in_flight = pending.iter().map(|q| q.len() as u64).sum::<u64>()
            + next_pending.iter().map(|q| q.len() as u64).sum::<u64>();
        core.finish(in_flight)
    }
}

/// The multi-OPS network simulator: a [`PreparedMultiOps`] kernel bundled
/// with one [`MultiOpsSimConfig`].  Kept as the one-shot convenience; sweeps
/// that run many seeds or traffic patterns over the same network should
/// hold the prepared kernel directly and call [`PreparedMultiOps::run`] per
/// cell.
#[derive(Debug)]
pub struct MultiOpsSim {
    prepared: PreparedMultiOps,
    config: MultiOpsSimConfig,
}

impl MultiOpsSim {
    /// Creates a simulator for the given stack-graph network.
    pub fn new(stack: StackGraph, config: MultiOpsSimConfig) -> Self {
        Self::with_faults(stack, config, FaultSet::new())
    }

    /// Creates a simulator that routes around the given faults; see
    /// [`PreparedMultiOps::new`] for the fault semantics.
    pub fn with_faults(stack: StackGraph, config: MultiOpsSimConfig, faults: FaultSet) -> Self {
        MultiOpsSim {
            prepared: PreparedMultiOps::from_stack(stack, faults),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultiOpsSimConfig {
        &self.config
    }

    /// Number of processors simulated.
    pub fn processor_count(&self) -> usize {
        self.prepared.processor_count()
    }

    /// Number of couplers simulated.
    pub fn coupler_count(&self) -> usize {
        self.prepared.coupler_count()
    }

    /// The immutable kernel behind this simulator.
    pub fn prepared(&self) -> &PreparedMultiOps {
        &self.prepared
    }

    /// Runs the simulation under the given traffic pattern.
    pub fn run(&self, traffic: &TrafficPattern) -> SimMetrics {
        self.prepared.run(traffic, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavelength::WavelengthAssignment;
    use otis_topologies::{Pops, StackKautz};

    fn pops_sim(load: f64, slots: u64) -> SimMetrics {
        let pops = Pops::new(4, 2);
        let sim = MultiOpsSim::new(
            pops.stack_graph().clone(),
            MultiOpsSimConfig {
                slots,
                ..Default::default()
            },
        );
        sim.run(&TrafficPattern::Uniform { load })
    }

    #[test]
    fn conservation_of_messages() {
        let m = pops_sim(0.5, 500);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        assert!(m.injected > 0);
    }

    #[test]
    fn pops_light_load_latency_is_one_slot() {
        // At very light load there is no contention; every message is
        // delivered in the slot it was injected (single-hop network).
        let m = pops_sim(0.01, 4000);
        assert!(m.delivered > 0);
        assert!(
            (m.average_latency() - 1.0).abs() < 0.2,
            "latency {}",
            m.average_latency()
        );
        assert!((m.average_hops() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stack_kautz_hops_within_diameter() {
        let sk = StackKautz::new(3, 2, 2);
        let sim = MultiOpsSim::new(
            sk.stack_graph().clone(),
            MultiOpsSimConfig {
                slots: 2000,
                ..Default::default()
            },
        );
        let m = sim.run(&TrafficPattern::Uniform { load: 0.05 });
        assert!(m.delivered > 0);
        assert!(m.average_hops() <= 2.0 + 1e-9);
        assert!(m.average_hops() >= 1.0);
    }

    #[test]
    fn throughput_saturates_at_coupler_capacity() {
        // POPS(4,2): 4 couplers, 8 processors; at most 4 messages can be
        // delivered per slot, i.e. 0.5 per processor per slot.
        let m = pops_sim(1.0, 1000);
        assert!(m.throughput() <= 0.5 + 1e-9);
        assert!(
            m.throughput() > 0.3,
            "saturated throughput {}",
            m.throughput()
        );
        assert!(m.channel_utilization() > 0.8);
    }

    #[test]
    fn higher_load_increases_latency() {
        let light = pops_sim(0.05, 2000);
        let heavy = pops_sim(0.9, 2000);
        assert!(heavy.average_latency() > light.average_latency());
    }

    #[test]
    fn queue_limit_applies_back_pressure() {
        let pops = Pops::new(4, 2);
        let unlimited = MultiOpsSim::new(
            pops.stack_graph().clone(),
            MultiOpsSimConfig {
                slots: 500,
                queue_limit: 0,
                ..Default::default()
            },
        )
        .run(&TrafficPattern::Uniform { load: 1.0 });
        let limited = MultiOpsSim::new(
            pops.stack_graph().clone(),
            MultiOpsSimConfig {
                slots: 500,
                queue_limit: 2,
                ..Default::default()
            },
        )
        .run(&TrafficPattern::Uniform { load: 1.0 });
        assert!(limited.injected < unlimited.injected);
        assert!(limited.in_flight <= unlimited.in_flight);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = pops_sim(0.3, 300);
        let b = pops_sim(0.3, 300);
        assert_eq!(a, b);
    }

    #[test]
    fn faulty_group_traffic_is_refused_and_bound_holds() {
        // SK(2,2,2): quotient KG(2,2), d = 2 — one failed group is within
        // the §2.5 survivability claim; delivered routes stay <= k + 2 = 4.
        let sk = StackKautz::new(2, 2, 2);
        let config = MultiOpsSimConfig {
            slots: 600,
            ..Default::default()
        };
        let intact = MultiOpsSim::new(sk.stack_graph().clone(), config)
            .run(&TrafficPattern::Uniform { load: 0.4 });
        let faulty =
            MultiOpsSim::with_faults(sk.stack_graph().clone(), config, FaultSet::from_nodes([2]))
                .run(&TrafficPattern::Uniform { load: 0.4 });
        assert!(faulty.delivered > 0);
        assert_eq!(
            faulty.injected,
            faulty.delivered + faulty.in_flight + faulty.dropped
        );
        assert!(faulty.injected < intact.injected);
        assert!(faulty.max_hops <= 4, "max hops {}", faulty.max_hops);
    }

    #[test]
    fn prepared_kernel_reuse_matches_fresh_construction() {
        // The prepare/execute contract, multi-OPS side: one kernel driven
        // with many (seed, traffic, slots) combinations matches rebuilding
        // the simulator (router + quotient table + flat routes) per run.
        let sk = StackKautz::new(2, 2, 2);
        for faults in [FaultSet::new(), FaultSet::from_nodes([2])] {
            let kernel = PreparedMultiOps::from_stack(sk.stack_graph().clone(), faults.clone());
            for (seed, load, slots) in [(1u64, 0.4, 400u64), (7, 0.9, 250), (31, 0.1, 600)] {
                let config = MultiOpsSimConfig {
                    slots,
                    seed,
                    ..Default::default()
                };
                let traffic = TrafficPattern::Uniform { load };
                let reused = kernel.run(&traffic, &config);
                let fresh =
                    MultiOpsSim::with_faults(sk.stack_graph().clone(), config, faults.clone())
                        .run(&traffic);
                assert_eq!(reused, fresh, "seed {seed} load {load}");
            }
        }
    }

    #[test]
    fn wavelength_mode_conserves_and_reports_the_layer() {
        let sk = StackKautz::new(2, 2, 2);
        let kernel = PreparedMultiOps::with_alternates(
            Arc::new(sk.stack_graph().clone()),
            FaultSet::new(),
            3,
        );
        assert!(
            kernel.has_alternates(),
            "SK(2,2,2) has alternate quotient paths"
        );
        let m = kernel.run(
            &TrafficPattern::Uniform { load: 0.9 },
            &MultiOpsSimConfig {
                slots: 500,
                wavelengths: WavelengthConfig::with_count(2),
                ..Default::default()
            },
        );
        assert_eq!(m.wavelengths, 2);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        assert!(m.delivered > 0);
        assert!(
            m.blocked <= m.dropped,
            "blocked messages are dropped messages"
        );
        assert!(!m.blocking_ratio().is_nan());
        assert!(
            m.alt_routed > 0,
            "contention must push traffic onto alternates"
        );
    }

    #[test]
    fn more_wavelengths_reduce_blocking() {
        let pops = Pops::new(3, 4);
        let run = |w: usize| {
            MultiOpsSim::new(
                pops.stack_graph().clone(),
                MultiOpsSimConfig {
                    slots: 600,
                    wavelengths: WavelengthConfig::with_count(w),
                    ..Default::default()
                },
            )
            .run(&TrafficPattern::Uniform { load: 1.0 })
        };
        let narrow = run(2);
        let wide = run(8);
        assert!(narrow.blocked > 0, "saturated POPS at W=2 must block");
        assert!(
            wide.blocking_ratio() <= narrow.blocking_ratio(),
            "W=8 blocking {} vs W=2 blocking {}",
            wide.blocking_ratio(),
            narrow.blocking_ratio()
        );
    }

    #[test]
    fn alternates_only_mode_runs_bufferless_at_capacity_one() {
        // alt_paths > 1 with W = 1: the wavelength loop engages (alternate
        // routing needs transmit-or-block semantics) and reports capacity 1.
        let sk = StackKautz::new(2, 2, 2);
        let kernel = PreparedMultiOps::with_alternates(
            Arc::new(sk.stack_graph().clone()),
            FaultSet::new(),
            2,
        );
        let m = kernel.run(
            &TrafficPattern::Uniform { load: 0.8 },
            &MultiOpsSimConfig {
                slots: 400,
                ..Default::default()
            },
        );
        assert_eq!(m.wavelengths, 1);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        assert!(m.alt_routed > 0);
    }

    #[test]
    fn capacity_one_kernel_keeps_the_wavelength_layer_off() {
        // Without alternates and at W = 1 the queued discipline runs:
        // metrics carry the layer-off sentinel and match the default config.
        let m = pops_sim(0.5, 500);
        assert_eq!(m.wavelengths, 0, "layer off ⇒ sentinel 0");
        assert_eq!(m.blocked, 0);
        assert!(m.blocking_ratio().is_nan());
    }

    #[test]
    fn random_assignment_draws_but_conserves() {
        let pops = Pops::new(3, 3);
        for assignment in [WavelengthAssignment::FirstFit, WavelengthAssignment::Random] {
            let m = MultiOpsSim::new(
                pops.stack_graph().clone(),
                MultiOpsSimConfig {
                    slots: 300,
                    wavelengths: WavelengthConfig {
                        count: 4,
                        assignment,
                    },
                    ..Default::default()
                },
            )
            .run(&TrafficPattern::Uniform { load: 0.9 });
            assert!(m.delivered > 0, "{assignment:?}");
            assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        }
    }

    #[test]
    fn repaired_kernels_run_identically_to_fresh_ones() {
        // Delta-repairing a fault pattern's kernel from the fault-free base
        // must be indistinguishable from preparing it from scratch, with and
        // without alternates, in both transmission disciplines.
        let sk = StackKautz::new(2, 2, 2);
        let stack = Arc::new(sk.stack_graph().clone());
        let groups = stack.quotient().node_count();
        let traffic = TrafficPattern::Uniform { load: 0.6 };
        let configs = [
            MultiOpsSimConfig {
                slots: 300,
                ..Default::default()
            },
            MultiOpsSimConfig {
                slots: 300,
                wavelengths: WavelengthConfig::with_count(2),
                ..Default::default()
            },
        ];
        for alt_paths in [1, 3] {
            let base =
                PreparedMultiOps::with_alternates(Arc::clone(&stack), FaultSet::new(), alt_paths);
            for group in 0..groups {
                let faults = FaultSet::from_nodes([group]);
                let repaired = PreparedMultiOps::repair_from(&base, &faults, alt_paths);
                let fresh =
                    PreparedMultiOps::with_alternates(Arc::clone(&stack), faults, alt_paths);
                for config in &configs {
                    assert_eq!(
                        repaired.run(&traffic, config),
                        fresh.run(&traffic, config),
                        "group {group} alt_paths {alt_paths}"
                    );
                }
            }
            // Empty fault set: the repair is the base itself.
            let same = PreparedMultiOps::repair_from(&base, &FaultSet::new(), alt_paths);
            assert_eq!(
                same.run(&traffic, &configs[0]),
                base.run(&traffic, &configs[0])
            );
        }
    }

    #[test]
    fn repaired_alternates_are_bit_identical_to_from_scratch_yen() {
        // The tentpole contract of the repair-aware alternates: for every
        // fault pattern within the d−1 tolerance bound — every single group
        // fault plus every single blocked coupler — the delta-rebuilt
        // `AltRoutes` (and the whole routing state) must equal a
        // from-scratch `with_alternates` build, entry for entry.
        use otis_routing::node_fault_patterns_up_to;
        for (d, s, k) in [(2, 2, 2), (2, 2, 3)] {
            let sk = StackKautz::new(d, s, k);
            let stack = Arc::new(sk.stack_graph().clone());
            let quotient = stack.quotient();
            let groups = quotient.node_count();
            let mut patterns: Vec<FaultSet> =
                node_fault_patterns_up_to(groups, 1).into_iter().collect();
            for g in 0..groups {
                for &arc in quotient.out_arc_ids(g) {
                    let target = quotient.arc(arc).unwrap().target;
                    let mut faults = FaultSet::new();
                    faults.fail_arc(g, target);
                    patterns.push(faults);
                }
            }
            for alt_paths in [2usize, 3] {
                let base = PreparedMultiOps::with_alternates(
                    Arc::clone(&stack),
                    FaultSet::new(),
                    alt_paths,
                );
                for faults in &patterns {
                    let repaired = PreparedMultiOps::repair_from(&base, faults, alt_paths);
                    let fresh = PreparedMultiOps::with_alternates(
                        Arc::clone(&stack),
                        faults.clone(),
                        alt_paths,
                    );
                    assert_eq!(
                        repaired.alts, fresh.alts,
                        "SK({d},{s},{k}) alt_paths {alt_paths} faults {:?}",
                        faults
                    );
                    assert!(
                        repaired.routing_state_eq(&fresh),
                        "SK({d},{s},{k}) alt_paths {alt_paths} faults {:?}",
                        faults
                    );
                }
            }
        }
    }

    #[test]
    fn recovered_kernels_run_identically_to_fresh_ones() {
        // Deriving a smaller fault set's kernel from the current (larger)
        // one via the recovery path must be indistinguishable from
        // preparing it from scratch, with and without alternates, in both
        // transmission disciplines.
        let sk = StackKautz::new(2, 2, 2);
        let stack = Arc::new(sk.stack_graph().clone());
        let previous = FaultSet::from_nodes([0, 3]);
        let traffic = TrafficPattern::Uniform { load: 0.6 };
        let configs = [
            MultiOpsSimConfig {
                slots: 300,
                ..Default::default()
            },
            MultiOpsSimConfig {
                slots: 300,
                wavelengths: WavelengthConfig::with_count(2),
                ..Default::default()
            },
        ];
        for alt_paths in [1, 3] {
            let base =
                PreparedMultiOps::with_alternates(Arc::clone(&stack), FaultSet::new(), alt_paths);
            let current =
                PreparedMultiOps::with_alternates(Arc::clone(&stack), previous.clone(), alt_paths);
            for target in [
                FaultSet::new(),
                FaultSet::from_nodes([0]),
                FaultSet::from_nodes([3]),
                previous.clone(),
            ] {
                let recovered = PreparedMultiOps::recover_from(&current, &base, &target, alt_paths);
                let fresh = PreparedMultiOps::with_alternates(
                    Arc::clone(&stack),
                    target.clone(),
                    alt_paths,
                );
                for config in &configs {
                    assert_eq!(
                        recovered.run(&traffic, config),
                        fresh.run(&traffic, config),
                        "target {target:?} alt_paths {alt_paths}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_timeline_is_the_legacy_run() {
        // The schedule machinery must be inert when no timeline is bound:
        // identical metrics (and therefore identical RNG draw order) in
        // both disciplines.
        let sk = StackKautz::new(2, 2, 2);
        let kernel = PreparedMultiOps::from_stack(sk.stack_graph().clone(), FaultSet::new());
        let traffic = TrafficPattern::Uniform { load: 0.5 };
        for config in [
            MultiOpsSimConfig {
                slots: 400,
                ..Default::default()
            },
            MultiOpsSimConfig {
                slots: 400,
                wavelengths: WavelengthConfig::with_count(2),
                ..Default::default()
            },
        ] {
            let timed = kernel.run_with_timeline(&[], &traffic, &config);
            let legacy = kernel.run(&traffic, &config);
            assert_eq!(timed, legacy);
            assert_eq!(timed.fault_events, 0);
        }
    }

    #[test]
    fn timeline_kernels_match_from_scratch_preparation() {
        // The kernel-swap path must be bit-identical to swapping in kernels
        // prepared from scratch, in both disciplines: a timeline built by
        // `timeline_from` (repair for the failure epoch, recovery for the
        // recover epoch) and one rebuilt with fresh `with_alternates`
        // kernels produce the same run, metric for metric.
        let sk = StackKautz::new(2, 2, 2);
        let stack = Arc::new(sk.stack_graph().clone());
        let schedule: FaultSchedule = "fail(node 1)@40; recover@160".parse().unwrap();
        let traffic = TrafficPattern::Uniform { load: 0.7 };
        for alt_paths in [1, 2] {
            let base =
                PreparedMultiOps::with_alternates(Arc::clone(&stack), FaultSet::new(), alt_paths);
            let timeline =
                PreparedMultiOps::timeline_from(&base, &base, &schedule, alt_paths).unwrap();
            assert_eq!(timeline.len(), 2);
            let fresh: Vec<(u64, PreparedMultiOps)> = timeline
                .iter()
                .map(|(slot, k)| {
                    (
                        *slot,
                        PreparedMultiOps::with_alternates(
                            Arc::clone(&stack),
                            k.router.faults().clone(),
                            alt_paths,
                        ),
                    )
                })
                .collect();
            let config = MultiOpsSimConfig {
                slots: 320,
                ..Default::default()
            };
            let repaired = base.run_with_timeline(&timeline, &traffic, &config);
            let scratch = base.run_with_timeline(&fresh, &traffic, &config);
            assert_eq!(repaired, scratch, "alt_paths {alt_paths}");
            assert_eq!(repaired.fault_events, 2);
            assert_eq!(
                repaired.injected,
                repaired.delivered + repaired.in_flight + repaired.dropped
            );
            assert!(repaired.dropped_by_failure <= repaired.dropped);
        }
    }

    #[test]
    fn failure_at_slot_zero_matches_the_static_faulted_run() {
        // A swap before any traffic exists runs the whole simulation under
        // the faulted kernel: everything but the restoration bookkeeping
        // matches a statically faulted run bit for bit.
        let sk = StackKautz::new(2, 2, 2);
        let base = PreparedMultiOps::from_stack(sk.stack_graph().clone(), FaultSet::new());
        let schedule: FaultSchedule = "fail(node 2)@0".parse().unwrap();
        let timeline = PreparedMultiOps::timeline_from(&base, &base, &schedule, 1).unwrap();
        let traffic = TrafficPattern::Uniform { load: 0.4 };
        let config = MultiOpsSimConfig {
            slots: 300,
            ..Default::default()
        };
        let mut timed = base.run_with_timeline(&timeline, &traffic, &config);
        let faulted =
            PreparedMultiOps::from_stack(sk.stack_graph().clone(), FaultSet::from_nodes([2]));
        let static_run = faulted.run(&traffic, &config);
        assert_eq!(timed.fault_events, 1);
        assert_eq!(timed.in_flight_at_failure, 0);
        assert_eq!(timed.dropped_by_failure, 0);
        assert_eq!(
            timed.restore_slots,
            u64::MAX,
            "slot-0 failure has no baseline"
        );
        timed.fault_events = 0;
        timed.restore_slots = 0;
        timed.post_failure_latency_peak = 0;
        assert_eq!(timed, static_run);
    }

    #[test]
    fn mid_run_group_failure_strands_and_recovery_restores() {
        // A group failure mid-run strands the flights held by or destined
        // to the dead group (counted separately from congestion drops), and
        // after the scheduled recovery the network restores its pre-failure
        // delivery rate.
        let sk = StackKautz::new(2, 2, 2);
        let base = PreparedMultiOps::from_stack(sk.stack_graph().clone(), FaultSet::new());
        let schedule: FaultSchedule = "fail(node 2)@200; recover@260".parse().unwrap();
        let timeline = PreparedMultiOps::timeline_from(&base, &base, &schedule, 1).unwrap();
        let traffic = TrafficPattern::Uniform { load: 0.9 };
        let config = MultiOpsSimConfig {
            slots: 2000,
            ..Default::default()
        };
        let m = base.run_with_timeline(&timeline, &traffic, &config);
        assert_eq!(m.fault_events, 2);
        assert!(m.in_flight_at_failure > 0, "saturated run has live flights");
        assert!(m.dropped_by_failure > 0, "the dead group strands flights");
        assert!(m.dropped_by_failure <= m.dropped);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        assert_ne!(m.restore_slots, u64::MAX, "recovery must restore the rate");
        assert!(m.post_failure_latency_peak > 0);
    }

    #[test]
    fn arbitration_policies_all_work() {
        let pops = Pops::new(3, 3);
        for policy in [
            ArbitrationPolicy::RoundRobin,
            ArbitrationPolicy::OldestFirst,
            ArbitrationPolicy::Random,
        ] {
            let sim = MultiOpsSim::new(
                pops.stack_graph().clone(),
                MultiOpsSimConfig {
                    slots: 300,
                    policy,
                    ..Default::default()
                },
            );
            let m = sim.run(&TrafficPattern::Uniform { load: 0.8 });
            assert!(m.delivered > 0, "{policy:?}");
            assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        }
    }
}
