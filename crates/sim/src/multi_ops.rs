//! Slotted simulation of multi-OPS (stack-graph) networks.
//!
//! The model follows the behavioural facts established by the optics layer:
//!
//! * time is divided into slots;
//! * each OPS coupler is single-wavelength, so it carries **one** message per
//!   slot, chosen by an [`ArbitrationPolicy`] among the processors of its
//!   tail that have a message queued for it;
//! * a processor has one transmitter per coupler it feeds and one receiver
//!   per coupler it hears (as in the OTIS designs), so it can take part in
//!   several couplers in the same slot;
//! * messages follow the group-level routes of
//!   [`otis_routing::StackRouter`]; intermediate processors re-queue the
//!   message for its next-hop coupler in the following slot.

use crate::arbitration::ArbitrationPolicy;
use crate::message::Message;
use crate::metrics::SimMetrics;
use crate::traffic::TrafficPattern;
use otis_graphs::StackGraph;
use otis_routing::{FaultSet, StackRoute, StackRouter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Configuration of one multi-OPS simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiOpsSimConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// Arbitration policy applied at every coupler.
    pub policy: ArbitrationPolicy,
    /// Random seed (traffic and random arbitration).
    pub seed: u64,
    /// Messages a processor may hold queued per coupler before it stops
    /// injecting (back-pressure).  `0` means unlimited.
    pub queue_limit: usize,
}

impl Default for MultiOpsSimConfig {
    fn default() -> Self {
        MultiOpsSimConfig {
            slots: 1000,
            policy: ArbitrationPolicy::OldestFirst,
            seed: 1,
            queue_limit: 0,
        }
    }
}

/// A message in flight together with its remaining route.
#[derive(Debug, Clone)]
struct InFlight {
    message: Message,
    route: StackRoute,
    next_hop: usize,
    /// The processor currently holding the message (the sender of the next hop).
    holder: usize,
}

/// The multi-OPS network simulator.
#[derive(Debug)]
pub struct MultiOpsSim {
    router: StackRouter,
    config: MultiOpsSimConfig,
}

impl MultiOpsSim {
    /// Creates a simulator for the given stack-graph network.
    pub fn new(stack: StackGraph, config: MultiOpsSimConfig) -> Self {
        Self::with_faults(stack, config, FaultSet::new())
    }

    /// Creates a simulator that routes around the given faults.  The fault
    /// set is interpreted over the quotient (see
    /// [`StackRouter::with_faults`]): failed groups neither send nor receive,
    /// blocked couplers carry nothing, and injections the surviving quotient
    /// cannot route are refused (not counted as injected).
    pub fn with_faults(stack: StackGraph, config: MultiOpsSimConfig, faults: FaultSet) -> Self {
        MultiOpsSim {
            router: StackRouter::with_faults(stack, faults),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultiOpsSimConfig {
        &self.config
    }

    /// Number of processors simulated.
    pub fn processor_count(&self) -> usize {
        self.router.stack_graph().node_count()
    }

    /// Number of couplers simulated.
    pub fn coupler_count(&self) -> usize {
        self.router.stack_graph().hyperarc_count()
    }

    /// Runs the simulation under the given traffic pattern.
    pub fn run(&self, traffic: &TrafficPattern) -> SimMetrics {
        let n = self.processor_count();
        let couplers = self.coupler_count();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut metrics = SimMetrics::new(n, couplers);
        // One queue per coupler of messages waiting to use it.
        let mut queues: Vec<VecDeque<InFlight>> = (0..couplers).map(|_| VecDeque::new()).collect();
        let mut last_winner: Vec<Option<usize>> = vec![None; couplers];
        let mut next_id: u64 = 0;

        for slot in 0..self.config.slots {
            metrics.slots = slot + 1;

            // 1. Injection.
            for (src, dst) in traffic.injections(n, &mut rng).into_iter().enumerate() {
                let Some(dst) = dst else { continue };
                let Some(route) = self.router.route(src, dst) else {
                    continue;
                };
                if route.is_empty() {
                    continue;
                }
                let first_coupler = route.hops[0].coupler;
                if self.config.queue_limit > 0
                    && queues[first_coupler].len() >= self.config.queue_limit
                {
                    // Back-pressure: the injection is refused, not counted.
                    continue;
                }
                let message = Message::new(next_id, src, dst, slot);
                next_id += 1;
                metrics.injected += 1;
                queues[first_coupler].push_back(InFlight {
                    message,
                    route,
                    next_hop: 0,
                    holder: src,
                });
            }

            // 2. Per-coupler arbitration and transmission.
            for coupler in 0..couplers {
                if queues[coupler].is_empty() {
                    continue;
                }
                let candidates: Vec<(usize, u64)> = queues[coupler]
                    .iter()
                    .map(|f| (f.holder, f.message.created_slot))
                    .collect();
                let Some(winner_idx) =
                    self.config
                        .policy
                        .pick(&candidates, last_winner[coupler], &mut rng)
                else {
                    continue;
                };
                let mut flight = queues[coupler].remove(winner_idx).expect("index valid");
                last_winner[coupler] = Some(flight.holder);
                metrics.grants += 1;

                let hop = flight.route.hops[flight.next_hop];
                flight.message.hops += 1;
                flight.next_hop += 1;
                flight.holder = hop.receiver;
                if flight.next_hop == flight.route.hops.len() {
                    // Delivered at the end of this slot.
                    let latency = slot + 1 - flight.message.created_slot;
                    metrics.record_delivery(latency, flight.message.hops);
                } else {
                    let next_coupler = flight.route.hops[flight.next_hop].coupler;
                    queues[next_coupler].push_back(flight);
                }
            }
        }

        metrics.in_flight = queues.iter().map(|q| q.len() as u64).sum();
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_topologies::{Pops, StackKautz};

    fn pops_sim(load: f64, slots: u64) -> SimMetrics {
        let pops = Pops::new(4, 2);
        let sim = MultiOpsSim::new(
            pops.stack_graph().clone(),
            MultiOpsSimConfig {
                slots,
                ..Default::default()
            },
        );
        sim.run(&TrafficPattern::Uniform { load })
    }

    #[test]
    fn conservation_of_messages() {
        let m = pops_sim(0.5, 500);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        assert!(m.injected > 0);
    }

    #[test]
    fn pops_light_load_latency_is_one_slot() {
        // At very light load there is no contention; every message is
        // delivered in the slot it was injected (single-hop network).
        let m = pops_sim(0.01, 4000);
        assert!(m.delivered > 0);
        assert!(
            (m.average_latency() - 1.0).abs() < 0.2,
            "latency {}",
            m.average_latency()
        );
        assert!((m.average_hops() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stack_kautz_hops_within_diameter() {
        let sk = StackKautz::new(3, 2, 2);
        let sim = MultiOpsSim::new(
            sk.stack_graph().clone(),
            MultiOpsSimConfig {
                slots: 2000,
                ..Default::default()
            },
        );
        let m = sim.run(&TrafficPattern::Uniform { load: 0.05 });
        assert!(m.delivered > 0);
        assert!(m.average_hops() <= 2.0 + 1e-9);
        assert!(m.average_hops() >= 1.0);
    }

    #[test]
    fn throughput_saturates_at_coupler_capacity() {
        // POPS(4,2): 4 couplers, 8 processors; at most 4 messages can be
        // delivered per slot, i.e. 0.5 per processor per slot.
        let m = pops_sim(1.0, 1000);
        assert!(m.throughput() <= 0.5 + 1e-9);
        assert!(
            m.throughput() > 0.3,
            "saturated throughput {}",
            m.throughput()
        );
        assert!(m.channel_utilization() > 0.8);
    }

    #[test]
    fn higher_load_increases_latency() {
        let light = pops_sim(0.05, 2000);
        let heavy = pops_sim(0.9, 2000);
        assert!(heavy.average_latency() > light.average_latency());
    }

    #[test]
    fn queue_limit_applies_back_pressure() {
        let pops = Pops::new(4, 2);
        let unlimited = MultiOpsSim::new(
            pops.stack_graph().clone(),
            MultiOpsSimConfig {
                slots: 500,
                queue_limit: 0,
                ..Default::default()
            },
        )
        .run(&TrafficPattern::Uniform { load: 1.0 });
        let limited = MultiOpsSim::new(
            pops.stack_graph().clone(),
            MultiOpsSimConfig {
                slots: 500,
                queue_limit: 2,
                ..Default::default()
            },
        )
        .run(&TrafficPattern::Uniform { load: 1.0 });
        assert!(limited.injected < unlimited.injected);
        assert!(limited.in_flight <= unlimited.in_flight);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = pops_sim(0.3, 300);
        let b = pops_sim(0.3, 300);
        assert_eq!(a, b);
    }

    #[test]
    fn faulty_group_traffic_is_refused_and_bound_holds() {
        // SK(2,2,2): quotient KG(2,2), d = 2 — one failed group is within
        // the §2.5 survivability claim; delivered routes stay <= k + 2 = 4.
        let sk = StackKautz::new(2, 2, 2);
        let config = MultiOpsSimConfig {
            slots: 600,
            ..Default::default()
        };
        let intact = MultiOpsSim::new(sk.stack_graph().clone(), config)
            .run(&TrafficPattern::Uniform { load: 0.4 });
        let faulty =
            MultiOpsSim::with_faults(sk.stack_graph().clone(), config, FaultSet::from_nodes([2]))
                .run(&TrafficPattern::Uniform { load: 0.4 });
        assert!(faulty.delivered > 0);
        assert_eq!(
            faulty.injected,
            faulty.delivered + faulty.in_flight + faulty.dropped
        );
        assert!(faulty.injected < intact.injected);
        assert!(faulty.max_hops <= 4, "max hops {}", faulty.max_hops);
    }

    #[test]
    fn arbitration_policies_all_work() {
        let pops = Pops::new(3, 3);
        for policy in [
            ArbitrationPolicy::RoundRobin,
            ArbitrationPolicy::OldestFirst,
            ArbitrationPolicy::Random,
        ] {
            let sim = MultiOpsSim::new(
                pops.stack_graph().clone(),
                MultiOpsSimConfig {
                    slots: 300,
                    policy,
                    ..Default::default()
                },
            );
            let m = sim.run(&TrafficPattern::Uniform { load: 0.8 });
            assert!(m.delivered > 0, "{policy:?}");
            assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        }
    }
}
