//! Slotted simulation of multi-OPS (stack-graph) networks.
//!
//! The model follows the behavioural facts established by the optics layer:
//!
//! * time is divided into slots;
//! * each OPS coupler is single-wavelength, so it carries **one** message per
//!   slot, chosen by an [`ArbitrationPolicy`] among the processors of its
//!   tail that have a message queued for it;
//! * a processor has one transmitter per coupler it feeds and one receiver
//!   per coupler it hears (as in the OTIS designs), so it can take part in
//!   several couplers in the same slot;
//! * messages follow the group-level routes of
//!   [`otis_routing::StackRouter`]; intermediate processors re-queue the
//!   message for its next-hop coupler in the following slot.
//!
//! The simulator is split into *prepare* and *execute* phases:
//!
//! * [`PreparedMultiOps`] is the immutable kernel — the fault-filtered
//!   [`StackRouter`] quotient plus a flat CSR-style table of every
//!   source/destination route (one contiguous [`StackHop`] slice per pair),
//!   built once per `(stack-graph, fault-pattern)` pair;
//! * [`PreparedMultiOps::run`] owns only per-run mutable state
//!   ([`crate::kernel::RunCore`] plus reusable coupler queues) and performs
//!   no per-slot allocations: in-flight messages reference their
//!   precomputed route slice instead of carrying an owned route, and the
//!   arbitration candidate buffer is reused across couplers and slots.
//!
//! [`MultiOpsSim`] remains as the one-shot convenience: a prepared kernel
//! bundled with one [`MultiOpsSimConfig`].

use crate::arbitration::ArbitrationPolicy;
use crate::kernel::RunCore;
use crate::message::Message;
use crate::metrics::SimMetrics;
use crate::traffic::TrafficPattern;
use otis_graphs::StackGraph;
use otis_routing::{FaultSet, StackHop, StackRouter};
use std::collections::VecDeque;
use std::sync::Arc;

/// Configuration of one multi-OPS simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiOpsSimConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// Arbitration policy applied at every coupler.
    pub policy: ArbitrationPolicy,
    /// Random seed (traffic and random arbitration).
    pub seed: u64,
    /// Messages a processor may hold queued per coupler before it stops
    /// injecting (back-pressure).  `0` means unlimited.
    pub queue_limit: usize,
}

impl Default for MultiOpsSimConfig {
    fn default() -> Self {
        MultiOpsSimConfig {
            slots: 1000,
            policy: ArbitrationPolicy::OldestFirst,
            seed: 1,
            queue_limit: 0,
        }
    }
}

/// A message in flight.  Its route is *not* carried along: it lives in the
/// kernel's flat route table, indexed by the message's own
/// `(source, destination)` pair, and `next_hop` tracks the position reached
/// within that precomputed slice.
#[derive(Debug, Clone)]
struct InFlight {
    message: Message,
    next_hop: usize,
    /// The processor currently holding the message (the sender of the next hop).
    holder: usize,
}

/// All routes of one prepared network, flattened CSR-style: the hops of the
/// route from `src` to `dst` are the contiguous slice
/// `hops[offsets[src·n + dst] .. offsets[src·n + dst + 1]]`.  Pairs the
/// (fault-filtered) quotient cannot connect are marked unreachable.  Memory
/// is `O(n² · diameter)` — the same order as the routing tables already
/// underneath — and lookups are two loads, so the injection path of the
/// slot loop does no route computation and no allocation.
#[derive(Debug, Clone)]
struct FlatRoutes {
    n: usize,
    offsets: Vec<usize>,
    reachable: Vec<bool>,
    hops: Vec<StackHop>,
}

impl FlatRoutes {
    /// Precomputes every route of the router, in source-major order.
    fn new(router: &StackRouter) -> Self {
        let n = router.stack_graph().node_count();
        let mut offsets = Vec::with_capacity(n * n + 1);
        offsets.push(0);
        let mut reachable = Vec::with_capacity(n * n);
        let mut hops = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                match router.route(src, dst) {
                    Some(route) => {
                        reachable.push(true);
                        hops.extend(route.hops);
                    }
                    None => reachable.push(false),
                }
                offsets.push(hops.len());
            }
        }
        FlatRoutes {
            n,
            offsets,
            reachable,
            hops,
        }
    }

    /// The hop slice of the route from `src` to `dst`; `None` when the pair
    /// is unreachable (a failed endpoint group or a disconnected quotient),
    /// `Some(&[])` when `src == dst`.
    fn get(&self, src: usize, dst: usize) -> Option<&[StackHop]> {
        let pair = src * self.n + dst;
        self.reachable[pair].then(|| &self.hops[self.offsets[pair]..self.offsets[pair + 1]])
    }
}

/// The immutable, shareable kernel of the multi-OPS simulator: the
/// fault-filtered [`StackRouter`] (quotient routing table) plus the
/// [`FlatRoutes`] table of every source/destination route.  Building one is
/// the expensive part of a simulation; [`PreparedMultiOps::run`] is the
/// cheap part and can be called any number of times with different seeds,
/// traffic patterns and slot counts.
///
/// The kernel is `Send + Sync`, so a scenario engine can build it once per
/// distinct `(stack-graph, fault-pattern)` pair and share it across worker
/// threads.
#[derive(Debug, Clone)]
pub struct PreparedMultiOps {
    router: StackRouter,
    routes: FlatRoutes,
}

impl PreparedMultiOps {
    /// Prepares a kernel over a shared stack-graph, routing around the given
    /// faults.  The fault set is interpreted over the quotient (see
    /// [`StackRouter::with_faults`]): failed groups neither send nor
    /// receive, blocked couplers carry nothing, and injections the surviving
    /// quotient cannot route are refused at run time (not counted as
    /// injected).
    pub fn new(stack: Arc<StackGraph>, faults: FaultSet) -> Self {
        let router = StackRouter::from_shared(stack, faults);
        let routes = FlatRoutes::new(&router);
        PreparedMultiOps { router, routes }
    }

    /// Prepares a kernel from an owned stack-graph; see
    /// [`PreparedMultiOps::new`].
    pub fn from_stack(stack: StackGraph, faults: FaultSet) -> Self {
        Self::new(Arc::new(stack), faults)
    }

    /// Number of processors simulated.
    pub fn processor_count(&self) -> usize {
        self.router.stack_graph().node_count()
    }

    /// Number of couplers simulated.
    pub fn coupler_count(&self) -> usize {
        self.router.stack_graph().hyperarc_count()
    }

    /// The fault-avoiding router underneath (exposes the stack-graph and
    /// the faults fixed at prepare time).
    pub fn router(&self) -> &StackRouter {
        &self.router
    }

    /// Executes one run: `config` carries the run-scoped knobs (slots, seed,
    /// arbitration policy, queue limit), `traffic` drives the injections.
    /// All mutable state is local to this call; the slot loop reuses the
    /// coupler queues, the injection buffer and the arbitration candidate
    /// buffer across slots — it performs no per-slot allocations.
    pub fn run(&self, traffic: &TrafficPattern, config: &MultiOpsSimConfig) -> SimMetrics {
        let n = self.processor_count();
        let couplers = self.coupler_count();
        let mut core = RunCore::new(config.seed, n, couplers);
        // One queue per coupler of messages waiting to use it, plus the
        // reusable per-slot scratch buffers.
        let mut queues: Vec<VecDeque<InFlight>> = (0..couplers).map(|_| VecDeque::new()).collect();
        let mut last_winner: Vec<Option<usize>> = vec![None; couplers];
        let mut injections: Vec<Option<usize>> = Vec::new();
        let mut candidates: Vec<(usize, u64)> = Vec::new();

        for slot in 0..config.slots {
            core.begin_slot(slot);

            // 1. Injection.
            traffic.injections_into(n, &mut core.rng, &mut injections);
            for (src, dst) in injections.iter().enumerate() {
                let Some(dst) = *dst else { continue };
                let Some(route) = self.routes.get(src, dst) else {
                    continue;
                };
                if route.is_empty() {
                    continue;
                }
                let first_coupler = route[0].coupler;
                if config.queue_limit > 0 && queues[first_coupler].len() >= config.queue_limit {
                    // Back-pressure: the injection is refused, not counted.
                    continue;
                }
                let message = core.inject(src, dst, slot);
                queues[first_coupler].push_back(InFlight {
                    message,
                    next_hop: 0,
                    holder: src,
                });
            }

            // 2. Per-coupler arbitration and transmission.
            for coupler in 0..couplers {
                if queues[coupler].is_empty() {
                    continue;
                }
                candidates.clear();
                candidates.extend(
                    queues[coupler]
                        .iter()
                        .map(|f| (f.holder, f.message.created_slot)),
                );
                let Some(winner_idx) =
                    config
                        .policy
                        .pick(&candidates, last_winner[coupler], &mut core.rng)
                else {
                    continue;
                };
                let mut flight = queues[coupler].remove(winner_idx).expect("index valid");
                last_winner[coupler] = Some(flight.holder);
                core.grant();

                let route = self
                    .routes
                    .get(flight.message.source, flight.message.destination)
                    .expect("queued messages were injected along a precomputed route");
                let hop = route[flight.next_hop];
                flight.message.hops += 1;
                flight.next_hop += 1;
                flight.holder = hop.receiver;
                if flight.next_hop == route.len() {
                    // Delivered at the end of this slot.
                    let latency = slot + 1 - flight.message.created_slot;
                    core.deliver(latency, flight.message.hops);
                } else {
                    let next_coupler = route[flight.next_hop].coupler;
                    queues[next_coupler].push_back(flight);
                }
            }
        }

        let in_flight = queues.iter().map(|q| q.len() as u64).sum();
        core.finish(in_flight)
    }
}

/// The multi-OPS network simulator: a [`PreparedMultiOps`] kernel bundled
/// with one [`MultiOpsSimConfig`].  Kept as the one-shot convenience; sweeps
/// that run many seeds or traffic patterns over the same network should
/// hold the prepared kernel directly and call [`PreparedMultiOps::run`] per
/// cell.
#[derive(Debug)]
pub struct MultiOpsSim {
    prepared: PreparedMultiOps,
    config: MultiOpsSimConfig,
}

impl MultiOpsSim {
    /// Creates a simulator for the given stack-graph network.
    pub fn new(stack: StackGraph, config: MultiOpsSimConfig) -> Self {
        Self::with_faults(stack, config, FaultSet::new())
    }

    /// Creates a simulator that routes around the given faults; see
    /// [`PreparedMultiOps::new`] for the fault semantics.
    pub fn with_faults(stack: StackGraph, config: MultiOpsSimConfig, faults: FaultSet) -> Self {
        MultiOpsSim {
            prepared: PreparedMultiOps::from_stack(stack, faults),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultiOpsSimConfig {
        &self.config
    }

    /// Number of processors simulated.
    pub fn processor_count(&self) -> usize {
        self.prepared.processor_count()
    }

    /// Number of couplers simulated.
    pub fn coupler_count(&self) -> usize {
        self.prepared.coupler_count()
    }

    /// The immutable kernel behind this simulator.
    pub fn prepared(&self) -> &PreparedMultiOps {
        &self.prepared
    }

    /// Runs the simulation under the given traffic pattern.
    pub fn run(&self, traffic: &TrafficPattern) -> SimMetrics {
        self.prepared.run(traffic, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_topologies::{Pops, StackKautz};

    fn pops_sim(load: f64, slots: u64) -> SimMetrics {
        let pops = Pops::new(4, 2);
        let sim = MultiOpsSim::new(
            pops.stack_graph().clone(),
            MultiOpsSimConfig {
                slots,
                ..Default::default()
            },
        );
        sim.run(&TrafficPattern::Uniform { load })
    }

    #[test]
    fn conservation_of_messages() {
        let m = pops_sim(0.5, 500);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        assert!(m.injected > 0);
    }

    #[test]
    fn pops_light_load_latency_is_one_slot() {
        // At very light load there is no contention; every message is
        // delivered in the slot it was injected (single-hop network).
        let m = pops_sim(0.01, 4000);
        assert!(m.delivered > 0);
        assert!(
            (m.average_latency() - 1.0).abs() < 0.2,
            "latency {}",
            m.average_latency()
        );
        assert!((m.average_hops() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stack_kautz_hops_within_diameter() {
        let sk = StackKautz::new(3, 2, 2);
        let sim = MultiOpsSim::new(
            sk.stack_graph().clone(),
            MultiOpsSimConfig {
                slots: 2000,
                ..Default::default()
            },
        );
        let m = sim.run(&TrafficPattern::Uniform { load: 0.05 });
        assert!(m.delivered > 0);
        assert!(m.average_hops() <= 2.0 + 1e-9);
        assert!(m.average_hops() >= 1.0);
    }

    #[test]
    fn throughput_saturates_at_coupler_capacity() {
        // POPS(4,2): 4 couplers, 8 processors; at most 4 messages can be
        // delivered per slot, i.e. 0.5 per processor per slot.
        let m = pops_sim(1.0, 1000);
        assert!(m.throughput() <= 0.5 + 1e-9);
        assert!(
            m.throughput() > 0.3,
            "saturated throughput {}",
            m.throughput()
        );
        assert!(m.channel_utilization() > 0.8);
    }

    #[test]
    fn higher_load_increases_latency() {
        let light = pops_sim(0.05, 2000);
        let heavy = pops_sim(0.9, 2000);
        assert!(heavy.average_latency() > light.average_latency());
    }

    #[test]
    fn queue_limit_applies_back_pressure() {
        let pops = Pops::new(4, 2);
        let unlimited = MultiOpsSim::new(
            pops.stack_graph().clone(),
            MultiOpsSimConfig {
                slots: 500,
                queue_limit: 0,
                ..Default::default()
            },
        )
        .run(&TrafficPattern::Uniform { load: 1.0 });
        let limited = MultiOpsSim::new(
            pops.stack_graph().clone(),
            MultiOpsSimConfig {
                slots: 500,
                queue_limit: 2,
                ..Default::default()
            },
        )
        .run(&TrafficPattern::Uniform { load: 1.0 });
        assert!(limited.injected < unlimited.injected);
        assert!(limited.in_flight <= unlimited.in_flight);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = pops_sim(0.3, 300);
        let b = pops_sim(0.3, 300);
        assert_eq!(a, b);
    }

    #[test]
    fn faulty_group_traffic_is_refused_and_bound_holds() {
        // SK(2,2,2): quotient KG(2,2), d = 2 — one failed group is within
        // the §2.5 survivability claim; delivered routes stay <= k + 2 = 4.
        let sk = StackKautz::new(2, 2, 2);
        let config = MultiOpsSimConfig {
            slots: 600,
            ..Default::default()
        };
        let intact = MultiOpsSim::new(sk.stack_graph().clone(), config)
            .run(&TrafficPattern::Uniform { load: 0.4 });
        let faulty =
            MultiOpsSim::with_faults(sk.stack_graph().clone(), config, FaultSet::from_nodes([2]))
                .run(&TrafficPattern::Uniform { load: 0.4 });
        assert!(faulty.delivered > 0);
        assert_eq!(
            faulty.injected,
            faulty.delivered + faulty.in_flight + faulty.dropped
        );
        assert!(faulty.injected < intact.injected);
        assert!(faulty.max_hops <= 4, "max hops {}", faulty.max_hops);
    }

    #[test]
    fn prepared_kernel_reuse_matches_fresh_construction() {
        // The prepare/execute contract, multi-OPS side: one kernel driven
        // with many (seed, traffic, slots) combinations matches rebuilding
        // the simulator (router + quotient table + flat routes) per run.
        let sk = StackKautz::new(2, 2, 2);
        for faults in [FaultSet::new(), FaultSet::from_nodes([2])] {
            let kernel = PreparedMultiOps::from_stack(sk.stack_graph().clone(), faults.clone());
            for (seed, load, slots) in [(1u64, 0.4, 400u64), (7, 0.9, 250), (31, 0.1, 600)] {
                let config = MultiOpsSimConfig {
                    slots,
                    seed,
                    ..Default::default()
                };
                let traffic = TrafficPattern::Uniform { load };
                let reused = kernel.run(&traffic, &config);
                let fresh =
                    MultiOpsSim::with_faults(sk.stack_graph().clone(), config, faults.clone())
                        .run(&traffic);
                assert_eq!(reused, fresh, "seed {seed} load {load}");
            }
        }
    }

    #[test]
    fn arbitration_policies_all_work() {
        let pops = Pops::new(3, 3);
        for policy in [
            ArbitrationPolicy::RoundRobin,
            ArbitrationPolicy::OldestFirst,
            ArbitrationPolicy::Random,
        ] {
            let sim = MultiOpsSim::new(
                pops.stack_graph().clone(),
                MultiOpsSimConfig {
                    slots: 300,
                    policy,
                    ..Default::default()
                },
            );
            let m = sim.run(&TrafficPattern::Uniform { load: 0.8 });
            assert!(m.delivered > 0, "{policy:?}");
            assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        }
    }
}
