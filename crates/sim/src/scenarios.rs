//! Packaged head-to-head comparison scenarios (experiment T5).
//!
//! The motivation of the paper — multi-OPS networks are "more viable and
//! cost-effective under current optical technology" — rests on comparisons
//! like the one packaged here: the single-hop POPS, the multi-hop stack-Kautz
//! and a single-OPS point-to-point hot-potato de Bruijn network of comparable
//! size are driven with the same traffic and their accepted throughput and
//! latency are tabulated across offered loads.

use crate::hot_potato::{HotPotatoSim, HotPotatoSimConfig};
use crate::metrics::SimMetrics;
use crate::multi_ops::{MultiOpsSim, MultiOpsSimConfig};
use crate::traffic::TrafficPattern;
use otis_topologies::{de_bruijn, Pops, StackKautz};

/// One row of the comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Network name, e.g. `"POPS(9,8)"`.
    pub network: String,
    /// Number of processors.
    pub processors: usize,
    /// Number of couplers (multi-OPS) or links (point-to-point).
    pub channels: usize,
    /// Offered load (messages per processor per slot).
    pub offered_load: f64,
    /// Accepted throughput (delivered messages per processor per slot).
    pub throughput: f64,
    /// Average delivered latency in slots.
    pub average_latency: f64,
    /// Average optical hops per delivered message.
    pub average_hops: f64,
}

impl ComparisonRow {
    fn from_metrics(network: impl Into<String>, load: f64, m: &SimMetrics) -> Self {
        ComparisonRow {
            network: network.into(),
            processors: m.processors,
            channels: m.channels,
            offered_load: load,
            throughput: m.throughput(),
            average_latency: m.average_latency(),
            average_hops: m.average_hops(),
        }
    }

    /// Formats the row for the reproduction harness.
    pub fn as_table_row(&self) -> String {
        format!(
            "{:<16} {:>6} {:>8} {:>8.3} {:>10.4} {:>10.2} {:>8.2}",
            self.network,
            self.processors,
            self.channels,
            self.offered_load,
            self.throughput,
            self.average_latency,
            self.average_hops
        )
    }

    /// Header matching [`ComparisonRow::as_table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<16} {:>6} {:>8} {:>8} {:>10} {:>10} {:>8}",
            "network", "procs", "channels", "load", "thruput", "latency", "hops"
        )
    }
}

/// Runs the three-way comparison — `SK(s, d, k)`, a POPS with the same number
/// of processors, and a hot-potato de Bruijn of comparable size — over the
/// given offered loads, for `slots` slots each, and returns one row per
/// (network, load) pair.
pub fn compare_networks(
    s: usize,
    d: usize,
    k: usize,
    loads: &[f64],
    slots: u64,
    seed: u64,
) -> Vec<ComparisonRow> {
    let sk = StackKautz::new(s, d, k);
    let n = sk.node_count();
    // A POPS with the same processor count: groups of size s·(groups of SK)…
    // keep it simple and fair: same N, group size s, so g = N / s groups.
    let pops_groups = sk.group_count();
    let pops = Pops::new(s, pops_groups);
    // A de Bruijn graph with at least as many nodes, same degree d.
    let mut db_k = 1usize;
    while d.pow(db_k as u32) < n {
        db_k += 1;
    }
    let db = de_bruijn(d, db_k);

    let mut rows = Vec::new();
    for &load in loads {
        let traffic = TrafficPattern::Uniform { load };

        let sk_metrics = MultiOpsSim::new(
            sk.stack_graph().clone(),
            MultiOpsSimConfig { slots, seed, ..Default::default() },
        )
        .run(&traffic);
        rows.push(ComparisonRow::from_metrics(
            format!("SK({s},{d},{k})"),
            load,
            &sk_metrics,
        ));

        let pops_metrics = MultiOpsSim::new(
            pops.stack_graph().clone(),
            MultiOpsSimConfig { slots, seed, ..Default::default() },
        )
        .run(&traffic);
        rows.push(ComparisonRow::from_metrics(
            format!("POPS({s},{pops_groups})"),
            load,
            &pops_metrics,
        ));

        let db_metrics = HotPotatoSim::new(
            db.clone(),
            HotPotatoSimConfig { slots, seed, ..Default::default() },
        )
        .run(&traffic);
        rows.push(ComparisonRow::from_metrics(
            format!("B({d},{db_k}) hot-potato"),
            load,
            &db_metrics,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_three_rows_per_load() {
        let rows = compare_networks(2, 2, 2, &[0.1, 0.5], 300, 7);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.processors > 0);
            assert!(row.throughput >= 0.0);
            assert!(!row.as_table_row().is_empty());
        }
        assert!(ComparisonRow::table_header().contains("thruput"));
    }

    #[test]
    fn pops_has_lower_hops_than_stack_kautz() {
        // Single-hop vs multi-hop: POPS average hops ≈ 1, SK > 1 at any load.
        let rows = compare_networks(2, 2, 2, &[0.2], 2000, 3);
        let sk = rows.iter().find(|r| r.network.starts_with("SK")).unwrap();
        let pops = rows.iter().find(|r| r.network.starts_with("POPS")).unwrap();
        assert!((pops.average_hops - 1.0).abs() < 1e-6);
        assert!(sk.average_hops >= pops.average_hops);
    }

    #[test]
    fn pops_needs_more_couplers_than_stack_kautz() {
        // The hardware-scalability argument: for the same N and group size,
        // POPS needs g² couplers while SK needs g·(d+1).
        let rows = compare_networks(2, 2, 2, &[0.1], 100, 1);
        let sk = rows.iter().find(|r| r.network.starts_with("SK")).unwrap();
        let pops = rows.iter().find(|r| r.network.starts_with("POPS")).unwrap();
        assert!(pops.channels > sk.channels);
    }

    #[test]
    fn throughput_grows_with_load_until_saturation() {
        let rows = compare_networks(2, 2, 2, &[0.05, 0.8], 1500, 11);
        let sk_light = &rows[0];
        let sk_heavy = &rows[3];
        assert!(sk_heavy.throughput >= sk_light.throughput * 0.9);
    }
}
