//! Traffic generators.
//!
//! Each pattern answers one question per processor per slot: "does this
//! processor inject a new message this slot, and to whom?".  Loads are
//! expressed as the per-processor injection probability per slot, so a load
//! of 1.0 means every processor tries to inject every slot.
//!
//! Probabilities are saturated defensively: a `NaN` load or fraction behaves
//! as `0.0`, anything outside `[0, 1]` is clamped.  The typed front door —
//! `otis_net::TrafficSpec` — rejects such values at parse time; the
//! saturation here only guards direct construction.
//!
//! A pattern may *drop* some of its nominal injections because the rule maps
//! a source onto itself (a permutation fixed point): those slots inject
//! nothing.  [`TrafficPattern::offered_load`] reports the nominal load;
//! [`TrafficPattern::effective_load`] reports what actually enters an
//! `n`-processor network once fixed points are accounted for.

use rand::Rng;

/// A synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficPattern {
    /// Every processor injects with probability `load` per slot, destination
    /// chosen uniformly among the other processors.
    Uniform {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
    },
    /// Every processor injects with probability `load`, always to the fixed
    /// destination `(source + offset) mod N` — a static permutation.  When
    /// `offset % N == 0` every pair is a fixed point and nothing is injected
    /// ([`TrafficPattern::effective_load`] is `0`).
    Permutation {
        /// Injection probability per processor per slot.
        load: f64,
        /// The shift of the permutation.
        offset: usize,
    },
    /// Like `Uniform`, but skewed towards the single `hot_node`.
    ///
    /// Exact semantics, pinned by test: a source `src != hot_node` that
    /// injects sends to `hot_node` with probability `hot_fraction` and
    /// uniformly to a random *other* processor (which may again be
    /// `hot_node`) with probability `1 − hot_fraction` — so its per-message
    /// probability of hitting the hot spot is
    /// `hot_fraction + (1 − hot_fraction) / (N − 1)`.  The hot node itself
    /// has no valid hot destination; all of its traffic is uniform over the
    /// other processors.  A `hot_node >= N` is out of range and degrades to
    /// plain uniform traffic (the typed `TrafficSpec` front door refuses it
    /// at bind time instead).
    Hotspot {
        /// Injection probability per processor per slot.
        load: f64,
        /// The hot destination.
        hot_node: usize,
        /// Probability that a non-hot source's message targets `hot_node`,
        /// in `[0, 1]`.
        hot_fraction: f64,
    },
    /// Matrix-transpose traffic on a square processor grid: `N = m²` and
    /// processor `(i, j)` (= `i·m + j`) sends to `(j, i)`.  The `m` diagonal
    /// processors are fixed points and inject nothing.  If `N` is not a
    /// perfect square the pattern is undefined and injects nothing (the
    /// typed `TrafficSpec` front door refuses such networks at bind time).
    Transpose {
        /// Injection probability per processor per slot.
        load: f64,
    },
    /// Bit-reversal traffic on a power-of-two network: `N = 2^b` and each
    /// source sends to the reversal of its `b`-bit address.  Palindromic
    /// addresses are fixed points and inject nothing.  If `N` is not a power
    /// of two the pattern is undefined and injects nothing (the typed
    /// `TrafficSpec` front door refuses such networks at bind time).
    BitReversal {
        /// Injection probability per processor per slot.
        load: f64,
    },
}

impl TrafficPattern {
    /// The injection decisions of one slot: for every processor, an optional
    /// destination.
    pub fn injections<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<Option<usize>> {
        let mut out = Vec::new();
        self.injections_into(n, rng, &mut out);
        out
    }

    /// Allocation-free form of [`TrafficPattern::injections`]: fills the
    /// caller's buffer with this slot's decisions instead of allocating a
    /// fresh vector, so slot loops can reuse one buffer for the whole run.
    /// Draws from the RNG in exactly the same order as the allocating form.
    pub fn injections_into<R: Rng>(&self, n: usize, rng: &mut R, out: &mut Vec<Option<usize>>) {
        out.clear();
        out.extend((0..n).map(|src| self.inject_for(src, n, rng)));
    }

    /// The injection decision of one processor in one slot.
    pub fn inject_for<R: Rng>(&self, src: usize, n: usize, rng: &mut R) -> Option<usize> {
        if n < 2 {
            return None;
        }
        match *self {
            TrafficPattern::Uniform { load } => {
                if rng.gen_bool(saturate(load)) {
                    Some(random_other(src, n, rng))
                } else {
                    None
                }
            }
            TrafficPattern::Permutation { load, offset } => {
                if rng.gen_bool(saturate(load)) {
                    let dst = (src + offset % n) % n;
                    if dst == src {
                        None
                    } else {
                        Some(dst)
                    }
                } else {
                    None
                }
            }
            TrafficPattern::Hotspot {
                load,
                hot_node,
                hot_fraction,
            } => {
                if rng.gen_bool(saturate(load)) {
                    if rng.gen_bool(saturate(hot_fraction)) && hot_node != src && hot_node < n {
                        Some(hot_node)
                    } else {
                        Some(random_other(src, n, rng))
                    }
                } else {
                    None
                }
            }
            TrafficPattern::Transpose { load } => {
                let m = square_side(n)?;
                if rng.gen_bool(saturate(load)) {
                    let (i, j) = (src / m, src % m);
                    let dst = j * m + i;
                    if dst == src {
                        None
                    } else {
                        Some(dst)
                    }
                } else {
                    None
                }
            }
            TrafficPattern::BitReversal { load } => {
                if !n.is_power_of_two() {
                    return None;
                }
                if rng.gen_bool(saturate(load)) {
                    let bits = n.trailing_zeros();
                    let dst = src.reverse_bits() >> (usize::BITS - bits);
                    if dst == src {
                        None
                    } else {
                        Some(dst)
                    }
                } else {
                    None
                }
            }
        }
    }

    /// The nominal offered load (messages per processor per slot), before
    /// any fixed-point drops — see [`TrafficPattern::effective_load`].
    pub fn offered_load(&self) -> f64 {
        match *self {
            TrafficPattern::Uniform { load }
            | TrafficPattern::Permutation { load, .. }
            | TrafficPattern::Hotspot { load, .. }
            | TrafficPattern::Transpose { load }
            | TrafficPattern::BitReversal { load } => load,
        }
    }

    /// The load that actually enters an `n`-processor network: the nominal
    /// load scaled by the fraction of processors that are *not* fixed points
    /// of the pattern (a fixed-point source drops every injection as
    /// self-traffic).  In particular a permutation with `offset % n == 0`
    /// offers nothing, transpose loses its `√n` diagonal processors, and
    /// bit-reversal loses its palindromic addresses.  Patterns undefined for
    /// `n` (non-square transpose, non-power-of-two bit-reversal) and
    /// networks with fewer than two processors offer `0`.
    pub fn effective_load(&self, n: usize) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let load = saturate(self.offered_load());
        let movers = match *self {
            TrafficPattern::Uniform { .. } | TrafficPattern::Hotspot { .. } => n,
            TrafficPattern::Permutation { offset, .. } => {
                if offset % n == 0 {
                    0
                } else {
                    n
                }
            }
            TrafficPattern::Transpose { .. } => match square_side(n) {
                Some(m) => n - m,
                None => 0,
            },
            TrafficPattern::BitReversal { .. } => {
                if n.is_power_of_two() {
                    let bits = n.trailing_zeros();
                    n - (1usize << bits.div_ceil(2))
                } else {
                    0
                }
            }
        };
        load * movers as f64 / n as f64
    }
}

/// Clamps a probability into `[0, 1]`, mapping `NaN` to `0.0` (a bare
/// `f64::clamp` propagates `NaN`, which `rand` implementations may reject).
fn saturate(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// `Some(m)` when `n == m²`, `None` otherwise.
fn square_side(n: usize) -> Option<usize> {
    let m = n.isqrt();
    (m * m == n).then_some(m)
}

fn random_other<R: Rng>(src: usize, n: usize, rng: &mut R) -> usize {
    let mut dst = rng.gen_range(0..n - 1);
    if dst >= src {
        dst += 1;
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_load_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let pattern = TrafficPattern::Uniform { load: 0.3 };
        let n = 50;
        let slots = 2000;
        let mut injected = 0usize;
        for _ in 0..slots {
            injected += pattern.injections(n, &mut rng).iter().flatten().count();
        }
        let rate = injected as f64 / (n as f64 * slots as f64);
        assert!((rate - 0.3).abs() < 0.02, "measured rate {rate}");
    }

    #[test]
    fn uniform_never_self_addresses() {
        let mut rng = StdRng::seed_from_u64(2);
        let pattern = TrafficPattern::Uniform { load: 1.0 };
        for _ in 0..200 {
            for (src, dst) in pattern.injections(10, &mut rng).iter().enumerate() {
                assert_ne!(Some(src), *dst);
            }
        }
    }

    #[test]
    fn permutation_is_deterministic_in_destination() {
        let mut rng = StdRng::seed_from_u64(3);
        let pattern = TrafficPattern::Permutation {
            load: 1.0,
            offset: 3,
        };
        for (src, dst) in pattern.injections(8, &mut rng).iter().enumerate() {
            assert_eq!(*dst, Some((src + 3) % 8));
        }
        // Offset 0 would self-address; the generator suppresses those.
        let degenerate = TrafficPattern::Permutation {
            load: 1.0,
            offset: 0,
        };
        assert!(degenerate
            .injections(8, &mut rng)
            .iter()
            .all(|d| d.is_none()));
    }

    #[test]
    fn effective_load_accounts_for_permutation_fixed_points() {
        // Regression: a degenerate permutation (offset % n == 0) drops every
        // injection as self-traffic; offered_load used to report `load`
        // anyway with nothing to qualify it.
        let degenerate = TrafficPattern::Permutation {
            load: 0.8,
            offset: 8,
        };
        assert_eq!(degenerate.offered_load(), 0.8);
        assert_eq!(degenerate.effective_load(8), 0.0);
        assert_eq!(degenerate.effective_load(4), 0.0);
        // A real shift moves every processor.
        let shifted = TrafficPattern::Permutation {
            load: 0.8,
            offset: 3,
        };
        assert_eq!(shifted.effective_load(8), 0.8);
        // Offsets wrap: offset 11 on 8 nodes is the same shift as 3.
        let mut rng = StdRng::seed_from_u64(17);
        let wrapped = TrafficPattern::Permutation {
            load: 1.0,
            offset: 11,
        };
        for (src, dst) in wrapped.injections(8, &mut rng).iter().enumerate() {
            assert_eq!(*dst, Some((src + 3) % 8));
        }
    }

    #[test]
    fn effective_load_matches_measured_rate_for_fixed_point_patterns() {
        let n = 16; // 4×4 grid and 2^4, so both patterns are defined.
        let slots = 4000;
        for pattern in [
            TrafficPattern::Transpose { load: 0.5 },
            TrafficPattern::BitReversal { load: 0.5 },
            TrafficPattern::Permutation {
                load: 0.5,
                offset: 16,
            },
        ] {
            let mut rng = StdRng::seed_from_u64(23);
            let mut injected = 0usize;
            for _ in 0..slots {
                injected += pattern.injections(n, &mut rng).iter().flatten().count();
            }
            let rate = injected as f64 / (n as f64 * slots as f64);
            let predicted = pattern.effective_load(n);
            assert!(
                (rate - predicted).abs() < 0.02,
                "{pattern:?}: measured {rate}, predicted {predicted}"
            );
        }
    }

    #[test]
    fn nan_and_out_of_range_probabilities_saturate() {
        // f64::clamp propagates NaN, and real `rand` back-ends panic on a
        // NaN probability — the generators must never forward one.
        let mut rng = StdRng::seed_from_u64(7);
        for pattern in [
            TrafficPattern::Uniform { load: f64::NAN },
            TrafficPattern::Permutation {
                load: f64::NAN,
                offset: 1,
            },
            TrafficPattern::Hotspot {
                load: f64::NAN,
                hot_node: 0,
                hot_fraction: f64::NAN,
            },
            TrafficPattern::Transpose { load: f64::NAN },
            TrafficPattern::BitReversal { load: f64::NAN },
        ] {
            assert!(
                pattern.injections(16, &mut rng).iter().all(|d| d.is_none()),
                "{pattern:?} must inject nothing at NaN load"
            );
            assert_eq!(pattern.effective_load(16), 0.0, "{pattern:?}");
        }
        // Out-of-range loads clamp instead of panicking.
        let over = TrafficPattern::Uniform { load: 7.5 };
        assert!(over.injections(8, &mut rng).iter().all(|d| d.is_some()));
        let under = TrafficPattern::Uniform { load: -3.0 };
        assert!(under.injections(8, &mut rng).iter().all(|d| d.is_none()));
    }

    #[test]
    fn hotspot_skews_towards_hot_node() {
        let mut rng = StdRng::seed_from_u64(4);
        let pattern = TrafficPattern::Hotspot {
            load: 1.0,
            hot_node: 0,
            hot_fraction: 0.5,
        };
        let n = 20;
        let mut to_hot = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            for dst in pattern.injections(n, &mut rng).into_iter().flatten() {
                total += 1;
                if dst == 0 {
                    to_hot += 1;
                }
            }
        }
        let fraction = to_hot as f64 / total as f64;
        assert!(fraction > 0.4, "hot fraction {fraction}");
    }

    #[test]
    fn hotspot_semantics_are_exact_per_source() {
        // Pins the documented semantics: a non-hot source hits the hot node
        // with probability hot_fraction + (1 − hot_fraction)/(N − 1); the
        // hot node itself sends uniformly (its hot roll has no valid
        // destination and falls back to a random other processor).
        let (n, hot_fraction, slots) = (10usize, 0.3f64, 60_000usize);
        let pattern = TrafficPattern::Hotspot {
            load: 1.0,
            hot_node: 2,
            hot_fraction,
        };
        let mut rng = StdRng::seed_from_u64(29);
        let mut to_hot_from_cold = 0usize;
        let mut from_cold = 0usize;
        let mut hot_dst_counts = vec![0usize; n];
        for _ in 0..slots {
            for (src, dst) in pattern.injections(n, &mut rng).iter().enumerate() {
                let dst = dst.expect("load 1.0 always injects on n >= 2");
                assert_ne!(dst, src, "no self-addressing");
                if src == 2 {
                    hot_dst_counts[dst] += 1;
                } else {
                    from_cold += 1;
                    if dst == 2 {
                        to_hot_from_cold += 1;
                    }
                }
            }
        }
        let expected = hot_fraction + (1.0 - hot_fraction) / (n as f64 - 1.0);
        let measured = to_hot_from_cold as f64 / from_cold as f64;
        assert!(
            (measured - expected).abs() < 0.01,
            "cold-source hot rate {measured}, expected {expected}"
        );
        // The hot node's own traffic is uniform over the other 9 processors.
        for (dst, &count) in hot_dst_counts.iter().enumerate() {
            if dst == 2 {
                assert_eq!(count, 0);
            } else {
                let rate = count as f64 / slots as f64;
                assert!(
                    (rate - 1.0 / (n as f64 - 1.0)).abs() < 0.02,
                    "hot-node traffic to {dst} at rate {rate} is not uniform"
                );
            }
        }
    }

    #[test]
    fn transpose_sends_across_the_diagonal() {
        let mut rng = StdRng::seed_from_u64(31);
        let pattern = TrafficPattern::Transpose { load: 1.0 };
        let m = 4;
        for (src, dst) in pattern.injections(m * m, &mut rng).iter().enumerate() {
            let (i, j) = (src / m, src % m);
            if i == j {
                assert_eq!(*dst, None, "diagonal processor {src} is a fixed point");
            } else {
                assert_eq!(*dst, Some(j * m + i), "processor ({i},{j})");
            }
        }
        // Non-square networks are undefined: inject nothing, never panic.
        assert!(pattern.injections(12, &mut rng).iter().all(|d| d.is_none()));
        assert_eq!(pattern.effective_load(12), 0.0);
        assert!((pattern.effective_load(16) - 12.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn bit_reversal_reverses_addresses() {
        let mut rng = StdRng::seed_from_u64(37);
        let pattern = TrafficPattern::BitReversal { load: 1.0 };
        let n = 8; // 3-bit addresses.
        let expected = [None, Some(4), None, Some(6), Some(1), None, Some(3), None];
        for (src, dst) in pattern.injections(n, &mut rng).iter().enumerate() {
            assert_eq!(*dst, expected[src], "source {src:03b}");
        }
        // 3-bit palindromes: 000, 010, 101, 111 → 4 fixed points of 8.
        assert!((pattern.effective_load(8) - 0.5).abs() < 1e-12);
        // Non-power-of-two networks are undefined: inject nothing.
        assert!(pattern.injections(12, &mut rng).iter().all(|d| d.is_none()));
        assert_eq!(pattern.effective_load(12), 0.0);
    }

    #[test]
    fn tiny_networks_inject_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        for pattern in [
            TrafficPattern::Uniform { load: 1.0 },
            TrafficPattern::Transpose { load: 1.0 },
            TrafficPattern::BitReversal { load: 1.0 },
        ] {
            assert!(pattern.injections(1, &mut rng).iter().all(|d| d.is_none()));
            assert!(pattern.injections(0, &mut rng).is_empty());
            assert_eq!(pattern.effective_load(1), 0.0);
        }
    }

    #[test]
    fn offered_load_accessor() {
        assert_eq!(TrafficPattern::Uniform { load: 0.7 }.offered_load(), 0.7);
        assert_eq!(
            TrafficPattern::Hotspot {
                load: 0.2,
                hot_node: 1,
                hot_fraction: 0.3
            }
            .offered_load(),
            0.2
        );
        assert_eq!(TrafficPattern::Transpose { load: 0.4 }.offered_load(), 0.4);
        assert_eq!(
            TrafficPattern::BitReversal { load: 0.9 }.offered_load(),
            0.9
        );
    }
}
