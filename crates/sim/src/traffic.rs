//! Traffic generators.
//!
//! Each pattern answers one question per processor per slot: "does this
//! processor inject a new message this slot, and to whom?".  Loads are
//! expressed as the per-processor injection probability per slot, so a load
//! of 1.0 means every processor tries to inject every slot.

use rand::Rng;

/// A synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficPattern {
    /// Every processor injects with probability `load` per slot, destination
    /// chosen uniformly among the other processors.
    Uniform {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
    },
    /// Every processor injects with probability `load`, always to the fixed
    /// destination `(source + offset) mod N` — a static permutation.
    Permutation {
        /// Injection probability per processor per slot.
        load: f64,
        /// The shift of the permutation.
        offset: usize,
    },
    /// Like `Uniform`, but a fraction `hot_fraction` of messages go to the
    /// single `hot_node`.
    Hotspot {
        /// Injection probability per processor per slot.
        load: f64,
        /// The hot destination.
        hot_node: usize,
        /// Fraction of messages directed to `hot_node`, in `[0, 1]`.
        hot_fraction: f64,
    },
}

impl TrafficPattern {
    /// The injection decisions of one slot: for every processor, an optional
    /// destination.
    pub fn injections<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<Option<usize>> {
        (0..n).map(|src| self.inject_for(src, n, rng)).collect()
    }

    /// The injection decision of one processor in one slot.
    pub fn inject_for<R: Rng>(&self, src: usize, n: usize, rng: &mut R) -> Option<usize> {
        if n < 2 {
            return None;
        }
        match *self {
            TrafficPattern::Uniform { load } => {
                if rng.gen_bool(load.clamp(0.0, 1.0)) {
                    Some(random_other(src, n, rng))
                } else {
                    None
                }
            }
            TrafficPattern::Permutation { load, offset } => {
                if rng.gen_bool(load.clamp(0.0, 1.0)) {
                    let dst = (src + offset) % n;
                    if dst == src {
                        None
                    } else {
                        Some(dst)
                    }
                } else {
                    None
                }
            }
            TrafficPattern::Hotspot {
                load,
                hot_node,
                hot_fraction,
            } => {
                if rng.gen_bool(load.clamp(0.0, 1.0)) {
                    if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) && hot_node != src && hot_node < n
                    {
                        Some(hot_node)
                    } else {
                        Some(random_other(src, n, rng))
                    }
                } else {
                    None
                }
            }
        }
    }

    /// The nominal offered load (messages per processor per slot).
    pub fn offered_load(&self) -> f64 {
        match *self {
            TrafficPattern::Uniform { load }
            | TrafficPattern::Permutation { load, .. }
            | TrafficPattern::Hotspot { load, .. } => load,
        }
    }
}

fn random_other<R: Rng>(src: usize, n: usize, rng: &mut R) -> usize {
    let mut dst = rng.gen_range(0..n - 1);
    if dst >= src {
        dst += 1;
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_load_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let pattern = TrafficPattern::Uniform { load: 0.3 };
        let n = 50;
        let slots = 2000;
        let mut injected = 0usize;
        for _ in 0..slots {
            injected += pattern.injections(n, &mut rng).iter().flatten().count();
        }
        let rate = injected as f64 / (n as f64 * slots as f64);
        assert!((rate - 0.3).abs() < 0.02, "measured rate {rate}");
    }

    #[test]
    fn uniform_never_self_addresses() {
        let mut rng = StdRng::seed_from_u64(2);
        let pattern = TrafficPattern::Uniform { load: 1.0 };
        for _ in 0..200 {
            for (src, dst) in pattern.injections(10, &mut rng).iter().enumerate() {
                assert_ne!(Some(src), *dst);
            }
        }
    }

    #[test]
    fn permutation_is_deterministic_in_destination() {
        let mut rng = StdRng::seed_from_u64(3);
        let pattern = TrafficPattern::Permutation {
            load: 1.0,
            offset: 3,
        };
        for (src, dst) in pattern.injections(8, &mut rng).iter().enumerate() {
            assert_eq!(*dst, Some((src + 3) % 8));
        }
        // Offset 0 would self-address; the generator suppresses those.
        let degenerate = TrafficPattern::Permutation {
            load: 1.0,
            offset: 0,
        };
        assert!(degenerate
            .injections(8, &mut rng)
            .iter()
            .all(|d| d.is_none()));
    }

    #[test]
    fn hotspot_skews_towards_hot_node() {
        let mut rng = StdRng::seed_from_u64(4);
        let pattern = TrafficPattern::Hotspot {
            load: 1.0,
            hot_node: 0,
            hot_fraction: 0.5,
        };
        let n = 20;
        let mut to_hot = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            for dst in pattern.injections(n, &mut rng).into_iter().flatten() {
                total += 1;
                if dst == 0 {
                    to_hot += 1;
                }
            }
        }
        let fraction = to_hot as f64 / total as f64;
        assert!(fraction > 0.4, "hot fraction {fraction}");
    }

    #[test]
    fn tiny_networks_inject_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        let pattern = TrafficPattern::Uniform { load: 1.0 };
        assert!(pattern.injections(1, &mut rng).iter().all(|d| d.is_none()));
        assert!(pattern.injections(0, &mut rng).is_empty());
    }

    #[test]
    fn offered_load_accessor() {
        assert_eq!(TrafficPattern::Uniform { load: 0.7 }.offered_load(), 0.7);
        assert_eq!(
            TrafficPattern::Hotspot {
                load: 0.2,
                hot_node: 1,
                hot_fraction: 0.3
            }
            .offered_load(),
            0.2
        );
    }
}
