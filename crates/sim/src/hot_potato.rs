//! Slotted simulation of point-to-point networks with hot-potato routing.
//!
//! This is the single-OPS baseline (Zhang & Acampora, ref [25]): the network
//! is an ordinary digraph (de Bruijn or Kautz in the comparisons), every arc
//! carries one message per slot, and nodes never buffer transit traffic — in
//! each slot all arriving messages must be forwarded immediately, deflected
//! onto non-preferred ports when they lose the contention for a shortest-path
//! port.  New messages can only be injected when a free output port remains
//! after all transit traffic has been assigned.
//!
//! The simulator is split into *prepare* and *execute* phases:
//!
//! * [`PreparedHotPotato`] is the immutable kernel — the fault-filtered
//!   digraph (already a flat CSR port layout) plus the deflection router's
//!   all-pairs distance table, built once per `(graph, fault-pattern)` pair.
//!   A fault pattern's kernel can also be *delta-repaired* from the
//!   fault-free base ([`PreparedHotPotato::repair_from`]): only the distance
//!   columns the faults actually touch are recomputed, and the result is
//!   bit-identical to building from scratch;
//! * [`PreparedHotPotato::run`] owns only per-run mutable state and drives
//!   the shared struct-of-arrays slot engine of [`crate::kernel`]: messages
//!   live in a [`crate::kernel::MessageArena`] and the per-node buffers
//!   hold `u32` handles, port occupancy is a [`crate::kernel::PortBits`]
//!   bitset fed straight into the router's masked port chooser, and per-arc
//!   wavelength occupancy is a reused [`SpectrumMap`] bitmask.  No per-slot
//!   allocations, so a scenario sweep pays the expensive table construction
//!   once and every cell only pays for its slot loop.
//!
//! One loop serves both capacities.  With the default capacity 1 each
//! granted port closes immediately and the wavelength layer stays off
//! (`metrics.wavelengths == 0`).  With `wavelengths.count > 1` every arc
//! becomes a WDM link carrying up to `W` messages per slot and a port only
//! closes once its arc's spectrum is full.  Hot-potato deflection *is*
//! alternate routing — a deflected message already takes the next-best
//! port — so the per-hop alternate-path count of the multi-OPS kernel has no
//! analogue here and an `alt_paths` knob is a no-op; the `alt_routed` metric
//! counts deflections off a shortest-path port instead.  A transit message
//! that finds every port exhausted (all `W` wavelengths of every out-arc
//! busy) is counted *blocked* and dropped.  Both modes are byte-identical to
//! the previous per-node `Vec<Message>` engine: same RNG draw order, same
//! message ordering (handles sort by injection slot exactly as messages
//! sorted by `created_slot`), same metrics.
//!
//! [`HotPotatoSim`] remains as the one-shot convenience: a prepared kernel
//! bundled with one [`HotPotatoSimConfig`].

use crate::demand::DemandSource;
use crate::kernel::{assign_wavelength, HotScratch, PortBits, RunCore, SlotScratch};
use crate::metrics::SimMetrics;
use crate::schedule::{FaultSchedule, FaultScheduleError, RestoreTracker};
use crate::traffic::TrafficPattern;
use crate::wavelength::{WavelengthAssignment, WavelengthConfig};
use otis_graphs::{Digraph, SpectrumMap};
use otis_routing::fault_tolerant::surviving_subgraph;
use otis_routing::{FaultSet, HotPotatoRouter};
use std::sync::Arc;

/// Configuration of one hot-potato simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotPotatoSimConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// Random seed (traffic and deflection tie-breaks).
    pub seed: u64,
    /// Messages whose hop count exceeds this value are dropped (livelock
    /// guard); `0` disables the guard.
    pub max_hops: u32,
    /// Wavelength capacity per link.  The default (capacity 1) keeps the
    /// legacy slot loop; `count > 1` engages the wavelength loop.
    pub wavelengths: WavelengthConfig,
}

impl Default for HotPotatoSimConfig {
    fn default() -> Self {
        HotPotatoSimConfig {
            slots: 1000,
            seed: 1,
            max_hops: 64,
            wavelengths: WavelengthConfig::default(),
        }
    }
}

/// The immutable, shareable kernel of the hot-potato simulator: the
/// fault-filtered digraph (a flat CSR port layout — out-neighbours of a node
/// are one contiguous slice, indexed by port) together with the deflection
/// router's all-pairs distance table.  Building one is the expensive part of
/// a simulation (`O(n·(n + m))` for the table); [`PreparedHotPotato::run`]
/// is the cheap part and can be called any number of times with different
/// seeds, traffic patterns and slot counts.
///
/// The kernel is `Send + Sync`, so a scenario engine can build it once per
/// distinct `(graph, fault-pattern)` pair and share it across worker
/// threads.
#[derive(Debug, Clone)]
pub struct PreparedHotPotato {
    router: HotPotatoRouter,
    faults: FaultSet,
}

impl PreparedHotPotato {
    /// Prepares a kernel over a shared digraph, routing around the given
    /// faults: blocked arcs and all arcs incident to failed nodes are
    /// removed from the network, distances are computed on the surviving
    /// subgraph, and injections from, to or between disconnected processors
    /// are refused at run time (they do not count as injected).
    ///
    /// With no faults the shared graph is used as-is (no copy); with faults
    /// the surviving subgraph is materialised once, here.
    pub fn new(graph: Arc<Digraph>, faults: FaultSet) -> Self {
        let router = if faults.is_empty() {
            HotPotatoRouter::from_shared(graph)
        } else {
            HotPotatoRouter::new(surviving_subgraph(&graph, &faults))
        };
        PreparedHotPotato { router, faults }
    }

    /// Prepares a kernel from an owned digraph; see [`PreparedHotPotato::new`].
    pub fn from_graph(graph: Digraph, faults: FaultSet) -> Self {
        Self::new(Arc::new(graph), faults)
    }

    /// Derives the kernel for `faults` from a fault-free base kernel by
    /// delta-repairing the routing table instead of rebuilding it from
    /// scratch: only the distance columns the faults actually touch are
    /// recomputed (see [`HotPotatoRouter::from_repair`]).  The result is
    /// bit-identical to [`PreparedHotPotato::new`] over the base graph and
    /// the same faults, so runs from a repaired kernel match runs from a
    /// fresh one exactly.
    ///
    /// # Panics
    ///
    /// Panics if `base` was prepared with a non-empty fault set.
    pub fn repair_from(base: &PreparedHotPotato, faults: &FaultSet) -> Self {
        assert!(
            base.faults.is_empty(),
            "repair_from requires a fault-free base kernel"
        );
        if faults.is_empty() {
            return base.clone();
        }
        PreparedHotPotato {
            router: HotPotatoRouter::from_repair(&base.router, faults),
            faults: faults.clone(),
        }
    }

    /// Number of nodes simulated.
    pub fn node_count(&self) -> usize {
        self.router.graph().node_count()
    }

    /// The (fault-filtered) digraph the kernel simulates.
    pub fn graph(&self) -> &Digraph {
        self.router.graph()
    }

    /// The faults fixed at prepare time.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Structural equality of the routing state — the distance table and
    /// the fault pattern — used by the delta-repair acceptance tests to
    /// prove a repaired kernel bit-identical to a from-scratch build.
    /// Hidden from docs: not part of the simulation surface.
    #[doc(hidden)]
    pub fn routing_state_eq(&self, other: &PreparedHotPotato) -> bool {
        self.faults == other.faults && self.router.table() == other.router.table()
    }

    /// Executes one run: `config` carries the run-scoped knobs (slots, seed,
    /// livelock guard, wavelength capacity), `traffic` drives the
    /// injections.  One struct-of-arrays slot loop serves every capacity:
    /// with capacity 1 a granted port closes immediately and the wavelength
    /// layer stays off; with `W > 1` a port only closes once all `W`
    /// wavelengths of its arc are occupied, a transit message with no usable
    /// port counts as blocked, and deflections off a shortest-path port are
    /// recorded as alternate-route events.  All mutable state is local to
    /// this call — the message arena, handle buckets, port bitsets and
    /// tie-break scratch are reused across slots, no per-slot allocations.
    pub fn run(&self, traffic: &TrafficPattern, config: &HotPotatoSimConfig) -> SimMetrics {
        self.run_with_timeline(&[], traffic, config)
    }

    /// Executes one run driven by a [`DemandSource`] — the demand-side
    /// generalization of [`PreparedHotPotato::run`].  The source is mutable
    /// because demand processes carry mid-run state (burst phases, the
    /// trace lookahead); build a fresh one per run with
    /// [`crate::DemandSpec::source`].  A [`DemandSource::Pattern`] source
    /// draws from the RNG exactly as `run` does — byte-identical metrics.
    pub fn run_demand(&self, demand: &mut DemandSource, config: &HotPotatoSimConfig) -> SimMetrics {
        self.run_demand_with_timeline(&[], demand, config)
    }

    /// Builds the epoch timeline a [`FaultSchedule`] prescribes for runs of
    /// the `initial` kernel: one `(slot, kernel)` pair per distinct event
    /// slot, each kernel delta-repaired from the fault-free `base` toward
    /// that epoch's fault set (the `initial` kernel's static faults overlaid
    /// with every scheduled fault in force) and bit-identical to preparing
    /// it from scratch.  The result feeds
    /// [`PreparedHotPotato::run_with_timeline`].
    ///
    /// Fails with a typed [`FaultScheduleError`] when an event targets a
    /// node outside the network or a scheduled failure duplicates one of
    /// `initial`'s static faults.
    ///
    /// # Panics
    ///
    /// Panics if `base` was prepared with a non-empty fault set.
    pub fn timeline_from(
        base: &PreparedHotPotato,
        initial: &PreparedHotPotato,
        schedule: &FaultSchedule,
    ) -> Result<Vec<(u64, PreparedHotPotato)>, FaultScheduleError> {
        let epochs = schedule.bind(base.node_count(), initial.faults())?;
        Ok(epochs
            .into_iter()
            .map(|(slot, faults)| (slot, PreparedHotPotato::repair_from(base, &faults)))
            .collect())
    }

    /// Executes one run under a fault timeline: `timeline` is a
    /// chronological list of `(slot, kernel)` epochs (see
    /// [`PreparedHotPotato::timeline_from`]); at the start of each epoch's
    /// slot, before injections, the active kernel is swapped.  In-flight
    /// messages are re-resolved against the new kernel — a message sitting
    /// on a failed node, destined to one, or left unreachable is dropped and
    /// counted in `dropped_by_failure` (as well as `dropped`); survivors
    /// keep deflecting under the new routing table.  The restoration
    /// metrics (`fault_events`, `in_flight_at_failure`, `restore_slots`,
    /// `post_failure_latency_peak`) are anchored to the first swap that
    /// introduces new failures.
    ///
    /// An empty timeline takes the exact legacy code path — same RNG draw
    /// order, same metrics as [`PreparedHotPotato::run`], byte for byte.
    pub fn run_with_timeline(
        &self,
        timeline: &[(u64, PreparedHotPotato)],
        traffic: &TrafficPattern,
        config: &HotPotatoSimConfig,
    ) -> SimMetrics {
        let mut demand = DemandSource::from_pattern(traffic.clone());
        self.run_demand_with_timeline(timeline, &mut demand, config)
    }

    /// Executes one run under a fault timeline, driven by a
    /// [`DemandSource`] — the entry point both
    /// [`PreparedHotPotato::run_with_timeline`] and
    /// [`PreparedHotPotato::run_demand`] reduce to.  Allocates a private
    /// [`SlotScratch`] per call; engines that run many cells should hold one
    /// pool per worker and call
    /// [`PreparedHotPotato::run_demand_with_timeline_scratch`] instead.
    pub fn run_demand_with_timeline(
        &self,
        timeline: &[(u64, PreparedHotPotato)],
        demand: &mut DemandSource,
        config: &HotPotatoSimConfig,
    ) -> SimMetrics {
        let mut scratch = SlotScratch::new();
        self.run_demand_with_timeline_scratch(timeline, demand, config, &mut scratch)
    }

    /// [`PreparedHotPotato::run`] through a caller-owned scratch pool; see
    /// [`PreparedHotPotato::run_demand_with_timeline_scratch`].
    pub fn run_scratch(
        &self,
        traffic: &TrafficPattern,
        config: &HotPotatoSimConfig,
        scratch: &mut SlotScratch,
    ) -> SimMetrics {
        let mut demand = DemandSource::from_pattern(traffic.clone());
        self.run_demand_with_timeline_scratch(&[], &mut demand, config, scratch)
    }

    /// [`PreparedHotPotato::run_demand`] through a caller-owned scratch
    /// pool; see [`PreparedHotPotato::run_demand_with_timeline_scratch`].
    pub fn run_demand_scratch(
        &self,
        demand: &mut DemandSource,
        config: &HotPotatoSimConfig,
        scratch: &mut SlotScratch,
    ) -> SimMetrics {
        self.run_demand_with_timeline_scratch(&[], demand, config, scratch)
    }

    /// [`PreparedHotPotato::run_with_timeline`] through a caller-owned
    /// scratch pool; see
    /// [`PreparedHotPotato::run_demand_with_timeline_scratch`].
    pub fn run_with_timeline_scratch(
        &self,
        timeline: &[(u64, PreparedHotPotato)],
        traffic: &TrafficPattern,
        config: &HotPotatoSimConfig,
        scratch: &mut SlotScratch,
    ) -> SimMetrics {
        let mut demand = DemandSource::from_pattern(traffic.clone());
        self.run_demand_with_timeline_scratch(timeline, &mut demand, config, scratch)
    }

    /// The full-generality entry point every other `run*` method reduces
    /// to, threading a caller-owned [`SlotScratch`] pool so consecutive runs
    /// reuse the arena, buckets and port masks instead of reallocating.
    /// Byte-identical to the plain entry points — a reset pool is
    /// indistinguishable from fresh state.
    ///
    /// The slot body is organised as batched phases, each one pass over the
    /// arena's parallel arrays (see the *hot path anatomy* section of the
    /// crate docs): the **deliver/classify** phase drains every node's
    /// bucket — delivering, dropping livelocked messages, collecting the
    /// survivors into one slot-global transit list with per-node spans,
    /// age-sorted per node — touching only the `dst`/`injected_at`/`hops`
    /// columns; the **arbitrate/inject** phase then walks the nodes in
    /// index order, deflection-routing each span and admitting at most one
    /// injection per node, exactly preserving the per-node RNG draw order
    /// of the classic fused loop (classification draws nothing, so hoisting
    /// it is invisible to the RNG stream).
    pub fn run_demand_with_timeline_scratch(
        &self,
        timeline: &[(u64, PreparedHotPotato)],
        demand: &mut DemandSource,
        config: &HotPotatoSimConfig,
        scratch: &mut SlotScratch,
    ) -> SimMetrics {
        let n = self.router.graph().node_count();
        let multiplexed = config.wavelengths.is_multiplexed();
        scratch.begin_run(config.seed, n, self.router.graph().arc_count());
        scratch.hot.begin_run(n);
        let SlotScratch {
            core,
            arena,
            injections,
            hot,
            ..
        } = scratch;
        let HotScratch {
            at_node,
            arriving,
            transit,
            spans,
            ports,
            ties,
        } = hot;
        let mut spectrum = if multiplexed {
            core.metrics.wavelengths = config.wavelengths.count;
            Some(SpectrumMap::new(
                self.router.graph().arc_count(),
                config.wavelengths.count,
            ))
        } else {
            None
        };
        let mut active = self;
        let mut next_epoch = 0usize;
        let mut tracker = RestoreTracker::default();

        for slot in 0..config.slots {
            core.begin_slot(slot);
            // Kernel swaps scheduled for this slot apply before injections:
            // strand the messages the new fault set cuts off, re-point the
            // routing state, and (in multiplexed mode) rebuild the spectrum
            // over the new surviving subgraph's arc numbering.
            while timeline.get(next_epoch).is_some_and(|(s, _)| *s <= slot) {
                let kernel = &timeline[next_epoch].1;
                next_epoch += 1;
                let live: u64 = at_node.iter().map(|v| v.len() as u64).sum();
                let introduces = !kernel.faults.is_subset_of(&active.faults);
                tracker.on_swap(introduces, slot, live, &mut core.metrics);
                for (node, bucket) in at_node.iter_mut().enumerate() {
                    bucket.retain(|&handle| {
                        let dst = arena.dst(handle);
                        let stranded = kernel.faults.node_failed(node)
                            || kernel.faults.node_failed(dst)
                            || kernel.router.distance(node, dst).is_none();
                        if stranded {
                            core.metrics.dropped_by_failure += 1;
                            core.drop_message();
                            arena.release(handle);
                        }
                        !stranded
                    });
                }
                active = kernel;
                if multiplexed {
                    spectrum = Some(SpectrumMap::new(
                        active.router.graph().arc_count(),
                        config.wavelengths.count,
                    ));
                }
            }
            let g = active.router.graph();
            if let Some(spectrum) = spectrum.as_mut() {
                spectrum.clear();
            }
            demand.injections_into(n, &mut core.rng, injections);

            // Deliver/classify phase: one pass over every node's bucket and
            // the arena's `dst`/`injected_at`/`hops` columns.  Messages
            // destined here are delivered, livelocked ones dropped, and the
            // survivors collected into one slot-global transit list —
            // node `v`'s span sorted oldest first so older traffic gets the
            // better ports.  No RNG draws happen in this phase, so hoisting
            // it out of the per-node loop leaves the draw order untouched.
            transit.clear();
            spans.clear();
            for (node, bucket) in at_node.iter_mut().enumerate() {
                let start = transit.len() as u32;
                for handle in bucket.drain(..) {
                    if arena.dst(handle) == node {
                        let latency = slot.saturating_sub(arena.injected_at(handle));
                        core.deliver(latency, arena.hops(handle));
                        tracker.observe_delivery(latency, &mut core.metrics);
                        arena.release(handle);
                    } else if RunCore::livelock_exceeded(config.max_hops, arena.hops(handle)) {
                        core.drop_message();
                        arena.release(handle);
                    } else {
                        transit.push(handle);
                    }
                }
                transit[start as usize..].sort_by_key(|&h| arena.injected_at(h));
                spans.push((start, transit.len() as u32));
            }

            // Arbitrate/inject phase: nodes in index order, each one's
            // transit span first (one deflection decision per message, one
            // RNG draw per successful decision), then at most one injection
            // — the exact draw order of the classic fused loop.
            for node in 0..n {
                let arcs = g.out_arc_ids(node);
                // Each arc is this node's exclusive output and the spectrum
                // was cleared at the top of the slot, so every port opens
                // free.
                ports.reset(arcs.len());
                let (start, end) = spans[node];
                for &handle in &transit[start as usize..end as usize] {
                    let dst = arena.dst(handle);
                    match active.router.choose_port_randomized_masked(
                        node,
                        dst,
                        ports.words(),
                        &mut core.rng,
                        ties,
                    ) {
                        Some(port) => {
                            let lambda = claim_port(
                                &active.router,
                                node,
                                dst,
                                port,
                                arcs,
                                config.wavelengths.assignment,
                                &mut spectrum,
                                ports,
                                core,
                            );
                            if let Some(lambda) = lambda {
                                arena.set_wavelength(handle, lambda);
                            }
                            arena.add_hop(handle);
                            let next = g.out_neighbors(node)[port];
                            arriving[next].push(handle);
                            core.grant();
                        }
                        None => {
                            // No free port.  Capacity 1: with in-degree ==
                            // out-degree this cannot happen for pure transit
                            // traffic, but a loop arc or irregular graph can
                            // trigger it.  Multiplexed: every wavelength of
                            // every out-arc is busy and the bufferless node
                            // must discard the message, counted as blocked.
                            if multiplexed {
                                core.metrics.blocked += 1;
                            }
                            core.drop_message();
                            arena.release(handle);
                        }
                    }
                }

                // Injection only if a port is still free (hot-potato
                // admission control).  Traffic from, to or cut off from a
                // failed region is refused at the source.
                if let Some(dst) = injections[node] {
                    if !active.faults.is_empty()
                        && (active.faults.node_failed(node)
                            || active.faults.node_failed(dst)
                            || active.router.distance(node, dst).is_none())
                    {
                        // Unservable under the faults: not counted as injected.
                    } else if let Some(port) = active.router.choose_port_randomized_masked(
                        node,
                        dst,
                        ports.words(),
                        &mut core.rng,
                        ties,
                    ) {
                        let lambda = claim_port(
                            &active.router,
                            node,
                            dst,
                            port,
                            arcs,
                            config.wavelengths.assignment,
                            &mut spectrum,
                            ports,
                            core,
                        );
                        let msg = core.inject(node, dst, slot);
                        let handle = arena.insert(&msg);
                        arena.set_hops(handle, 1);
                        if let Some(lambda) = lambda {
                            arena.set_wavelength(handle, lambda);
                        }
                        let next = g.out_neighbors(node)[port];
                        arriving[next].push(handle);
                        core.grant();
                    }
                    // else: injection refused, not counted as injected.
                }
            }

            // Every node's bucket in `at_node` was drained above, so after
            // the swap `arriving` is a set of empty buckets (capacity kept)
            // ready for the next slot.
            std::mem::swap(at_node, arriving);
            tracker.end_slot(slot, &mut core.metrics);
        }

        // Messages that reached their destination during the final slot are
        // delivered, not in flight: `at_node` is normally drained at the
        // start of the *next* slot, which never comes for the last one.
        // Their delivery slot is `slots`, consistent with the in-loop
        // convention (a single-hop message costs exactly 1 slot).
        for (node, handles) in at_node.iter_mut().enumerate() {
            let metrics = &mut core.metrics;
            let arena = &*arena;
            handles.retain(|&handle| {
                if arena.dst(handle) == node {
                    let latency = config.slots.saturating_sub(arena.injected_at(handle));
                    metrics.record_delivery(latency, arena.hops(handle));
                    tracker.observe_delivery(latency, metrics);
                    false
                } else {
                    true
                }
            });
        }

        let in_flight = at_node.iter().map(|v| v.len() as u64).sum();
        core.finish(in_flight)
    }
}

/// Books the granted `port` at `node`: in multiplexed mode records a
/// deflection if the port makes no progress toward `dst`, occupies one
/// wavelength on the port's arc (returned) and closes the port only once
/// the arc's spectrum is full; with the wavelength layer off the port
/// closes unconditionally and no wavelength is assigned.
#[allow(clippy::too_many_arguments)]
fn claim_port(
    router: &HotPotatoRouter,
    node: usize,
    dst: usize,
    port: usize,
    arcs: &[usize],
    assignment: WavelengthAssignment,
    spectrum: &mut Option<SpectrumMap>,
    ports: &mut PortBits,
    core: &mut RunCore,
) -> Option<usize> {
    match spectrum.as_mut() {
        Some(spectrum) => {
            if !router.is_progress_port(node, dst, port) {
                core.metrics.alt_routed += 1;
            }
            let lambda = assign_wavelength(spectrum, arcs[port], assignment, &mut core.rng);
            if spectrum.is_full(arcs[port]) {
                ports.close(port);
            }
            Some(lambda)
        }
        None => {
            ports.close(port);
            None
        }
    }
}

/// The hot-potato simulator: a [`PreparedHotPotato`] kernel bundled with one
/// [`HotPotatoSimConfig`].  Kept as the one-shot convenience; sweeps that
/// run many seeds or traffic patterns over the same network should hold the
/// prepared kernel directly and call [`PreparedHotPotato::run`] per cell.
#[derive(Debug)]
pub struct HotPotatoSim {
    prepared: PreparedHotPotato,
    config: HotPotatoSimConfig,
}

impl HotPotatoSim {
    /// Creates a simulator over the given point-to-point digraph.
    pub fn new(graph: Digraph, config: HotPotatoSimConfig) -> Self {
        Self::with_faults(graph, config, FaultSet::new())
    }

    /// Creates a simulator that routes around the given faults; see
    /// [`PreparedHotPotato::new`] for the fault semantics.
    pub fn with_faults(graph: Digraph, config: HotPotatoSimConfig, faults: FaultSet) -> Self {
        HotPotatoSim {
            prepared: PreparedHotPotato::from_graph(graph, faults),
            config,
        }
    }

    /// Number of nodes simulated.
    pub fn node_count(&self) -> usize {
        self.prepared.node_count()
    }

    /// The immutable kernel behind this simulator.
    pub fn prepared(&self) -> &PreparedHotPotato {
        &self.prepared
    }

    /// Runs the simulation under the given traffic pattern.
    pub fn run(&self, traffic: &TrafficPattern) -> SimMetrics {
        self.prepared.run(traffic, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_topologies::{de_bruijn, kautz};

    fn run_de_bruijn(load: f64, slots: u64) -> SimMetrics {
        let sim = HotPotatoSim::new(
            de_bruijn(2, 3),
            HotPotatoSimConfig {
                slots,
                ..Default::default()
            },
        );
        sim.run(&TrafficPattern::Uniform { load })
    }

    #[test]
    fn conservation_of_messages() {
        let m = run_de_bruijn(0.4, 500);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        assert!(m.injected > 0);
        assert!(m.delivered > 0);
    }

    #[test]
    fn light_load_latency_close_to_average_distance() {
        // With almost no contention, messages follow shortest paths; the
        // average latency is near the average distance of B(2,3) (~2.1).
        let m = run_de_bruijn(0.02, 5000);
        assert!(m.delivered > 50);
        assert!(m.average_latency() < 3.5, "latency {}", m.average_latency());
        assert!(m.average_hops() >= 1.0);
    }

    #[test]
    fn heavy_load_causes_deflections() {
        let light = run_de_bruijn(0.05, 2000);
        let heavy = run_de_bruijn(1.0, 2000);
        // Deflections lengthen paths.
        assert!(heavy.average_hops() > light.average_hops());
        assert!(heavy.average_latency() > light.average_latency());
    }

    #[test]
    fn kautz_hot_potato_works_too() {
        let sim = HotPotatoSim::new(
            kautz(2, 3),
            HotPotatoSimConfig {
                slots: 1000,
                ..Default::default()
            },
        );
        let m = sim.run(&TrafficPattern::Uniform { load: 0.3 });
        assert!(m.delivered > 0);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
    }

    #[test]
    fn injection_is_throttled_at_saturation() {
        // At load 1.0 every node wants to inject every slot but ports are
        // mostly occupied by transit traffic: accepted injections per node
        // per slot stay below 1.
        let m = run_de_bruijn(1.0, 1000);
        let offered = m.slots * m.processors as u64;
        assert!(m.injected < offered);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_de_bruijn(0.3, 300);
        let b = run_de_bruijn(0.3, 300);
        assert_eq!(a, b);
    }

    #[test]
    fn final_slot_arrivals_count_as_delivered() {
        // On the complete digraph every message arrives in one hop, so after
        // the post-run drain nothing can be left in flight: a message
        // injected in the last slot has arrived at its destination by the
        // time the run ends.
        let sim = HotPotatoSim::new(
            otis_topologies::complete_digraph(5),
            HotPotatoSimConfig {
                slots: 1,
                ..Default::default()
            },
        );
        let m = sim.run(&TrafficPattern::Permutation {
            load: 1.0,
            offset: 1,
        });
        assert_eq!(m.injected, 5);
        assert_eq!(m.delivered, 5, "final-slot arrivals must be delivered");
        assert_eq!(m.in_flight, 0);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        // One hop, one slot each.
        assert!((m.average_latency() - 1.0).abs() < 1e-12);
        assert_eq!(m.max_hops, 1);
    }

    #[test]
    fn faults_are_routed_around_and_conservation_holds() {
        let g = kautz(2, 3);
        let mut faults = FaultSet::new();
        faults.fail_node(0);
        let sim = HotPotatoSim::with_faults(
            g.clone(),
            HotPotatoSimConfig {
                slots: 800,
                ..Default::default()
            },
            faults,
        );
        let m = sim.run(&TrafficPattern::Uniform { load: 0.3 });
        assert!(m.delivered > 0);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        // The faulty run accepts strictly less traffic than the intact one
        // under the same seed (injections touching node 0 are refused).
        let intact = HotPotatoSim::new(
            g,
            HotPotatoSimConfig {
                slots: 800,
                ..Default::default()
            },
        )
        .run(&TrafficPattern::Uniform { load: 0.3 });
        assert!(m.injected < intact.injected);
    }

    #[test]
    fn prepared_kernel_reuse_matches_fresh_construction() {
        // The prepare/execute contract: one kernel driven with many
        // (seed, traffic, slots) combinations produces metrics identical to
        // rebuilding the simulator from scratch for every run, with and
        // without faults.
        let g = kautz(2, 3);
        for faults in [FaultSet::new(), FaultSet::from_nodes([0, 5])] {
            let kernel = PreparedHotPotato::from_graph(g.clone(), faults.clone());
            for (seed, load, slots) in [(1u64, 0.3, 400u64), (9, 0.8, 250), (42, 0.05, 600)] {
                let config = HotPotatoSimConfig {
                    slots,
                    seed,
                    max_hops: 64,
                    ..Default::default()
                };
                let traffic = TrafficPattern::Uniform { load };
                let reused = kernel.run(&traffic, &config);
                let fresh =
                    HotPotatoSim::with_faults(g.clone(), config, faults.clone()).run(&traffic);
                assert_eq!(reused, fresh, "seed {seed} load {load}");
            }
        }
    }

    #[test]
    fn wavelength_mode_conserves_and_reports_the_layer() {
        let sim = HotPotatoSim::new(
            de_bruijn(2, 3),
            HotPotatoSimConfig {
                slots: 800,
                wavelengths: WavelengthConfig::with_count(4),
                ..Default::default()
            },
        );
        let m = sim.run(&TrafficPattern::Uniform { load: 0.8 });
        assert_eq!(m.wavelengths, 4);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        assert!(m.delivered > 0);
        assert!(m.blocked <= m.dropped);
        assert!(!m.blocking_ratio().is_nan());
        assert!(!m.wavelength_utilization().is_nan());
        // Deflections under load register as alternate-route events.
        assert!(
            m.alt_routed > 0,
            "saturated deflection routing must deflect"
        );
    }

    #[test]
    fn more_wavelengths_admit_more_traffic() {
        // Each extra wavelength relaxes the injection admission control
        // (ports close only when all W wavelengths are busy), so accepted
        // injections grow with W under saturation.
        let run = |w: usize| {
            HotPotatoSim::new(
                de_bruijn(2, 3),
                HotPotatoSimConfig {
                    slots: 600,
                    wavelengths: WavelengthConfig::with_count(w),
                    ..Default::default()
                },
            )
            .run(&TrafficPattern::Uniform { load: 1.0 })
        };
        let narrow = run(2);
        let wide = run(8);
        assert!(wide.injected > narrow.injected);
        assert!(wide.delivered > narrow.delivered);
    }

    #[test]
    fn random_assignment_only_changes_wavelength_choice() {
        // Wavelength identity never affects hot-potato dynamics (ports close
        // on full arcs regardless of which wavelengths filled them), but the
        // Random discipline draws from the RNG stream, so the runs may
        // diverge; both must stay conserved and deliver.
        for assignment in [WavelengthAssignment::FirstFit, WavelengthAssignment::Random] {
            let m = HotPotatoSim::new(
                kautz(2, 3),
                HotPotatoSimConfig {
                    slots: 400,
                    wavelengths: WavelengthConfig {
                        count: 3,
                        assignment,
                    },
                    ..Default::default()
                },
            )
            .run(&TrafficPattern::Uniform { load: 0.9 });
            assert!(m.delivered > 0, "{assignment:?}");
            assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        }
    }

    #[test]
    fn capacity_one_config_keeps_the_wavelength_layer_off() {
        // wavelengths = 1 must not engage the wavelength layer: metrics
        // carry the layer-off sentinel and match the default config bit for
        // bit.
        let run = |wavelengths| {
            HotPotatoSim::new(
                de_bruijn(2, 3),
                HotPotatoSimConfig {
                    slots: 400,
                    wavelengths,
                    ..Default::default()
                },
            )
            .run(&TrafficPattern::Uniform { load: 0.7 })
        };
        let legacy = run(WavelengthConfig::default());
        assert_eq!(legacy.wavelengths, 0, "layer off ⇒ sentinel 0");
        assert!(legacy.blocking_ratio().is_nan());
        assert_eq!(legacy, run(WavelengthConfig::with_count(1)));
    }

    #[test]
    fn repaired_kernels_run_identically_to_fresh_ones() {
        // Delta-repairing a fault pattern's kernel from the fault-free base
        // must be indistinguishable from preparing it from scratch: every
        // run, in both wavelength modes, produces identical metrics.
        let g = kautz(2, 3);
        let base = PreparedHotPotato::from_graph(g.clone(), FaultSet::new());
        let traffic = TrafficPattern::Uniform { load: 0.6 };
        let configs = [
            HotPotatoSimConfig {
                slots: 300,
                ..Default::default()
            },
            HotPotatoSimConfig {
                slots: 300,
                wavelengths: WavelengthConfig::with_count(4),
                ..Default::default()
            },
        ];
        for node in 0..g.node_count() {
            let faults = FaultSet::from_nodes([node]);
            let repaired = PreparedHotPotato::repair_from(&base, &faults);
            let fresh = PreparedHotPotato::from_graph(g.clone(), faults);
            for config in &configs {
                assert_eq!(
                    repaired.run(&traffic, config),
                    fresh.run(&traffic, config),
                    "node {node}"
                );
            }
        }
        // Empty fault set: the repair is the base itself.
        let same = PreparedHotPotato::repair_from(&base, &FaultSet::new());
        assert_eq!(
            same.run(&traffic, &configs[0]),
            base.run(&traffic, &configs[0])
        );
    }

    #[test]
    fn empty_timeline_is_the_legacy_run() {
        // The schedule machinery must be inert when no timeline is bound:
        // identical metrics (and therefore identical RNG draw order) in both
        // wavelength modes.
        let kernel = PreparedHotPotato::from_graph(kautz(2, 3), FaultSet::new());
        let traffic = TrafficPattern::Uniform { load: 0.5 };
        for config in [
            HotPotatoSimConfig {
                slots: 400,
                ..Default::default()
            },
            HotPotatoSimConfig {
                slots: 400,
                wavelengths: WavelengthConfig::with_count(3),
                ..Default::default()
            },
        ] {
            let timed = kernel.run_with_timeline(&[], &traffic, &config);
            let legacy = kernel.run(&traffic, &config);
            assert_eq!(timed, legacy);
            assert_eq!(timed.fault_events, 0);
        }
    }

    #[test]
    fn timeline_kernels_match_from_scratch_preparation() {
        // The kernel-swap path must be bit-identical to swapping in kernels
        // prepared from scratch: a timeline built by `timeline_from` (delta
        // repair) and one rebuilt with fresh `from_graph` kernels produce
        // the same run, metric for metric.
        let g = kautz(2, 3);
        let base = PreparedHotPotato::from_graph(g.clone(), FaultSet::new());
        let schedule: FaultSchedule = "fail(node 3)@40; recover@160".parse().unwrap();
        let timeline = PreparedHotPotato::timeline_from(&base, &base, &schedule).unwrap();
        assert_eq!(timeline.len(), 2);
        let fresh: Vec<(u64, PreparedHotPotato)> = timeline
            .iter()
            .map(|(slot, k)| {
                (
                    *slot,
                    PreparedHotPotato::from_graph(g.clone(), k.faults().clone()),
                )
            })
            .collect();
        let traffic = TrafficPattern::Uniform { load: 0.6 };
        let config = HotPotatoSimConfig {
            slots: 320,
            ..Default::default()
        };
        let repaired = base.run_with_timeline(&timeline, &traffic, &config);
        let scratch = base.run_with_timeline(&fresh, &traffic, &config);
        assert_eq!(repaired, scratch);
        assert_eq!(repaired.fault_events, 2);
        assert_eq!(
            repaired.injected,
            repaired.delivered + repaired.in_flight + repaired.dropped
        );
        assert!(repaired.dropped_by_failure <= repaired.dropped);
    }

    #[test]
    fn failure_at_slot_zero_matches_the_static_faulted_run() {
        // A swap before any traffic exists runs the whole simulation under
        // the faulted kernel: everything but the restoration bookkeeping
        // matches a statically faulted run bit for bit.
        let g = kautz(2, 3);
        let base = PreparedHotPotato::from_graph(g.clone(), FaultSet::new());
        let schedule: FaultSchedule = "fail(node 0)@0".parse().unwrap();
        let timeline = PreparedHotPotato::timeline_from(&base, &base, &schedule).unwrap();
        let traffic = TrafficPattern::Uniform { load: 0.4 };
        let config = HotPotatoSimConfig {
            slots: 300,
            ..Default::default()
        };
        let mut timed = base.run_with_timeline(&timeline, &traffic, &config);
        let faulted = PreparedHotPotato::from_graph(g, FaultSet::from_nodes([0]));
        let static_run = faulted.run(&traffic, &config);
        assert_eq!(timed.fault_events, 1);
        assert_eq!(timed.in_flight_at_failure, 0);
        assert_eq!(timed.dropped_by_failure, 0);
        assert_eq!(
            timed.restore_slots,
            u64::MAX,
            "slot-0 failure has no baseline"
        );
        timed.fault_events = 0;
        timed.restore_slots = 0;
        timed.post_failure_latency_peak = 0;
        // The timeline run reports the channel count of the kernel it
        // started from (the intact network); the static run reports the
        // surviving subgraph's.
        timed.channels = static_run.channels;
        assert_eq!(timed, static_run);
    }

    #[test]
    fn mid_run_failure_strands_in_flight_messages_and_recovery_restores() {
        // A node failure mid-run strands the messages sitting on or destined
        // to the dead node (counted separately from congestion drops), and
        // after the scheduled recovery the deflection network restores its
        // pre-failure delivery rate.
        let g = kautz(2, 3);
        let base = PreparedHotPotato::from_graph(g, FaultSet::new());
        let schedule: FaultSchedule = "fail(node 2)@200; recover@400".parse().unwrap();
        let timeline = PreparedHotPotato::timeline_from(&base, &base, &schedule).unwrap();
        let traffic = TrafficPattern::Uniform { load: 0.8 };
        let config = HotPotatoSimConfig {
            slots: 800,
            ..Default::default()
        };
        let m = base.run_with_timeline(&timeline, &traffic, &config);
        assert_eq!(m.fault_events, 2);
        assert!(m.in_flight_at_failure > 0, "saturated run has live traffic");
        assert!(m.dropped_by_failure > 0, "the dead node strands messages");
        assert!(m.dropped_by_failure <= m.dropped);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        assert_ne!(m.restore_slots, u64::MAX, "deflection routing must recover");
        assert!(m.post_failure_latency_peak > 0);
    }

    #[test]
    fn ttl_guard_drops_runaway_messages() {
        let sim = HotPotatoSim::new(
            de_bruijn(2, 2),
            HotPotatoSimConfig {
                slots: 2000,
                max_hops: 2,
                seed: 3,
                ..Default::default()
            },
        );
        let m = sim.run(&TrafficPattern::Uniform { load: 1.0 });
        // With such a tight TTL under saturation some messages must be dropped.
        assert!(m.dropped > 0);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
    }
}
