//! Slotted simulation of point-to-point networks with hot-potato routing.
//!
//! This is the single-OPS baseline (Zhang & Acampora, ref [25]): the network
//! is an ordinary digraph (de Bruijn or Kautz in the comparisons), every arc
//! carries one message per slot, and nodes never buffer transit traffic — in
//! each slot all arriving messages must be forwarded immediately, deflected
//! onto non-preferred ports when they lose the contention for a shortest-path
//! port.  New messages can only be injected when a free output port remains
//! after all transit traffic has been assigned.

use crate::message::Message;
use crate::metrics::SimMetrics;
use crate::traffic::TrafficPattern;
use otis_graphs::Digraph;
use otis_routing::fault_tolerant::surviving_subgraph;
use otis_routing::{FaultSet, HotPotatoRouter};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of one hot-potato simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotPotatoSimConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// Random seed (traffic and deflection tie-breaks).
    pub seed: u64,
    /// Messages whose hop count exceeds this value are dropped (livelock
    /// guard); `0` disables the guard.
    pub max_hops: u32,
}

impl Default for HotPotatoSimConfig {
    fn default() -> Self {
        HotPotatoSimConfig {
            slots: 1000,
            seed: 1,
            max_hops: 64,
        }
    }
}

/// The hot-potato simulator.
#[derive(Debug)]
pub struct HotPotatoSim {
    router: HotPotatoRouter,
    config: HotPotatoSimConfig,
    faults: FaultSet,
}

impl HotPotatoSim {
    /// Creates a simulator over the given point-to-point digraph.
    pub fn new(graph: Digraph, config: HotPotatoSimConfig) -> Self {
        Self::with_faults(graph, config, FaultSet::new())
    }

    /// Creates a simulator that routes around the given faults: blocked arcs
    /// and all arcs incident to failed nodes are removed from the network,
    /// distances are recomputed on the surviving subgraph, and injections
    /// from, to or between disconnected processors are refused (they do not
    /// count as injected).
    pub fn with_faults(graph: Digraph, config: HotPotatoSimConfig, faults: FaultSet) -> Self {
        let routed = if faults.is_empty() {
            graph
        } else {
            surviving_subgraph(&graph, &faults)
        };
        HotPotatoSim {
            router: HotPotatoRouter::new(routed),
            config,
            faults,
        }
    }

    /// Number of nodes simulated.
    pub fn node_count(&self) -> usize {
        self.router.graph().node_count()
    }

    /// Runs the simulation under the given traffic pattern.
    pub fn run(&self, traffic: &TrafficPattern) -> SimMetrics {
        let g = self.router.graph();
        let n = g.node_count();
        let links = g.arc_count();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut metrics = SimMetrics::new(n, links);

        // Messages sitting at each node at the start of the slot.
        let mut at_node: Vec<Vec<Message>> = vec![Vec::new(); n];
        let mut next_id = 0u64;

        for slot in 0..self.config.slots {
            metrics.slots = slot + 1;
            let mut arriving: Vec<Vec<Message>> = vec![Vec::new(); n];

            let injections = traffic.injections(n, &mut rng);

            for node in 0..n {
                let degree = g.out_degree(node);
                let mut port_free = vec![true; degree];
                // Deliver messages destined here; sort the rest oldest first
                // so older traffic gets the better ports.
                let mut transit: Vec<Message> = Vec::new();
                for msg in at_node[node].drain(..) {
                    if msg.destination == node {
                        let latency = slot.saturating_sub(msg.created_slot);
                        metrics.record_delivery(latency, msg.hops);
                    } else if self.config.max_hops > 0 && msg.hops >= self.config.max_hops {
                        metrics.dropped += 1;
                    } else {
                        transit.push(msg);
                    }
                }
                transit.sort_by_key(|m| m.created_slot);

                for mut msg in transit {
                    match self.router.choose_port_randomized(
                        node,
                        msg.destination,
                        &port_free,
                        &mut rng,
                    ) {
                        Some(port) => {
                            port_free[port] = false;
                            msg.hops += 1;
                            let next = g.out_neighbors(node)[port];
                            arriving[next].push(msg);
                            metrics.grants += 1;
                        }
                        None => {
                            // No free port: with in-degree == out-degree this
                            // cannot happen for pure transit traffic, but a
                            // loop arc or irregular graph can trigger it.
                            metrics.dropped += 1;
                        }
                    }
                }

                // Injection only if a port is still free (hot-potato
                // admission control).  Traffic from, to or cut off from a
                // failed region is refused at the source.
                if let Some(dst) = injections[node] {
                    if !self.faults.is_empty()
                        && (self.faults.node_failed(node)
                            || self.faults.node_failed(dst)
                            || self.router.distance(node, dst).is_none())
                    {
                        // Unservable under the faults: not counted as injected.
                    } else if let Some(port) = self
                        .router
                        .choose_port_randomized(node, dst, &port_free, &mut rng)
                    {
                        port_free[port] = false;
                        let mut msg = Message::new(next_id, node, dst, slot);
                        next_id += 1;
                        metrics.injected += 1;
                        msg.hops = 1;
                        let next = g.out_neighbors(node)[port];
                        arriving[next].push(msg);
                        metrics.grants += 1;
                    }
                    // else: injection refused, not counted as injected.
                }
            }

            at_node = arriving;
        }

        // Messages that reached their destination during the final slot are
        // delivered, not in flight: `at_node` is normally drained at the
        // start of the *next* slot, which never comes for the last one.
        // Their delivery slot is `slots`, consistent with the in-loop
        // convention (a single-hop message costs exactly 1 slot).
        for (node, messages) in at_node.iter_mut().enumerate() {
            messages.retain(|msg| {
                if msg.destination == node {
                    let latency = self.config.slots.saturating_sub(msg.created_slot);
                    metrics.record_delivery(latency, msg.hops);
                    false
                } else {
                    true
                }
            });
        }

        metrics.in_flight = at_node.iter().map(|v| v.len() as u64).sum();
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_topologies::{de_bruijn, kautz};

    fn run_de_bruijn(load: f64, slots: u64) -> SimMetrics {
        let sim = HotPotatoSim::new(
            de_bruijn(2, 3),
            HotPotatoSimConfig {
                slots,
                ..Default::default()
            },
        );
        sim.run(&TrafficPattern::Uniform { load })
    }

    #[test]
    fn conservation_of_messages() {
        let m = run_de_bruijn(0.4, 500);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        assert!(m.injected > 0);
        assert!(m.delivered > 0);
    }

    #[test]
    fn light_load_latency_close_to_average_distance() {
        // With almost no contention, messages follow shortest paths; the
        // average latency is near the average distance of B(2,3) (~2.1).
        let m = run_de_bruijn(0.02, 5000);
        assert!(m.delivered > 50);
        assert!(m.average_latency() < 3.5, "latency {}", m.average_latency());
        assert!(m.average_hops() >= 1.0);
    }

    #[test]
    fn heavy_load_causes_deflections() {
        let light = run_de_bruijn(0.05, 2000);
        let heavy = run_de_bruijn(1.0, 2000);
        // Deflections lengthen paths.
        assert!(heavy.average_hops() > light.average_hops());
        assert!(heavy.average_latency() > light.average_latency());
    }

    #[test]
    fn kautz_hot_potato_works_too() {
        let sim = HotPotatoSim::new(
            kautz(2, 3),
            HotPotatoSimConfig {
                slots: 1000,
                ..Default::default()
            },
        );
        let m = sim.run(&TrafficPattern::Uniform { load: 0.3 });
        assert!(m.delivered > 0);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
    }

    #[test]
    fn injection_is_throttled_at_saturation() {
        // At load 1.0 every node wants to inject every slot but ports are
        // mostly occupied by transit traffic: accepted injections per node
        // per slot stay below 1.
        let m = run_de_bruijn(1.0, 1000);
        let offered = m.slots * m.processors as u64;
        assert!(m.injected < offered);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_de_bruijn(0.3, 300);
        let b = run_de_bruijn(0.3, 300);
        assert_eq!(a, b);
    }

    #[test]
    fn final_slot_arrivals_count_as_delivered() {
        // On the complete digraph every message arrives in one hop, so after
        // the post-run drain nothing can be left in flight: a message
        // injected in the last slot has arrived at its destination by the
        // time the run ends.
        let sim = HotPotatoSim::new(
            otis_topologies::complete_digraph(5),
            HotPotatoSimConfig {
                slots: 1,
                ..Default::default()
            },
        );
        let m = sim.run(&TrafficPattern::Permutation {
            load: 1.0,
            offset: 1,
        });
        assert_eq!(m.injected, 5);
        assert_eq!(m.delivered, 5, "final-slot arrivals must be delivered");
        assert_eq!(m.in_flight, 0);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        // One hop, one slot each.
        assert!((m.average_latency() - 1.0).abs() < 1e-12);
        assert_eq!(m.max_hops, 1);
    }

    #[test]
    fn faults_are_routed_around_and_conservation_holds() {
        let g = kautz(2, 3);
        let mut faults = FaultSet::new();
        faults.fail_node(0);
        let sim = HotPotatoSim::with_faults(
            g.clone(),
            HotPotatoSimConfig {
                slots: 800,
                ..Default::default()
            },
            faults,
        );
        let m = sim.run(&TrafficPattern::Uniform { load: 0.3 });
        assert!(m.delivered > 0);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
        // The faulty run accepts strictly less traffic than the intact one
        // under the same seed (injections touching node 0 are refused).
        let intact = HotPotatoSim::new(
            g,
            HotPotatoSimConfig {
                slots: 800,
                ..Default::default()
            },
        )
        .run(&TrafficPattern::Uniform { load: 0.3 });
        assert!(m.injected < intact.injected);
    }

    #[test]
    fn ttl_guard_drops_runaway_messages() {
        let sim = HotPotatoSim::new(
            de_bruijn(2, 2),
            HotPotatoSimConfig {
                slots: 2000,
                max_hops: 2,
                seed: 3,
            },
        );
        let m = sim.run(&TrafficPattern::Uniform { load: 1.0 });
        // With such a tight TTL under saturation some messages must be dropped.
        assert!(m.dropped > 0);
        assert_eq!(m.injected, m.delivered + m.in_flight + m.dropped);
    }
}
