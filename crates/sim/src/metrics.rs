//! Simulation metrics.

/// One field of the stable serialization surface of [`SimMetrics`]: exact
/// counters stay integers, derived statistics are floats whose undefined
/// cases (an average over zero deliveries, a ratio over zero injections)
/// are `NaN`.  Serializers render undefined floats per format — `-` in a
/// text table, an empty CSV field, a JSON `null` — never the string `"NaN"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// An exact counter.
    Int(u64),
    /// A derived statistic; `NaN` marks an undefined value.
    Float(f64),
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// Number of processors simulated.
    pub processors: usize,
    /// Number of slots simulated.
    pub slots: u64,
    /// Messages injected.
    pub injected: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped (hot-potato with no free port, or still queued at the
    /// end of the run — reported separately as `in_flight`).
    pub dropped: u64,
    /// Messages still in flight when the run ended.
    pub in_flight: u64,
    /// Sum of end-to-end latencies of delivered messages, in slots.
    pub total_latency: u64,
    /// Largest observed latency.
    pub max_latency: u64,
    /// Sum of hop counts of delivered messages.
    pub total_hops: u64,
    /// Largest observed hop count among delivered messages (the empirical
    /// path-length bound, e.g. `k + 2` under `d − 1` faults).
    pub max_hops: u32,
    /// Number of coupler/link grants issued (used slots across all couplers).
    pub grants: u64,
    /// Number of couplers or links in the network (for utilisation).
    pub channels: usize,
}

impl SimMetrics {
    /// A zeroed metrics record.
    pub fn new(processors: usize, channels: usize) -> Self {
        SimMetrics {
            processors,
            slots: 0,
            injected: 0,
            delivered: 0,
            dropped: 0,
            in_flight: 0,
            total_latency: 0,
            max_latency: 0,
            total_hops: 0,
            max_hops: 0,
            grants: 0,
            channels,
        }
    }

    /// Average end-to-end latency of delivered messages, in slots.
    pub fn average_latency(&self) -> f64 {
        if self.delivered == 0 {
            f64::NAN
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Average number of optical hops per delivered message.
    pub fn average_hops(&self) -> f64 {
        if self.delivered == 0 {
            f64::NAN
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Delivered messages per processor per slot (accepted throughput).
    pub fn throughput(&self) -> f64 {
        if self.slots == 0 || self.processors == 0 {
            0.0
        } else {
            self.delivered as f64 / (self.slots as f64 * self.processors as f64)
        }
    }

    /// Fraction of channel-slots actually used, in `[0, 1]`.
    pub fn channel_utilization(&self) -> f64 {
        if self.slots == 0 || self.channels == 0 {
            0.0
        } else {
            self.grants as f64 / (self.slots as f64 * self.channels as f64)
        }
    }

    /// Fraction of injected messages that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            f64::NAN
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Names of the stable machine-readable fields, in the order
    /// [`SimMetrics::field_values`] emits them.  The schema is append-only:
    /// downstream tooling may rely on existing names and positions.
    pub const FIELD_NAMES: [&'static str; 15] = [
        "processors",
        "slots",
        "injected",
        "delivered",
        "dropped",
        "in_flight",
        "throughput",
        "avg_latency",
        "max_latency",
        "avg_hops",
        "max_hops",
        "grants",
        "channels",
        "utilization",
        "delivery_ratio",
    ];

    /// The field values matching [`SimMetrics::FIELD_NAMES`] position by
    /// position: the raw counters plus the derived statistics, with undefined
    /// averages as [`MetricValue::Float`]`(NaN)`.
    pub fn field_values(&self) -> [MetricValue; 15] {
        [
            MetricValue::Int(self.processors as u64),
            MetricValue::Int(self.slots),
            MetricValue::Int(self.injected),
            MetricValue::Int(self.delivered),
            MetricValue::Int(self.dropped),
            MetricValue::Int(self.in_flight),
            MetricValue::Float(self.throughput()),
            MetricValue::Float(self.average_latency()),
            MetricValue::Int(self.max_latency),
            MetricValue::Float(self.average_hops()),
            MetricValue::Int(u64::from(self.max_hops)),
            MetricValue::Int(self.grants),
            MetricValue::Int(self.channels as u64),
            MetricValue::Float(self.channel_utilization()),
            MetricValue::Float(self.delivery_ratio()),
        ]
    }

    /// Records a delivery.
    pub fn record_delivery(&mut self, latency: u64, hops: u32) {
        self.delivered += 1;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        self.total_hops += u64::from(hops);
        self.max_hops = self.max_hops.max(hops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut m = SimMetrics::new(10, 5);
        m.slots = 100;
        m.injected = 50;
        m.record_delivery(4, 2);
        m.record_delivery(6, 3);
        m.grants = 40;
        assert_eq!(m.delivered, 2);
        assert!((m.average_latency() - 5.0).abs() < 1e-12);
        assert!((m.average_hops() - 2.5).abs() < 1e-12);
        assert!((m.throughput() - 0.002).abs() < 1e-12);
        assert!((m.channel_utilization() - 0.08).abs() < 1e-12);
        assert!((m.delivery_ratio() - 0.04).abs() < 1e-12);
        assert_eq!(m.max_latency, 6);
        assert_eq!(m.max_hops, 3);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let m = SimMetrics::new(0, 0);
        assert!(m.average_latency().is_nan());
        assert!(m.average_hops().is_nan());
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.channel_utilization(), 0.0);
        assert!(m.delivery_ratio().is_nan());
    }

    #[test]
    fn field_values_match_field_names() {
        let mut m = SimMetrics::new(10, 5);
        m.slots = 100;
        m.injected = 50;
        m.record_delivery(4, 2);
        m.grants = 40;
        let values = m.field_values();
        assert_eq!(values.len(), SimMetrics::FIELD_NAMES.len());
        let field = |name: &str| {
            let i = SimMetrics::FIELD_NAMES
                .iter()
                .position(|&n| n == name)
                .unwrap_or_else(|| panic!("no field '{name}'"));
            values[i]
        };
        assert_eq!(field("processors"), MetricValue::Int(10));
        assert_eq!(field("delivered"), MetricValue::Int(1));
        assert_eq!(field("max_hops"), MetricValue::Int(2));
        assert_eq!(field("avg_latency"), MetricValue::Float(4.0));
        assert_eq!(field("throughput"), MetricValue::Float(0.001));
    }

    #[test]
    fn undefined_statistics_serialize_as_nan_floats() {
        // A zero-delivery run: the averages are NaN floats (for the sink
        // layer to render per format), never panics or zeros.
        let m = SimMetrics::new(4, 2);
        let nan_fields: Vec<&str> = SimMetrics::FIELD_NAMES
            .iter()
            .zip(m.field_values())
            .filter(|(_, v)| matches!(v, MetricValue::Float(x) if x.is_nan()))
            .map(|(&n, _)| n)
            .collect();
        assert_eq!(nan_fields, ["avg_latency", "avg_hops", "delivery_ratio"]);
    }
}
