//! Simulation metrics.

/// One field of the stable serialization surface of [`SimMetrics`]: exact
/// counters stay integers, derived statistics are floats whose undefined
/// cases (an average over zero deliveries, a ratio over zero injections)
/// are `NaN`.  Serializers render undefined floats per format — `-` in a
/// text table, an empty CSV field, a JSON `null` — never the string `"NaN"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// An exact counter.
    Int(u64),
    /// A derived statistic; `NaN` marks an undefined value.
    Float(f64),
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// Number of processors simulated.
    pub processors: usize,
    /// Number of slots simulated.
    pub slots: u64,
    /// Messages injected.
    pub injected: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped (hot-potato with no free port, or still queued at the
    /// end of the run — reported separately as `in_flight`).
    pub dropped: u64,
    /// Messages still in flight when the run ended.
    pub in_flight: u64,
    /// Sum of end-to-end latencies of delivered messages, in slots.
    pub total_latency: u64,
    /// Largest observed latency.
    pub max_latency: u64,
    /// Sum of hop counts of delivered messages.
    pub total_hops: u64,
    /// Largest observed hop count among delivered messages (the empirical
    /// path-length bound, e.g. `k + 2` under `d − 1` faults).
    pub max_hops: u32,
    /// Number of coupler/link grants issued (used slots across all couplers).
    pub grants: u64,
    /// Number of couplers or links in the network (for utilisation).
    pub channels: usize,
    /// Wavelengths multiplexed per channel during this run, or `0` for a
    /// legacy capacity-1 run where the wavelength layer was off.  The zero
    /// value is the layer flag: every wavelength-derived statistic is `NaN`
    /// (rendered as an undefined sentinel by the sinks) when it is `0`.
    pub wavelengths: usize,
    /// Messages blocked: every wavelength of the required channel was busy
    /// and no alternate route could absorb the message.  Blocked messages
    /// are also counted in `dropped` (conservation holds).
    pub blocked: u64,
    /// Alternate-route events: a message left its primary route for an
    /// alternate one (multi-OPS alternate paths, or hot-potato deflections
    /// off a shortest-path port).  A message re-routed twice counts twice.
    pub alt_routed: u64,
    /// Kernel swaps applied by a fault timeline during this run (one per
    /// distinct event slot of the bound `FaultSchedule`).  The zero value is
    /// the timeline flag, exactly like `wavelengths == 0` for the wavelength
    /// layer: every restoration statistic is undefined (`NaN` to the sinks)
    /// when it is `0`.
    pub fault_events: u64,
    /// Messages in flight at the first overlay-growing swap (the *failure*
    /// the restoration metrics are anchored to), counted before stranding.
    pub in_flight_at_failure: u64,
    /// Messages stranded by kernel swaps — in flight on a node, group or
    /// arc the new kernel fails, or left with no surviving route.  A subset
    /// of `dropped` (conservation holds), counted separately from
    /// congestion drops.
    pub dropped_by_failure: u64,
    /// Slots from the failure until the cumulative post-failure delivery
    /// rate first recovered to ≥ 95% of the pre-failure baseline;
    /// `u64::MAX` means it never did (also the sentinel when the failure
    /// happened at slot 0 or nothing was delivered before it).
    pub restore_slots: u64,
    /// Largest end-to-end latency among messages delivered at or after the
    /// failure slot.
    pub post_failure_latency_peak: u64,
}

impl SimMetrics {
    /// A zeroed metrics record.
    pub fn new(processors: usize, channels: usize) -> Self {
        SimMetrics {
            processors,
            slots: 0,
            injected: 0,
            delivered: 0,
            dropped: 0,
            in_flight: 0,
            total_latency: 0,
            max_latency: 0,
            total_hops: 0,
            max_hops: 0,
            grants: 0,
            channels,
            wavelengths: 0,
            blocked: 0,
            alt_routed: 0,
            fault_events: 0,
            in_flight_at_failure: 0,
            dropped_by_failure: 0,
            restore_slots: 0,
            post_failure_latency_peak: 0,
        }
    }

    /// Average end-to-end latency of delivered messages, in slots.
    pub fn average_latency(&self) -> f64 {
        if self.delivered == 0 {
            f64::NAN
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Average number of optical hops per delivered message.
    pub fn average_hops(&self) -> f64 {
        if self.delivered == 0 {
            f64::NAN
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Delivered messages per processor per slot (accepted throughput).
    pub fn throughput(&self) -> f64 {
        if self.slots == 0 || self.processors == 0 {
            0.0
        } else {
            self.delivered as f64 / (self.slots as f64 * self.processors as f64)
        }
    }

    /// Fraction of channel-slots actually used, in `[0, 1]`.
    pub fn channel_utilization(&self) -> f64 {
        if self.slots == 0 || self.channels == 0 {
            0.0
        } else {
            self.grants as f64 / (self.slots as f64 * self.channels as f64)
        }
    }

    /// Fraction of injected messages that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            f64::NAN
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Fraction of injected messages blocked by wavelength exhaustion.
    /// `NaN` (undefined) when the wavelength layer was off or nothing was
    /// injected.
    pub fn blocking_ratio(&self) -> f64 {
        if self.wavelengths == 0 || self.injected == 0 {
            f64::NAN
        } else {
            self.blocked as f64 / self.injected as f64
        }
    }

    /// Fraction of channel-wavelength-slots actually used, in `[0, 1]` —
    /// the spectrum-usage analogue of [`SimMetrics::channel_utilization`].
    /// `NaN` (undefined) when the wavelength layer was off.
    pub fn wavelength_utilization(&self) -> f64 {
        if self.wavelengths == 0 {
            f64::NAN
        } else if self.slots == 0 || self.channels == 0 {
            0.0
        } else {
            self.grants as f64
                / (self.slots as f64 * self.channels as f64 * self.wavelengths as f64)
        }
    }

    /// Alternate-route events per injected message (may exceed 1 when
    /// messages re-route repeatedly).  `NaN` (undefined) when the wavelength
    /// layer was off or nothing was injected.
    pub fn alt_route_rate(&self) -> f64 {
        if self.wavelengths == 0 || self.injected == 0 {
            f64::NAN
        } else {
            self.alt_routed as f64 / self.injected as f64
        }
    }

    /// Number of *core* fields: the schema as it stood before the wavelength
    /// layer.  The first `CORE_FIELD_COUNT` entries of
    /// [`SimMetrics::FIELD_NAMES`] / [`SimMetrics::field_values`] are exactly
    /// the legacy schema, so serializers that must stay byte-identical for
    /// capacity-1 runs truncate to this length.
    pub const CORE_FIELD_COUNT: usize = 15;

    /// Number of fields of the *extended* (wavelength-layer) schema tier.
    /// The first `EXTENDED_FIELD_COUNT` entries of
    /// [`SimMetrics::FIELD_NAMES`] are exactly the schema as it stood before
    /// the restoration columns, so serializers that must stay byte-identical
    /// for schedule-free wavelength runs truncate to this length.
    pub const EXTENDED_FIELD_COUNT: usize = 21;

    /// Names of the stable machine-readable fields, in the order
    /// [`SimMetrics::field_values`] emits them.  The schema is append-only:
    /// downstream tooling may rely on existing names and positions.  Fields
    /// past [`SimMetrics::CORE_FIELD_COUNT`] belong to the wavelength layer
    /// and are undefined (`NaN` floats) for capacity-1 runs; fields past
    /// [`SimMetrics::EXTENDED_FIELD_COUNT`] belong to the fault-timeline
    /// restoration layer and are undefined when no kernel swap happened
    /// (`fault_events == 0`).
    pub const FIELD_NAMES: [&'static str; 26] = [
        "processors",
        "slots",
        "injected",
        "delivered",
        "dropped",
        "in_flight",
        "throughput",
        "avg_latency",
        "max_latency",
        "avg_hops",
        "max_hops",
        "grants",
        "channels",
        "utilization",
        "delivery_ratio",
        "wavelengths",
        "blocked",
        "alt_routed",
        "blocking_ratio",
        "wavelength_utilization",
        "alt_route_rate",
        "fault_events",
        "in_flight_at_failure",
        "dropped_by_failure",
        "restore_slots",
        "post_failure_latency_peak",
    ];

    /// The field values matching [`SimMetrics::FIELD_NAMES`] position by
    /// position: the raw counters plus the derived statistics, with undefined
    /// averages as [`MetricValue::Float`]`(NaN)`.
    pub fn field_values(&self) -> [MetricValue; 26] {
        [
            MetricValue::Int(self.processors as u64),
            MetricValue::Int(self.slots),
            MetricValue::Int(self.injected),
            MetricValue::Int(self.delivered),
            MetricValue::Int(self.dropped),
            MetricValue::Int(self.in_flight),
            MetricValue::Float(self.throughput()),
            MetricValue::Float(self.average_latency()),
            MetricValue::Int(self.max_latency),
            MetricValue::Float(self.average_hops()),
            MetricValue::Int(u64::from(self.max_hops)),
            MetricValue::Int(self.grants),
            MetricValue::Int(self.channels as u64),
            MetricValue::Float(self.channel_utilization()),
            MetricValue::Float(self.delivery_ratio()),
            MetricValue::Int(self.wavelengths as u64),
            MetricValue::Int(self.blocked),
            MetricValue::Int(self.alt_routed),
            MetricValue::Float(self.blocking_ratio()),
            MetricValue::Float(self.wavelength_utilization()),
            MetricValue::Float(self.alt_route_rate()),
            MetricValue::Int(self.fault_events),
            self.restoration_counter(self.in_flight_at_failure),
            self.restoration_counter(self.dropped_by_failure),
            if self.restore_slots == u64::MAX {
                MetricValue::Float(f64::NAN)
            } else {
                self.restoration_counter(self.restore_slots)
            },
            self.restoration_counter(self.post_failure_latency_peak),
        ]
    }

    /// A restoration-layer counter: an exact integer when a fault timeline
    /// swapped kernels during the run, undefined (`NaN`) on static runs —
    /// mirroring how `wavelengths == 0` marks the wavelength statistics
    /// undefined.
    fn restoration_counter(&self, value: u64) -> MetricValue {
        if self.fault_events == 0 {
            MetricValue::Float(f64::NAN)
        } else {
            MetricValue::Int(value)
        }
    }

    /// Records a delivery.
    pub fn record_delivery(&mut self, latency: u64, hops: u32) {
        self.delivered += 1;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        self.total_hops += u64::from(hops);
        self.max_hops = self.max_hops.max(hops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut m = SimMetrics::new(10, 5);
        m.slots = 100;
        m.injected = 50;
        m.record_delivery(4, 2);
        m.record_delivery(6, 3);
        m.grants = 40;
        assert_eq!(m.delivered, 2);
        assert!((m.average_latency() - 5.0).abs() < 1e-12);
        assert!((m.average_hops() - 2.5).abs() < 1e-12);
        assert!((m.throughput() - 0.002).abs() < 1e-12);
        assert!((m.channel_utilization() - 0.08).abs() < 1e-12);
        assert!((m.delivery_ratio() - 0.04).abs() < 1e-12);
        assert_eq!(m.max_latency, 6);
        assert_eq!(m.max_hops, 3);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let m = SimMetrics::new(0, 0);
        assert!(m.average_latency().is_nan());
        assert!(m.average_hops().is_nan());
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.channel_utilization(), 0.0);
        assert!(m.delivery_ratio().is_nan());
        // Wavelength layer off: its statistics are undefined, not zero.
        assert!(m.blocking_ratio().is_nan());
        assert!(m.wavelength_utilization().is_nan());
        assert!(m.alt_route_rate().is_nan());
        // Layer on but an empty run: defined, and zero where sensible.
        let mut on = SimMetrics::new(0, 0);
        on.wavelengths = 4;
        assert!(on.blocking_ratio().is_nan(), "zero injections stay NaN");
        assert_eq!(on.wavelength_utilization(), 0.0);
    }

    #[test]
    fn wavelength_statistics_follow_their_counters() {
        let mut m = SimMetrics::new(8, 4);
        m.slots = 100;
        m.wavelengths = 2;
        m.injected = 50;
        m.blocked = 5;
        m.alt_routed = 10;
        m.grants = 400;
        assert!((m.blocking_ratio() - 0.1).abs() < 1e-12);
        assert!((m.alt_route_rate() - 0.2).abs() < 1e-12);
        // 400 grants over 100 slots * 4 channels * 2 wavelengths.
        assert!((m.wavelength_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn field_values_match_field_names() {
        let mut m = SimMetrics::new(10, 5);
        m.slots = 100;
        m.injected = 50;
        m.record_delivery(4, 2);
        m.grants = 40;
        let values = m.field_values();
        assert_eq!(values.len(), SimMetrics::FIELD_NAMES.len());
        let field = |name: &str| {
            let i = SimMetrics::FIELD_NAMES
                .iter()
                .position(|&n| n == name)
                .unwrap_or_else(|| panic!("no field '{name}'"));
            values[i]
        };
        assert_eq!(field("processors"), MetricValue::Int(10));
        assert_eq!(field("delivered"), MetricValue::Int(1));
        assert_eq!(field("max_hops"), MetricValue::Int(2));
        assert_eq!(field("avg_latency"), MetricValue::Float(4.0));
        assert_eq!(field("throughput"), MetricValue::Float(0.001));
    }

    #[test]
    fn undefined_statistics_serialize_as_nan_floats() {
        // A zero-delivery run: the averages are NaN floats (for the sink
        // layer to render per format), never panics or zeros.
        let m = SimMetrics::new(4, 2);
        let nan_fields: Vec<&str> = SimMetrics::FIELD_NAMES
            .iter()
            .zip(m.field_values())
            .filter(|(_, v)| matches!(v, MetricValue::Float(x) if x.is_nan()))
            .map(|(&n, _)| n)
            .collect();
        assert_eq!(
            nan_fields,
            [
                "avg_latency",
                "avg_hops",
                "delivery_ratio",
                "blocking_ratio",
                "wavelength_utilization",
                "alt_route_rate",
                "in_flight_at_failure",
                "dropped_by_failure",
                "restore_slots",
                "post_failure_latency_peak",
            ]
        );
    }

    #[test]
    fn restoration_fields_are_defined_exactly_when_kernels_swapped() {
        let mut m = SimMetrics::new(4, 2);
        m.fault_events = 2;
        m.in_flight_at_failure = 7;
        m.dropped_by_failure = 3;
        m.restore_slots = 12;
        m.post_failure_latency_peak = 9;
        let values = m.field_values();
        let field = |name: &str| {
            let i = SimMetrics::FIELD_NAMES
                .iter()
                .position(|&n| n == name)
                .unwrap_or_else(|| panic!("no field '{name}'"));
            values[i]
        };
        assert_eq!(field("fault_events"), MetricValue::Int(2));
        assert_eq!(field("in_flight_at_failure"), MetricValue::Int(7));
        assert_eq!(field("dropped_by_failure"), MetricValue::Int(3));
        assert_eq!(field("restore_slots"), MetricValue::Int(12));
        assert_eq!(field("post_failure_latency_peak"), MetricValue::Int(9));
        // Never restored: the sentinel serializes as undefined, not as MAX.
        m.restore_slots = u64::MAX;
        let i = SimMetrics::FIELD_NAMES
            .iter()
            .position(|&n| n == "restore_slots")
            .unwrap();
        assert!(matches!(m.field_values()[i], MetricValue::Float(x) if x.is_nan()));
        // fault_events itself is always an exact counter, 0 on static runs.
        let fresh = SimMetrics::new(4, 2);
        let j = SimMetrics::FIELD_NAMES
            .iter()
            .position(|&n| n == "fault_events")
            .unwrap();
        assert_eq!(fresh.field_values()[j], MetricValue::Int(0));
    }

    #[test]
    fn extended_prefix_is_the_wavelength_schema() {
        assert_eq!(SimMetrics::EXTENDED_FIELD_COUNT, 21);
        assert_eq!(
            SimMetrics::FIELD_NAMES[SimMetrics::EXTENDED_FIELD_COUNT - 1],
            "alt_route_rate"
        );
        assert_eq!(
            SimMetrics::FIELD_NAMES[SimMetrics::EXTENDED_FIELD_COUNT],
            "fault_events"
        );
    }

    #[test]
    fn core_prefix_is_the_legacy_schema() {
        assert_eq!(SimMetrics::CORE_FIELD_COUNT, 15);
        assert_eq!(
            &SimMetrics::FIELD_NAMES[..SimMetrics::CORE_FIELD_COUNT],
            [
                "processors",
                "slots",
                "injected",
                "delivered",
                "dropped",
                "in_flight",
                "throughput",
                "avg_latency",
                "max_latency",
                "avg_hops",
                "max_hops",
                "grants",
                "channels",
                "utilization",
                "delivery_ratio",
            ]
        );
        // Every wavelength-layer float is NaN for a legacy run, so core-only
        // serialization loses nothing.
        let m = SimMetrics::new(4, 2);
        for (name, value) in SimMetrics::FIELD_NAMES
            .iter()
            .zip(m.field_values())
            .skip(SimMetrics::CORE_FIELD_COUNT)
        {
            match value {
                MetricValue::Int(x) => assert_eq!(x, 0, "{name} must be 0 when the layer is off"),
                MetricValue::Float(x) => {
                    assert!(x.is_nan(), "{name} must be NaN when the layer is off")
                }
            }
        }
    }
}
