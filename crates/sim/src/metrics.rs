//! Simulation metrics.

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// Number of processors simulated.
    pub processors: usize,
    /// Number of slots simulated.
    pub slots: u64,
    /// Messages injected.
    pub injected: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped (hot-potato with no free port, or still queued at the
    /// end of the run — reported separately as `in_flight`).
    pub dropped: u64,
    /// Messages still in flight when the run ended.
    pub in_flight: u64,
    /// Sum of end-to-end latencies of delivered messages, in slots.
    pub total_latency: u64,
    /// Largest observed latency.
    pub max_latency: u64,
    /// Sum of hop counts of delivered messages.
    pub total_hops: u64,
    /// Largest observed hop count among delivered messages (the empirical
    /// path-length bound, e.g. `k + 2` under `d − 1` faults).
    pub max_hops: u32,
    /// Number of coupler/link grants issued (used slots across all couplers).
    pub grants: u64,
    /// Number of couplers or links in the network (for utilisation).
    pub channels: usize,
}

impl SimMetrics {
    /// A zeroed metrics record.
    pub fn new(processors: usize, channels: usize) -> Self {
        SimMetrics {
            processors,
            slots: 0,
            injected: 0,
            delivered: 0,
            dropped: 0,
            in_flight: 0,
            total_latency: 0,
            max_latency: 0,
            total_hops: 0,
            max_hops: 0,
            grants: 0,
            channels,
        }
    }

    /// Average end-to-end latency of delivered messages, in slots.
    pub fn average_latency(&self) -> f64 {
        if self.delivered == 0 {
            f64::NAN
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Average number of optical hops per delivered message.
    pub fn average_hops(&self) -> f64 {
        if self.delivered == 0 {
            f64::NAN
        } else {
            self.total_hops as f64 / self.delivered as f64
        }
    }

    /// Delivered messages per processor per slot (accepted throughput).
    pub fn throughput(&self) -> f64 {
        if self.slots == 0 || self.processors == 0 {
            0.0
        } else {
            self.delivered as f64 / (self.slots as f64 * self.processors as f64)
        }
    }

    /// Fraction of channel-slots actually used, in `[0, 1]`.
    pub fn channel_utilization(&self) -> f64 {
        if self.slots == 0 || self.channels == 0 {
            0.0
        } else {
            self.grants as f64 / (self.slots as f64 * self.channels as f64)
        }
    }

    /// Fraction of injected messages that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            f64::NAN
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Records a delivery.
    pub fn record_delivery(&mut self, latency: u64, hops: u32) {
        self.delivered += 1;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        self.total_hops += u64::from(hops);
        self.max_hops = self.max_hops.max(hops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut m = SimMetrics::new(10, 5);
        m.slots = 100;
        m.injected = 50;
        m.record_delivery(4, 2);
        m.record_delivery(6, 3);
        m.grants = 40;
        assert_eq!(m.delivered, 2);
        assert!((m.average_latency() - 5.0).abs() < 1e-12);
        assert!((m.average_hops() - 2.5).abs() < 1e-12);
        assert!((m.throughput() - 0.002).abs() < 1e-12);
        assert!((m.channel_utilization() - 0.08).abs() < 1e-12);
        assert!((m.delivery_ratio() - 0.04).abs() < 1e-12);
        assert_eq!(m.max_latency, 6);
        assert_eq!(m.max_hops, 3);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let m = SimMetrics::new(0, 0);
        assert!(m.average_latency().is_nan());
        assert!(m.average_hops().is_nan());
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.channel_utilization(), 0.0);
        assert!(m.delivery_ratio().is_nan());
    }
}
