//! Demand generation: the input layer of the simulators.
//!
//! The stationary patterns of [`crate::traffic`] answer the same question
//! every slot from the same distribution.  Real lightwave networks carry
//! demand that is *bursty* and *non-stationary*, and reproductions often
//! need to replay a recorded stream instead of synthesizing one.  This
//! module generalizes the injection side of both kernels behind one
//! abstraction:
//!
//! * [`DemandSpec`] — the immutable description of a demand process:
//!   a stationary [`TrafficPattern`], a Poisson arrival process, an on/off
//!   burst process, an elephants-and-mice rate mix, or a recorded trace
//!   file;
//! * [`DemandSource`] — the per-run stateful generator built from a spec
//!   ([`DemandSpec::source`]).  It answers the kernels' per-slot question
//!   through [`DemandSource::injections_into`], the same allocation-free
//!   shape as [`TrafficPattern::injections_into`], drawing from the run's
//!   [`crate::kernel::RunCore`] RNG so results stay deterministic per seed
//!   and thread-count independent;
//! * [`TraceReplay`] and the line-oriented `.trc` trace format — replayed
//!   *lazily*, one lookahead event at a time, so the resident demand state
//!   is bounded by a constant buffer regardless of trace length
//!   (million-event traces run in O(buffer), not O(trace)).
//!
//! ## Stochastic generators
//!
//! Rates are *expected arrivals per processor per slot*.  In a slotted
//! simulator a Poisson process of rate `λ` injects in a slot with
//! probability `1 − e^(−λ)` (at most one message per processor per slot —
//! the batching a slotted kernel imposes), so rates may exceed `1` and the
//! per-slot injection probability saturates towards `1`.
//!
//! * `Poisson { rate, dst }` — every processor injects with probability
//!   `1 − e^(−rate)`; destinations are uniform over the other processors,
//!   or the fixed `dst` (whose own processor then never injects);
//! * `OnOff { rate, burst_len, idle_len }` — each processor cycles through
//!   `burst_len` ON slots followed by `idle_len` OFF slots, injecting as a
//!   Poisson process of `rate` while ON and staying silent while OFF.  The
//!   per-processor phase of the cycle is drawn from the run RNG on the
//!   first slot, so bursts desynchronize across processors but reproduce
//!   exactly per seed;
//! * `Mix { fraction, elephant_rate, mice_rate }` — `round(fraction · N)`
//!   processors (chosen from the run RNG on the first slot) inject at
//!   `elephant_rate`, the rest at `mice_rate` — the classic heavy-hitter
//!   demand skew.
//!
//! ## The `.trc` trace format
//!
//! Line-oriented like the `.scn` scenario format: one event per line,
//! `slot src dst` (whitespace-separated), `#` starts a comment (full-line
//! or trailing), blank lines are ignored.  Slots must be non-decreasing,
//! `src != dst`, and at most one event per `(slot, src)` pair — a
//! processor injects at most one message per slot, exactly like the
//! generators.  [`validate_trace`] streams a trace once, reports the
//! first violation as a typed, line-numbered [`TraceError`], and on
//! success returns [`TraceStats`] (event count and slot span) from which
//! the trace's mean offered load is derived at bind time; replay
//! assumes a validated stream and panics (with the line number) on
//! malformed input rather than silently misreading demand.

use crate::traffic::TrafficPattern;
use rand::Rng;
use std::fmt;
use std::io::{self, BufRead};

/// An immutable description of a demand process — what to inject, not the
/// mid-run generator state.  Build the per-run generator with
/// [`DemandSpec::source`].
#[derive(Debug, Clone, PartialEq)]
pub enum DemandSpec {
    /// A stationary synthetic pattern, delegated verbatim to
    /// [`TrafficPattern`] — same RNG draws, byte-identical metrics.
    Pattern(TrafficPattern),
    /// Poisson arrivals at `rate` expected messages per processor per slot.
    Poisson {
        /// Expected arrivals per processor per slot (finite, `>= 0`; may
        /// exceed 1 — the per-slot injection probability is `1 − e^(−rate)`).
        rate: f64,
        /// `Some(d)`: every message targets processor `d` (which itself
        /// never injects); `None`: destinations are uniform over the other
        /// processors.
        dst: Option<usize>,
    },
    /// On/off bursts: Poisson arrivals at `rate` during `burst_len` ON
    /// slots, silence during `idle_len` OFF slots, per-processor phases
    /// drawn from the run RNG.
    OnOff {
        /// Expected arrivals per processor per slot *while ON*.
        rate: f64,
        /// ON-phase length in slots (`>= 1`).
        burst_len: u64,
        /// OFF-phase length in slots (`>= 1`).
        idle_len: u64,
    },
    /// Elephants-and-mice: `round(fraction · N)` processors inject Poisson
    /// arrivals at `elephant_rate`, the rest at `mice_rate`.
    Mix {
        /// Fraction of processors that are elephants, in `[0, 1]`.
        fraction: f64,
        /// Expected arrivals per elephant processor per slot.
        elephant_rate: f64,
        /// Expected arrivals per mouse processor per slot.
        mice_rate: f64,
    },
    /// Replay of a recorded `.trc` demand stream.
    Trace {
        /// Path of the trace file, opened lazily at [`DemandSpec::source`]
        /// time and streamed slot by slot.
        path: String,
        /// The measured mean injections per slot per node, filled in by a
        /// bind-time validation pass over the file (`TrafficSpec::bind`
        /// stores [`TraceStats::offered_load`] here).  `None` until the
        /// file has been measured; always finite once set, so the derived
        /// `PartialEq` stays reflexive.
        offered_load: Option<f64>,
    },
}

impl DemandSpec {
    /// Builds the per-run generator.  Opens the trace file for
    /// [`DemandSpec::Trace`] (the only fallible case — the stochastic
    /// variants never fail).
    pub fn source(&self) -> io::Result<DemandSource> {
        Ok(match self {
            DemandSpec::Pattern(pattern) => DemandSource::Pattern(pattern.clone()),
            DemandSpec::Poisson { rate, dst } => DemandSource::Poisson {
                p: slot_probability(*rate),
                dst: *dst,
            },
            DemandSpec::OnOff {
                rate,
                burst_len,
                idle_len,
            } => DemandSource::OnOff(OnOffState::new(*rate, *burst_len, *idle_len)),
            DemandSpec::Mix {
                fraction,
                elephant_rate,
                mice_rate,
            } => DemandSource::Mix(MixState::new(*fraction, *elephant_rate, *mice_rate)),
            DemandSpec::Trace { path, .. } => {
                let file = std::fs::File::open(path)?;
                DemandSource::Trace(TraceReplay::new(io::BufReader::new(file)))
            }
        })
    }

    /// Unwraps a stationary workload back into its [`TrafficPattern`],
    /// `None` for the demand processes — callers on the legacy pattern-only
    /// path use this to keep taking the byte-identical `run` entry points.
    pub fn into_pattern(self) -> Option<TrafficPattern> {
        match self {
            DemandSpec::Pattern(pattern) => Some(pattern),
            _ => None,
        }
    }

    /// The nominal offered load in messages per processor per slot — the
    /// expected per-slot injection probability for stochastic variants,
    /// [`TrafficPattern::offered_load`] for stationary patterns, and for
    /// traces the bind-time-measured mean (or `NaN` if the file has not
    /// been measured yet).
    pub fn offered_load(&self) -> f64 {
        match self {
            DemandSpec::Pattern(pattern) => pattern.offered_load(),
            DemandSpec::Poisson { rate, .. } => slot_probability(*rate),
            DemandSpec::OnOff {
                rate,
                burst_len,
                idle_len,
            } => {
                // A zero burst length degrades to 1 slot, exactly as the
                // generator state does (the typed front door refuses it).
                let burst = (*burst_len).max(1);
                let period = burst.saturating_add(*idle_len);
                slot_probability(*rate) * burst as f64 / period as f64
            }
            DemandSpec::Mix {
                fraction,
                elephant_rate,
                mice_rate,
            } => {
                // NaN saturates to 0 (f64::clamp would propagate it).
                let f = if fraction.is_nan() {
                    0.0
                } else {
                    fraction.clamp(0.0, 1.0)
                };
                f * slot_probability(*elephant_rate) + (1.0 - f) * slot_probability(*mice_rate)
            }
            DemandSpec::Trace { offered_load, .. } => offered_load.unwrap_or(f64::NAN),
        }
    }

    /// The load that actually enters an `n`-processor network, accounting
    /// for sources the process silences (the fixed destination of a
    /// targeted Poisson process never injects; stationary patterns account
    /// for their fixed points).  For traces the measured mean *is* what
    /// enters the network, so offered and effective coincide (`NaN` until
    /// measured).
    pub fn effective_load(&self, n: usize) -> f64 {
        if n < 2 {
            return if matches!(self, DemandSpec::Trace { .. }) {
                self.offered_load()
            } else {
                0.0
            };
        }
        match self {
            DemandSpec::Pattern(pattern) => pattern.effective_load(n),
            DemandSpec::Poisson { dst: Some(_), .. } => {
                self.offered_load() * (n as f64 - 1.0) / n as f64
            }
            _ => self.offered_load(),
        }
    }

    /// An on/off burst process calibrated so its long-run mean offered
    /// load matches `Poisson { rate: mean_rate }` exactly — the burst-phase
    /// rate is [`matched_burst_rate`].  Matched means isolate traffic
    /// *shape*: any metric gap between the Poisson run and this one is the
    /// price of demand concentration, not of extra load.
    ///
    /// # Panics
    ///
    /// When the duty cycle is too small to reach the requested mean (see
    /// [`matched_burst_rate`]).
    pub fn matched_on_off(mean_rate: f64, burst_len: u64, idle_len: u64) -> DemandSpec {
        DemandSpec::OnOff {
            rate: matched_burst_rate(mean_rate, burst_len, idle_len),
            burst_len,
            idle_len,
        }
    }
}

/// The burst-phase Poisson rate at which an on/off source with `burst_len`
/// ON slots and `idle_len` OFF slots offers the same long-run mean load as
/// `poisson(mean_rate)`: the source only injects during
/// `burst / (burst + idle)` of the slots, so its per-slot injection
/// probability while ON must be the Poisson one divided by the duty cycle.
/// A zero `burst_len` degrades to 1 slot, exactly as the generator state
/// does.
///
/// # Panics
///
/// When the duty cycle is too small to match the requested mean — the
/// required ON-phase injection probability would reach 1 (a source cannot
/// inject more than one message per slot).
pub fn matched_burst_rate(mean_rate: f64, burst_len: u64, idle_len: u64) -> f64 {
    let p = slot_probability(mean_rate);
    let burst = burst_len.max(1);
    let duty = burst as f64 / (burst.saturating_add(idle_len)) as f64;
    let p_on = p / duty;
    assert!(
        p_on < 1.0,
        "duty cycle {duty:.4} too small to match mean rate {mean_rate}: \
         the ON-phase injection probability would be {p_on:.4} >= 1"
    );
    -f64::ln_1p(-p_on)
}

/// The per-run demand generator behind the kernels' injection step: holds
/// whatever mid-run state the process needs (burst phases, elephant
/// choices, the trace lookahead) and fills the slot loop's reusable
/// injection buffer.  Build one per run with [`DemandSpec::source`]; a
/// source must not be reused across runs (its state has advanced).
#[derive(Debug)]
pub enum DemandSource {
    /// Stationary pattern, stateless — delegates every draw verbatim.
    Pattern(TrafficPattern),
    /// Poisson arrivals, stateless.
    Poisson {
        /// Per-slot injection probability, `1 − e^(−rate)`.
        p: f64,
        /// Fixed destination, or `None` for uniform.
        dst: Option<usize>,
    },
    /// On/off bursts with per-processor phase state.
    OnOff(OnOffState),
    /// Elephants-and-mice with the per-run elephant choice.
    Mix(MixState),
    /// Lazy replay of a `.trc` stream.
    Trace(TraceReplay),
}

impl DemandSource {
    /// Wraps a stationary pattern — the source the legacy
    /// `run(traffic, config)` entry points build internally.
    pub fn from_pattern(pattern: TrafficPattern) -> Self {
        DemandSource::Pattern(pattern)
    }

    /// The injection decisions of one slot: for every processor, an
    /// optional destination.  The demand-side generalization of
    /// [`TrafficPattern::injections_into`] — same allocation-free shape,
    /// and for the [`DemandSource::Pattern`] variant the exact same RNG
    /// draw order.  Consecutive calls advance the process by one slot.
    pub fn injections_into<R: Rng>(&mut self, n: usize, rng: &mut R, out: &mut Vec<Option<usize>>) {
        match self {
            DemandSource::Pattern(pattern) => pattern.injections_into(n, rng, out),
            DemandSource::Poisson { p, dst } => {
                out.clear();
                let (p, dst) = (*p, *dst);
                out.extend((0..n).map(|src| poisson_inject(src, n, p, dst, rng)));
            }
            DemandSource::OnOff(state) => state.injections_into(n, rng, out),
            DemandSource::Mix(state) => state.injections_into(n, rng, out),
            DemandSource::Trace(replay) => replay.injections_into(n, out),
        }
    }
}

/// One Poisson decision: inject with probability `p`, destination `dst`
/// (fixed) or uniform over the other processors.
fn poisson_inject<R: Rng>(
    src: usize,
    n: usize,
    p: f64,
    dst: Option<usize>,
    rng: &mut R,
) -> Option<usize> {
    if n < 2 {
        return None;
    }
    match dst {
        Some(d) if d == src || d >= n => None,
        Some(d) => rng.gen_bool(p).then_some(d),
        None => {
            if rng.gen_bool(p) {
                Some(random_other(src, n, rng))
            } else {
                None
            }
        }
    }
}

/// Uniform destination among the other processors — the exact draw of
/// `traffic::random_other`, repeated here so demand and traffic consume
/// identically shaped RNG streams.
fn random_other<R: Rng>(src: usize, n: usize, rng: &mut R) -> usize {
    let mut dst = rng.gen_range(0..n - 1);
    if dst >= src {
        dst += 1;
    }
    dst
}

/// Per-slot injection probability of a Poisson process of `rate` expected
/// arrivals per slot: `P(at least one arrival) = 1 − e^(−rate)`.  `NaN`
/// and negative rates saturate to `0` (the typed `TrafficSpec` front door
/// refuses them at parse time; this only guards direct construction).
fn slot_probability(rate: f64) -> f64 {
    if rate.is_nan() || rate <= 0.0 {
        0.0
    } else {
        -f64::exp_m1(-rate)
    }
}

/// Mid-run state of the on/off burst process.
#[derive(Debug, Clone)]
pub struct OnOffState {
    p: f64,
    burst_len: u64,
    idle_len: u64,
    /// Per-processor cycle phases, drawn lazily on the first slot.
    phases: Vec<u64>,
    slot: u64,
}

impl OnOffState {
    fn new(rate: f64, burst_len: u64, idle_len: u64) -> Self {
        OnOffState {
            p: slot_probability(rate),
            burst_len: burst_len.max(1),
            idle_len,
            phases: Vec::new(),
            slot: 0,
        }
    }

    fn injections_into<R: Rng>(&mut self, n: usize, rng: &mut R, out: &mut Vec<Option<usize>>) {
        let period = self.burst_len + self.idle_len;
        if self.phases.len() != n {
            // First slot (or a caller changing n mid-run, which resets the
            // phases): one phase draw per processor, from the run RNG.
            self.phases.clear();
            self.phases
                .extend((0..n).map(|_| rng.gen_range(0..period as usize) as u64));
        }
        out.clear();
        for src in 0..n {
            let on = (self.slot + self.phases[src]) % period < self.burst_len;
            out.push(if on {
                poisson_inject(src, n, self.p, None, rng)
            } else {
                None
            });
        }
        self.slot += 1;
    }
}

/// Mid-run state of the elephants-and-mice mix.
#[derive(Debug, Clone)]
pub struct MixState {
    fraction: f64,
    p_elephant: f64,
    p_mice: f64,
    /// Per-processor elephant flags, chosen lazily on the first slot.
    elephants: Vec<bool>,
}

impl MixState {
    fn new(fraction: f64, elephant_rate: f64, mice_rate: f64) -> Self {
        MixState {
            fraction: if fraction.is_nan() {
                0.0
            } else {
                fraction.clamp(0.0, 1.0)
            },
            p_elephant: slot_probability(elephant_rate),
            p_mice: slot_probability(mice_rate),
            elephants: Vec::new(),
        }
    }

    fn injections_into<R: Rng>(&mut self, n: usize, rng: &mut R, out: &mut Vec<Option<usize>>) {
        if self.elephants.len() != n {
            // First slot: choose round(fraction · n) elephants by a partial
            // Fisher-Yates over the processor indices, from the run RNG.
            let count = ((self.fraction * n as f64).round() as usize).min(n);
            let mut indices: Vec<usize> = (0..n).collect();
            for i in 0..count {
                let j = i + rng.gen_range(0..n - i);
                indices.swap(i, j);
            }
            self.elephants.clear();
            self.elephants.resize(n, false);
            for &idx in &indices[..count] {
                self.elephants[idx] = true;
            }
        }
        out.clear();
        for src in 0..n {
            let p = if self.elephants[src] {
                self.p_elephant
            } else {
                self.p_mice
            };
            out.push(poisson_inject(src, n, p, None, rng));
        }
    }
}

/// One parsed trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TraceEvent {
    slot: u64,
    src: usize,
    dst: usize,
}

/// Lazy, bounded-memory replay of a `.trc` demand stream: the reader is
/// pulled one line at a time, and the only resident demand state is a
/// single lookahead event — the first event past the current slot.  Peak
/// memory is O(line buffer), independent of trace length.
///
/// Replay assumes a stream [`validate_trace`] accepted; a malformed line,
/// an out-of-range node id, a non-monotonic slot or an I/O error mid-run
/// panics with the line number (the typed front door rejects such traces
/// before a run starts).
pub struct TraceReplay {
    reader: Box<dyn BufRead + Send>,
    /// 1-based number of the last line read.
    line: u64,
    /// The next slot [`TraceReplay::injections_into`] will serve.
    slot: u64,
    /// The one lookahead event: first event with `event.slot > served`.
    pending: Option<TraceEvent>,
    /// Reader exhausted — every later slot injects nothing.
    exhausted: bool,
    buf: String,
}

impl fmt::Debug for TraceReplay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceReplay")
            .field("line", &self.line)
            .field("slot", &self.slot)
            .field("pending", &self.pending)
            .field("exhausted", &self.exhausted)
            .finish_non_exhaustive()
    }
}

impl TraceReplay {
    /// Wraps any buffered reader — a [`std::io::BufReader`] over the trace
    /// file in production, an in-memory cursor or synthetic generator in
    /// tests.
    pub fn new<R: BufRead + Send + 'static>(reader: R) -> Self {
        TraceReplay {
            reader: Box::new(reader),
            line: 0,
            slot: 0,
            pending: None,
            exhausted: false,
            buf: String::new(),
        }
    }

    /// Number of lines pulled from the reader so far — the laziness
    /// observable: after serving slot `s`, at most the events of slots
    /// `0..=s` plus one lookahead line (and its preceding comments) have
    /// been read, regardless of how long the trace is.
    pub fn lines_consumed(&self) -> u64 {
        self.line
    }

    /// The injection decisions of the next slot, in trace order.
    fn injections_into(&mut self, n: usize, out: &mut Vec<Option<usize>>) {
        out.clear();
        out.resize(n, None);
        let slot = self.slot;
        self.slot += 1;
        loop {
            let event = match self.pending.take() {
                Some(event) => event,
                None => match self.next_event() {
                    Some(event) => event,
                    None => return,
                },
            };
            if event.slot > slot {
                self.pending = Some(event);
                return;
            }
            assert!(
                event.slot == slot,
                "trace line {}: slot {} after slot {} (slots must be non-decreasing)",
                self.line,
                event.slot,
                slot.saturating_sub(1),
            );
            assert!(
                event.src < n && event.dst < n,
                "trace line {}: node id out of range for {n} processors",
                self.line,
            );
            assert!(
                event.src != event.dst,
                "trace line {}: processor {} sends to itself",
                self.line,
                event.src,
            );
            assert!(
                out[event.src].is_none(),
                "trace line {}: duplicate source {} in slot {slot}",
                self.line,
                event.src,
            );
            out[event.src] = Some(event.dst);
        }
    }

    /// Pulls lines until the next event or EOF.
    fn next_event(&mut self) -> Option<TraceEvent> {
        if self.exhausted {
            return None;
        }
        loop {
            self.buf.clear();
            let read = self
                .reader
                .read_line(&mut self.buf)
                .unwrap_or_else(|e| panic!("trace line {}: read failed: {e}", self.line + 1));
            if read == 0 {
                self.exhausted = true;
                return None;
            }
            self.line += 1;
            match parse_trace_line(&self.buf, self.line) {
                Ok(Some(event)) => return Some(event),
                Ok(None) => continue,
                Err(e) => panic!("{e}"),
            }
        }
    }
}

/// Parses one `.trc` line: `Ok(None)` for blanks and comments,
/// `Ok(Some(event))` for `slot src dst`.
fn parse_trace_line(line: &str, lineno: u64) -> Result<Option<TraceEvent>, TraceError> {
    let text = line.split('#').next().unwrap_or("").trim();
    if text.is_empty() {
        return Ok(None);
    }
    let mut fields = text.split_whitespace();
    let (Some(slot), Some(src), Some(dst), None) =
        (fields.next(), fields.next(), fields.next(), fields.next())
    else {
        return Err(TraceError::Syntax {
            line: lineno,
            detail: format!("expected `slot src dst`, got `{text}`"),
        });
    };
    let parse = |field: &str, name: &str| -> Result<u64, TraceError> {
        field.parse().map_err(|_| TraceError::Syntax {
            line: lineno,
            detail: format!("{name} `{field}` is not a non-negative integer"),
        })
    };
    Ok(Some(TraceEvent {
        slot: parse(slot, "slot")?,
        src: parse(src, "src")? as usize,
        dst: parse(dst, "dst")? as usize,
    }))
}

/// A violation of the `.trc` format, with the 1-based line it was found
/// on — the trace-side mirror of the `.scn` config errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The line is not `slot src dst` with non-negative integer fields.
    Syntax {
        /// 1-based line number.
        line: u64,
        /// What was wrong with the line.
        detail: String,
    },
    /// A node id is `>= n` for the network the trace was bound against.
    NodeOutOfRange {
        /// 1-based line number.
        line: u64,
        /// The offending node id.
        node: usize,
        /// The network's processor count.
        nodes: usize,
    },
    /// An event's slot is lower than its predecessor's.
    NonMonotonic {
        /// 1-based line number.
        line: u64,
        /// The offending slot.
        slot: u64,
        /// The slot of the preceding event.
        previous: u64,
    },
    /// An event sends a processor's message to itself.
    SelfAddressed {
        /// 1-based line number.
        line: u64,
        /// The processor addressing itself.
        node: usize,
    },
    /// Two events share a `(slot, src)` pair — a processor injects at most
    /// one message per slot.
    DuplicateSource {
        /// 1-based line number of the *second* event.
        line: u64,
        /// The slot both events share.
        slot: u64,
        /// The source both events share.
        src: usize,
    },
    /// The reader failed mid-validation.
    Io {
        /// 1-based line number being read when the failure occurred.
        line: u64,
        /// The I/O error rendered as text.
        detail: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Syntax { line, detail } => write!(f, "trace line {line}: {detail}"),
            TraceError::NodeOutOfRange { line, node, nodes } => write!(
                f,
                "trace line {line}: node {node} out of range for {nodes} processors"
            ),
            TraceError::NonMonotonic {
                line,
                slot,
                previous,
            } => write!(
                f,
                "trace line {line}: slot {slot} after slot {previous} (slots must be non-decreasing)"
            ),
            TraceError::SelfAddressed { line, node } => {
                write!(f, "trace line {line}: processor {node} sends to itself")
            }
            TraceError::DuplicateSource { line, slot, src } => write!(
                f,
                "trace line {line}: duplicate source {src} in slot {slot}"
            ),
            TraceError::Io { line, detail } => {
                write!(f, "trace line {line}: read failed: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Summary statistics gathered by the single [`validate_trace`] streaming
/// pass: the event count and the last (highest) slot any event lands in.
/// Everything a caller needs to derive the trace's mean offered load
/// without a second pass over the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of injection events in the trace.
    pub events: u64,
    /// The slot of the final event, `None` for an empty trace.  Replay
    /// spans slots `0..=last_slot` (slots are validated non-decreasing, so
    /// this is also the maximum).
    pub last_slot: Option<u64>,
}

impl TraceStats {
    /// The trace's mean offered load on an `n`-processor network:
    /// `events / ((last_slot + 1) · n)` injections per slot per node.  An
    /// empty trace offers load `0.0` (not `0/0`); always finite for
    /// `n >= 1`.
    pub fn offered_load(&self, n: usize) -> f64 {
        match self.last_slot {
            None => 0.0,
            Some(last) => self.events as f64 / ((last + 1) as f64 * n as f64),
        }
    }
}

/// Streams a `.trc` trace once and checks every event against the format
/// rules and an `n`-processor network: syntax, node ranges, non-decreasing
/// slots, no self-addressing, at most one event per `(slot, src)`.
/// Returns the event count and slot span as [`TraceStats`] on success;
/// memory is O(n) (the per-source slot stamps), independent of trace
/// length.
pub fn validate_trace<R: BufRead>(reader: R, n: usize) -> Result<TraceStats, TraceError> {
    let mut events = 0u64;
    let mut previous: Option<u64> = None;
    // stamps[src] = the last slot src injected in, offset by one so the
    // zero-fill means "never".
    let mut stamps = vec![0u64; n];
    let mut lineno = 0u64;
    for line in reader.lines() {
        lineno += 1;
        let line = line.map_err(|e| TraceError::Io {
            line: lineno,
            detail: e.to_string(),
        })?;
        let Some(event) = parse_trace_line(&line, lineno)? else {
            continue;
        };
        if let Some(previous) = previous {
            if event.slot < previous {
                return Err(TraceError::NonMonotonic {
                    line: lineno,
                    slot: event.slot,
                    previous,
                });
            }
        }
        previous = Some(event.slot);
        for node in [event.src, event.dst] {
            if node >= n {
                return Err(TraceError::NodeOutOfRange {
                    line: lineno,
                    node,
                    nodes: n,
                });
            }
        }
        if event.src == event.dst {
            return Err(TraceError::SelfAddressed {
                line: lineno,
                node: event.src,
            });
        }
        if stamps[event.src] == event.slot + 1 {
            return Err(TraceError::DuplicateSource {
                line: lineno,
                slot: event.slot,
                src: event.src,
            });
        }
        stamps[event.src] = event.slot + 1;
        events += 1;
    }
    Ok(TraceStats {
        events,
        last_slot: previous,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::io::Cursor;

    fn drive(source: &mut DemandSource, n: usize, slots: usize, seed: u64) -> Vec<Option<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut all = Vec::new();
        for _ in 0..slots {
            source.injections_into(n, &mut rng, &mut out);
            assert_eq!(out.len(), n);
            all.extend(out.iter().copied());
        }
        all
    }

    #[test]
    fn pattern_source_matches_the_pattern_verbatim() {
        let pattern = TrafficPattern::Uniform { load: 0.4 };
        let mut direct_rng = StdRng::seed_from_u64(9);
        let mut direct = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..50 {
            pattern.injections_into(12, &mut direct_rng, &mut direct);
            expected.extend(direct.iter().copied());
        }
        let mut source = DemandSpec::Pattern(pattern).source().unwrap();
        assert_eq!(drive(&mut source, 12, 50, 9), expected);
    }

    #[test]
    fn poisson_rate_matches_slot_probability() {
        let spec = DemandSpec::Poisson {
            rate: 0.5,
            dst: None,
        };
        let expected = 1.0 - (-0.5f64).exp();
        assert!((spec.offered_load() - expected).abs() < 1e-12);
        let (n, slots) = (40, 3000);
        let mut source = spec.source().unwrap();
        let all = drive(&mut source, n, slots, 3);
        let rate = all.iter().flatten().count() as f64 / (n * slots) as f64;
        assert!((rate - expected).abs() < 0.01, "measured {rate}");
        // Rates above 1 stay valid probabilities.
        let heavy = DemandSpec::Poisson {
            rate: 3.0,
            dst: None,
        };
        assert!(heavy.offered_load() < 1.0 && heavy.offered_load() > 0.95);
    }

    #[test]
    fn poisson_never_self_addresses_and_fixed_dst_silences_its_node() {
        let mut source = DemandSpec::Poisson {
            rate: 5.0,
            dst: None,
        }
        .source()
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut out = Vec::new();
        for _ in 0..100 {
            source.injections_into(10, &mut rng, &mut out);
            for (src, dst) in out.iter().enumerate() {
                assert_ne!(Some(src), *dst);
            }
        }
        let spec = DemandSpec::Poisson {
            rate: 5.0,
            dst: Some(3),
        };
        let mut source = spec.source().unwrap();
        for (src, dst) in drive(&mut source, 10, 100, 13).iter().enumerate() {
            if let Some(d) = dst {
                assert_eq!(*d, 3, "src {}", src % 10);
            }
        }
        let mut source = spec.source().unwrap();
        let all = drive(&mut source, 10, 100, 13);
        assert!(
            (0..100).all(|slot| all[slot * 10 + 3].is_none()),
            "the fixed destination never injects"
        );
        assert!(
            (spec.effective_load(10) - spec.offered_load() * 0.9).abs() < 1e-12,
            "effective load drops the silent node"
        );
    }

    #[test]
    fn onoff_duty_cycle_scales_the_rate() {
        let spec = DemandSpec::OnOff {
            rate: 0.8,
            burst_len: 5,
            idle_len: 15,
        };
        let p = 1.0 - (-0.8f64).exp();
        assert!((spec.offered_load() - p * 0.25).abs() < 1e-12);
        let (n, slots) = (40, 4000);
        let mut source = spec.source().unwrap();
        let all = drive(&mut source, n, slots, 5);
        let rate = all.iter().flatten().count() as f64 / (n * slots) as f64;
        assert!(
            (rate - spec.offered_load()).abs() < 0.01,
            "measured {rate}, expected {}",
            spec.offered_load()
        );
    }

    #[test]
    fn onoff_is_bursty_per_processor() {
        // With a long cycle, one processor's injections concentrate in ON
        // windows: consecutive-slot activity must far exceed the stationary
        // expectation for the same mean rate.
        let mut source = DemandSpec::OnOff {
            rate: 1.5,
            burst_len: 10,
            idle_len: 90,
        }
        .source()
        .unwrap();
        let n = 8;
        let slots = 2000;
        let all = drive(&mut source, n, slots, 7);
        let active: Vec<bool> = (0..slots).map(|s| all[s * n].is_some()).collect();
        let injections = active.iter().filter(|&&a| a).count();
        let adjacent = active.windows(2).filter(|w| w[0] && w[1]).count();
        assert!(injections > 50, "{injections} injections");
        // Stationary traffic at the same mean rate (~0.078) would make
        // P(next also active) ≈ 0.078; bursts push it near the ON-phase
        // probability (~0.78).
        let conditional = adjacent as f64 / injections as f64;
        assert!(conditional > 0.4, "conditional activity {conditional}");
    }

    #[test]
    fn mix_separates_elephants_from_mice() {
        let spec = DemandSpec::Mix {
            fraction: 0.25,
            elephant_rate: 2.0,
            mice_rate: 0.05,
        };
        let n = 16;
        let slots = 2000;
        let mut source = spec.source().unwrap();
        let all = drive(&mut source, n, slots, 17);
        let mut per_node = vec![0usize; n];
        for (i, dst) in all.iter().enumerate() {
            if dst.is_some() {
                per_node[i % n] += 1;
            }
        }
        let p_elephant = 1.0 - (-2.0f64).exp();
        let heavy = per_node
            .iter()
            .filter(|&&c| c as f64 / slots as f64 > p_elephant / 2.0)
            .count();
        assert_eq!(heavy, 4, "round(0.25 · 16) elephants: {per_node:?}");
        let total = per_node.iter().sum::<usize>() as f64 / (n * slots) as f64;
        assert!((total - spec.offered_load()).abs() < 0.02, "mean {total}");
    }

    #[test]
    fn stochastic_sources_reproduce_per_seed() {
        for spec in [
            DemandSpec::Poisson {
                rate: 0.4,
                dst: None,
            },
            DemandSpec::OnOff {
                rate: 0.9,
                burst_len: 4,
                idle_len: 6,
            },
            DemandSpec::Mix {
                fraction: 0.3,
                elephant_rate: 1.2,
                mice_rate: 0.1,
            },
        ] {
            let mut a = spec.source().unwrap();
            let mut b = spec.source().unwrap();
            assert_eq!(
                drive(&mut a, 10, 200, 23),
                drive(&mut b, 10, 200, 23),
                "{spec:?} must be deterministic per seed"
            );
            let mut c = spec.source().unwrap();
            assert_ne!(
                drive(&mut b, 10, 200, 23),
                drive(&mut c, 10, 200, 24),
                "{spec:?} must vary with the seed"
            );
        }
    }

    #[test]
    fn nan_and_negative_rates_saturate_to_silence() {
        for spec in [
            DemandSpec::Poisson {
                rate: f64::NAN,
                dst: None,
            },
            DemandSpec::Poisson {
                rate: -1.0,
                dst: None,
            },
            DemandSpec::OnOff {
                rate: f64::NAN,
                burst_len: 2,
                idle_len: 2,
            },
            DemandSpec::Mix {
                fraction: f64::NAN,
                elephant_rate: f64::NAN,
                mice_rate: -2.0,
            },
        ] {
            assert_eq!(spec.offered_load(), 0.0, "{spec:?}");
            let mut source = spec.source().unwrap();
            assert!(
                drive(&mut source, 8, 100, 3).iter().all(|d| d.is_none()),
                "{spec:?} must inject nothing"
            );
        }
    }

    #[test]
    fn tiny_networks_inject_nothing() {
        for spec in [
            DemandSpec::Poisson {
                rate: 5.0,
                dst: None,
            },
            DemandSpec::OnOff {
                rate: 5.0,
                burst_len: 2,
                idle_len: 1,
            },
            DemandSpec::Mix {
                fraction: 0.5,
                elephant_rate: 5.0,
                mice_rate: 5.0,
            },
        ] {
            let mut source = spec.source().unwrap();
            assert!(drive(&mut source, 1, 20, 3).iter().all(|d| d.is_none()));
            let mut source = spec.source().unwrap();
            assert!(drive(&mut source, 0, 20, 3).is_empty());
        }
    }

    #[test]
    fn trace_replay_serves_events_at_their_slots() {
        let text = "\
# demand for a 4-processor run
0 0 1
0 2 3   # trailing comment
2 1 0

3 3 2
3 0 2
";
        let mut replay = TraceReplay::new(Cursor::new(text));
        let mut out = Vec::new();
        replay.injections_into(4, &mut out);
        assert_eq!(out, vec![Some(1), None, Some(3), None]);
        replay.injections_into(4, &mut out);
        assert_eq!(out, vec![None; 4]);
        replay.injections_into(4, &mut out);
        assert_eq!(out, vec![None, Some(0), None, None]);
        replay.injections_into(4, &mut out);
        assert_eq!(out, vec![Some(2), None, None, Some(2)]);
        // Past the end: silence forever.
        for _ in 0..3 {
            replay.injections_into(4, &mut out);
            assert_eq!(out, vec![None; 4]);
        }
    }

    /// An unbounded synthetic trace: generates `slot src dst` lines on the
    /// fly, so reading it eagerly would never terminate — only a lazy
    /// replay can consume it.
    struct SyntheticTrace {
        next_slot: u64,
        carry: Vec<u8>,
    }

    impl io::Read for SyntheticTrace {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.carry.is_empty() {
                let slot = self.next_slot;
                self.next_slot += 1;
                self.carry = format!("{slot} {} {}\n", slot % 7, (slot + 1) % 7).into_bytes();
            }
            let take = self.carry.len().min(buf.len());
            buf[..take].copy_from_slice(&self.carry[..take]);
            self.carry.drain(..take);
            Ok(take)
        }
    }

    #[test]
    fn trace_replay_is_lazy_and_bounded() {
        // One event per slot, forever.  Serving 100 slots must read ~101
        // lines (the served events plus one lookahead), no matter that the
        // trace never ends.
        let mut replay = TraceReplay::new(io::BufReader::new(SyntheticTrace {
            next_slot: 0,
            carry: Vec::new(),
        }));
        let mut out = Vec::new();
        for slot in 0..100u64 {
            replay.injections_into(7, &mut out);
            let src = (slot % 7) as usize;
            assert_eq!(out[src], Some(((slot + 1) % 7) as usize));
            assert_eq!(out.iter().flatten().count(), 1);
        }
        assert_eq!(
            replay.lines_consumed(),
            101,
            "replay must stay one lookahead line ahead of the served slot"
        );
    }

    #[test]
    fn validate_accepts_the_format_and_counts_events() {
        let text = "# header\n0 0 1\n0 1 0\n5 2 0\n\n5 0 2 # ok\n";
        let stats = validate_trace(Cursor::new(text), 3).unwrap();
        assert_eq!(
            stats,
            TraceStats {
                events: 4,
                last_slot: Some(5),
            }
        );
        // 4 events over slots 0..=5 on 3 nodes.
        assert_eq!(stats.offered_load(3), 4.0 / 18.0);
        let empty = validate_trace(Cursor::new(""), 3).unwrap();
        assert_eq!(
            empty,
            TraceStats {
                events: 0,
                last_slot: None,
            }
        );
        // An empty trace offers a defined load of zero, not 0/0.
        assert_eq!(empty.offered_load(3), 0.0);
    }

    #[test]
    fn validate_reports_line_numbered_errors() {
        let cases: [(&str, TraceError); 7] = [
            (
                "0 0 1\n1 2\n",
                TraceError::Syntax {
                    line: 2,
                    detail: "expected `slot src dst`, got `1 2`".into(),
                },
            ),
            (
                "0 0 1\nnot 0 1\n",
                TraceError::Syntax {
                    line: 2,
                    detail: "slot `not` is not a non-negative integer".into(),
                },
            ),
            (
                "0 0 1\n1 0 -2\n",
                TraceError::Syntax {
                    line: 2,
                    detail: "dst `-2` is not a non-negative integer".into(),
                },
            ),
            (
                "# ok\n0 0 9\n",
                TraceError::NodeOutOfRange {
                    line: 2,
                    node: 9,
                    nodes: 4,
                },
            ),
            (
                "3 0 1\n2 1 0\n",
                TraceError::NonMonotonic {
                    line: 2,
                    slot: 2,
                    previous: 3,
                },
            ),
            ("0 2 2\n", TraceError::SelfAddressed { line: 1, node: 2 }),
            (
                "0 1 2\n0 1 3\n",
                TraceError::DuplicateSource {
                    line: 2,
                    slot: 0,
                    src: 1,
                },
            ),
        ];
        for (text, expected) in cases {
            let err = validate_trace(Cursor::new(text), 4).unwrap_err();
            assert_eq!(err, expected, "{text:?}");
            assert!(err.to_string().contains("line"), "{err}");
        }
    }

    #[test]
    fn validate_allows_distinct_sources_and_source_reuse_across_slots() {
        let text = "0 1 2\n0 2 1\n1 1 2\n";
        assert_eq!(validate_trace(Cursor::new(text), 3).unwrap().events, 3);
    }

    #[test]
    fn trace_spec_loads_are_undefined_until_measured() {
        let spec = DemandSpec::Trace {
            path: "whatever.trc".into(),
            offered_load: None,
        };
        assert!(spec.offered_load().is_nan());
        assert!(spec.effective_load(8).is_nan());
        // Once the bind-time pass has measured the file, the spec reports
        // the measured mean — and what the replay injects is exactly what
        // enters the network, so offered and effective coincide.
        let bound = DemandSpec::Trace {
            path: "whatever.trc".into(),
            offered_load: Some(0.125),
        };
        assert_eq!(bound.offered_load(), 0.125);
        assert_eq!(bound.effective_load(8), 0.125);
        assert_eq!(bound.effective_load(1), 0.125);
        // Finite loads keep the derived equality reflexive.
        assert_eq!(bound, bound.clone());
    }

    #[test]
    fn matched_on_off_offers_the_poisson_mean_exactly() {
        for (mean, burst, idle) in [(0.25, 16, 48), (0.1, 4, 4), (0.002, 1, 99), (0.6, 32, 8)] {
            let poisson = DemandSpec::Poisson {
                rate: mean,
                dst: None,
            };
            let matched = DemandSpec::matched_on_off(mean, burst, idle);
            let gap = (matched.offered_load() - poisson.offered_load()).abs();
            assert!(
                gap < 1e-15,
                "matched_on_off({mean},{burst},{idle}) offers {} vs poisson's {}",
                matched.offered_load(),
                poisson.offered_load()
            );
            // The burst-phase rate really is hotter than the mean.
            match matched {
                DemandSpec::OnOff { rate, .. } => assert!(rate > mean),
                _ => unreachable!(),
            }
        }
        // A zero mean matches trivially with a silent burst phase.
        assert_eq!(matched_burst_rate(0.0, 16, 48), 0.0);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn matched_on_off_refuses_unreachable_means() {
        // p = 1 − e^(−2) ≈ 0.86 against a 1/10 duty cycle needs an ON-phase
        // injection probability of 8.6 — impossible.
        matched_burst_rate(2.0, 1, 9);
    }

    #[test]
    fn trace_spec_source_opens_the_file() {
        let missing = DemandSpec::Trace {
            path: "/nonexistent/demand.trc".into(),
            offered_load: None,
        };
        assert!(missing.source().is_err());
    }
}
