//! Per-coupler arbitration policies.
//!
//! A single-wavelength OPS coupler carries one message per slot.  When
//! several processors of its tail have a message queued for it, an
//! arbitration policy decides which one transmits — the "distributed
//! control" aspect the POPS and stack-Kautz papers (refs [9], [11]) devote
//! considerable attention to.  The simulator treats the policy as a pluggable
//! rule over the set of competing (processor, message-age) pairs.

use rand::Rng;

/// Who gets the coupler this slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbitrationPolicy {
    /// Rotating priority per coupler: the winner of the previous grant gets
    /// lowest priority next time (starvation-free TDMA-like behaviour).
    RoundRobin,
    /// The message that has been waiting longest (globally oldest) wins —
    /// an idealised age-based priority scheme.
    OldestFirst,
    /// A uniformly random competitor wins (models simple optical contention
    /// resolution).
    Random,
}

impl ArbitrationPolicy {
    /// Chooses a winner among `candidates`, each described by
    /// `(processor, message created slot)`.  `last_winner` is the processor
    /// that won the previous grant on this coupler, used by round-robin.
    /// Returns the index *within `candidates`* of the winner, or `None` when
    /// there are no candidates.
    pub fn pick<R: Rng>(
        &self,
        candidates: &[(usize, u64)],
        last_winner: Option<usize>,
        rng: &mut R,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            ArbitrationPolicy::Random => Some(rng.gen_range(0..candidates.len())),
            ArbitrationPolicy::OldestFirst => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &(proc_id, created))| (created, proc_id))
                .map(|(i, _)| i),
            ArbitrationPolicy::RoundRobin => {
                // Lowest processor id strictly greater than last_winner wins;
                // wrap around when none is greater.
                let pivot = last_winner.map(|w| w + 1).unwrap_or(0);
                let mut best: Option<(usize, usize)> = None; // (key, index)
                for (i, &(proc_id, _)) in candidates.iter().enumerate() {
                    let key = if proc_id >= pivot {
                        proc_id - pivot
                    } else {
                        proc_id + usize::MAX / 2 - pivot.min(usize::MAX / 2)
                    };
                    if best.is_none_or(|(bk, _)| key < bk) {
                        best = Some((key, i));
                    }
                }
                best.map(|(_, i)| i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_candidates() {
        let mut rng = StdRng::seed_from_u64(0);
        for policy in [
            ArbitrationPolicy::RoundRobin,
            ArbitrationPolicy::OldestFirst,
            ArbitrationPolicy::Random,
        ] {
            assert_eq!(policy.pick(&[], None, &mut rng), None);
        }
    }

    #[test]
    fn oldest_first_prefers_smallest_creation_slot() {
        let mut rng = StdRng::seed_from_u64(0);
        let candidates = vec![(3, 10), (7, 4), (1, 9)];
        let winner = ArbitrationPolicy::OldestFirst
            .pick(&candidates, None, &mut rng)
            .unwrap();
        assert_eq!(winner, 1);
    }

    #[test]
    fn round_robin_rotates() {
        let mut rng = StdRng::seed_from_u64(0);
        let candidates = vec![(0, 5), (2, 5), (5, 5)];
        // No previous winner: lowest id wins.
        let w0 = ArbitrationPolicy::RoundRobin
            .pick(&candidates, None, &mut rng)
            .unwrap();
        assert_eq!(candidates[w0].0, 0);
        // Previous winner 0: the next id (2) wins.
        let w1 = ArbitrationPolicy::RoundRobin
            .pick(&candidates, Some(0), &mut rng)
            .unwrap();
        assert_eq!(candidates[w1].0, 2);
        // Previous winner 5 (the largest): wrap around to 0.
        let w2 = ArbitrationPolicy::RoundRobin
            .pick(&candidates, Some(5), &mut rng)
            .unwrap();
        assert_eq!(candidates[w2].0, 0);
    }

    #[test]
    fn random_is_always_a_valid_index() {
        let mut rng = StdRng::seed_from_u64(42);
        let candidates = vec![(0, 1), (1, 1), (2, 1), (3, 1)];
        for _ in 0..100 {
            let w = ArbitrationPolicy::Random
                .pick(&candidates, None, &mut rng)
                .unwrap();
            assert!(w < candidates.len());
        }
    }

    #[test]
    fn random_eventually_picks_everyone() {
        let mut rng = StdRng::seed_from_u64(9);
        let candidates = vec![(0, 1), (1, 1), (2, 1)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(
                ArbitrationPolicy::Random
                    .pick(&candidates, None, &mut rng)
                    .unwrap(),
            );
        }
        assert_eq!(seen.len(), 3);
    }
}
