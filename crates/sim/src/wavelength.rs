//! Wavelength-layer configuration shared by both simulation kernels.
//!
//! The paper models each OPS coupler (and each point-to-point link) as a
//! capacity-1 optical channel: one message per slot.  Real OTIS-class
//! lightwave networks multiplex `W` wavelengths per channel, which turns the
//! simulator from a topology checker into a capacity-planning tool: at
//! `W > 1` a channel carries up to `W` messages per slot, contention shows
//! up as a *blocking ratio* instead of queueing delay, and alternate routes
//! absorb part of the overflow.
//!
//! [`WavelengthConfig`] selects the capacity and the wavelength-assignment
//! discipline.  The default (`count = 1`, first-fit) leaves both kernels on
//! their legacy capacity-1 slot loops, byte-identical to previous releases;
//! the wavelength-mode loops only engage at `count > 1` (or, for the
//! multi-OPS kernel, when alternate routes were prepared).

/// How a free wavelength is chosen on a channel with spare capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WavelengthAssignment {
    /// Lowest-indexed free wavelength — deterministic, draws no randomness,
    /// and matches the first-fit discipline of classical RWA studies.
    #[default]
    FirstFit,
    /// Uniformly random free wavelength; draws one value from the run's
    /// seeded RNG stream per grant.
    Random,
}

/// Wavelength capacity of every channel of a simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WavelengthConfig {
    /// Wavelengths multiplexed per channel (per coupler for multi-OPS
    /// networks, per link for point-to-point ones).  Must be at least 1;
    /// `1` selects the legacy capacity-1 slot loop.
    pub count: usize,
    /// Assignment discipline for picking among free wavelengths.
    pub assignment: WavelengthAssignment,
}

impl Default for WavelengthConfig {
    /// Capacity 1, first-fit: the paper's single-wavelength model.
    fn default() -> Self {
        WavelengthConfig {
            count: 1,
            assignment: WavelengthAssignment::FirstFit,
        }
    }
}

impl WavelengthConfig {
    /// A first-fit configuration with the given wavelength count.
    pub fn with_count(count: usize) -> Self {
        WavelengthConfig {
            count,
            ..Default::default()
        }
    }

    /// Whether this configuration multiplexes more than one wavelength.
    pub fn is_multiplexed(&self) -> bool {
        self.count > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_legacy_capacity_one_model() {
        let c = WavelengthConfig::default();
        assert_eq!(c.count, 1);
        assert_eq!(c.assignment, WavelengthAssignment::FirstFit);
        assert!(!c.is_multiplexed());
    }

    #[test]
    fn with_count_keeps_first_fit() {
        let c = WavelengthConfig::with_count(8);
        assert_eq!(c.count, 8);
        assert_eq!(c.assignment, WavelengthAssignment::FirstFit);
        assert!(c.is_multiplexed());
    }
}
