//! The scenario config-file format: one declarative file describes an
//! entire `(spec × workload × seed × fault)` study.
//!
//! The format is deliberately small and line-oriented (the workspace is
//! offline — no serde): one `key value` pair per line, `#` starts a comment,
//! blank lines are ignored.  List values are comma-separated, split on the
//! commas *between* entries (commas inside parentheses belong to the spec):
//!
//! ```text
//! # examples/sweep.scn — hotspot and permutation study with a fault sweep
//! specs     SK(4,2,2), POPS(4,6), DB(2,5)
//! workloads uniform(0.2), perm(0.5,7), hotspot(0.4,0,0.2)
//! seeds     42
//! slots     300
//! faults    1
//! threads   4
//! ```
//!
//! | key                   | value                                             |
//! |-----------------------|---------------------------------------------------|
//! | `spec` / `specs`      | network specs, appended across lines              |
//! | `workload`/`workloads`| workload specs, appended across lines — stationary patterns (`uniform(0.2)`, `perm(0.5,7)`, `hotspot(0.4,0,0.2)`, `transpose(0.5)`, `bitrev(0.5)`) or demand processes (`poisson(0.3)`, `poisson(0.3,0)`, `onoff(0.6,16,48)`, `mix(0.1,0.9,0.05)`, `trace(file.trc)`) |
//! | `load` / `loads`      | offered loads — sugar for uniform workloads       |
//! | `seed` / `seeds`      | random seeds, appended across lines               |
//! | `slots`               | slots simulated per cell (scalar, once)           |
//! | `faults`              | sweep the nested fault patterns `{}`, `{0}`, …, `{0..N−1}` (scalar, once) |
//! | `fault_schedule` / `fault_schedules` | fault timelines to sweep, e.g. `fail(node 3)@32; recover@96` — `none` is the static entry (list, appended across lines; default `none`) |
//! | `wavelengths`         | wavelength counts to sweep (list, each ≥ 1; default `1`) |
//! | `alt_paths`           | routes tried per hop in wavelength mode: primary + Yen alternates (scalar, once; default `1`) |
//! | `threads`             | worker threads (scalar, once; results are thread-count independent) |
//! | `format`              | result format: `table`, `csv` or `jsonl` (scalar, once) |
//! | `output`              | file the results stream to (scalar, once; default stdout) |
//!
//! [`parse_scenario_config`] returns a ready-to-run [`ScenarioGrid`] plus
//! the optional thread count, output format and output path; every
//! malformed line is a typed [`ConfigError`] carrying its line number.
//! Results stream row by row (`otis_net::engine::run_grid_streaming`), so a
//! study's memory use does not grow with its cell count.

use crate::engine::ScenarioGrid;
use crate::sink::OutputFormat;
use crate::spec::NetworkSpec;
use crate::traffic_spec::TrafficSpec;
use otis_routing::FaultSet;
use otis_sim::FaultSchedule;
use std::fmt;

/// A parsed scenario config file: the grid it declares, plus the execution
/// preferences that are not part of the grid itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// The declared `(spec × workload × seed × fault)` grid.
    pub grid: ScenarioGrid,
    /// Worker threads, when the file pins them (`None` = caller's choice).
    pub threads: Option<usize>,
    /// Result format, when the file pins it (`None` = caller's choice,
    /// normally the table).
    pub format: Option<OutputFormat>,
    /// File the results stream to, when the file pins one (`None` = the
    /// caller's writer, normally stdout).
    pub output: Option<String>,
}

/// Why a scenario config file could not be parsed.  Every variant carries
/// the 1-based line number of the offending line.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A line has a key but no value.
    MissingValue {
        /// 1-based line number.
        line: usize,
        /// The key without a value.
        key: String,
    },
    /// A line's key is not one of the supported ones.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unrecognised key.
        key: String,
    },
    /// A scalar key (`slots`, `faults`, `threads`) appeared twice.
    DuplicateKey {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated key.
        key: String,
    },
    /// A value did not parse; `detail` is the underlying parser's message.
    Value {
        /// 1-based line number.
        line: usize,
        /// The key whose value failed.
        key: String,
        /// The underlying error, rendered.
        detail: String,
    },
    /// The file declares no specs or no workloads — a zero-cell study is
    /// almost certainly a mistake, so it is refused.
    EmptyAxis {
        /// Which axis is empty (`"specs"` or `"workloads"`).
        axis: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MissingValue { line, key } => {
                write!(f, "line {line}: key '{key}' has no value")
            }
            ConfigError::UnknownKey { line, key } => write!(
                f,
                "line {line}: unknown key '{key}' (supported: spec(s), \
                 workload(s), load(s), seed(s), slots, faults, \
                 fault_schedule(s), wavelengths, alt_paths, threads, format, \
                 output)"
            ),
            ConfigError::DuplicateKey { line, key } => {
                write!(f, "line {line}: key '{key}' was already set")
            }
            ConfigError::Value { line, key, detail } => {
                write!(f, "line {line}: bad {key} value: {detail}")
            }
            ConfigError::EmptyAxis { axis } => {
                write!(
                    f,
                    "the file declares no {axis}: the grid would have zero cells"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Installs a once-only value, refusing a repeated key with the line-number
/// carrying [`ConfigError::DuplicateKey`].
fn set_once<T>(slot: &mut Option<T>, value: T, line: usize, key: &str) -> Result<(), ConfigError> {
    if slot.is_some() {
        return Err(ConfigError::DuplicateKey {
            line,
            key: key.to_string(),
        });
    }
    *slot = Some(value);
    Ok(())
}

/// Splits a comma-separated list on the commas *between* entries, not the
/// ones inside parentheses: `"SK(4,2,2), POPS(4,6)"` →
/// `["SK(4,2,2)", "POPS(4,6)"]`.  Entries come back trimmed.
pub fn split_top_level(value: &str) -> Vec<&str> {
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in value.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                entries.push(value[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    entries.push(value[start..].trim());
    entries
}

/// Parses the scenario config-file format (see the module docs for the
/// grammar) into a ready-to-run grid.
pub fn parse_scenario_config(text: &str) -> Result<ScenarioConfig, ConfigError> {
    let mut specs: Vec<NetworkSpec> = Vec::new();
    let mut workloads: Vec<TrafficSpec> = Vec::new();
    let mut seeds: Vec<u64> = Vec::new();
    let mut fault_schedules: Vec<FaultSchedule> = Vec::new();
    let mut wavelengths: Vec<usize> = Vec::new();
    let mut slots: Option<u64> = None;
    let mut faults: Option<u64> = None;
    let mut alt_paths: Option<u64> = None;
    let mut threads: Option<u64> = None;
    let mut format: Option<OutputFormat> = None;
    let mut output: Option<String> = None;

    for (index, raw) in text.lines().enumerate() {
        let line = index + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let (key, value) = match content.split_once(char::is_whitespace) {
            Some((key, value)) if !value.trim().is_empty() => (key, value.trim()),
            _ => {
                return Err(ConfigError::MissingValue {
                    line,
                    key: content.to_string(),
                })
            }
        };
        let value_error = |detail: String| ConfigError::Value {
            line,
            key: key.to_string(),
            detail,
        };
        // Parses and installs a once-only numeric key (`slots`, `faults`,
        // `threads`), refusing repeats.
        let scalar = |slot: &mut Option<u64>, raw: &str| -> Result<(), ConfigError> {
            let parsed = raw.parse::<u64>().map_err(|_| ConfigError::Value {
                line,
                key: key.to_string(),
                detail: format!("cannot parse '{raw}' as a count"),
            })?;
            set_once(slot, parsed, line, key)
        };
        match key.to_ascii_lowercase().as_str() {
            "spec" | "specs" => {
                for entry in split_top_level(value) {
                    specs.push(
                        entry
                            .parse::<NetworkSpec>()
                            .map_err(|e| value_error(e.to_string()))?,
                    );
                }
            }
            "workload" | "workloads" => {
                for entry in split_top_level(value) {
                    let workload = entry
                        .parse::<TrafficSpec>()
                        .map_err(|e| value_error(e.to_string()))?;
                    // A trace workload names a file the study will replay;
                    // checking it exists *here* turns a typo into a
                    // line-numbered error instead of a bind-time failure
                    // after the whole file parsed.  (Content validation —
                    // node ids against N, monotonic slots — still happens
                    // at bind time, where the network size is known.)
                    if let TrafficSpec::Trace { ref path } = workload {
                        if !std::path::Path::new(path).is_file() {
                            return Err(value_error(format!("trace file '{path}' does not exist")));
                        }
                    }
                    workloads.push(workload);
                }
            }
            "load" | "loads" => {
                for entry in split_top_level(value) {
                    let load = entry
                        .parse::<f64>()
                        .map_err(|_| value_error(format!("cannot parse '{entry}' as a load")))?;
                    let spec = TrafficSpec::Uniform { load };
                    spec.validate().map_err(|e| value_error(e.to_string()))?;
                    workloads.push(spec);
                }
            }
            "seed" | "seeds" => {
                for entry in split_top_level(value) {
                    seeds.push(
                        entry.parse::<u64>().map_err(|_| {
                            value_error(format!("cannot parse '{entry}' as a seed"))
                        })?,
                    );
                }
            }
            "fault_schedule" | "fault_schedules" => {
                for entry in split_top_level(value) {
                    fault_schedules.push(
                        entry
                            .parse::<FaultSchedule>()
                            .map_err(|e| value_error(e.to_string()))?,
                    );
                }
            }
            "wavelength" | "wavelengths" => {
                for entry in split_top_level(value) {
                    let count = entry.parse::<usize>().map_err(|_| {
                        value_error(format!("cannot parse '{entry}' as a wavelength count"))
                    })?;
                    if count == 0 {
                        return Err(value_error(
                            "wavelength counts must be at least 1".to_string(),
                        ));
                    }
                    wavelengths.push(count);
                }
            }
            "slots" => scalar(&mut slots, value)?,
            "faults" => scalar(&mut faults, value)?,
            "alt_paths" => {
                scalar(&mut alt_paths, value)?;
                if alt_paths == Some(0) {
                    return Err(value_error("alt_paths must be at least 1".to_string()));
                }
            }
            "threads" => scalar(&mut threads, value)?,
            "format" => {
                let parsed = value
                    .parse::<OutputFormat>()
                    .map_err(|e| value_error(e.to_string()))?;
                set_once(&mut format, parsed, line, key)?;
            }
            "output" => set_once(&mut output, value.to_string(), line, key)?,
            other => {
                return Err(ConfigError::UnknownKey {
                    line,
                    key: other.to_string(),
                })
            }
        }
    }

    if specs.is_empty() {
        return Err(ConfigError::EmptyAxis { axis: "specs" });
    }
    if workloads.is_empty() {
        return Err(ConfigError::EmptyAxis { axis: "workloads" });
    }

    let mut grid = ScenarioGrid::new(specs).workloads(workloads);
    if !seeds.is_empty() {
        grid.seeds = seeds;
    }
    if let Some(slots) = slots {
        grid.options.slots = slots;
    }
    if let Some(faults) = faults {
        grid.fault_sets = (0..=faults as usize)
            .map(|count| FaultSet::from_nodes(0..count))
            .collect();
    }
    if !fault_schedules.is_empty() {
        grid.fault_schedules = fault_schedules;
    }
    if !wavelengths.is_empty() {
        grid.wavelengths = wavelengths;
    }
    if let Some(alt_paths) = alt_paths {
        grid.options.alt_paths = alt_paths as usize;
    }
    Ok(ScenarioConfig {
        grid,
        threads: threads.map(|t| t as usize),
        format,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SWEEP: &str = "\
# a full study in one file
specs     SK(4,2,2), POPS(4,6)   # trailing comments are fine
spec      DB(2,5)
workloads uniform(0.2), perm(0.5,7)
workload  hotspot(0.4,0,0.2)
seeds     42, 43
slots     300
faults    1
threads   4
";

    #[test]
    fn parses_a_full_study() {
        let config = parse_scenario_config(SWEEP).unwrap();
        assert_eq!(config.threads, Some(4));
        // The file pins neither format nor output: the caller chooses.
        assert_eq!(config.format, None);
        assert_eq!(config.output, None);
        let grid = &config.grid;
        assert_eq!(grid.specs.len(), 3);
        assert_eq!(grid.specs[2], "DB(2,5)".parse().unwrap());
        assert_eq!(grid.workloads.len(), 3);
        assert_eq!(grid.workloads[2], "hotspot(0.4,0,0.2)".parse().unwrap());
        assert_eq!(grid.seeds, vec![42, 43]);
        assert_eq!(grid.options.slots, 300);
        // faults 1 sweeps the intact network plus the single fault {0}.
        assert_eq!(grid.fault_sets.len(), 2);
        assert!(grid.fault_sets[0].is_empty());
        assert_eq!(grid.fault_sets[1].sorted_nodes(), vec![0]);
        assert_eq!(grid.cell_count(), 3 * 3 * 2 * 2);
        // The declared grid actually runs.
        let rows = grid.run(2).unwrap();
        assert_eq!(rows.len(), grid.cell_count());
    }

    #[test]
    fn loads_key_is_uniform_sugar() {
        let config = parse_scenario_config("spec K(8)\nloads 0.1, 0.5\n").unwrap();
        assert_eq!(
            config.grid.workloads,
            vec![
                TrafficSpec::Uniform { load: 0.1 },
                TrafficSpec::Uniform { load: 0.5 }
            ]
        );
        assert_eq!(config.threads, None);
        // Defaults survive when the file does not set them.
        assert_eq!(config.grid.seeds.len(), 1);
        assert_eq!(config.grid.fault_sets.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_scenario_config("spec K(8)\nworkload gravity(1)\n").unwrap_err();
        assert!(matches!(err, ConfigError::Value { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");

        let err = parse_scenario_config("spec\n").unwrap_err();
        assert!(
            matches!(err, ConfigError::MissingValue { line: 1, .. }),
            "{err}"
        );

        let err = parse_scenario_config("spec K(8)\nload 0.2\ncolour blue\n").unwrap_err();
        assert!(
            matches!(err, ConfigError::UnknownKey { line: 3, .. }),
            "{err}"
        );

        let err = parse_scenario_config("spec K(8)\nload 0.2\nslots 10\nslots 20\n").unwrap_err();
        assert!(
            matches!(err, ConfigError::DuplicateKey { line: 4, .. }),
            "{err}"
        );

        // Out-of-range loads are refused with the traffic spec's message.
        let err = parse_scenario_config("spec K(8)\nload 1.5\n").unwrap_err();
        assert!(err.to_string().contains("[0, 1]"), "{err}");
    }

    #[test]
    fn demand_workloads_parse_and_bad_ones_carry_line_numbers() {
        // The demand grammar rides the workload key: stochastic processes
        // parse like any other spec.
        let config = parse_scenario_config(
            "spec DB(2,4)\nworkloads poisson(0.3), onoff(0.9,8,24)\nworkload mix(0.25,0.9,0.05)\n",
        )
        .unwrap();
        assert_eq!(config.grid.workloads.len(), 3);
        assert_eq!(
            config.grid.workloads[0],
            TrafficSpec::Poisson {
                rate: 0.3,
                dst: None
            }
        );
        // The declared grid actually runs.
        let rows = {
            let mut grid = config.grid;
            grid.options.slots = 40;
            grid.run(2).unwrap()
        };
        assert_eq!(rows.len(), 3);

        // Bad rates are refused where they are written, not at bind time.
        let err =
            parse_scenario_config("spec DB(2,4)\nload 0.2\nworkload poisson(-1)\n").unwrap_err();
        assert!(matches!(err, ConfigError::Value { line: 3, .. }), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
        let err = parse_scenario_config("spec DB(2,4)\nworkload onoff(NaN,8,24)\n").unwrap_err();
        assert!(matches!(err, ConfigError::Value { line: 2, .. }), "{err}");
        let err = parse_scenario_config("spec DB(2,4)\nworkload onoff(0.5,0,24)\n").unwrap_err();
        assert!(matches!(err, ConfigError::Value { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("burst"), "{err}");
        let err = parse_scenario_config("spec DB(2,4)\nworkload mix(1.5,0.9,0.05)\n").unwrap_err();
        assert!(matches!(err, ConfigError::Value { line: 2, .. }), "{err}");

        // A trace workload must name an existing file — a typo is a
        // line-numbered error before the study starts.
        let err =
            parse_scenario_config("spec DB(2,5)\nworkload trace(no_such_file.trc)\n").unwrap_err();
        assert!(matches!(err, ConfigError::Value { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("no_such_file.trc"), "{err}");
        assert!(err.to_string().contains("does not exist"), "{err}");

        // An existing trace parses; node ids against N stay a bind-time
        // check (the config file alone does not fix the network size).
        let path = std::env::temp_dir().join("otis_config_demand.trc");
        std::fs::write(&path, "0 1 2\n5 3 0\n").unwrap();
        let config = parse_scenario_config(&format!(
            "spec DB(2,4)\nworkload trace({})\n",
            path.display()
        ))
        .unwrap();
        assert!(config.grid.workloads[0].is_trace());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn format_and_output_keys_stream_the_study() {
        let config = parse_scenario_config(
            "spec K(8)\nload 0.2\nformat jsonl\noutput rows.jsonl  # a file\n",
        )
        .unwrap();
        assert_eq!(config.format, Some(OutputFormat::JsonLines));
        assert_eq!(config.output, Some("rows.jsonl".to_string()));

        let config = parse_scenario_config("spec K(8)\nload 0.2\nformat csv\n").unwrap();
        assert_eq!(config.format, Some(OutputFormat::Csv));
        assert_eq!(config.output, None);

        // Unknown formats carry the line number and the supported list.
        let err = parse_scenario_config("spec K(8)\nload 0.2\nformat yaml\n").unwrap_err();
        assert!(matches!(err, ConfigError::Value { line: 3, .. }), "{err}");
        assert!(err.to_string().contains("jsonl"), "{err}");

        // Scalars stay once-only.
        let err =
            parse_scenario_config("spec K(8)\nload 0.2\nformat csv\nformat table\n").unwrap_err();
        assert!(
            matches!(err, ConfigError::DuplicateKey { line: 4, .. }),
            "{err}"
        );
        let err =
            parse_scenario_config("spec K(8)\nload 0.2\noutput a.csv\noutput b.csv\n").unwrap_err();
        assert!(
            matches!(err, ConfigError::DuplicateKey { line: 4, .. }),
            "{err}"
        );
    }

    #[test]
    fn wavelength_keys_configure_the_layer() {
        let config =
            parse_scenario_config("spec SK(2,2,2)\nload 0.4\nwavelengths 1, 4, 16\nalt_paths 3\n")
                .unwrap();
        assert_eq!(config.grid.wavelengths, vec![1, 4, 16]);
        assert_eq!(config.grid.options.alt_paths, 3);
        assert!(config.grid.wavelength_layer_enabled());

        // Defaults keep the legacy capacity-1 layer off.
        let config = parse_scenario_config("spec K(8)\nload 0.2\n").unwrap();
        assert_eq!(config.grid.wavelengths, vec![1]);
        assert_eq!(config.grid.options.alt_paths, 1);
        assert!(!config.grid.wavelength_layer_enabled());

        // Zero counts are refused with line numbers, as is alt_paths 0.
        let err = parse_scenario_config("spec K(8)\nload 0.2\nwavelengths 2, 0\n").unwrap_err();
        assert!(matches!(err, ConfigError::Value { line: 3, .. }), "{err}");
        assert!(err.to_string().contains("at least 1"), "{err}");
        let err = parse_scenario_config("spec K(8)\nload 0.2\nalt_paths 0\n").unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        // alt_paths stays once-only.
        let err =
            parse_scenario_config("spec K(8)\nload 0.2\nalt_paths 2\nalt_paths 3\n").unwrap_err();
        assert!(
            matches!(err, ConfigError::DuplicateKey { line: 4, .. }),
            "{err}"
        );
    }

    #[test]
    fn fault_schedule_key_sets_the_timeline_axis() {
        let config = parse_scenario_config(
            "spec DB(2,4)\nload 0.3\nfault_schedules none, fail(node 3)@32; recover@96\n",
        )
        .unwrap();
        assert_eq!(config.grid.fault_schedules.len(), 2);
        assert!(config.grid.fault_schedules[0].is_empty());
        assert_eq!(
            config.grid.fault_schedules[1].to_string(),
            "fail(node 3)@32; recover@96"
        );
        assert!(config.grid.fault_schedule_enabled());

        // Appending across lines works like the other list keys.
        let config = parse_scenario_config(
            "spec DB(2,4)\nload 0.3\nfault_schedule fail(node 1)@10\nfault_schedule fail(node 2)@20\n",
        )
        .unwrap();
        assert_eq!(config.grid.fault_schedules.len(), 2);

        // The default keeps the axis static and the restoration tier off.
        let config = parse_scenario_config("spec DB(2,4)\nload 0.3\n").unwrap();
        assert_eq!(config.grid.fault_schedules.len(), 1);
        assert!(!config.grid.fault_schedule_enabled());

        // Malformed schedules are refused with line numbers.
        let err = parse_scenario_config("spec DB(2,4)\nload 0.3\nfault_schedule fail(node)@\n")
            .unwrap_err();
        assert!(matches!(err, ConfigError::Value { line: 3, .. }), "{err}");
    }

    #[test]
    fn empty_axes_are_refused() {
        let err = parse_scenario_config("load 0.2\n").unwrap_err();
        assert!(
            matches!(err, ConfigError::EmptyAxis { axis: "specs" }),
            "{err}"
        );
        let err = parse_scenario_config("spec K(8)\n").unwrap_err();
        assert!(
            matches!(err, ConfigError::EmptyAxis { axis: "workloads" }),
            "{err}"
        );
        // A fully-commented file has no axes either.
        assert!(parse_scenario_config("# nothing\n\n").is_err());
    }

    #[test]
    fn split_top_level_respects_parentheses() {
        assert_eq!(
            split_top_level("SK(4,2,2), POPS(4,6),DB(2,5)"),
            vec!["SK(4,2,2)", "POPS(4,6)", "DB(2,5)"]
        );
        assert_eq!(split_top_level("uniform(0.2)"), vec!["uniform(0.2)"]);
        assert_eq!(split_top_level("a, b"), vec!["a", "b"]);
    }
}
