//! The workload specification language.
//!
//! The paper's throughput and latency claims are made under *traffic*, not
//! just an offered-load scalar, so workloads get the same first-class
//! treatment as networks: [`TrafficSpec`] is the parsed, validated form of a
//! short workload string, mirroring [`crate::NetworkSpec`]'s
//! `FromStr`/`Display` round-trip discipline:
//!
//! * `"uniform(0.3)"` — uniform destinations at load 0.3;
//! * `"perm(0.5,7)"` — the static shift permutation `dst = src + 7 mod N`;
//! * `"hotspot(0.4,0,0.2)"` — uniform background with 20% of non-hot
//!   sources' messages aimed at processor 0;
//! * `"transpose(0.5)"` — matrix transpose on a square grid (`N = m²`);
//! * `"bitrev(0.5)"` — bit-reversal on a power-of-two network.
//!
//! Parsing rejects malformed values with typed [`TrafficError`]s — `NaN` or
//! negative loads, loads above 1, out-of-range hotspot fractions — so a bad
//! workload never reaches a simulator.  Topology preconditions (transpose
//! needs a square processor count, bit-reversal a power of two, a hotspot
//! needs its hot node to exist) are checked at *bind* time by
//! [`TrafficSpec::bind`], which turns the spec into an
//! [`otis_sim::TrafficPattern`] for one concrete network size — refusing
//! with a typed error instead of silently degrading.

use otis_sim::TrafficPattern;
use std::fmt;
use std::str::FromStr;

/// A parsed, validated workload specification.
///
/// Construction through [`FromStr`] guarantees every load is finite and in
/// `[0, 1]` and every hotspot fraction is in `[0, 1]`; directly-constructed
/// values are re-checked by [`TrafficSpec::validate`] /
/// [`TrafficSpec::bind`] before they reach a simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficSpec {
    /// `uniform(load)` — destinations uniform among the other processors.
    Uniform {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
    },
    /// `perm(load,offset)` — the static shift permutation
    /// `dst = (src + offset) mod N`.
    Permutation {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
        /// The shift of the permutation.
        offset: usize,
    },
    /// `hotspot(load,node,fraction)` — uniform background traffic with a
    /// fraction of every non-hot source's messages aimed at `hot_node` (see
    /// [`otis_sim::TrafficPattern::Hotspot`] for the exact semantics).
    Hotspot {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
        /// The hot destination; must exist in the bound network.
        hot_node: usize,
        /// Probability that a non-hot source's message targets `hot_node`,
        /// in `[0, 1]`.
        hot_fraction: f64,
    },
    /// `transpose(load)` — matrix transpose on a square processor grid;
    /// binding requires `N = m²`.
    Transpose {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
    },
    /// `bitrev(load)` — bit-reversal; binding requires `N = 2^b`.
    BitReversal {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
    },
}

/// Why a workload string could not be parsed, or a parsed workload could not
/// be bound to a network.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// The input does not match `pattern(arg, ...)`.
    Syntax {
        /// The offending input.
        input: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The pattern mnemonic is not one of the supported ones.
    UnknownPattern {
        /// The offending input.
        input: String,
        /// The unrecognised mnemonic.
        pattern: String,
    },
    /// The pattern exists but was given the wrong number of arguments.
    Arity {
        /// The offending input.
        input: String,
        /// The pattern mnemonic.
        pattern: String,
        /// Human-readable expected signature.
        expected: &'static str,
        /// Number of arguments received.
        got: usize,
    },
    /// A load is `NaN`, infinite, negative or above 1 — it is an injection
    /// probability and must lie in `[0, 1]`.
    LoadOutOfRange {
        /// The rendered workload (or the raw input while parsing).
        spec: String,
        /// The offending value, rendered (so `NaN` survives the trip).
        value: String,
    },
    /// A hotspot fraction is `NaN`, infinite, negative or above 1.
    HotFractionOutOfRange {
        /// The rendered workload (or the raw input while parsing).
        spec: String,
        /// The offending value, rendered.
        value: String,
    },
    /// The hotspot's hot node does not exist in the bound network.
    HotNodeOutOfRange {
        /// The rendered workload.
        spec: String,
        /// The requested hot node.
        hot_node: usize,
        /// The bound network's processor count.
        nodes: usize,
    },
    /// Transpose traffic bound to a network whose processor count is not a
    /// perfect square.
    NotSquare {
        /// The rendered workload.
        spec: String,
        /// The bound network's processor count.
        nodes: usize,
    },
    /// Bit-reversal traffic bound to a network whose processor count is not
    /// a power of two.
    NotPowerOfTwo {
        /// The rendered workload.
        spec: String,
        /// The bound network's processor count.
        nodes: usize,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::Syntax { input, reason } => {
                write!(f, "cannot parse workload '{input}': {reason}")
            }
            TrafficError::UnknownPattern { input, pattern } => write!(
                f,
                "unknown traffic pattern '{pattern}' in '{input}' \
                 (supported: uniform, perm, hotspot, transpose, bitrev)"
            ),
            TrafficError::Arity {
                input,
                pattern,
                expected,
                got,
            } => write!(
                f,
                "wrong number of arguments for {pattern} in '{input}': \
                 expected {expected}, got {got}"
            ),
            TrafficError::LoadOutOfRange { spec, value } => write!(
                f,
                "load {value} in '{spec}' is out of range: loads are injection \
                 probabilities in [0, 1]"
            ),
            TrafficError::HotFractionOutOfRange { spec, value } => write!(
                f,
                "hotspot fraction {value} in '{spec}' is out of range: \
                 fractions lie in [0, 1]"
            ),
            TrafficError::HotNodeOutOfRange {
                spec,
                hot_node,
                nodes,
            } => write!(
                f,
                "hot node {hot_node} in '{spec}' does not exist: the network \
                 has {nodes} processors"
            ),
            TrafficError::NotSquare { spec, nodes } => write!(
                f,
                "'{spec}' needs a square processor count, but the network has \
                 {nodes} processors"
            ),
            TrafficError::NotPowerOfTwo { spec, nodes } => write!(
                f,
                "'{spec}' needs a power-of-two processor count, but the \
                 network has {nodes} processors"
            ),
        }
    }
}

impl std::error::Error for TrafficError {}

impl TrafficSpec {
    /// The pattern mnemonic used in the workload syntax (`"uniform"`,
    /// `"perm"`, …).
    pub fn pattern_name(&self) -> &'static str {
        match self {
            TrafficSpec::Uniform { .. } => "uniform",
            TrafficSpec::Permutation { .. } => "perm",
            TrafficSpec::Hotspot { .. } => "hotspot",
            TrafficSpec::Transpose { .. } => "transpose",
            TrafficSpec::BitReversal { .. } => "bitrev",
        }
    }

    /// The nominal offered load (messages per processor per slot).
    pub fn offered_load(&self) -> f64 {
        match *self {
            TrafficSpec::Uniform { load }
            | TrafficSpec::Permutation { load, .. }
            | TrafficSpec::Hotspot { load, .. }
            | TrafficSpec::Transpose { load }
            | TrafficSpec::BitReversal { load } => load,
        }
    }

    /// The load that actually enters an `n`-processor network once pattern
    /// fixed points are accounted for; see
    /// [`otis_sim::TrafficPattern::effective_load`].
    pub fn effective_load(&self, n: usize) -> f64 {
        self.as_pattern().effective_load(n)
    }

    /// Checks the value ranges that do not depend on a network: loads and
    /// hotspot fractions must be finite and in `[0, 1]`.  Parsing performs
    /// these checks already; this re-validates directly-constructed values.
    pub fn validate(&self) -> Result<(), TrafficError> {
        let load = self.offered_load();
        if !(0.0..=1.0).contains(&load) {
            return Err(TrafficError::LoadOutOfRange {
                spec: self.to_string(),
                value: load.to_string(),
            });
        }
        if let TrafficSpec::Hotspot { hot_fraction, .. } = *self {
            if !(0.0..=1.0).contains(&hot_fraction) {
                return Err(TrafficError::HotFractionOutOfRange {
                    spec: self.to_string(),
                    value: hot_fraction.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Binds the workload to a concrete network of `n` processors, checking
    /// the topology preconditions the pattern needs: transpose requires
    /// `n = m²`, bit-reversal requires `n = 2^b`, and a hotspot's hot node
    /// must exist.  Returns the runnable [`TrafficPattern`] or a typed
    /// refusal — never a silently-degraded pattern.
    pub fn bind(&self, n: usize) -> Result<TrafficPattern, TrafficError> {
        self.validate()?;
        match *self {
            TrafficSpec::Hotspot { hot_node, .. } if hot_node >= n => {
                Err(TrafficError::HotNodeOutOfRange {
                    spec: self.to_string(),
                    hot_node,
                    nodes: n,
                })
            }
            TrafficSpec::Transpose { .. } if n.isqrt().pow(2) != n => {
                Err(TrafficError::NotSquare {
                    spec: self.to_string(),
                    nodes: n,
                })
            }
            TrafficSpec::BitReversal { .. } if !n.is_power_of_two() => {
                Err(TrafficError::NotPowerOfTwo {
                    spec: self.to_string(),
                    nodes: n,
                })
            }
            _ => Ok(self.as_pattern()),
        }
    }

    /// The unchecked [`TrafficPattern`] equivalent.  Prefer
    /// [`TrafficSpec::bind`], which validates against a network size; the
    /// raw pattern defends itself by injecting nothing where it is
    /// undefined.
    pub fn as_pattern(&self) -> TrafficPattern {
        match *self {
            TrafficSpec::Uniform { load } => TrafficPattern::Uniform { load },
            TrafficSpec::Permutation { load, offset } => {
                TrafficPattern::Permutation { load, offset }
            }
            TrafficSpec::Hotspot {
                load,
                hot_node,
                hot_fraction,
            } => TrafficPattern::Hotspot {
                load,
                hot_node,
                hot_fraction,
            },
            TrafficSpec::Transpose { load } => TrafficPattern::Transpose { load },
            TrafficSpec::BitReversal { load } => TrafficPattern::BitReversal { load },
        }
    }
}

impl fmt::Display for TrafficSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TrafficSpec::Uniform { load } => write!(f, "uniform({load})"),
            TrafficSpec::Permutation { load, offset } => write!(f, "perm({load},{offset})"),
            TrafficSpec::Hotspot {
                load,
                hot_node,
                hot_fraction,
            } => write!(f, "hotspot({load},{hot_node},{hot_fraction})"),
            TrafficSpec::Transpose { load } => write!(f, "transpose({load})"),
            TrafficSpec::BitReversal { load } => write!(f, "bitrev({load})"),
        }
    }
}

impl FromStr for TrafficSpec {
    type Err = TrafficError;

    fn from_str(input: &str) -> Result<Self, Self::Err> {
        let text = input.trim();
        let open = text.find('(').ok_or_else(|| TrafficError::Syntax {
            input: input.to_string(),
            reason: "expected pattern(arg, ...)",
        })?;
        if !text.ends_with(')') {
            return Err(TrafficError::Syntax {
                input: input.to_string(),
                reason: "missing closing parenthesis",
            });
        }
        let pattern = text[..open].trim().to_ascii_lowercase();
        let args: Vec<&str> = text[open + 1..text.len() - 1]
            .split(',')
            .map(str::trim)
            .collect();

        let load = |raw: &str| -> Result<f64, TrafficError> {
            let value = raw.parse::<f64>().map_err(|_| TrafficError::Syntax {
                input: input.to_string(),
                reason: "loads must be decimal numbers",
            })?;
            if (0.0..=1.0).contains(&value) {
                Ok(value)
            } else {
                Err(TrafficError::LoadOutOfRange {
                    spec: input.trim().to_string(),
                    value: raw.to_string(),
                })
            }
        };
        let index = |raw: &str| -> Result<usize, TrafficError> {
            raw.parse::<usize>().map_err(|_| TrafficError::Syntax {
                input: input.to_string(),
                reason: "offsets and node ids must be non-negative integers",
            })
        };
        let arity_error = |expected: &'static str, got: usize| TrafficError::Arity {
            input: input.to_string(),
            pattern: pattern.clone(),
            expected,
            got,
        };

        match pattern.as_str() {
            "uniform" => match args[..] {
                [l] => Ok(TrafficSpec::Uniform { load: load(l)? }),
                _ => Err(arity_error("1 argument: uniform(load)", args.len())),
            },
            "perm" => match args[..] {
                [l, o] => Ok(TrafficSpec::Permutation {
                    load: load(l)?,
                    offset: index(o)?,
                }),
                _ => Err(arity_error("2 arguments: perm(load,offset)", args.len())),
            },
            "hotspot" => match args[..] {
                [l, node, frac] => {
                    let hot_fraction = frac.parse::<f64>().map_err(|_| TrafficError::Syntax {
                        input: input.to_string(),
                        reason: "hotspot fractions must be decimal numbers",
                    })?;
                    if !(0.0..=1.0).contains(&hot_fraction) {
                        return Err(TrafficError::HotFractionOutOfRange {
                            spec: input.trim().to_string(),
                            value: frac.to_string(),
                        });
                    }
                    Ok(TrafficSpec::Hotspot {
                        load: load(l)?,
                        hot_node: index(node)?,
                        hot_fraction,
                    })
                }
                _ => Err(arity_error(
                    "3 arguments: hotspot(load,node,fraction)",
                    args.len(),
                )),
            },
            "transpose" => match args[..] {
                [l] => Ok(TrafficSpec::Transpose { load: load(l)? }),
                _ => Err(arity_error("1 argument: transpose(load)", args.len())),
            },
            "bitrev" => match args[..] {
                [l] => Ok(TrafficSpec::BitReversal { load: load(l)? }),
                _ => Err(arity_error("1 argument: bitrev(load)", args.len())),
            },
            _ => Err(TrafficError::UnknownPattern {
                input: input.to_string(),
                pattern,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_pattern() {
        let cases = [
            ("uniform(0.3)", TrafficSpec::Uniform { load: 0.3 }),
            (
                "perm(0.5,7)",
                TrafficSpec::Permutation {
                    load: 0.5,
                    offset: 7,
                },
            ),
            (
                "hotspot(0.4,0,0.2)",
                TrafficSpec::Hotspot {
                    load: 0.4,
                    hot_node: 0,
                    hot_fraction: 0.2,
                },
            ),
            ("transpose(0.5)", TrafficSpec::Transpose { load: 0.5 }),
            ("bitrev(0.5)", TrafficSpec::BitReversal { load: 0.5 }),
        ];
        for (text, expected) in cases {
            assert_eq!(text.parse::<TrafficSpec>().unwrap(), expected, "{text}");
            assert_eq!(expected.to_string(), text);
            assert_eq!(
                expected.to_string().parse::<TrafficSpec>().unwrap(),
                expected
            );
        }
    }

    #[test]
    fn tolerant_syntax() {
        assert_eq!(
            "  HOTSPOT( 0.4 , 0 , 0.2 )  "
                .parse::<TrafficSpec>()
                .unwrap(),
            TrafficSpec::Hotspot {
                load: 0.4,
                hot_node: 0,
                hot_fraction: 0.2,
            }
        );
        assert_eq!(
            "Uniform(1)".parse::<TrafficSpec>().unwrap(),
            TrafficSpec::Uniform { load: 1.0 }
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "uniform",
            "uniform(",
            "uniform 0.3",
            "uniform(0.3,1)",
            "perm(0.3)",
            "hotspot(0.3,0)",
            "gravity(0.3)",
            "perm(0.3,x)",
            "uniform(zero)",
        ] {
            assert!(
                bad.parse::<TrafficSpec>().is_err(),
                "{bad} should not parse"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_values_with_typed_errors() {
        // NaN, negative and above-1 loads are refused at parse time — the
        // injection machinery never sees them.
        for bad in [
            "uniform(NaN)",
            "uniform(-0.1)",
            "uniform(1.5)",
            "perm(inf,2)",
        ] {
            let err = bad.parse::<TrafficSpec>().unwrap_err();
            assert!(
                matches!(err, TrafficError::LoadOutOfRange { .. }),
                "{bad}: {err}"
            );
        }
        let err = "hotspot(0.3,0,1.2)".parse::<TrafficSpec>().unwrap_err();
        assert!(matches!(err, TrafficError::HotFractionOutOfRange { .. }));
        let err = "hotspot(0.3,0,NaN)".parse::<TrafficSpec>().unwrap_err();
        assert!(matches!(err, TrafficError::HotFractionOutOfRange { .. }));
        // validate() re-checks directly-constructed values.
        assert!(TrafficSpec::Uniform { load: f64::NAN }.validate().is_err());
        assert!(TrafficSpec::Hotspot {
            load: 0.5,
            hot_node: 0,
            hot_fraction: -1.0
        }
        .validate()
        .is_err());
        assert!(TrafficSpec::Uniform { load: 0.5 }.validate().is_ok());
    }

    #[test]
    fn bind_checks_topology_preconditions() {
        // Transpose needs a square processor count.
        let transpose = TrafficSpec::Transpose { load: 0.5 };
        assert!(transpose.bind(16).is_ok());
        let err = transpose.bind(24).unwrap_err();
        assert!(
            matches!(err, TrafficError::NotSquare { nodes: 24, .. }),
            "{err}"
        );
        // Bit-reversal needs a power of two.
        let bitrev = TrafficSpec::BitReversal { load: 0.5 };
        assert!(bitrev.bind(32).is_ok());
        let err = bitrev.bind(24).unwrap_err();
        assert!(
            matches!(err, TrafficError::NotPowerOfTwo { nodes: 24, .. }),
            "{err}"
        );
        // The hot node must exist.
        let hotspot = TrafficSpec::Hotspot {
            load: 0.4,
            hot_node: 24,
            hot_fraction: 0.2,
        };
        let err = hotspot.bind(24).unwrap_err();
        assert!(
            matches!(
                err,
                TrafficError::HotNodeOutOfRange {
                    hot_node: 24,
                    nodes: 24,
                    ..
                }
            ),
            "{err}"
        );
        assert!(hotspot.bind(25).is_ok());
        // Unconstrained patterns bind anywhere.
        assert!(TrafficSpec::Uniform { load: 0.2 }.bind(7).is_ok());
        assert!(TrafficSpec::Permutation {
            load: 0.2,
            offset: 3
        }
        .bind(7)
        .is_ok());
    }

    #[test]
    fn bound_patterns_match_their_spec() {
        let spec: TrafficSpec = "perm(0.5,7)".parse().unwrap();
        assert_eq!(
            spec.bind(10).unwrap(),
            TrafficPattern::Permutation {
                load: 0.5,
                offset: 7
            }
        );
        assert_eq!(spec.offered_load(), 0.5);
        assert_eq!(spec.pattern_name(), "perm");
        // effective_load delegates to the pattern's fixed-point accounting.
        let degenerate: TrafficSpec = "perm(0.5,10)".parse().unwrap();
        assert_eq!(degenerate.effective_load(10), 0.0);
    }

    #[test]
    fn error_displays_are_informative() {
        let err = "gravity(0.3)".parse::<TrafficSpec>().unwrap_err();
        assert!(err.to_string().contains("gravity"));
        assert!(err.to_string().contains("supported"));
        let err = "uniform(2)".parse::<TrafficSpec>().unwrap_err();
        assert!(err.to_string().contains("[0, 1]"));
        let err = TrafficSpec::Transpose { load: 0.5 }.bind(24).unwrap_err();
        assert!(err.to_string().contains("square"));
        let err = TrafficSpec::BitReversal { load: 0.5 }.bind(24).unwrap_err();
        assert!(err.to_string().contains("power-of-two"));
    }
}
