//! The workload specification language.
//!
//! The paper's throughput and latency claims are made under *traffic*, not
//! just an offered-load scalar, so workloads get the same first-class
//! treatment as networks: [`TrafficSpec`] is the parsed, validated form of a
//! short workload string, mirroring [`crate::NetworkSpec`]'s
//! `FromStr`/`Display` round-trip discipline:
//!
//! The *stationary* patterns, with loads as per-slot injection
//! probabilities in `[0, 1]`:
//!
//! * `"uniform(0.3)"` — uniform destinations at load 0.3;
//! * `"perm(0.5,7)"` — the static shift permutation `dst = src + 7 mod N`;
//! * `"hotspot(0.4,0,0.2)"` — uniform background with 20% of non-hot
//!   sources' messages aimed at processor 0;
//! * `"transpose(0.5)"` — matrix transpose on a square grid (`N = m²`);
//! * `"bitrev(0.5)"` — bit-reversal on a power-of-two network.
//!
//! The *demand processes* of [`otis_sim::demand`], with rates as expected
//! arrivals per processor per slot (finite, `>= 0`, may exceed 1 — the
//! per-slot injection probability is `1 − e^(−rate)`):
//!
//! * `"poisson(0.3)"` — Poisson arrivals, uniform destinations;
//! * `"poisson(0.3,5)"` — Poisson arrivals, every message aimed at
//!   processor 5 (which itself stays silent);
//! * `"onoff(0.8,5,15)"` — on/off bursts: Poisson arrivals at rate 0.8
//!   during 5-slot ON phases, silence during 15-slot OFF phases,
//!   per-processor phases drawn from the run RNG;
//! * `"mix(0.25,2.0,0.05)"` — elephants-and-mice: a quarter of the
//!   processors inject at rate 2.0, the rest at 0.05;
//! * `"trace(demand.trc)"` — lazy bounded-memory replay of a recorded
//!   `.trc` demand stream (the path is taken verbatim; it may not contain
//!   `,` or `)`).
//!
//! Parsing rejects malformed values with typed [`TrafficError`]s — `NaN` or
//! negative loads, loads above 1, out-of-range hotspot fractions, `NaN` or
//! negative rates, zero burst lengths — so a bad workload never reaches a
//! simulator.  Topology preconditions (transpose needs a square processor
//! count, bit-reversal a power of two, a hotspot or fixed Poisson
//! destination must exist, a trace's node ids must fit the network) are
//! checked at *bind* time by [`TrafficSpec::bind`], which turns the spec
//! into a runnable [`otis_sim::DemandSpec`] for one concrete network size —
//! refusing with a typed error instead of silently degrading.  Binding a
//! trace streams the whole file through [`otis_sim::validate_trace`] once,
//! in O(N) memory, so replay starts from a stream already known to be
//! well-formed.

use otis_sim::{validate_trace, DemandSpec, TraceError, TrafficPattern};
use std::fmt;
use std::str::FromStr;

/// A parsed, validated workload specification.
///
/// Construction through [`FromStr`] guarantees every load is finite and in
/// `[0, 1]` and every hotspot fraction is in `[0, 1]`; directly-constructed
/// values are re-checked by [`TrafficSpec::validate`] /
/// [`TrafficSpec::bind`] before they reach a simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSpec {
    /// `uniform(load)` — destinations uniform among the other processors.
    Uniform {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
    },
    /// `perm(load,offset)` — the static shift permutation
    /// `dst = (src + offset) mod N`.
    Permutation {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
        /// The shift of the permutation.
        offset: usize,
    },
    /// `hotspot(load,node,fraction)` — uniform background traffic with a
    /// fraction of every non-hot source's messages aimed at `hot_node` (see
    /// [`otis_sim::TrafficPattern::Hotspot`] for the exact semantics).
    Hotspot {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
        /// The hot destination; must exist in the bound network.
        hot_node: usize,
        /// Probability that a non-hot source's message targets `hot_node`,
        /// in `[0, 1]`.
        hot_fraction: f64,
    },
    /// `transpose(load)` — matrix transpose on a square processor grid;
    /// binding requires `N = m²`.
    Transpose {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
    },
    /// `bitrev(load)` — bit-reversal; binding requires `N = 2^b`.
    BitReversal {
        /// Injection probability per processor per slot, in `[0, 1]`.
        load: f64,
    },
    /// `poisson(rate)` / `poisson(rate,dst)` — Poisson arrivals at `rate`
    /// expected messages per processor per slot, destinations uniform or
    /// fixed to `dst`.
    Poisson {
        /// Expected arrivals per processor per slot (finite, `>= 0`, may
        /// exceed 1).
        rate: f64,
        /// `Some(d)`: every message targets processor `d`; must exist in
        /// the bound network.
        dst: Option<usize>,
    },
    /// `onoff(rate,burst,idle)` — Poisson arrivals at `rate` during
    /// `burst_len` ON slots, silence during `idle_len` OFF slots.
    OnOff {
        /// Expected arrivals per processor per slot while ON.
        rate: f64,
        /// ON-phase length in slots; must be `>= 1`.
        burst_len: u64,
        /// OFF-phase length in slots.
        idle_len: u64,
    },
    /// `mix(fraction,elephant_rate,mice_rate)` — elephants-and-mice:
    /// `round(fraction · N)` processors inject at `elephant_rate`, the rest
    /// at `mice_rate`.
    Mix {
        /// Fraction of processors that are elephants, in `[0, 1]`.
        fraction: f64,
        /// Expected arrivals per elephant processor per slot.
        elephant_rate: f64,
        /// Expected arrivals per mouse processor per slot.
        mice_rate: f64,
    },
    /// `trace(path)` — replay of a recorded `.trc` demand stream; binding
    /// validates the whole file against the network size.
    Trace {
        /// Path of the trace file, taken verbatim from the spec string.
        path: String,
    },
}

/// Why a workload string could not be parsed, or a parsed workload could not
/// be bound to a network.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// The input does not match `pattern(arg, ...)`.
    Syntax {
        /// The offending input.
        input: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The pattern mnemonic is not one of the supported ones.
    UnknownPattern {
        /// The offending input.
        input: String,
        /// The unrecognised mnemonic.
        pattern: String,
    },
    /// The pattern exists but was given the wrong number of arguments.
    Arity {
        /// The offending input.
        input: String,
        /// The pattern mnemonic.
        pattern: String,
        /// Human-readable expected signature.
        expected: &'static str,
        /// Number of arguments received.
        got: usize,
    },
    /// A load is `NaN`, infinite, negative or above 1 — it is an injection
    /// probability and must lie in `[0, 1]`.
    LoadOutOfRange {
        /// The rendered workload (or the raw input while parsing).
        spec: String,
        /// The offending value, rendered (so `NaN` survives the trip).
        value: String,
    },
    /// A hotspot fraction is `NaN`, infinite, negative or above 1.
    HotFractionOutOfRange {
        /// The rendered workload (or the raw input while parsing).
        spec: String,
        /// The offending value, rendered.
        value: String,
    },
    /// The hotspot's hot node does not exist in the bound network.
    HotNodeOutOfRange {
        /// The rendered workload.
        spec: String,
        /// The requested hot node.
        hot_node: usize,
        /// The bound network's processor count.
        nodes: usize,
    },
    /// Transpose traffic bound to a network whose processor count is not a
    /// perfect square.
    NotSquare {
        /// The rendered workload.
        spec: String,
        /// The bound network's processor count.
        nodes: usize,
    },
    /// Bit-reversal traffic bound to a network whose processor count is not
    /// a power of two.
    NotPowerOfTwo {
        /// The rendered workload.
        spec: String,
        /// The bound network's processor count.
        nodes: usize,
    },
    /// A rate is `NaN`, infinite or negative — rates are expected arrivals
    /// per slot and must be finite and `>= 0` (they *may* exceed 1).
    RateOutOfRange {
        /// The rendered workload (or the raw input while parsing).
        spec: String,
        /// The offending value, rendered (so `NaN` survives the trip).
        value: String,
    },
    /// An on/off burst length of 0 — the ON phase must last at least one
    /// slot.
    ZeroBurst {
        /// The rendered workload (or the raw input while parsing).
        spec: String,
    },
    /// A mix fraction is `NaN`, infinite, negative or above 1.
    MixFractionOutOfRange {
        /// The rendered workload (or the raw input while parsing).
        spec: String,
        /// The offending value, rendered.
        value: String,
    },
    /// A fixed Poisson destination does not exist in the bound network.
    DestinationOutOfRange {
        /// The rendered workload.
        spec: String,
        /// The requested destination.
        node: usize,
        /// The bound network's processor count.
        nodes: usize,
    },
    /// The trace file violates the `.trc` format or the bound network size
    /// — the wrapped [`TraceError`] carries the 1-based line number.
    Trace {
        /// The trace file's path.
        path: String,
        /// The first violation found.
        error: TraceError,
    },
    /// The trace file could not be opened or read at bind time.
    TraceIo {
        /// The trace file's path.
        path: String,
        /// The I/O error rendered as text.
        detail: String,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::Syntax { input, reason } => {
                write!(f, "cannot parse workload '{input}': {reason}")
            }
            TrafficError::UnknownPattern { input, pattern } => write!(
                f,
                "unknown traffic pattern '{pattern}' in '{input}' \
                 (supported: uniform, perm, hotspot, transpose, bitrev, \
                 poisson, onoff, mix, trace)"
            ),
            TrafficError::Arity {
                input,
                pattern,
                expected,
                got,
            } => write!(
                f,
                "wrong number of arguments for {pattern} in '{input}': \
                 expected {expected}, got {got}"
            ),
            TrafficError::LoadOutOfRange { spec, value } => write!(
                f,
                "load {value} in '{spec}' is out of range: loads are injection \
                 probabilities in [0, 1]"
            ),
            TrafficError::HotFractionOutOfRange { spec, value } => write!(
                f,
                "hotspot fraction {value} in '{spec}' is out of range: \
                 fractions lie in [0, 1]"
            ),
            TrafficError::HotNodeOutOfRange {
                spec,
                hot_node,
                nodes,
            } => write!(
                f,
                "hot node {hot_node} in '{spec}' does not exist: the network \
                 has {nodes} processors"
            ),
            TrafficError::NotSquare { spec, nodes } => write!(
                f,
                "'{spec}' needs a square processor count, but the network has \
                 {nodes} processors"
            ),
            TrafficError::NotPowerOfTwo { spec, nodes } => write!(
                f,
                "'{spec}' needs a power-of-two processor count, but the \
                 network has {nodes} processors"
            ),
            TrafficError::RateOutOfRange { spec, value } => write!(
                f,
                "rate {value} in '{spec}' is out of range: rates are expected \
                 arrivals per slot and must be finite and >= 0"
            ),
            TrafficError::ZeroBurst { spec } => write!(
                f,
                "burst length 0 in '{spec}': the ON phase must last at least \
                 one slot"
            ),
            TrafficError::MixFractionOutOfRange { spec, value } => write!(
                f,
                "mix fraction {value} in '{spec}' is out of range: fractions \
                 lie in [0, 1]"
            ),
            TrafficError::DestinationOutOfRange { spec, node, nodes } => write!(
                f,
                "destination {node} in '{spec}' does not exist: the network \
                 has {nodes} processors"
            ),
            TrafficError::Trace { path, error } => {
                write!(f, "trace file '{path}': {error}")
            }
            TrafficError::TraceIo { path, detail } => {
                write!(f, "trace file '{path}': {detail}")
            }
        }
    }
}

impl std::error::Error for TrafficError {}

impl TrafficSpec {
    /// The pattern mnemonic used in the workload syntax (`"uniform"`,
    /// `"perm"`, …).
    pub fn pattern_name(&self) -> &'static str {
        match self {
            TrafficSpec::Uniform { .. } => "uniform",
            TrafficSpec::Permutation { .. } => "perm",
            TrafficSpec::Hotspot { .. } => "hotspot",
            TrafficSpec::Transpose { .. } => "transpose",
            TrafficSpec::BitReversal { .. } => "bitrev",
            TrafficSpec::Poisson { .. } => "poisson",
            TrafficSpec::OnOff { .. } => "onoff",
            TrafficSpec::Mix { .. } => "mix",
            TrafficSpec::Trace { .. } => "trace",
        }
    }

    /// The nominal offered load (messages per processor per slot): the load
    /// of a stationary pattern, the expected per-slot injection probability
    /// of a stochastic process, and `NaN` (undefined ahead of replay) for a
    /// trace — the sinks render the sentinel format-aware (`-` in the
    /// table, empty in CSV, `null` in JSONL).
    pub fn offered_load(&self) -> f64 {
        self.as_demand().offered_load()
    }

    /// The load that actually enters an `n`-processor network once pattern
    /// fixed points and silenced sources are accounted for; see
    /// [`otis_sim::DemandSpec::effective_load`].
    pub fn effective_load(&self, n: usize) -> f64 {
        self.as_demand().effective_load(n)
    }

    /// `true` for `trace(file)` workloads — replay consumes no RNG, so runs
    /// are seed-invariant (the scenario engine warns when a trace is
    /// crossed with several seeds).
    pub fn is_trace(&self) -> bool {
        matches!(self, TrafficSpec::Trace { .. })
    }

    /// Checks the value ranges that do not depend on a network: loads and
    /// hotspot/mix fractions must be finite and in `[0, 1]`, rates finite
    /// and `>= 0`, burst lengths at least 1.  Parsing performs these checks
    /// already; this re-validates directly-constructed values.
    pub fn validate(&self) -> Result<(), TrafficError> {
        let rate_check = |rate: f64| -> Result<(), TrafficError> {
            if rate.is_finite() && rate >= 0.0 {
                Ok(())
            } else {
                Err(TrafficError::RateOutOfRange {
                    spec: self.to_string(),
                    value: rate.to_string(),
                })
            }
        };
        match *self {
            TrafficSpec::Uniform { .. }
            | TrafficSpec::Permutation { .. }
            | TrafficSpec::Hotspot { .. }
            | TrafficSpec::Transpose { .. }
            | TrafficSpec::BitReversal { .. } => {
                let load = self.offered_load();
                if !(0.0..=1.0).contains(&load) {
                    return Err(TrafficError::LoadOutOfRange {
                        spec: self.to_string(),
                        value: load.to_string(),
                    });
                }
                if let TrafficSpec::Hotspot { hot_fraction, .. } = *self {
                    if !(0.0..=1.0).contains(&hot_fraction) {
                        return Err(TrafficError::HotFractionOutOfRange {
                            spec: self.to_string(),
                            value: hot_fraction.to_string(),
                        });
                    }
                }
                Ok(())
            }
            TrafficSpec::Poisson { rate, .. } => rate_check(rate),
            TrafficSpec::OnOff {
                rate, burst_len, ..
            } => {
                rate_check(rate)?;
                if burst_len == 0 {
                    return Err(TrafficError::ZeroBurst {
                        spec: self.to_string(),
                    });
                }
                Ok(())
            }
            TrafficSpec::Mix {
                fraction,
                elephant_rate,
                mice_rate,
            } => {
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(TrafficError::MixFractionOutOfRange {
                        spec: self.to_string(),
                        value: fraction.to_string(),
                    });
                }
                rate_check(elephant_rate)?;
                rate_check(mice_rate)
            }
            TrafficSpec::Trace { .. } => Ok(()),
        }
    }

    /// Binds the workload to a concrete network of `n` processors, checking
    /// the topology preconditions it needs: transpose requires `n = m²`,
    /// bit-reversal requires `n = 2^b`, a hotspot's hot node and a fixed
    /// Poisson destination must exist, and a trace's whole file is streamed
    /// through [`otis_sim::validate_trace`] (syntax, node ranges, slot
    /// monotonicity — typed, line-numbered [`TraceError`]s).  Returns the
    /// runnable [`DemandSpec`] or a typed refusal — never a
    /// silently-degraded workload.
    pub fn bind(&self, n: usize) -> Result<DemandSpec, TrafficError> {
        self.validate()?;
        match *self {
            TrafficSpec::Hotspot { hot_node, .. } if hot_node >= n => {
                Err(TrafficError::HotNodeOutOfRange {
                    spec: self.to_string(),
                    hot_node,
                    nodes: n,
                })
            }
            TrafficSpec::Transpose { .. } if n.isqrt().pow(2) != n => {
                Err(TrafficError::NotSquare {
                    spec: self.to_string(),
                    nodes: n,
                })
            }
            TrafficSpec::BitReversal { .. } if !n.is_power_of_two() => {
                Err(TrafficError::NotPowerOfTwo {
                    spec: self.to_string(),
                    nodes: n,
                })
            }
            TrafficSpec::Poisson { dst: Some(d), .. } if d >= n => {
                Err(TrafficError::DestinationOutOfRange {
                    spec: self.to_string(),
                    node: d,
                    nodes: n,
                })
            }
            TrafficSpec::Trace { ref path } => {
                let file = std::fs::File::open(path).map_err(|e| TrafficError::TraceIo {
                    path: path.clone(),
                    detail: e.to_string(),
                })?;
                let stats = validate_trace(std::io::BufReader::new(file), n).map_err(|error| {
                    TrafficError::Trace {
                        path: path.clone(),
                        error,
                    }
                })?;
                // The same streaming pass measures the trace, so the bound
                // spec reports a real offered load instead of a NaN
                // sentinel (an empty trace is load 0, not undefined).
                Ok(DemandSpec::Trace {
                    path: path.clone(),
                    offered_load: Some(stats.offered_load(n)),
                })
            }
            _ => Ok(self.as_demand()),
        }
    }

    /// The unchecked [`TrafficPattern`] equivalent of a stationary
    /// workload, `None` for the demand processes (Poisson, on/off, mix,
    /// trace), which have no stationary-pattern form.  Prefer
    /// [`TrafficSpec::bind`], which validates against a network size; the
    /// raw pattern defends itself by injecting nothing where it is
    /// undefined.
    pub fn as_pattern(&self) -> Option<TrafficPattern> {
        match *self {
            TrafficSpec::Uniform { load } => Some(TrafficPattern::Uniform { load }),
            TrafficSpec::Permutation { load, offset } => {
                Some(TrafficPattern::Permutation { load, offset })
            }
            TrafficSpec::Hotspot {
                load,
                hot_node,
                hot_fraction,
            } => Some(TrafficPattern::Hotspot {
                load,
                hot_node,
                hot_fraction,
            }),
            TrafficSpec::Transpose { load } => Some(TrafficPattern::Transpose { load }),
            TrafficSpec::BitReversal { load } => Some(TrafficPattern::BitReversal { load }),
            TrafficSpec::Poisson { .. }
            | TrafficSpec::OnOff { .. }
            | TrafficSpec::Mix { .. }
            | TrafficSpec::Trace { .. } => None,
        }
    }

    /// The unchecked [`DemandSpec`] equivalent — stationary workloads wrap
    /// as [`DemandSpec::Pattern`], demand processes map variant for
    /// variant.  Prefer [`TrafficSpec::bind`], which validates first.
    fn as_demand(&self) -> DemandSpec {
        match self.as_pattern() {
            Some(pattern) => DemandSpec::Pattern(pattern),
            None => match *self {
                TrafficSpec::Poisson { rate, dst } => DemandSpec::Poisson { rate, dst },
                TrafficSpec::OnOff {
                    rate,
                    burst_len,
                    idle_len,
                } => DemandSpec::OnOff {
                    rate,
                    burst_len,
                    idle_len,
                },
                TrafficSpec::Mix {
                    fraction,
                    elephant_rate,
                    mice_rate,
                } => DemandSpec::Mix {
                    fraction,
                    elephant_rate,
                    mice_rate,
                },
                TrafficSpec::Trace { ref path } => DemandSpec::Trace {
                    path: path.clone(),
                    offered_load: None,
                },
                _ => unreachable!("every stationary workload has a pattern form"),
            },
        }
    }
}

impl fmt::Display for TrafficSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TrafficSpec::Uniform { load } => write!(f, "uniform({load})"),
            TrafficSpec::Permutation { load, offset } => write!(f, "perm({load},{offset})"),
            TrafficSpec::Hotspot {
                load,
                hot_node,
                hot_fraction,
            } => write!(f, "hotspot({load},{hot_node},{hot_fraction})"),
            TrafficSpec::Transpose { load } => write!(f, "transpose({load})"),
            TrafficSpec::BitReversal { load } => write!(f, "bitrev({load})"),
            TrafficSpec::Poisson { rate, dst: None } => write!(f, "poisson({rate})"),
            TrafficSpec::Poisson { rate, dst: Some(d) } => write!(f, "poisson({rate},{d})"),
            TrafficSpec::OnOff {
                rate,
                burst_len,
                idle_len,
            } => write!(f, "onoff({rate},{burst_len},{idle_len})"),
            TrafficSpec::Mix {
                fraction,
                elephant_rate,
                mice_rate,
            } => write!(f, "mix({fraction},{elephant_rate},{mice_rate})"),
            TrafficSpec::Trace { ref path } => write!(f, "trace({path})"),
        }
    }
}

impl FromStr for TrafficSpec {
    type Err = TrafficError;

    fn from_str(input: &str) -> Result<Self, Self::Err> {
        let text = input.trim();
        let open = text.find('(').ok_or_else(|| TrafficError::Syntax {
            input: input.to_string(),
            reason: "expected pattern(arg, ...)",
        })?;
        if !text.ends_with(')') {
            return Err(TrafficError::Syntax {
                input: input.to_string(),
                reason: "missing closing parenthesis",
            });
        }
        let pattern = text[..open].trim().to_ascii_lowercase();
        let args: Vec<&str> = text[open + 1..text.len() - 1]
            .split(',')
            .map(str::trim)
            .collect();

        let load = |raw: &str| -> Result<f64, TrafficError> {
            let value = raw.parse::<f64>().map_err(|_| TrafficError::Syntax {
                input: input.to_string(),
                reason: "loads must be decimal numbers",
            })?;
            if (0.0..=1.0).contains(&value) {
                Ok(value)
            } else {
                Err(TrafficError::LoadOutOfRange {
                    spec: input.trim().to_string(),
                    value: raw.to_string(),
                })
            }
        };
        let index = |raw: &str| -> Result<usize, TrafficError> {
            raw.parse::<usize>().map_err(|_| TrafficError::Syntax {
                input: input.to_string(),
                reason: "offsets and node ids must be non-negative integers",
            })
        };
        let rate = |raw: &str| -> Result<f64, TrafficError> {
            let value = raw.parse::<f64>().map_err(|_| TrafficError::Syntax {
                input: input.to_string(),
                reason: "rates must be decimal numbers",
            })?;
            if value.is_finite() && value >= 0.0 {
                Ok(value)
            } else {
                Err(TrafficError::RateOutOfRange {
                    spec: input.trim().to_string(),
                    value: raw.to_string(),
                })
            }
        };
        let slots = |raw: &str| -> Result<u64, TrafficError> {
            raw.parse::<u64>().map_err(|_| TrafficError::Syntax {
                input: input.to_string(),
                reason: "burst and idle lengths must be non-negative integers",
            })
        };
        let arity_error = |expected: &'static str, got: usize| TrafficError::Arity {
            input: input.to_string(),
            pattern: pattern.clone(),
            expected,
            got,
        };

        match pattern.as_str() {
            "uniform" => match args[..] {
                [l] => Ok(TrafficSpec::Uniform { load: load(l)? }),
                _ => Err(arity_error("1 argument: uniform(load)", args.len())),
            },
            "perm" => match args[..] {
                [l, o] => Ok(TrafficSpec::Permutation {
                    load: load(l)?,
                    offset: index(o)?,
                }),
                _ => Err(arity_error("2 arguments: perm(load,offset)", args.len())),
            },
            "hotspot" => match args[..] {
                [l, node, frac] => {
                    let hot_fraction = frac.parse::<f64>().map_err(|_| TrafficError::Syntax {
                        input: input.to_string(),
                        reason: "hotspot fractions must be decimal numbers",
                    })?;
                    if !(0.0..=1.0).contains(&hot_fraction) {
                        return Err(TrafficError::HotFractionOutOfRange {
                            spec: input.trim().to_string(),
                            value: frac.to_string(),
                        });
                    }
                    Ok(TrafficSpec::Hotspot {
                        load: load(l)?,
                        hot_node: index(node)?,
                        hot_fraction,
                    })
                }
                _ => Err(arity_error(
                    "3 arguments: hotspot(load,node,fraction)",
                    args.len(),
                )),
            },
            "transpose" => match args[..] {
                [l] => Ok(TrafficSpec::Transpose { load: load(l)? }),
                _ => Err(arity_error("1 argument: transpose(load)", args.len())),
            },
            "bitrev" => match args[..] {
                [l] => Ok(TrafficSpec::BitReversal { load: load(l)? }),
                _ => Err(arity_error("1 argument: bitrev(load)", args.len())),
            },
            "poisson" => match args[..] {
                [r] => Ok(TrafficSpec::Poisson {
                    rate: rate(r)?,
                    dst: None,
                }),
                [r, d] => Ok(TrafficSpec::Poisson {
                    rate: rate(r)?,
                    dst: Some(index(d)?),
                }),
                _ => Err(arity_error(
                    "1 or 2 arguments: poisson(rate[,dst])",
                    args.len(),
                )),
            },
            "onoff" => match args[..] {
                [r, burst, idle] => {
                    let burst_len = slots(burst)?;
                    if burst_len == 0 {
                        return Err(TrafficError::ZeroBurst {
                            spec: input.trim().to_string(),
                        });
                    }
                    Ok(TrafficSpec::OnOff {
                        rate: rate(r)?,
                        burst_len,
                        idle_len: slots(idle)?,
                    })
                }
                _ => Err(arity_error(
                    "3 arguments: onoff(rate,burst_len,idle_len)",
                    args.len(),
                )),
            },
            "mix" => match args[..] {
                [frac, elephant, mice] => {
                    let fraction = frac.parse::<f64>().map_err(|_| TrafficError::Syntax {
                        input: input.to_string(),
                        reason: "mix fractions must be decimal numbers",
                    })?;
                    if !(0.0..=1.0).contains(&fraction) {
                        return Err(TrafficError::MixFractionOutOfRange {
                            spec: input.trim().to_string(),
                            value: frac.to_string(),
                        });
                    }
                    Ok(TrafficSpec::Mix {
                        fraction,
                        elephant_rate: rate(elephant)?,
                        mice_rate: rate(mice)?,
                    })
                }
                _ => Err(arity_error(
                    "3 arguments: mix(fraction,elephant_rate,mice_rate)",
                    args.len(),
                )),
            },
            "trace" => match args[..] {
                [path] if !path.is_empty() => Ok(TrafficSpec::Trace {
                    path: path.to_string(),
                }),
                [_] => Err(TrafficError::Syntax {
                    input: input.to_string(),
                    reason: "trace needs a non-empty file path",
                }),
                _ => Err(arity_error(
                    "1 argument: trace(path) — the path may not contain ','",
                    args.len(),
                )),
            },
            _ => Err(TrafficError::UnknownPattern {
                input: input.to_string(),
                pattern,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_pattern() {
        let cases = [
            ("uniform(0.3)", TrafficSpec::Uniform { load: 0.3 }),
            (
                "perm(0.5,7)",
                TrafficSpec::Permutation {
                    load: 0.5,
                    offset: 7,
                },
            ),
            (
                "hotspot(0.4,0,0.2)",
                TrafficSpec::Hotspot {
                    load: 0.4,
                    hot_node: 0,
                    hot_fraction: 0.2,
                },
            ),
            ("transpose(0.5)", TrafficSpec::Transpose { load: 0.5 }),
            ("bitrev(0.5)", TrafficSpec::BitReversal { load: 0.5 }),
        ];
        for (text, expected) in cases {
            assert_eq!(text.parse::<TrafficSpec>().unwrap(), expected, "{text}");
            assert_eq!(expected.to_string(), text);
            assert_eq!(
                expected.to_string().parse::<TrafficSpec>().unwrap(),
                expected
            );
        }
    }

    #[test]
    fn tolerant_syntax() {
        assert_eq!(
            "  HOTSPOT( 0.4 , 0 , 0.2 )  "
                .parse::<TrafficSpec>()
                .unwrap(),
            TrafficSpec::Hotspot {
                load: 0.4,
                hot_node: 0,
                hot_fraction: 0.2,
            }
        );
        assert_eq!(
            "Uniform(1)".parse::<TrafficSpec>().unwrap(),
            TrafficSpec::Uniform { load: 1.0 }
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "uniform",
            "uniform(",
            "uniform 0.3",
            "uniform(0.3,1)",
            "perm(0.3)",
            "hotspot(0.3,0)",
            "gravity(0.3)",
            "perm(0.3,x)",
            "uniform(zero)",
        ] {
            assert!(
                bad.parse::<TrafficSpec>().is_err(),
                "{bad} should not parse"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_values_with_typed_errors() {
        // NaN, negative and above-1 loads are refused at parse time — the
        // injection machinery never sees them.
        for bad in [
            "uniform(NaN)",
            "uniform(-0.1)",
            "uniform(1.5)",
            "perm(inf,2)",
        ] {
            let err = bad.parse::<TrafficSpec>().unwrap_err();
            assert!(
                matches!(err, TrafficError::LoadOutOfRange { .. }),
                "{bad}: {err}"
            );
        }
        let err = "hotspot(0.3,0,1.2)".parse::<TrafficSpec>().unwrap_err();
        assert!(matches!(err, TrafficError::HotFractionOutOfRange { .. }));
        let err = "hotspot(0.3,0,NaN)".parse::<TrafficSpec>().unwrap_err();
        assert!(matches!(err, TrafficError::HotFractionOutOfRange { .. }));
        // validate() re-checks directly-constructed values.
        assert!(TrafficSpec::Uniform { load: f64::NAN }.validate().is_err());
        assert!(TrafficSpec::Hotspot {
            load: 0.5,
            hot_node: 0,
            hot_fraction: -1.0
        }
        .validate()
        .is_err());
        assert!(TrafficSpec::Uniform { load: 0.5 }.validate().is_ok());
    }

    #[test]
    fn bind_checks_topology_preconditions() {
        // Transpose needs a square processor count.
        let transpose = TrafficSpec::Transpose { load: 0.5 };
        assert!(transpose.bind(16).is_ok());
        let err = transpose.bind(24).unwrap_err();
        assert!(
            matches!(err, TrafficError::NotSquare { nodes: 24, .. }),
            "{err}"
        );
        // Bit-reversal needs a power of two.
        let bitrev = TrafficSpec::BitReversal { load: 0.5 };
        assert!(bitrev.bind(32).is_ok());
        let err = bitrev.bind(24).unwrap_err();
        assert!(
            matches!(err, TrafficError::NotPowerOfTwo { nodes: 24, .. }),
            "{err}"
        );
        // The hot node must exist.
        let hotspot = TrafficSpec::Hotspot {
            load: 0.4,
            hot_node: 24,
            hot_fraction: 0.2,
        };
        let err = hotspot.bind(24).unwrap_err();
        assert!(
            matches!(
                err,
                TrafficError::HotNodeOutOfRange {
                    hot_node: 24,
                    nodes: 24,
                    ..
                }
            ),
            "{err}"
        );
        assert!(hotspot.bind(25).is_ok());
        // Unconstrained patterns bind anywhere.
        assert!(TrafficSpec::Uniform { load: 0.2 }.bind(7).is_ok());
        assert!(TrafficSpec::Permutation {
            load: 0.2,
            offset: 3
        }
        .bind(7)
        .is_ok());
    }

    #[test]
    fn bound_patterns_match_their_spec() {
        let spec: TrafficSpec = "perm(0.5,7)".parse().unwrap();
        assert_eq!(
            spec.bind(10).unwrap(),
            DemandSpec::Pattern(TrafficPattern::Permutation {
                load: 0.5,
                offset: 7
            })
        );
        assert_eq!(spec.offered_load(), 0.5);
        assert_eq!(spec.pattern_name(), "perm");
        // effective_load delegates to the pattern's fixed-point accounting.
        let degenerate: TrafficSpec = "perm(0.5,10)".parse().unwrap();
        assert_eq!(degenerate.effective_load(10), 0.0);
    }

    #[test]
    fn parses_every_demand_process() {
        let cases = [
            (
                "poisson(0.3)",
                TrafficSpec::Poisson {
                    rate: 0.3,
                    dst: None,
                },
            ),
            (
                "poisson(1.5,5)",
                TrafficSpec::Poisson {
                    rate: 1.5,
                    dst: Some(5),
                },
            ),
            (
                "onoff(0.8,5,15)",
                TrafficSpec::OnOff {
                    rate: 0.8,
                    burst_len: 5,
                    idle_len: 15,
                },
            ),
            (
                "mix(0.25,2,0.05)",
                TrafficSpec::Mix {
                    fraction: 0.25,
                    elephant_rate: 2.0,
                    mice_rate: 0.05,
                },
            ),
            (
                "trace(examples/demand.trc)",
                TrafficSpec::Trace {
                    path: "examples/demand.trc".into(),
                },
            ),
        ];
        for (text, expected) in cases {
            assert_eq!(text.parse::<TrafficSpec>().unwrap(), expected, "{text}");
            assert_eq!(expected.to_string(), text);
            assert!(expected.validate().is_ok(), "{text}");
        }
    }

    #[test]
    fn rejects_bad_rates_and_bursts_with_typed_errors() {
        for bad in [
            "poisson(NaN)",
            "poisson(-0.3)",
            "onoff(inf,2,2)",
            "mix(0.2,0.5,-1)",
        ] {
            let err = bad.parse::<TrafficSpec>().unwrap_err();
            assert!(
                matches!(err, TrafficError::RateOutOfRange { .. }),
                "{bad}: {err}"
            );
        }
        // Rates above 1 are fine — they are arrival rates, not
        // probabilities.
        assert!("poisson(3.5)".parse::<TrafficSpec>().is_ok());
        let err = "onoff(0.5,0,10)".parse::<TrafficSpec>().unwrap_err();
        assert!(matches!(err, TrafficError::ZeroBurst { .. }), "{err}");
        let err = "mix(1.5,1,0.1)".parse::<TrafficSpec>().unwrap_err();
        assert!(
            matches!(err, TrafficError::MixFractionOutOfRange { .. }),
            "{err}"
        );
        for bad in ["trace()", "poisson(0.3,1,2)", "onoff(0.5,2)", "mix(0.2)"] {
            assert!(bad.parse::<TrafficSpec>().is_err(), "{bad}");
        }
        // validate() re-checks directly-constructed values.
        assert!(TrafficSpec::Poisson {
            rate: f64::NAN,
            dst: None
        }
        .validate()
        .is_err());
        assert!(TrafficSpec::OnOff {
            rate: 0.5,
            burst_len: 0,
            idle_len: 3
        }
        .validate()
        .is_err());
    }

    #[test]
    fn poisson_destination_is_checked_at_bind_time() {
        let spec: TrafficSpec = "poisson(0.3,8)".parse().unwrap();
        assert!(spec.bind(9).is_ok());
        let err = spec.bind(8).unwrap_err();
        assert!(
            matches!(
                err,
                TrafficError::DestinationOutOfRange {
                    node: 8,
                    nodes: 8,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn trace_bind_validates_the_file() {
        let dir = std::env::temp_dir();
        let good = dir.join("otis_traffic_spec_good.trc");
        std::fs::write(&good, "0 0 1\n2 1 0\n").unwrap();
        let spec = TrafficSpec::Trace {
            path: good.to_str().unwrap().into(),
        };
        assert!(spec.is_trace());
        assert_eq!(
            spec.bind(4).unwrap(),
            DemandSpec::Trace {
                path: good.to_str().unwrap().into(),
                // 2 events over slots 0..=2 on 4 nodes.
                offered_load: Some(2.0 / 12.0),
            }
        );
        // Node ids are validated against the bound network size.
        let err = spec.bind(1).unwrap_err();
        assert!(
            matches!(
                err,
                TrafficError::Trace {
                    error: TraceError::NodeOutOfRange { line: 1, .. },
                    ..
                }
            ),
            "{err}"
        );
        // A missing file is a typed I/O refusal, not a panic.
        let missing: TrafficSpec = "trace(/nonexistent/demand.trc)".parse().unwrap();
        let err = missing.bind(4).unwrap_err();
        assert!(matches!(err, TrafficError::TraceIo { .. }), "{err}");
        std::fs::remove_file(&good).ok();
    }

    #[test]
    fn error_displays_are_informative() {
        let err = "gravity(0.3)".parse::<TrafficSpec>().unwrap_err();
        assert!(err.to_string().contains("gravity"));
        assert!(err.to_string().contains("supported"));
        let err = "uniform(2)".parse::<TrafficSpec>().unwrap_err();
        assert!(err.to_string().contains("[0, 1]"));
        let err = TrafficSpec::Transpose { load: 0.5 }.bind(24).unwrap_err();
        assert!(err.to_string().contains("square"));
        let err = TrafficSpec::BitReversal { load: 0.5 }.bind(24).unwrap_err();
        assert!(err.to_string().contains("power-of-two"));
    }
}
