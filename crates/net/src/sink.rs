//! Streaming result sinks: the observer side of the scenario engine.
//!
//! [`crate::engine::run_grid_streaming`] hands each completed grid cell to a
//! [`RowSink`] **in deterministic grid order** while later cells are still
//! running, so a grid's memory footprint is bounded by the engine's reorder
//! window instead of its cell count.  This module defines the sink trait and
//! the built-in sinks:
//!
//! * [`CollectSink`] — collects rows into a `Vec` (what
//!   [`crate::engine::run_grid`] is built on);
//! * [`TableSink`] — the human-readable fixed-width table of the `scenarios`
//!   CLI (undefined averages render as `-`);
//! * [`CsvSink`] — RFC-4180-style CSV with a header row; undefined averages
//!   become **empty fields**, spec strings containing commas are quoted;
//! * [`JsonLinesSink`] — one JSON object per row, hand-rolled (the workspace
//!   is offline — no serde); undefined averages become `null`.
//!
//! The machine formats share one stable field-level schema:
//! [`ScenarioRow::field_names`] / [`ScenarioRow::field_values`], which extend
//! [`SimMetrics::FIELD_NAMES`] with the cell's grid coordinates.  The schema
//! is append-only so downstream tooling can rely on existing columns.
//!
//! ## The schema tiers
//!
//! Grids that exercise the wavelength layer
//! ([`ScenarioGrid::wavelength_layer_enabled`]) stream the *extended*
//! schema — the legacy columns plus the wavelength metrics (`wavelengths`,
//! `blocked`, `alt_routed`, `blocking_ratio`, `wavelength_utilization`,
//! `alt_route_rate`) and the `cost_per_bit` composite.  Capacity-1 grids
//! stream the legacy schema, **byte-identical** to the pre-wavelength
//! engine; each sink picks its tier in [`RowSink::on_start`] from the grid
//! about to run.  In the extended tier, statistics a capacity-1 cell leaves
//! undefined render as the format's native undefined sentinel — `-` in the
//! table, an empty field in CSV, `null` in JSON Lines — never the string
//! `"NaN"`.
//!
//! Grids with a non-empty fault schedule on any axis entry
//! ([`ScenarioGrid::fault_schedule_enabled`]) stream the *restoration*
//! schema: the extended columns, then the `fault_schedule` coordinate (the
//! schedule's round-trippable display form, `none` on static cells), then
//! the restoration metrics (`fault_events`, `in_flight_at_failure`,
//! `dropped_by_failure`, `restore_slots`, `post_failure_latency_peak`).
//! On cells where no kernel swap happened the restoration statistics are
//! undefined and render as the same native sentinels; schedule-free grids
//! never see any of these columns.

use crate::engine::{ScenarioGrid, ScenarioRow};
use otis_routing::FaultSet;
use otis_sim::{MetricValue, SimMetrics};
use std::fmt::{self, Write as _};
use std::io::{self, Write};

/// A streaming observer of scenario rows.
///
/// [`crate::engine::run_grid_streaming`] calls [`RowSink::on_start`] once
/// before any cell runs, [`RowSink::on_row`] once per cell **in grid order**
/// (`index` counts 0, 1, 2, … with no gaps), and [`RowSink::finish`] once
/// after the last row.  An error from any method aborts the run and surfaces
/// as [`crate::NetworkError::Sink`]; `finish` is *not* called after an
/// aborted run.
pub trait RowSink {
    /// Called once before execution starts, with the grid about to run.
    fn on_start(&mut self, grid: &ScenarioGrid) -> io::Result<()> {
        let _ = grid;
        Ok(())
    }

    /// Called once per cell, in grid order; `index` is the row's position.
    fn on_row(&mut self, index: usize, row: ScenarioRow) -> io::Result<()>;

    /// Called once after the last row; flush buffered output here.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// One serializable field of a [`ScenarioRow`]: grid coordinates are text or
/// integers, metrics come from [`SimMetrics::field_values`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string-valued field (spec, traffic, fault pattern).
    Text(String),
    /// An exact counter.
    Int(u64),
    /// A float statistic; `NaN` marks an undefined value and renders as an
    /// empty CSV field or a JSON `null`, never the string `"NaN"`.
    Float(f64),
}

impl From<MetricValue> for FieldValue {
    fn from(value: MetricValue) -> Self {
        match value {
            MetricValue::Int(v) => FieldValue::Int(v),
            MetricValue::Float(v) => FieldValue::Float(v),
        }
    }
}

impl FieldValue {
    /// Renders the field for a CSV record: undefined floats are empty,
    /// text is quoted when it contains a comma, quote or newline.
    pub fn to_csv_field(&self) -> String {
        match self {
            FieldValue::Text(s) => csv_escape(s),
            FieldValue::Int(v) => v.to_string(),
            FieldValue::Float(v) if v.is_finite() => v.to_string(),
            FieldValue::Float(_) => String::new(),
        }
    }

    /// Renders the field as a JSON value: undefined floats are `null`,
    /// text is a JSON string with full escaping.
    pub fn to_json_value(&self) -> String {
        match self {
            FieldValue::Text(s) => json_escape(s),
            FieldValue::Int(v) => v.to_string(),
            FieldValue::Float(v) if v.is_finite() => v.to_string(),
            FieldValue::Float(_) => "null".to_string(),
        }
    }
}

/// Quotes a CSV field when needed (comma, double quote, CR or LF inside),
/// doubling any inner quotes, per RFC 4180.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders a JSON string literal with the mandatory escapes.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail")
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a fault pattern for the machine formats: sorted failed nodes,
/// then failed arcs as `u->v`, space-separated; empty for an intact cell.
fn render_faults(faults: &FaultSet) -> String {
    let mut parts: Vec<String> = faults
        .sorted_nodes()
        .into_iter()
        .map(|n| n.to_string())
        .collect();
    parts.extend(
        faults
            .sorted_arcs()
            .into_iter()
            .map(|(u, v)| format!("{u}->{v}")),
    );
    parts.join(" ")
}

/// The grid-coordinate columns every schema tier leads with.
const COORDINATE_NAMES: [&str; 6] = ["spec", "traffic", "load", "seed", "fault_count", "faults"];

impl ScenarioRow {
    /// Column names of the legacy machine-readable schema, in emission
    /// order: the cell's grid coordinates followed by the core
    /// [`SimMetrics::FIELD_NAMES`] prefix.  The schema is append-only and
    /// byte-identical to the pre-wavelength engine.
    pub fn field_names() -> Vec<&'static str> {
        let mut names = COORDINATE_NAMES.to_vec();
        names.extend(&SimMetrics::FIELD_NAMES[..SimMetrics::CORE_FIELD_COUNT]);
        names
    }

    /// Column names of the extended (wavelength-layer) schema: the legacy
    /// columns, then the wavelength metrics, then the `cost_per_bit`
    /// composite.  Truncates [`SimMetrics::FIELD_NAMES`] at
    /// [`SimMetrics::EXTENDED_FIELD_COUNT`], so schedule-free wavelength
    /// runs stay byte-identical to the pre-restoration engine.
    pub fn field_names_extended() -> Vec<&'static str> {
        let mut names = COORDINATE_NAMES.to_vec();
        names.extend(&SimMetrics::FIELD_NAMES[..SimMetrics::EXTENDED_FIELD_COUNT]);
        names.push("cost_per_bit");
        names
    }

    /// Column names of the restoration (fault-timeline) schema: the
    /// extended columns, then the `fault_schedule` coordinate, then the
    /// restoration metrics.
    pub fn field_names_restoration() -> Vec<&'static str> {
        let mut names = Self::field_names_extended();
        names.push("fault_schedule");
        names.extend(&SimMetrics::FIELD_NAMES[SimMetrics::EXTENDED_FIELD_COUNT..]);
        names
    }

    /// The grid-coordinate values shared by both schema tiers.
    fn coordinate_values(&self) -> Vec<FieldValue> {
        vec![
            FieldValue::Text(self.spec.to_string()),
            FieldValue::Text(self.traffic.to_string()),
            FieldValue::Float(self.offered_load),
            FieldValue::Int(self.seed),
            FieldValue::Int(self.fault_count as u64),
            FieldValue::Text(render_faults(&self.faults)),
        ]
    }

    /// The field values matching [`ScenarioRow::field_names`] position by
    /// position.
    pub fn field_values(&self) -> Vec<FieldValue> {
        let mut values = self.coordinate_values();
        values.extend(
            self.metrics
                .field_values()
                .into_iter()
                .take(SimMetrics::CORE_FIELD_COUNT)
                .map(FieldValue::from),
        );
        values
    }

    /// The field values matching [`ScenarioRow::field_names_extended`]
    /// position by position.
    pub fn field_values_extended(&self) -> Vec<FieldValue> {
        let mut values = self.coordinate_values();
        values.extend(
            self.metrics
                .field_values()
                .into_iter()
                .take(SimMetrics::EXTENDED_FIELD_COUNT)
                .map(FieldValue::from),
        );
        values.push(FieldValue::Float(self.cost_per_delivered_bit()));
        values
    }

    /// The field values matching [`ScenarioRow::field_names_restoration`]
    /// position by position.
    pub fn field_values_restoration(&self) -> Vec<FieldValue> {
        let mut values = self.field_values_extended();
        values.push(FieldValue::Text(self.fault_schedule.to_string()));
        values.extend(
            self.metrics
                .field_values()
                .into_iter()
                .skip(SimMetrics::EXTENDED_FIELD_COUNT)
                .map(FieldValue::from),
        );
        values
    }
}

/// Collects streamed rows into a `Vec`, preserving grid order.
/// [`crate::engine::run_grid`] is this sink plus
/// [`crate::engine::run_grid_streaming`].
#[derive(Debug, Default)]
pub struct CollectSink {
    rows: Vec<ScenarioRow>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// The rows collected so far, in grid order.
    pub fn rows(&self) -> &[ScenarioRow] {
        &self.rows
    }

    /// Consumes the sink, returning the collected rows.
    pub fn into_rows(self) -> Vec<ScenarioRow> {
        self.rows
    }
}

impl RowSink for CollectSink {
    fn on_row(&mut self, _index: usize, row: ScenarioRow) -> io::Result<()> {
        self.rows.push(row);
        Ok(())
    }
}

/// Streams rows as the human-readable fixed-width table (header first,
/// undefined averages as `-`) — the `scenarios` CLI's default format.
/// Wavelength-layer grids get the extended columns; see the module docs.
#[derive(Debug)]
pub struct TableSink<W: Write> {
    writer: W,
    extended: bool,
    restoration: bool,
}

impl<W: Write> TableSink<W> {
    /// A table sink over any writer.
    pub fn new(writer: W) -> Self {
        TableSink {
            writer,
            extended: false,
            restoration: false,
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> RowSink for TableSink<W> {
    fn on_start(&mut self, grid: &ScenarioGrid) -> io::Result<()> {
        self.extended = grid.wavelength_layer_enabled();
        self.restoration = grid.fault_schedule_enabled();
        if self.restoration {
            writeln!(self.writer, "{}", ScenarioRow::table_header_restoration())
        } else if self.extended {
            writeln!(self.writer, "{}", ScenarioRow::table_header_extended())
        } else {
            writeln!(self.writer, "{}", ScenarioRow::table_header())
        }
    }

    fn on_row(&mut self, _index: usize, row: ScenarioRow) -> io::Result<()> {
        if self.restoration {
            writeln!(self.writer, "{}", row.as_table_row_restoration())
        } else if self.extended {
            writeln!(self.writer, "{}", row.as_table_row_extended())
        } else {
            writeln!(self.writer, "{}", row.as_table_row())
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Streams rows as CSV with a header record.  Undefined averages (zero
/// deliveries) are **empty fields**, never `NaN` or `-`; spec and traffic
/// strings are quoted because they contain commas.  Wavelength-layer grids
/// get the extended columns; see the module docs.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    writer: W,
    extended: bool,
    restoration: bool,
}

impl<W: Write> CsvSink<W> {
    /// A CSV sink over any writer.
    pub fn new(writer: W) -> Self {
        CsvSink {
            writer,
            extended: false,
            restoration: false,
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> RowSink for CsvSink<W> {
    fn on_start(&mut self, grid: &ScenarioGrid) -> io::Result<()> {
        self.extended = grid.wavelength_layer_enabled();
        self.restoration = grid.fault_schedule_enabled();
        let names = if self.restoration {
            ScenarioRow::field_names_restoration()
        } else if self.extended {
            ScenarioRow::field_names_extended()
        } else {
            ScenarioRow::field_names()
        };
        writeln!(self.writer, "{}", names.join(","))
    }

    fn on_row(&mut self, _index: usize, row: ScenarioRow) -> io::Result<()> {
        let values = if self.restoration {
            row.field_values_restoration()
        } else if self.extended {
            row.field_values_extended()
        } else {
            row.field_values()
        };
        let record: Vec<String> = values.iter().map(FieldValue::to_csv_field).collect();
        writeln!(self.writer, "{}", record.join(","))
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Streams rows as JSON Lines: one hand-rolled JSON object per row (the
/// workspace is offline — no serde).  Undefined averages are `null`, never
/// the string `"NaN"` or `"-"`.  Wavelength-layer grids get the extended
/// keys; see the module docs.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    writer: W,
    extended: bool,
    restoration: bool,
    /// The field names, fixed in [`RowSink::on_start`] (legacy schema until
    /// then): every row of a run shares the same schema.
    names: Vec<&'static str>,
}

impl<W: Write> JsonLinesSink<W> {
    /// A JSON Lines sink over any writer.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer,
            extended: false,
            restoration: false,
            names: ScenarioRow::field_names(),
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> RowSink for JsonLinesSink<W> {
    fn on_start(&mut self, grid: &ScenarioGrid) -> io::Result<()> {
        self.extended = grid.wavelength_layer_enabled();
        self.restoration = grid.fault_schedule_enabled();
        self.names = if self.restoration {
            ScenarioRow::field_names_restoration()
        } else if self.extended {
            ScenarioRow::field_names_extended()
        } else {
            ScenarioRow::field_names()
        };
        Ok(())
    }

    fn on_row(&mut self, _index: usize, row: ScenarioRow) -> io::Result<()> {
        let values = if self.restoration {
            row.field_values_restoration()
        } else if self.extended {
            row.field_values_extended()
        } else {
            row.field_values()
        };
        let mut line = String::from("{");
        for (i, (name, value)) in self.names.iter().zip(values.iter()).enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('"');
            line.push_str(name);
            line.push_str("\":");
            line.push_str(&value.to_json_value());
        }
        line.push('}');
        writeln!(self.writer, "{line}")
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// The machine-readable output formats of the result surface, as named by
/// the `scenarios` CLI's `--format` flag and the `.scn` `format` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable fixed-width table ([`TableSink`]); the default.
    #[default]
    Table,
    /// Comma-separated values with a header record ([`CsvSink`]).
    Csv,
    /// One JSON object per line ([`JsonLinesSink`]).
    JsonLines,
}

impl OutputFormat {
    /// Builds the matching sink over the given writer.
    pub fn sink<W: Write + 'static>(self, writer: W) -> Box<dyn RowSink> {
        match self {
            OutputFormat::Table => Box::new(TableSink::new(writer)),
            OutputFormat::Csv => Box::new(CsvSink::new(writer)),
            OutputFormat::JsonLines => Box::new(JsonLinesSink::new(writer)),
        }
    }
}

impl fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OutputFormat::Table => "table",
            OutputFormat::Csv => "csv",
            OutputFormat::JsonLines => "jsonl",
        })
    }
}

/// The format name was not one of `table`, `csv`, `jsonl`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFormat {
    /// The unrecognised name.
    pub input: String,
}

impl fmt::Display for UnknownFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown output format '{}' (supported: table, csv, jsonl)",
            self.input
        )
    }
}

impl std::error::Error for UnknownFormat {}

impl std::str::FromStr for OutputFormat {
    type Err = UnknownFormat;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "table" => Ok(OutputFormat::Table),
            "csv" => Ok(OutputFormat::Csv),
            "jsonl" => Ok(OutputFormat::JsonLines),
            _ => Err(UnknownFormat {
                input: s.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_grid_streaming;

    fn one_row(load: f64) -> ScenarioRow {
        let grid = crate::engine::ScenarioGrid::new(vec!["POPS(2,2)".parse().unwrap()])
            .loads(&[load])
            .slots(50);
        let mut sink = CollectSink::new();
        run_grid_streaming(&grid, 1, &mut sink).unwrap();
        sink.into_rows().remove(0)
    }

    #[test]
    fn field_names_and_values_line_up() {
        let row = one_row(0.3);
        let names = ScenarioRow::field_names();
        let values = row.field_values();
        assert_eq!(names.len(), values.len());
        assert_eq!(names[0], "spec");
        assert_eq!(values[0], FieldValue::Text("POPS(2,2)".to_string()));
        // The legacy schema ends at the core metric prefix, byte-identical
        // to the pre-wavelength engine.
        assert_eq!(names.len(), 6 + SimMetrics::CORE_FIELD_COUNT);
        assert_eq!(
            names[6 + SimMetrics::CORE_FIELD_COUNT - 1],
            "delivery_ratio"
        );
        assert!(!names.contains(&"blocking_ratio"));
    }

    #[test]
    fn extended_schema_appends_the_wavelength_columns() {
        let row = one_row(0.3);
        let names = ScenarioRow::field_names_extended();
        let values = row.field_values_extended();
        assert_eq!(names.len(), values.len());
        assert_eq!(names.len(), 6 + SimMetrics::EXTENDED_FIELD_COUNT + 1);
        // The restoration columns belong to the next tier up, so
        // schedule-free wavelength runs stay byte-identical.
        assert!(!names.contains(&"fault_events"));
        // Append-only: the legacy schema is an exact prefix.
        let legacy = ScenarioRow::field_names();
        assert_eq!(&names[..legacy.len()], legacy.as_slice());
        for column in [
            "wavelengths",
            "blocked",
            "alt_routed",
            "blocking_ratio",
            "wavelength_utilization",
            "alt_route_rate",
            "cost_per_bit",
        ] {
            assert!(names.contains(&column), "{column} missing");
        }
        assert_eq!(*names.last().unwrap(), "cost_per_bit");
    }

    #[test]
    fn wavelength_off_cells_render_undefined_sentinels_in_every_format() {
        // A grid with alternate routing enabled streams the extended schema,
        // but a capacity-1 hot-potato cell never enters wavelength mode: its
        // wavelength statistics are undefined and must surface as the
        // format's native sentinel — '-', empty, null — never "NaN".
        let grid = crate::engine::ScenarioGrid::new(vec!["DB(2,3)".parse().unwrap()])
            .loads(&[0.3])
            .slots(60)
            .alt_paths(3);
        assert!(grid.wavelength_layer_enabled());

        let mut collect = CollectSink::new();
        run_grid_streaming(&grid, 1, &mut collect).unwrap();
        let row = collect.into_rows().remove(0);
        assert_eq!(row.metrics.wavelengths, 0, "layer-off sentinel");
        assert!(row.metrics.blocking_ratio().is_nan());

        let table = row.as_table_row_extended();
        assert!(!table.contains("NaN"), "{table}");
        assert_eq!(
            table.split_whitespace().count(),
            ScenarioRow::table_header_extended()
                .split_whitespace()
                .count()
        );

        let names = ScenarioRow::field_names_extended();
        let values = row.field_values_extended();
        for stat in ["blocking_ratio", "wavelength_utilization", "alt_route_rate"] {
            let i = names.iter().position(|&n| n == stat).unwrap();
            assert_eq!(values[i].to_csv_field(), "", "{stat}");
            assert_eq!(values[i].to_json_value(), "null", "{stat}");
        }

        let mut csv = CsvSink::new(Vec::new());
        run_grid_streaming(&grid, 1, &mut csv).unwrap();
        let text = String::from_utf8(csv.into_inner()).unwrap();
        assert!(text.lines().next().unwrap().ends_with(",cost_per_bit"));
        assert!(!text.contains("NaN"), "{text}");

        let mut jsonl = JsonLinesSink::new(Vec::new());
        run_grid_streaming(&grid, 1, &mut jsonl).unwrap();
        let line = String::from_utf8(jsonl.into_inner()).unwrap();
        assert!(line.contains("\"blocking_ratio\":null"), "{line}");
        assert!(line.contains("\"wavelength_utilization\":null"), "{line}");
        assert!(!line.contains("NaN"), "{line}");
    }

    #[test]
    fn capacity_one_grids_stay_on_the_legacy_schema() {
        // The byte-identity contract at the sink level: a wavelengths=1,
        // alt_paths=1 grid streams exactly the legacy columns — no
        // wavelength headers, no cost column, in any format.
        let grid = crate::engine::ScenarioGrid::new(vec!["POPS(2,2)".parse().unwrap()])
            .loads(&[0.2])
            .slots(50);
        assert!(!grid.wavelength_layer_enabled());
        let mut csv = CsvSink::new(Vec::new());
        run_grid_streaming(&grid, 1, &mut csv).unwrap();
        let text = String::from_utf8(csv.into_inner()).unwrap();
        assert!(text.lines().next().unwrap().ends_with(",delivery_ratio"));
        assert!(!text.contains("blocking_ratio"), "{text}");
        let mut jsonl = JsonLinesSink::new(Vec::new());
        run_grid_streaming(&grid, 1, &mut jsonl).unwrap();
        let line = String::from_utf8(jsonl.into_inner()).unwrap();
        assert!(!line.contains("cost_per_bit"), "{line}");
        let mut table = TableSink::new(Vec::new());
        run_grid_streaming(&grid, 1, &mut table).unwrap();
        let text = String::from_utf8(table.into_inner()).unwrap();
        assert!(!text.contains("wavel"), "{text}");
    }

    #[test]
    fn restoration_schema_appends_schedule_and_restoration_columns() {
        // A grid with a non-empty schedule on the axis streams the
        // restoration tier in every format: the extended columns are an
        // exact prefix, then fault_schedule, then the restoration metrics.
        // Static cells inside the same grid render undefined sentinels.
        let schedule: otis_sim::FaultSchedule = "fail(node 1)@10; recover@40".parse().unwrap();
        let grid = crate::engine::ScenarioGrid::new(vec!["DB(2,3)".parse().unwrap()])
            .loads(&[0.3])
            .slots(80)
            .fault_schedules(vec![otis_sim::FaultSchedule::empty(), schedule.clone()]);
        assert!(grid.fault_schedule_enabled());

        let names = ScenarioRow::field_names_restoration();
        let extended = ScenarioRow::field_names_extended();
        assert_eq!(&names[..extended.len()], extended.as_slice());
        assert_eq!(
            &names[extended.len()..],
            &[
                "fault_schedule",
                "fault_events",
                "in_flight_at_failure",
                "dropped_by_failure",
                "restore_slots",
                "post_failure_latency_peak"
            ]
        );

        let mut collect = CollectSink::new();
        run_grid_streaming(&grid, 1, &mut collect).unwrap();
        let rows = collect.into_rows();
        for row in &rows {
            assert_eq!(names.len(), row.field_values_restoration().len());
        }

        let mut csv = CsvSink::new(Vec::new());
        run_grid_streaming(&grid, 1, &mut csv).unwrap();
        let text = String::from_utf8(csv.into_inner()).unwrap();
        assert!(
            text.lines()
                .next()
                .unwrap()
                .ends_with(",fault_schedule,fault_events,in_flight_at_failure,dropped_by_failure,restore_slots,post_failure_latency_peak"),
            "{text}"
        );

        let mut jsonl = JsonLinesSink::new(Vec::new());
        run_grid_streaming(&grid, 1, &mut jsonl).unwrap();
        let text = String::from_utf8(jsonl.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // The static cell: schedule "none", undefined restoration stats.
        assert!(
            lines[0].contains("\"fault_schedule\":\"none\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"fault_events\":0"), "{}", lines[0]);
        assert!(
            lines[0].contains("\"in_flight_at_failure\":null"),
            "{}",
            lines[0]
        );
        // The scheduled cell: both events fired, exact counters.
        assert!(
            lines[1].contains(&format!("\"fault_schedule\":\"{schedule}\"")),
            "{}",
            lines[1]
        );
        assert!(lines[1].contains("\"fault_events\":2"), "{}", lines[1]);
        assert!(
            !lines[1].contains("\"in_flight_at_failure\":null"),
            "{}",
            lines[1]
        );

        let mut table = TableSink::new(Vec::new());
        run_grid_streaming(&grid, 1, &mut table).unwrap();
        let text = String::from_utf8(table.into_inner()).unwrap();
        assert!(text.lines().next().unwrap().ends_with("schedule"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
        assert!(text.contains(&schedule.to_string()), "{text}");
    }

    #[test]
    fn schedule_free_grids_never_see_restoration_columns() {
        // The byte-identity guard one tier down: a wavelength-layer grid
        // without schedules must not leak any restoration column.
        let grid = crate::engine::ScenarioGrid::new(vec!["DB(2,3)".parse().unwrap()])
            .loads(&[0.3])
            .slots(60)
            .alt_paths(3);
        assert!(grid.wavelength_layer_enabled());
        assert!(!grid.fault_schedule_enabled());
        let mut csv = CsvSink::new(Vec::new());
        run_grid_streaming(&grid, 1, &mut csv).unwrap();
        let text = String::from_utf8(csv.into_inner()).unwrap();
        assert!(text.lines().next().unwrap().ends_with(",cost_per_bit"));
        assert!(!text.contains("fault_schedule"), "{text}");
        assert!(!text.contains("fault_events"), "{text}");
    }

    #[test]
    fn csv_quotes_fields_with_commas_and_doubles_inner_quotes() {
        assert_eq!(csv_escape("SK(4,2,2)"), "\"SK(4,2,2)\"");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a\"b"), "\"a\"\"b\"");
        let row = one_row(0.3);
        let csv = row.field_values()[0].to_csv_field();
        assert_eq!(csv, "\"POPS(2,2)\"");
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        assert_eq!(json_escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_escape("a\nb\u{1}"), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn zero_delivery_sentinels_are_format_aware() {
        // The '-' placeholder belongs to the text table only: CSV gets empty
        // fields and JSONL gets null — never the string "-" or "NaN".
        let row = one_row(0.0);
        assert_eq!(row.metrics.delivered, 0);

        let table = row.as_table_row();
        assert!(table.contains('-'), "{table}");
        assert!(!table.contains("NaN"), "{table}");

        let latency = &row.field_values()[ScenarioRow::field_names()
            .iter()
            .position(|&n| n == "avg_latency")
            .unwrap()];
        assert_eq!(latency.to_csv_field(), "");
        assert_eq!(latency.to_json_value(), "null");

        let record: Vec<String> = row
            .field_values()
            .iter()
            .map(FieldValue::to_csv_field)
            .collect();
        let csv = record.join(",");
        assert!(csv.contains(",,"), "{csv}");
        assert!(!csv.contains("NaN"), "{csv}");

        let mut jsonl = JsonLinesSink::new(Vec::new());
        jsonl.on_row(0, row).unwrap();
        let line = String::from_utf8(jsonl.into_inner()).unwrap();
        assert!(line.contains("\"avg_latency\":null"), "{line}");
        assert!(line.contains("\"avg_hops\":null"), "{line}");
        assert!(!line.contains("NaN"), "{line}");
        assert!(!line.contains("\"-\""), "{line}");
    }

    #[test]
    fn table_sink_matches_manual_rendering() {
        let grid = crate::engine::ScenarioGrid::new(vec!["POPS(2,2)".parse().unwrap()])
            .loads(&[0.2, 0.4])
            .slots(60);
        let mut table = TableSink::new(Vec::new());
        run_grid_streaming(&grid, 2, &mut table).unwrap();
        let text = String::from_utf8(table.into_inner()).unwrap();
        let rows = crate::engine::run_grid(&grid, 1).unwrap();
        let mut expected = ScenarioRow::table_header();
        expected.push('\n');
        for row in &rows {
            expected.push_str(&row.as_table_row());
            expected.push('\n');
        }
        assert_eq!(text, expected);
    }

    #[test]
    fn csv_sink_emits_header_plus_one_record_per_cell() {
        let grid = crate::engine::ScenarioGrid::new(vec!["POPS(2,2)".parse().unwrap()])
            .loads(&[0.2, 0.4])
            .slots(60);
        let mut csv = CsvSink::new(Vec::new());
        run_grid_streaming(&grid, 2, &mut csv).unwrap();
        let text = String::from_utf8(csv.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + grid.cell_count());
        assert!(lines[0].starts_with("spec,traffic,load,seed,"));
        // The spec contains commas, so it is quoted; the workload does not.
        assert!(
            lines[1].starts_with("\"POPS(2,2)\",uniform(0.2),"),
            "{}",
            lines[1]
        );
    }

    #[test]
    fn output_format_round_trips_and_rejects_unknown_names() {
        for format in [
            OutputFormat::Table,
            OutputFormat::Csv,
            OutputFormat::JsonLines,
        ] {
            assert_eq!(format.to_string().parse::<OutputFormat>(), Ok(format));
        }
        assert_eq!("CSV".parse::<OutputFormat>(), Ok(OutputFormat::Csv));
        let err = "yaml".parse::<OutputFormat>().unwrap_err();
        assert!(err.to_string().contains("yaml"), "{err}");
        assert!(err.to_string().contains("jsonl"), "{err}");
        assert_eq!(OutputFormat::default(), OutputFormat::Table);
    }

    #[test]
    fn fault_patterns_render_as_sorted_nodes() {
        assert_eq!(render_faults(&FaultSet::new()), "");
        assert_eq!(render_faults(&FaultSet::from_nodes([3, 1])), "1 3");
        let mut faults = FaultSet::from_nodes([2]);
        faults.fail_arc(0, 1);
        assert_eq!(render_faults(&faults), "2 0->1");
    }
}
