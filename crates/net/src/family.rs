//! The object-safe trait every network family implements, plus shared
//! helpers for families whose verification is structural (no optical design).

use crate::design::NetworkDesign;
use crate::error::NetworkError;
use crate::prepared::PreparedSim;
use crate::route::RouteOracle;
use crate::sim_options::SimOptions;
use crate::spec::NetworkSpec;
use crate::topology::NetworkTopology;
use otis_core::VerificationReport;
use otis_graphs::algorithms::{diameter, is_strongly_connected};
use otis_graphs::Digraph;
use otis_optics::HardwareInventory;
use otis_routing::FaultSet;
use otis_sim::{SimMetrics, TrafficPattern};

/// One network family behind the facade.  Object-safe: the facade holds a
/// `Box<dyn NetworkFamily>` and every capability — topology access, optical
/// design, verification, routing, simulation — goes through this surface.
pub trait NetworkFamily: std::fmt::Debug + Send + Sync {
    /// The validated spec this instance was built from.
    fn spec(&self) -> &NetworkSpec;

    /// The graph-level structure.
    fn topology(&self) -> NetworkTopology<'_>;

    /// The closed-form diameter predicted by the paper, when exact.
    fn predicted_diameter(&self) -> Option<u32>;

    /// The OTIS-based optical design, for families that have one.
    fn design(&self) -> Option<NetworkDesign>;

    /// The closed-form hardware inventory predicted by the paper, for
    /// families where one is stated (currently the stack-Kautz designs).
    fn predicted_inventory(&self) -> Option<HardwareInventory>;

    /// End-to-end verification: families with an optical design verify it by
    /// exact signal tracing against the target topology; families without
    /// one verify their structural invariants (closed-form node count,
    /// regularity, strong connectivity, diameter).
    fn verify(&self) -> Result<VerificationReport, NetworkError>;

    /// A route oracle over flat processor identifiers.
    fn router(&self) -> Box<dyn RouteOracle>;

    /// Prepares the family's immutable simulation kernel for the given fault
    /// pattern: the fault-filtered graph plus all routing/distance state,
    /// built once.  `alt_paths` is the total routes tried per hop in
    /// wavelength mode — the primary plus up to `alt_paths − 1` Yen
    /// alternates, computed here because alternate routes are kernel state
    /// (families without alternate routing ignore values above `1`).
    /// [`PreparedSim::run`] then only pays for the slot loop, so callers
    /// sweeping seeds, loads or traffic patterns over one
    /// `(network, fault-pattern)` pair should prepare once and run many
    /// times — exactly what the scenario engine's kernel cache does.
    fn prepare(&self, faults: &FaultSet, alt_paths: usize) -> PreparedSim;

    /// Runs a slotted simulation under the given traffic: the one-shot
    /// prepare-then-run wrapper over [`NetworkFamily::prepare`], with
    /// metrics byte-identical to preparing and running by hand.
    fn simulate(&self, traffic: &TrafficPattern, options: &SimOptions) -> SimMetrics {
        self.prepare(&options.faults, options.alt_paths)
            .run(traffic, options)
    }
}

/// Structural verification of a point-to-point family without an optical
/// design: node count, degree regularity, strong connectivity and diameter
/// against their closed forms.
pub(crate) fn structural_report(
    spec: &NetworkSpec,
    graph: &Digraph,
    expected_degree: usize,
    expected_diameter: Option<u32>,
) -> Result<VerificationReport, NetworkError> {
    let fail = |detail: String| NetworkError::Structure {
        network: spec.to_string(),
        detail,
    };
    if let Some(expected_nodes) = spec.node_count() {
        if graph.node_count() != expected_nodes {
            return Err(fail(format!(
                "node count {} differs from closed form {expected_nodes}",
                graph.node_count()
            )));
        }
    }
    if !graph.is_d_regular(expected_degree) {
        return Err(fail(format!("graph is not {expected_degree}-regular")));
    }
    if graph.node_count() > 1 {
        if !is_strongly_connected(graph) {
            return Err(fail("graph is not strongly connected".to_string()));
        }
        let measured = diameter(graph);
        if let (Some(measured), Some(expected)) = (measured, expected_diameter) {
            if measured != expected {
                return Err(fail(format!(
                    "measured diameter {measured} differs from closed form {expected}"
                )));
            }
        }
    }
    Ok(VerificationReport {
        processors: graph.node_count(),
        links: graph.arc_count(),
        components: 0,
        worst_case_loss_db: 0.0,
    })
}
