//! Packaged head-to-head comparison scenarios (experiment T5).
//!
//! The motivation of the paper — multi-OPS networks are "more viable and
//! cost-effective under current optical technology" — rests on comparisons
//! like the one packaged here: several networks are driven with the same
//! traffic and their accepted throughput and latency are tabulated across
//! offered loads.  With the [`crate::Network`] facade, a comparison scenario
//! is *data*: a list of spec strings plus a list of loads.

use crate::error::NetworkError;
use crate::network::Network;
use crate::sim_options::SimOptions;
use crate::spec::NetworkSpec;
use otis_sim::{SimMetrics, TrafficPattern};

/// One row of the comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Network name, e.g. `"POPS(9,8)"` (point-to-point baselines are
    /// suffixed with `" hot-potato"`).
    pub network: String,
    /// Number of processors.
    pub processors: usize,
    /// Number of couplers (multi-OPS) or links (point-to-point).
    pub channels: usize,
    /// Offered load (messages per processor per slot).
    pub offered_load: f64,
    /// Accepted throughput (delivered messages per processor per slot).
    pub throughput: f64,
    /// Average delivered latency in slots.
    pub average_latency: f64,
    /// Average optical hops per delivered message.
    pub average_hops: f64,
}

impl ComparisonRow {
    fn from_metrics(network: impl Into<String>, load: f64, m: &SimMetrics) -> Self {
        ComparisonRow {
            network: network.into(),
            processors: m.processors,
            channels: m.channels,
            offered_load: load,
            throughput: m.throughput(),
            average_latency: m.average_latency(),
            average_hops: m.average_hops(),
        }
    }

    /// Formats the row for the reproduction harness.
    pub fn as_table_row(&self) -> String {
        format!(
            "{:<16} {:>6} {:>8} {:>8.3} {:>10.4} {:>10.2} {:>8.2}",
            self.network,
            self.processors,
            self.channels,
            self.offered_load,
            self.throughput,
            self.average_latency,
            self.average_hops
        )
    }

    /// Header matching [`ComparisonRow::as_table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<16} {:>6} {:>8} {:>8} {:>10} {:>10} {:>8}",
            "network", "procs", "channels", "load", "thruput", "latency", "hops"
        )
    }
}

/// Drives every listed network with uniform traffic at every listed load for
/// `slots` slots each and returns one row per (load, network) pair, loads
/// outermost — the table shape of experiment T5.
pub fn compare_specs(
    specs: &[NetworkSpec],
    loads: &[f64],
    slots: u64,
    seed: u64,
) -> Result<Vec<ComparisonRow>, NetworkError> {
    let networks: Vec<Network> = specs
        .iter()
        .map(|&spec| Network::new(spec))
        .collect::<Result<_, _>>()?;
    let options = SimOptions::new(slots, seed);
    let mut rows = Vec::with_capacity(loads.len() * networks.len());
    for &load in loads {
        let traffic = TrafficPattern::Uniform { load };
        for network in &networks {
            let metrics = network.simulate(&traffic, &options);
            let name = if network.is_multi_ops() {
                network.name()
            } else {
                format!("{} hot-potato", network.name())
            };
            rows.push(ComparisonRow::from_metrics(name, load, &metrics));
        }
    }
    Ok(rows)
}

/// [`compare_specs`] over spec *strings* — the form a CLI or a config file
/// produces directly.
pub fn compare_spec_strs(
    specs: &[&str],
    loads: &[f64],
    slots: u64,
    seed: u64,
) -> Result<Vec<ComparisonRow>, NetworkError> {
    let parsed: Vec<NetworkSpec> = specs
        .iter()
        .map(|s| s.parse::<NetworkSpec>())
        .collect::<Result<_, _>>()
        .map_err(NetworkError::from)?;
    compare_specs(&parsed, loads, slots, seed)
}

/// The paper's three-way comparison as data: `SK(s, d, k)`, a POPS with the
/// same processor count and group size, and a hot-potato de Bruijn of
/// comparable size and equal degree.
///
/// # Panics
/// Panics when the parameters violate the families' bounds (all must be at
/// least 1) — matching the panicking constructors this helper predates.
pub fn compare_networks(
    s: usize,
    d: usize,
    k: usize,
    loads: &[f64],
    slots: u64,
    seed: u64,
) -> Vec<ComparisonRow> {
    let specs = three_way_specs(s, d, k);
    compare_specs(&specs, loads, slots, seed).expect("specs derived from validated parameters")
}

/// The spec triple behind [`compare_networks`]: the comparison scenario is
/// nothing but this data.
pub fn three_way_specs(s: usize, d: usize, k: usize) -> [NetworkSpec; 3] {
    let sk = NetworkSpec::StackKautz { s, d, k };
    let groups = sk
        .node_count()
        .map(|n| n / s)
        .expect("stack-Kautz parameters in range");
    let n = s * groups;
    // The point-to-point baseline: a de Bruijn graph with at least as many
    // nodes and the same degree d.  At d = 1 a de Bruijn graph of any k has
    // a single node, so the complete digraph stands in as the baseline.
    let baseline = if d >= 2 {
        let mut db_k = 1usize;
        while d.pow(db_k as u32) < n {
            db_k += 1;
        }
        NetworkSpec::DeBruijn { d, k: db_k }
    } else {
        NetworkSpec::Complete { n }
    };
    [sk, NetworkSpec::Pops { t: s, g: groups }, baseline]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_three_rows_per_load() {
        let rows = compare_networks(2, 2, 2, &[0.1, 0.5], 300, 7);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.processors > 0);
            assert!(row.throughput >= 0.0);
            assert!(!row.as_table_row().is_empty());
        }
        assert!(ComparisonRow::table_header().contains("thruput"));
    }

    #[test]
    fn pops_has_lower_hops_than_stack_kautz() {
        // Single-hop vs multi-hop: POPS average hops ≈ 1, SK > 1 at any load.
        let rows = compare_networks(2, 2, 2, &[0.2], 2000, 3);
        let sk = rows.iter().find(|r| r.network.starts_with("SK")).unwrap();
        let pops = rows.iter().find(|r| r.network.starts_with("POPS")).unwrap();
        assert!((pops.average_hops - 1.0).abs() < 1e-6);
        assert!(sk.average_hops >= pops.average_hops);
    }

    #[test]
    fn pops_needs_more_couplers_than_stack_kautz() {
        // The hardware-scalability argument: for the same N and group size,
        // POPS needs g² couplers while SK needs g·(d+1).
        let rows = compare_networks(2, 2, 2, &[0.1], 100, 1);
        let sk = rows.iter().find(|r| r.network.starts_with("SK")).unwrap();
        let pops = rows.iter().find(|r| r.network.starts_with("POPS")).unwrap();
        assert!(pops.channels > sk.channels);
    }

    #[test]
    fn throughput_grows_with_load_until_saturation() {
        let rows = compare_networks(2, 2, 2, &[0.05, 0.8], 1500, 11);
        let sk_light = &rows[0];
        let sk_heavy = &rows[3];
        assert!(sk_heavy.throughput >= sk_light.throughput * 0.9);
    }

    #[test]
    fn arbitrary_spec_lists_are_data() {
        let rows = compare_spec_strs(&["POPS(4,2)", "SII(2,2,5)", "K(8)"], &[0.2], 200, 5).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].network.starts_with("POPS"));
        assert!(rows[1].network.starts_with("SII"));
        assert!(rows[2].network.contains("hot-potato"));
        assert!(compare_spec_strs(&["nope"], &[0.2], 10, 1).is_err());
    }

    #[test]
    fn three_way_specs_are_size_matched() {
        let [sk, pops, db] = three_way_specs(4, 2, 2);
        assert_eq!(sk.node_count(), pops.node_count());
        assert!(db.node_count().unwrap() >= sk.node_count().unwrap());
    }

    #[test]
    fn degree_one_gets_a_complete_baseline() {
        // d = 1 would loop forever searching for a de Bruijn size (1^k never
        // grows); the complete digraph stands in as the baseline instead.
        let [sk, pops, baseline] = three_way_specs(2, 1, 2);
        assert_eq!(sk.node_count(), pops.node_count());
        assert_eq!(
            baseline,
            NetworkSpec::Complete {
                n: sk.node_count().unwrap()
            }
        );
        let rows = compare_networks(2, 1, 2, &[0.2], 100, 1);
        assert_eq!(rows.len(), 3);
    }
}
