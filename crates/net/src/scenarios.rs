//! Packaged head-to-head comparison scenarios (experiment T5).
//!
//! The motivation of the paper — multi-OPS networks are "more viable and
//! cost-effective under current optical technology" — rests on comparisons
//! like the one packaged here: several networks are driven with the same
//! traffic and their accepted throughput and latency are tabulated across
//! offered loads.  With the [`crate::Network`] facade, a comparison scenario
//! is *data*: a list of spec strings plus a list of loads.  Execution goes
//! through the parallel [`crate::engine`] — a comparison is a one-seed,
//! no-fault [`ScenarioGrid`], and richer scenarios (fault sweeps, frontier
//! scans, multi-seed grids) are the same grid with more axes filled in.

use crate::engine::{default_thread_count, run_grid, ScenarioGrid};
use crate::error::{NetworkError, SpecError};
use crate::sim_options::SimOptions;
use crate::spec::NetworkSpec;
use otis_sim::SimMetrics;

/// The one-seed, no-fault grid behind every loads-only scenario
/// (`compare_specs`, `frontier_scan`): uniform workloads via the
/// [`ScenarioGrid::loads`] sugar.
fn uniform_grid(specs: &[NetworkSpec], loads: &[f64], slots: u64, seed: u64) -> ScenarioGrid {
    let mut grid = ScenarioGrid::new(specs.to_vec())
        .loads(loads)
        .seeds(&[seed]);
    grid.options = SimOptions::new(slots, seed);
    grid
}

/// Formats a statistic for a fixed-width table column, rendering undefined
/// values (`NaN`, e.g. an average over zero deliveries) as `-`.
pub(crate) fn fmt_stat(value: f64, width: usize, precision: usize) -> String {
    if value.is_nan() {
        format!("{:>width$}", "-")
    } else {
        format!("{value:>width$.precision$}")
    }
}

/// One row of the comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Network name, e.g. `"POPS(9,8)"` (point-to-point baselines are
    /// suffixed with `" hot-potato"`).
    pub network: String,
    /// Number of processors.
    pub processors: usize,
    /// Number of couplers (multi-OPS) or links (point-to-point).
    pub channels: usize,
    /// Offered load (messages per processor per slot).
    pub offered_load: f64,
    /// Accepted throughput (delivered messages per processor per slot).
    pub throughput: f64,
    /// Average delivered latency in slots (`NaN` when nothing was
    /// delivered; rendered as `-` by [`ComparisonRow::as_table_row`]).
    pub average_latency: f64,
    /// Average optical hops per delivered message (`NaN` when nothing was
    /// delivered).
    pub average_hops: f64,
}

impl ComparisonRow {
    fn from_metrics(network: impl Into<String>, load: f64, m: &SimMetrics) -> Self {
        ComparisonRow {
            network: network.into(),
            processors: m.processors,
            channels: m.channels,
            offered_load: load,
            throughput: m.throughput(),
            average_latency: m.average_latency(),
            average_hops: m.average_hops(),
        }
    }

    /// Formats the row for the reproduction harness.  Undefined averages
    /// (zero deliveries, e.g. at load 0.0) render as `-`, never `NaN`.
    pub fn as_table_row(&self) -> String {
        format!(
            "{:<16} {:>6} {:>8} {:>8.3} {:>10.4} {} {}",
            self.network,
            self.processors,
            self.channels,
            self.offered_load,
            self.throughput,
            fmt_stat(self.average_latency, 10, 2),
            fmt_stat(self.average_hops, 8, 2)
        )
    }

    /// Header matching [`ComparisonRow::as_table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<16} {:>6} {:>8} {:>8} {:>10} {:>10} {:>8}",
            "network", "procs", "channels", "load", "thruput", "latency", "hops"
        )
    }
}

/// Drives every listed network with uniform traffic at every listed load for
/// `slots` slots each and returns one row per (load, network) pair, loads
/// outermost — the table shape of experiment T5.
///
/// Execution is delegated to the parallel [`crate::engine`]; results are
/// identical to a serial loop because every cell is independently seeded.
pub fn compare_specs(
    specs: &[NetworkSpec],
    loads: &[f64],
    slots: u64,
    seed: u64,
) -> Result<Vec<ComparisonRow>, NetworkError> {
    let grid = uniform_grid(specs, loads, slots, seed);
    let rows = run_grid(&grid, default_thread_count())?;
    Ok(rows
        .into_iter()
        .map(|row| {
            let name = if row.spec.is_multi_ops() {
                row.spec.to_string()
            } else {
                format!("{} hot-potato", row.spec)
            };
            ComparisonRow::from_metrics(name, row.offered_load, &row.metrics)
        })
        .collect())
}

/// [`compare_specs`] over spec *strings* — the form a CLI or a config file
/// produces directly.
pub fn compare_spec_strs(
    specs: &[&str],
    loads: &[f64],
    slots: u64,
    seed: u64,
) -> Result<Vec<ComparisonRow>, NetworkError> {
    let parsed: Vec<NetworkSpec> = specs
        .iter()
        .map(|s| s.parse::<NetworkSpec>())
        .collect::<Result<_, _>>()
        .map_err(NetworkError::from)?;
    compare_specs(&parsed, loads, slots, seed)
}

/// One point of a load/latency frontier: what a network delivers at one
/// offered load.  Scanning loads for a fixed network traces its frontier —
/// throughput climbs until the network saturates, latency diverges after.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The network scanned.
    pub spec: NetworkSpec,
    /// Offered load (messages per processor per slot).
    pub offered_load: f64,
    /// Accepted throughput (delivered messages per processor per slot).
    pub throughput: f64,
    /// Average delivered latency in slots (`NaN` when nothing delivered).
    pub average_latency: f64,
    /// Fraction of injected messages delivered (`NaN` when nothing
    /// injected).
    pub delivery_ratio: f64,
}

/// Scans every network across the given loads and returns its frontier
/// points grouped per network (specs outermost, loads ascending in the
/// given order) — the load/latency frontier scan of the ROADMAP.
pub fn frontier_scan(
    specs: &[NetworkSpec],
    loads: &[f64],
    slots: u64,
    seed: u64,
) -> Result<Vec<FrontierPoint>, NetworkError> {
    let grid = uniform_grid(specs, loads, slots, seed);
    let rows = run_grid(&grid, default_thread_count())?;
    // Regroup per spec so each network's frontier is contiguous; rows carry
    // their own coordinates, so this is independent of the engine's cell
    // ordering.  Engine order preserves the load sequence within a spec.
    let mut points = Vec::with_capacity(rows.len());
    for &spec in specs {
        for row in rows.iter().filter(|row| row.spec == spec) {
            points.push(FrontierPoint {
                spec: row.spec,
                offered_load: row.offered_load,
                throughput: row.metrics.throughput(),
                average_latency: row.metrics.average_latency(),
                delivery_ratio: row.metrics.delivery_ratio(),
            });
        }
    }
    Ok(points)
}

/// The saturation point of one network's frontier: the first point reaching
/// at least 95% of the maximum observed throughput, provided at least one
/// *later* probe confirms the plateau.
///
/// The scan is a linear probe over the loads the caller supplied, so its
/// resolution is the caller's load spacing: the true saturation load lies
/// somewhere between the returned point and the probe before it, and a
/// coarse load axis yields a correspondingly coarse answer.
///
/// `None` when the scan is empty, nothing was delivered anywhere, or the
/// first qualifying point is the **last probed load** — a frontier still
/// climbing at its final probe has shown no plateau, and returning that last
/// point would mislabel an unsaturated network as saturated (the old
/// behaviour).  Callers seeing `None` on a loaded scan should extend the
/// load axis upward.
pub fn saturation_point(frontier: &[FrontierPoint]) -> Option<&FrontierPoint> {
    let max = frontier.iter().map(|p| p.throughput).fold(0.0f64, f64::max);
    if max <= 0.0 {
        return None;
    }
    let first = frontier
        .iter()
        .position(|p| p.throughput >= 0.95 * max)
        .expect("a positive maximum is attained by some point");
    if first + 1 == frontier.len() {
        return None;
    }
    Some(&frontier[first])
}

/// The paper's three-way comparison as data: `SK(s, d, k)`, a POPS with the
/// same processor count and group size, and a hot-potato de Bruijn of
/// comparable size and equal degree.
///
/// # Panics
/// Panics when the parameters violate the families' bounds or size caps —
/// matching the panicking constructors this helper predates.  Use
/// [`three_way_specs`] for the fallible form.
pub fn compare_networks(
    s: usize,
    d: usize,
    k: usize,
    loads: &[f64],
    slots: u64,
    seed: u64,
) -> Vec<ComparisonRow> {
    let specs = three_way_specs(s, d, k).expect("parameters within the families' bounds");
    compare_specs(&specs, loads, slots, seed).expect("specs derived from validated parameters")
}

/// The spec triple behind [`compare_networks`]: the comparison scenario is
/// nothing but this data.  All arithmetic is checked — parameters that
/// violate a family's bounds or would overflow the de Bruijn sizing loop
/// return the spec-validation error instead of panicking or wrapping.
pub fn three_way_specs(s: usize, d: usize, k: usize) -> Result<[NetworkSpec; 3], SpecError> {
    let sk = NetworkSpec::StackKautz { s, d, k };
    sk.validate()?;
    let n = sk
        .node_count()
        .expect("validated specs have a finite node count");
    // The point-to-point baseline: a de Bruijn graph with at least as many
    // nodes and the same degree d.  At d = 1 a de Bruijn graph of any k has
    // a single node, so the complete digraph stands in as the baseline.
    let baseline = if d >= 2 {
        let mut db_k = 1usize;
        loop {
            match u32::try_from(db_k).ok().and_then(|e| d.checked_pow(e)) {
                Some(size) if size >= n => break,
                Some(_) => db_k += 1,
                None => {
                    return Err(SpecError::TooLarge {
                        spec: NetworkSpec::DeBruijn { d, k: db_k }.to_string(),
                        max_nodes: crate::spec::MAX_NODES,
                    })
                }
            }
        }
        let db = NetworkSpec::DeBruijn { d, k: db_k };
        db.validate()?;
        db
    } else {
        NetworkSpec::Complete { n }
    };
    let groups = n / s;
    Ok([sk, NetworkSpec::Pops { t: s, g: groups }, baseline])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_three_rows_per_load() {
        let rows = compare_networks(2, 2, 2, &[0.1, 0.5], 300, 7);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.processors > 0);
            assert!(row.throughput >= 0.0);
            assert!(!row.as_table_row().is_empty());
        }
        assert!(ComparisonRow::table_header().contains("thruput"));
    }

    #[test]
    fn engine_backed_rows_match_a_serial_simulation_loop() {
        // The acceptance bar of the engine rewrite: byte-identical rows to
        // the plain serial loop compare_specs used to be.
        use crate::network::Network;
        use otis_sim::TrafficPattern;
        let specs: Vec<NetworkSpec> = ["SK(2,2,2)", "POPS(3,4)", "DB(2,4)"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let loads = [0.1, 0.6];
        let (slots, seed) = (150, 13);
        let engine_rows = compare_specs(&specs, &loads, slots, seed).unwrap();
        let mut serial_rows = Vec::new();
        let options = SimOptions::new(slots, seed);
        for &load in &loads {
            for &spec in &specs {
                let network = Network::new(spec).unwrap();
                let metrics = network.simulate(&TrafficPattern::Uniform { load }, &options);
                let name = if network.is_multi_ops() {
                    network.name()
                } else {
                    format!("{} hot-potato", network.name())
                };
                serial_rows.push(ComparisonRow::from_metrics(name, load, &metrics));
            }
        }
        assert_eq!(engine_rows, serial_rows);
        let engine_table: Vec<String> = engine_rows.iter().map(|r| r.as_table_row()).collect();
        let serial_table: Vec<String> = serial_rows.iter().map(|r| r.as_table_row()).collect();
        assert_eq!(engine_table, serial_table);
    }

    #[test]
    fn zero_delivery_rows_render_a_placeholder_not_nan() {
        // Load 0.0 injects nothing, so the latency/hops averages are
        // undefined; the table must show '-' instead of NaN.
        let rows = compare_spec_strs(&["POPS(2,2)", "DB(2,3)"], &[0.0], 40, 3).unwrap();
        for row in &rows {
            assert!(row.average_latency.is_nan());
            let rendered = row.as_table_row();
            assert!(!rendered.contains("NaN"), "{rendered}");
            assert!(rendered.contains('-'), "{rendered}");
            // Column count matches the header (the " hot-potato" suffix of
            // point-to-point baselines adds one whitespace-separated token).
            let name_tokens = row.network.split_whitespace().count();
            assert_eq!(
                rendered.split_whitespace().count() - (name_tokens - 1),
                ComparisonRow::table_header().split_whitespace().count()
            );
        }
    }

    #[test]
    fn pops_has_lower_hops_than_stack_kautz() {
        // Single-hop vs multi-hop: POPS average hops ≈ 1, SK > 1 at any load.
        let rows = compare_networks(2, 2, 2, &[0.2], 2000, 3);
        let sk = rows.iter().find(|r| r.network.starts_with("SK")).unwrap();
        let pops = rows.iter().find(|r| r.network.starts_with("POPS")).unwrap();
        assert!((pops.average_hops - 1.0).abs() < 1e-6);
        assert!(sk.average_hops >= pops.average_hops);
    }

    #[test]
    fn pops_needs_more_couplers_than_stack_kautz() {
        // The hardware-scalability argument: for the same N and group size,
        // POPS needs g² couplers while SK needs g·(d+1).
        let rows = compare_networks(2, 2, 2, &[0.1], 100, 1);
        let sk = rows.iter().find(|r| r.network.starts_with("SK")).unwrap();
        let pops = rows.iter().find(|r| r.network.starts_with("POPS")).unwrap();
        assert!(pops.channels > sk.channels);
    }

    #[test]
    fn throughput_grows_with_load_until_saturation() {
        let rows = compare_networks(2, 2, 2, &[0.05, 0.8], 1500, 11);
        let sk_light = &rows[0];
        let sk_heavy = &rows[3];
        assert!(sk_heavy.throughput >= sk_light.throughput * 0.9);
    }

    #[test]
    fn arbitrary_spec_lists_are_data() {
        let rows = compare_spec_strs(&["POPS(4,2)", "SII(2,2,5)", "K(8)"], &[0.2], 200, 5).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].network.starts_with("POPS"));
        assert!(rows[1].network.starts_with("SII"));
        assert!(rows[2].network.contains("hot-potato"));
        assert!(compare_spec_strs(&["nope"], &[0.2], 10, 1).is_err());
    }

    #[test]
    fn three_way_specs_are_size_matched() {
        let [sk, pops, db] = three_way_specs(4, 2, 2).unwrap();
        assert_eq!(sk.node_count(), pops.node_count());
        assert!(db.node_count().unwrap() >= sk.node_count().unwrap());
    }

    #[test]
    fn three_way_specs_reject_out_of_range_parameters() {
        // Previously d.pow(db_k) could panic in debug / wrap in release for
        // oversized parameters; now it is the typed spec-validation error.
        assert!(three_way_specs(0, 2, 2).is_err());
        assert!(three_way_specs(2, 0, 2).is_err());
        // Far beyond the node cap: the stack-Kautz spec itself is too large.
        assert!(three_way_specs(1 << 20, 9, 12).is_err());
        let err = three_way_specs(2, 9, 12).unwrap_err();
        assert!(err.to_string().contains("large"), "{err}");
    }

    #[test]
    fn degree_one_gets_a_complete_baseline() {
        // d = 1 would loop forever searching for a de Bruijn size (1^k never
        // grows); the complete digraph stands in as the baseline instead.
        let [sk, pops, baseline] = three_way_specs(2, 1, 2).unwrap();
        assert_eq!(sk.node_count(), pops.node_count());
        assert_eq!(
            baseline,
            NetworkSpec::Complete {
                n: sk.node_count().unwrap()
            }
        );
        let rows = compare_networks(2, 1, 2, &[0.2], 100, 1);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn frontier_scan_groups_points_per_network() {
        let specs: Vec<NetworkSpec> = ["POPS(3,3)", "SK(2,2,2)"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        // The repeated 1.0 probe runs the identical deterministic cell again
        // and confirms the plateau at the injection cap — without it both
        // frontiers would still be climbing at their last load and have no
        // saturation point.
        let loads = [0.05, 0.3, 0.7, 1.0, 1.0];
        let points = frontier_scan(&specs, &loads, 400, 9).unwrap();
        assert_eq!(points.len(), specs.len() * loads.len());
        // Specs outermost, loads in scan order within each network.
        for (i, spec) in specs.iter().enumerate() {
            let slice = &points[i * loads.len()..(i + 1) * loads.len()];
            assert!(slice.iter().all(|p| p.spec == *spec));
            let scanned: Vec<f64> = slice.iter().map(|p| p.offered_load).collect();
            assert_eq!(scanned, loads);
            // Throughput is monotone up to saturation noise and the
            // saturation point exists for a loaded, plateau-confirmed scan.
            let sat = saturation_point(slice).expect("traffic was delivered");
            assert!(sat.throughput > 0.0);
            assert_eq!(sat.offered_load, 1.0);
        }
        assert!(saturation_point(&[]).is_none());
    }

    #[test]
    fn frontier_scan_handles_an_empty_load_axis() {
        // No loads means a zero-cell grid: the scan is an empty frontier,
        // not an error, and its saturation point is None.
        let specs: Vec<NetworkSpec> = vec!["POPS(3,3)".parse().unwrap()];
        let points = frontier_scan(&specs, &[], 100, 5).unwrap();
        assert!(points.is_empty());
        assert!(saturation_point(&points).is_none());
    }

    #[test]
    fn saturation_point_is_none_when_nothing_ever_saturates() {
        // Load 0.0 injects nothing anywhere: every throughput is 0, so no
        // point reaches 95% of a positive peak and the scan has no
        // saturation point (rather than returning the first zero row).
        let specs: Vec<NetworkSpec> =
            vec!["POPS(2,2)".parse().unwrap(), "DB(2,3)".parse().unwrap()];
        let points = frontier_scan(&specs, &[0.0, 0.0], 60, 3).unwrap();
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.throughput == 0.0));
        assert!(saturation_point(&points).is_none());
    }

    #[test]
    fn single_load_frontiers_have_no_saturation_evidence() {
        // One probe cannot show a plateau: the sole point is also the last
        // probed load, so the scan reports no saturation instead of
        // mislabelling a possibly-still-climbing network as saturated.
        let specs: Vec<NetworkSpec> = vec!["SK(2,2,2)".parse().unwrap()];
        let points = frontier_scan(&specs, &[0.3], 200, 7).unwrap();
        assert_eq!(points.len(), 1);
        assert!(points[0].throughput > 0.0);
        assert!(saturation_point(&points).is_none());
    }

    #[test]
    fn saturation_needs_a_confirming_probe_beyond_the_plateau_edge() {
        // Hand-built frontier: throughput climbs to its plateau at the
        // second point.  With a later probe confirming the plateau the
        // second point is the saturation point; truncating the scan right at
        // the plateau edge removes the evidence and yields None.
        let point = |load: f64, throughput: f64| FrontierPoint {
            spec: "K(4)".parse().unwrap(),
            offered_load: load,
            throughput,
            average_latency: 1.0,
            delivery_ratio: 1.0,
        };
        let frontier = [point(0.2, 0.2), point(0.5, 0.41), point(0.8, 0.42)];
        let sat = saturation_point(&frontier).expect("plateau confirmed by the last probe");
        assert_eq!(sat.offered_load, 0.5);
        assert!(saturation_point(&frontier[..2]).is_none());
    }
}
