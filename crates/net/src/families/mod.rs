//! Per-family implementations of the [`crate::family::NetworkFamily`] trait.

pub(crate) mod multi_ops;
pub(crate) mod point_to_point;

use crate::family::NetworkFamily;
use crate::spec::NetworkSpec;

/// Builds the family object of a (validated) spec.
pub(crate) fn build(spec: &NetworkSpec) -> Box<dyn NetworkFamily> {
    match *spec {
        NetworkSpec::Complete { n } => Box::new(point_to_point::CompleteNetwork::new(n)),
        NetworkSpec::DeBruijn { d, k } => Box::new(point_to_point::DeBruijnNetwork::new(d, k)),
        NetworkSpec::Kautz { d, k } => Box::new(point_to_point::KautzNetwork::new(d, k)),
        NetworkSpec::ImaseItoh { d, n } => Box::new(point_to_point::ImaseItohNetwork::new(d, n)),
        NetworkSpec::Pops { t, g } => Box::new(multi_ops::PopsNetwork::new(t, g)),
        NetworkSpec::StackKautz { s, d, k } => Box::new(multi_ops::StackKautzNetwork::new(s, d, k)),
        NetworkSpec::StackImaseItoh { s, d, n } => {
            Box::new(multi_ops::StackImaseItohNetwork::new(s, d, n))
        }
    }
}
