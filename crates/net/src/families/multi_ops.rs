//! Facade implementations for the multi-OPS (stack-graph) families:
//! `POPS(t, g)`, stack-Kautz `SK(s, d, k)` and stack-Imase–Itoh
//! `SII(s, d, n)`.

use crate::design::NetworkDesign;
use crate::error::NetworkError;
use crate::family::NetworkFamily;
use crate::prepared::PreparedSim;
use crate::route::{RouteOracle, StackOracle};
use crate::spec::NetworkSpec;
use crate::topology::NetworkTopology;
use otis_core::{PopsDesign, StackImaseItohDesign, StackKautzDesign, VerificationReport};
use otis_graphs::StackGraph;
use otis_optics::HardwareInventory;
use otis_routing::{FaultSet, StackRouter};
use otis_sim::PreparedMultiOps;
use otis_topologies::{Pops, StackImaseItoh, StackKautz};
use std::sync::{Arc, OnceLock};

/// Prepares the slotted multi-OPS kernel over a shared stack-graph network
/// under the given quotient-level faults (see
/// [`crate::SimOptions::faults`]): the fault-filtered quotient routing table,
/// the flat all-pairs route layout and — when `alt_paths > 1` — the Yen
/// alternate-route table are built once, here.
fn prepare_multi_ops(stack: &Arc<StackGraph>, faults: &FaultSet, alt_paths: usize) -> PreparedSim {
    PreparedSim::MultiOps(PreparedMultiOps::with_alternates(
        stack.clone(),
        faults.clone(),
        alt_paths,
    ))
}

/// The `POPS(t, g)` network behind the facade.
#[derive(Debug)]
pub(crate) struct PopsNetwork {
    spec: NetworkSpec,
    t: usize,
    g: usize,
    /// The stack-graph behind an `Arc`, so prepared kernels and route
    /// oracles share one instance instead of cloning the graph per call.
    stack: Arc<StackGraph>,
    design: OnceLock<PopsDesign>,
}

impl PopsNetwork {
    pub(crate) fn new(t: usize, g: usize) -> Self {
        let stack = Arc::new(Pops::new(t, g).stack_graph().clone());
        PopsNetwork {
            spec: NetworkSpec::Pops { t, g },
            t,
            g,
            stack,
            design: OnceLock::new(),
        }
    }

    /// The optical design, built once and cached.
    fn built_design(&self) -> &PopsDesign {
        self.design.get_or_init(|| PopsDesign::new(self.t, self.g))
    }
}

impl NetworkFamily for PopsNetwork {
    fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    fn topology(&self) -> NetworkTopology<'_> {
        NetworkTopology::MultiOps(&self.stack)
    }

    fn predicted_diameter(&self) -> Option<u32> {
        Some(if self.stack.node_count() > 1 { 1 } else { 0 })
    }

    fn design(&self) -> Option<NetworkDesign> {
        Some(NetworkDesign::MultiOps(
            self.built_design().design().clone(),
        ))
    }

    fn predicted_inventory(&self) -> Option<HardwareInventory> {
        None
    }

    fn verify(&self) -> Result<VerificationReport, NetworkError> {
        Ok(self.built_design().verify()?)
    }

    fn router(&self) -> Box<dyn RouteOracle> {
        Box::new(StackOracle {
            router: StackRouter::from_shared(self.stack.clone(), FaultSet::new()),
        })
    }

    fn prepare(&self, faults: &FaultSet, alt_paths: usize) -> PreparedSim {
        prepare_multi_ops(&self.stack, faults, alt_paths)
    }
}

/// The stack-Kautz network `SK(s, d, k)` behind the facade.
#[derive(Debug)]
pub(crate) struct StackKautzNetwork {
    spec: NetworkSpec,
    s: usize,
    d: usize,
    k: usize,
    /// Shared stack-graph instance; see [`PopsNetwork::stack`].
    stack: Arc<StackGraph>,
    design: OnceLock<StackKautzDesign>,
}

impl StackKautzNetwork {
    pub(crate) fn new(s: usize, d: usize, k: usize) -> Self {
        let stack = Arc::new(StackKautz::new(s, d, k).stack_graph().clone());
        StackKautzNetwork {
            spec: NetworkSpec::StackKautz { s, d, k },
            s,
            d,
            k,
            stack,
            design: OnceLock::new(),
        }
    }

    /// The optical design, built once and cached.
    fn built_design(&self) -> &StackKautzDesign {
        self.design
            .get_or_init(|| StackKautzDesign::new(self.s, self.d, self.k))
    }
}

impl NetworkFamily for StackKautzNetwork {
    fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    fn topology(&self) -> NetworkTopology<'_> {
        NetworkTopology::MultiOps(&self.stack)
    }

    fn predicted_diameter(&self) -> Option<u32> {
        u32::try_from(self.k).ok()
    }

    fn design(&self) -> Option<NetworkDesign> {
        Some(NetworkDesign::MultiOps(
            self.built_design().design().clone(),
        ))
    }

    fn predicted_inventory(&self) -> Option<HardwareInventory> {
        Some(self.built_design().expected_inventory())
    }

    fn verify(&self) -> Result<VerificationReport, NetworkError> {
        Ok(self.built_design().verify()?)
    }

    fn router(&self) -> Box<dyn RouteOracle> {
        Box::new(StackOracle {
            router: StackRouter::from_shared(self.stack.clone(), FaultSet::new()),
        })
    }

    fn prepare(&self, faults: &FaultSet, alt_paths: usize) -> PreparedSim {
        prepare_multi_ops(&self.stack, faults, alt_paths)
    }
}

/// The stack-Imase–Itoh network `SII(s, d, n)` behind the facade.
#[derive(Debug)]
pub(crate) struct StackImaseItohNetwork {
    spec: NetworkSpec,
    s: usize,
    d: usize,
    n: usize,
    /// Shared stack-graph instance; see [`PopsNetwork::stack`].
    stack: Arc<StackGraph>,
    design: OnceLock<StackImaseItohDesign>,
}

impl StackImaseItohNetwork {
    pub(crate) fn new(s: usize, d: usize, n: usize) -> Self {
        let stack = Arc::new(StackImaseItoh::new(s, d, n).stack_graph().clone());
        StackImaseItohNetwork {
            spec: NetworkSpec::StackImaseItoh { s, d, n },
            s,
            d,
            n,
            stack,
            design: OnceLock::new(),
        }
    }

    /// The optical design, built once and cached.
    fn built_design(&self) -> &StackImaseItohDesign {
        self.design
            .get_or_init(|| StackImaseItohDesign::new(self.s, self.d, self.n))
    }
}

impl NetworkFamily for StackImaseItohNetwork {
    fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    fn topology(&self) -> NetworkTopology<'_> {
        NetworkTopology::MultiOps(&self.stack)
    }

    fn predicted_diameter(&self) -> Option<u32> {
        // ⌈log_d n⌉ is only an upper bound on the quotient diameter.
        None
    }

    fn design(&self) -> Option<NetworkDesign> {
        Some(NetworkDesign::MultiOps(
            self.built_design().design().clone(),
        ))
    }

    fn predicted_inventory(&self) -> Option<HardwareInventory> {
        None
    }

    fn verify(&self) -> Result<VerificationReport, NetworkError> {
        Ok(self.built_design().verify()?)
    }

    fn router(&self) -> Box<dyn RouteOracle> {
        Box::new(StackOracle {
            router: StackRouter::from_shared(self.stack.clone(), FaultSet::new()),
        })
    }

    fn prepare(&self, faults: &FaultSet, alt_paths: usize) -> PreparedSim {
        prepare_multi_ops(&self.stack, faults, alt_paths)
    }
}
