//! Facade implementations for the multi-OPS (stack-graph) families:
//! `POPS(t, g)`, stack-Kautz `SK(s, d, k)` and stack-Imase–Itoh
//! `SII(s, d, n)`.

use crate::design::NetworkDesign;
use crate::error::NetworkError;
use crate::family::NetworkFamily;
use crate::route::{RouteOracle, StackOracle};
use crate::sim_options::SimOptions;
use crate::spec::NetworkSpec;
use crate::topology::NetworkTopology;
use otis_core::{PopsDesign, StackImaseItohDesign, StackKautzDesign, VerificationReport};
use otis_graphs::StackGraph;
use otis_optics::HardwareInventory;
use otis_routing::StackRouter;
use otis_sim::{MultiOpsSim, MultiOpsSimConfig, SimMetrics, TrafficPattern};
use otis_topologies::{Pops, StackImaseItoh, StackKautz};
use std::sync::OnceLock;

/// Runs the slotted multi-OPS simulator over a stack-graph network, routing
/// around any faults carried by the options (quotient-level semantics, see
/// [`SimOptions::faults`]).
fn simulate_multi_ops(
    stack: &StackGraph,
    traffic: &TrafficPattern,
    options: &SimOptions,
) -> SimMetrics {
    MultiOpsSim::with_faults(
        stack.clone(),
        MultiOpsSimConfig {
            slots: options.slots,
            seed: options.seed,
            policy: options.policy,
            queue_limit: options.queue_limit,
        },
        options.faults.clone(),
    )
    .run(traffic)
}

/// The `POPS(t, g)` network behind the facade.
#[derive(Debug)]
pub(crate) struct PopsNetwork {
    spec: NetworkSpec,
    t: usize,
    g: usize,
    pops: Pops,
    design: OnceLock<PopsDesign>,
}

impl PopsNetwork {
    pub(crate) fn new(t: usize, g: usize) -> Self {
        PopsNetwork {
            spec: NetworkSpec::Pops { t, g },
            t,
            g,
            pops: Pops::new(t, g),
            design: OnceLock::new(),
        }
    }

    /// The optical design, built once and cached.
    fn built_design(&self) -> &PopsDesign {
        self.design.get_or_init(|| PopsDesign::new(self.t, self.g))
    }
}

impl NetworkFamily for PopsNetwork {
    fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    fn topology(&self) -> NetworkTopology<'_> {
        NetworkTopology::MultiOps(self.pops.stack_graph())
    }

    fn predicted_diameter(&self) -> Option<u32> {
        Some(if self.pops.node_count() > 1 { 1 } else { 0 })
    }

    fn design(&self) -> Option<NetworkDesign> {
        Some(NetworkDesign::MultiOps(
            self.built_design().design().clone(),
        ))
    }

    fn predicted_inventory(&self) -> Option<HardwareInventory> {
        None
    }

    fn verify(&self) -> Result<VerificationReport, NetworkError> {
        Ok(self.built_design().verify()?)
    }

    fn router(&self) -> Box<dyn RouteOracle> {
        Box::new(StackOracle {
            router: StackRouter::new(self.pops.stack_graph().clone()),
        })
    }

    fn simulate(&self, traffic: &TrafficPattern, options: &SimOptions) -> SimMetrics {
        simulate_multi_ops(self.pops.stack_graph(), traffic, options)
    }
}

/// The stack-Kautz network `SK(s, d, k)` behind the facade.
#[derive(Debug)]
pub(crate) struct StackKautzNetwork {
    spec: NetworkSpec,
    s: usize,
    d: usize,
    k: usize,
    sk: StackKautz,
    design: OnceLock<StackKautzDesign>,
}

impl StackKautzNetwork {
    pub(crate) fn new(s: usize, d: usize, k: usize) -> Self {
        StackKautzNetwork {
            spec: NetworkSpec::StackKautz { s, d, k },
            s,
            d,
            k,
            sk: StackKautz::new(s, d, k),
            design: OnceLock::new(),
        }
    }

    /// The optical design, built once and cached.
    fn built_design(&self) -> &StackKautzDesign {
        self.design
            .get_or_init(|| StackKautzDesign::new(self.s, self.d, self.k))
    }
}

impl NetworkFamily for StackKautzNetwork {
    fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    fn topology(&self) -> NetworkTopology<'_> {
        NetworkTopology::MultiOps(self.sk.stack_graph())
    }

    fn predicted_diameter(&self) -> Option<u32> {
        u32::try_from(self.k).ok()
    }

    fn design(&self) -> Option<NetworkDesign> {
        Some(NetworkDesign::MultiOps(
            self.built_design().design().clone(),
        ))
    }

    fn predicted_inventory(&self) -> Option<HardwareInventory> {
        Some(self.built_design().expected_inventory())
    }

    fn verify(&self) -> Result<VerificationReport, NetworkError> {
        Ok(self.built_design().verify()?)
    }

    fn router(&self) -> Box<dyn RouteOracle> {
        Box::new(StackOracle {
            router: StackRouter::new(self.sk.stack_graph().clone()),
        })
    }

    fn simulate(&self, traffic: &TrafficPattern, options: &SimOptions) -> SimMetrics {
        simulate_multi_ops(self.sk.stack_graph(), traffic, options)
    }
}

/// The stack-Imase–Itoh network `SII(s, d, n)` behind the facade.
#[derive(Debug)]
pub(crate) struct StackImaseItohNetwork {
    spec: NetworkSpec,
    s: usize,
    d: usize,
    n: usize,
    sii: StackImaseItoh,
    design: OnceLock<StackImaseItohDesign>,
}

impl StackImaseItohNetwork {
    pub(crate) fn new(s: usize, d: usize, n: usize) -> Self {
        StackImaseItohNetwork {
            spec: NetworkSpec::StackImaseItoh { s, d, n },
            s,
            d,
            n,
            sii: StackImaseItoh::new(s, d, n),
            design: OnceLock::new(),
        }
    }

    /// The optical design, built once and cached.
    fn built_design(&self) -> &StackImaseItohDesign {
        self.design
            .get_or_init(|| StackImaseItohDesign::new(self.s, self.d, self.n))
    }
}

impl NetworkFamily for StackImaseItohNetwork {
    fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    fn topology(&self) -> NetworkTopology<'_> {
        NetworkTopology::MultiOps(self.sii.stack_graph())
    }

    fn predicted_diameter(&self) -> Option<u32> {
        // ⌈log_d n⌉ is only an upper bound on the quotient diameter.
        None
    }

    fn design(&self) -> Option<NetworkDesign> {
        Some(NetworkDesign::MultiOps(
            self.built_design().design().clone(),
        ))
    }

    fn predicted_inventory(&self) -> Option<HardwareInventory> {
        None
    }

    fn verify(&self) -> Result<VerificationReport, NetworkError> {
        Ok(self.built_design().verify()?)
    }

    fn router(&self) -> Box<dyn RouteOracle> {
        Box::new(StackOracle {
            router: StackRouter::new(self.sii.stack_graph().clone()),
        })
    }

    fn simulate(&self, traffic: &TrafficPattern, options: &SimOptions) -> SimMetrics {
        simulate_multi_ops(self.sii.stack_graph(), traffic, options)
    }
}
