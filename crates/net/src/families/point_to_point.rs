//! Facade implementations for the point-to-point digraph families:
//! Kautz `KG(d, k)`, Imase–Itoh `II(d, n)`, de Bruijn `DB(d, k)` and the
//! complete digraph `K(n)`.

use crate::design::NetworkDesign;
use crate::error::NetworkError;
use crate::family::{structural_report, NetworkFamily};
use crate::prepared::PreparedSim;
use crate::route::{ImaseItohOracle, KautzOracle, RouteOracle, TableOracle};
use crate::spec::NetworkSpec;
use crate::topology::NetworkTopology;
use otis_core::{ImaseItohDesign, KautzDesign, VerificationReport};
use otis_graphs::Digraph;
use otis_optics::HardwareInventory;
use otis_routing::{FaultSet, RoutingTable};
use otis_sim::PreparedHotPotato;
use otis_topologies::{complete_digraph, de_bruijn, imase_itoh, kautz};
use std::sync::{Arc, OnceLock};

/// Prepares the deflection-routing (hot-potato) kernel over a shared
/// point-to-point digraph — the single-OPS baseline of the paper's
/// comparisons.  With no faults the kernel shares the family's graph
/// instance; with faults it materialises the surviving subgraph once.
/// Deflection *is* alternate routing, so the facade's `alt_paths` knob is a
/// no-op here and these families ignore it.
fn prepare_hot_potato(graph: &Arc<Digraph>, faults: &FaultSet) -> PreparedSim {
    PreparedSim::HotPotato(PreparedHotPotato::new(graph.clone(), faults.clone()))
}

/// The Kautz graph `KG(d, k)` behind the facade.
#[derive(Debug)]
pub(crate) struct KautzNetwork {
    spec: NetworkSpec,
    d: usize,
    k: usize,
    graph: Arc<Digraph>,
    design: OnceLock<KautzDesign>,
}

impl KautzNetwork {
    pub(crate) fn new(d: usize, k: usize) -> Self {
        KautzNetwork {
            spec: NetworkSpec::Kautz { d, k },
            d,
            k,
            graph: Arc::new(kautz(d, k)),
            design: OnceLock::new(),
        }
    }

    /// The optical design, built once and cached.
    fn built_design(&self) -> &KautzDesign {
        self.design.get_or_init(|| KautzDesign::new(self.d, self.k))
    }
}

impl NetworkFamily for KautzNetwork {
    fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    fn topology(&self) -> NetworkTopology<'_> {
        NetworkTopology::PointToPoint(&self.graph)
    }

    fn predicted_diameter(&self) -> Option<u32> {
        u32::try_from(self.k).ok()
    }

    fn design(&self) -> Option<NetworkDesign> {
        Some(NetworkDesign::PointToPoint(
            self.built_design().imase_itoh_design().design().clone(),
        ))
    }

    fn predicted_inventory(&self) -> Option<HardwareInventory> {
        None
    }

    fn verify(&self) -> Result<VerificationReport, NetworkError> {
        Ok(self.built_design().verify()?)
    }

    fn router(&self) -> Box<dyn RouteOracle> {
        Box::new(KautzOracle {
            d: self.d,
            k: self.k,
            n: self.graph.node_count(),
        })
    }

    fn prepare(&self, faults: &FaultSet, _alt_paths: usize) -> PreparedSim {
        prepare_hot_potato(&self.graph, faults)
    }
}

/// The Imase–Itoh graph `II(d, n)` behind the facade.
#[derive(Debug)]
pub(crate) struct ImaseItohNetwork {
    spec: NetworkSpec,
    d: usize,
    n: usize,
    graph: Arc<Digraph>,
    design: OnceLock<ImaseItohDesign>,
}

impl ImaseItohNetwork {
    pub(crate) fn new(d: usize, n: usize) -> Self {
        ImaseItohNetwork {
            spec: NetworkSpec::ImaseItoh { d, n },
            d,
            n,
            graph: Arc::new(imase_itoh(d, n)),
            design: OnceLock::new(),
        }
    }

    /// The optical design, built once and cached.
    fn built_design(&self) -> &ImaseItohDesign {
        self.design
            .get_or_init(|| ImaseItohDesign::new(self.d, self.n))
    }
}

impl NetworkFamily for ImaseItohNetwork {
    fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    fn topology(&self) -> NetworkTopology<'_> {
        NetworkTopology::PointToPoint(&self.graph)
    }

    fn predicted_diameter(&self) -> Option<u32> {
        // ⌈log_d n⌉ is only an upper bound, not the exact diameter.
        None
    }

    fn design(&self) -> Option<NetworkDesign> {
        Some(NetworkDesign::PointToPoint(
            self.built_design().design().clone(),
        ))
    }

    fn predicted_inventory(&self) -> Option<HardwareInventory> {
        None
    }

    fn verify(&self) -> Result<VerificationReport, NetworkError> {
        Ok(self.built_design().verify()?)
    }

    fn router(&self) -> Box<dyn RouteOracle> {
        Box::new(ImaseItohOracle {
            d: self.d,
            n: self.n,
        })
    }

    fn prepare(&self, faults: &FaultSet, _alt_paths: usize) -> PreparedSim {
        prepare_hot_potato(&self.graph, faults)
    }
}

/// The de Bruijn graph `DB(d, k)` behind the facade.  No OTIS design in the
/// paper — verification is structural, routing is BFS-table based.
#[derive(Debug)]
pub(crate) struct DeBruijnNetwork {
    spec: NetworkSpec,
    d: usize,
    k: usize,
    graph: Arc<Digraph>,
    table: OnceLock<RoutingTable>,
}

impl DeBruijnNetwork {
    pub(crate) fn new(d: usize, k: usize) -> Self {
        DeBruijnNetwork {
            spec: NetworkSpec::DeBruijn { d, k },
            d,
            k,
            graph: Arc::new(de_bruijn(d, k)),
            table: OnceLock::new(),
        }
    }
}

impl NetworkFamily for DeBruijnNetwork {
    fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    fn topology(&self) -> NetworkTopology<'_> {
        NetworkTopology::PointToPoint(&self.graph)
    }

    fn predicted_diameter(&self) -> Option<u32> {
        // B(1, k) is a single self-loop node; the k closed form needs d >= 2.
        (self.d >= 2).then(|| u32::try_from(self.k).ok()).flatten()
    }

    fn design(&self) -> Option<NetworkDesign> {
        None
    }

    fn predicted_inventory(&self) -> Option<HardwareInventory> {
        None
    }

    fn verify(&self) -> Result<VerificationReport, NetworkError> {
        structural_report(&self.spec, &self.graph, self.d, self.predicted_diameter())
    }

    fn router(&self) -> Box<dyn RouteOracle> {
        // The all-pairs BFS table is built once and cached; the oracle gets
        // its own copy so it can outlive the network handle.
        Box::new(TableOracle {
            table: self
                .table
                .get_or_init(|| RoutingTable::new(&self.graph))
                .clone(),
        })
    }

    fn prepare(&self, faults: &FaultSet, _alt_paths: usize) -> PreparedSim {
        prepare_hot_potato(&self.graph, faults)
    }
}

/// The complete digraph `K(n)` behind the facade.
#[derive(Debug)]
pub(crate) struct CompleteNetwork {
    spec: NetworkSpec,
    n: usize,
    graph: Arc<Digraph>,
    table: OnceLock<RoutingTable>,
}

impl CompleteNetwork {
    pub(crate) fn new(n: usize) -> Self {
        CompleteNetwork {
            spec: NetworkSpec::Complete { n },
            n,
            graph: Arc::new(complete_digraph(n)),
            table: OnceLock::new(),
        }
    }
}

impl NetworkFamily for CompleteNetwork {
    fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    fn topology(&self) -> NetworkTopology<'_> {
        NetworkTopology::PointToPoint(&self.graph)
    }

    fn predicted_diameter(&self) -> Option<u32> {
        Some(if self.n > 1 { 1 } else { 0 })
    }

    fn design(&self) -> Option<NetworkDesign> {
        None
    }

    fn predicted_inventory(&self) -> Option<HardwareInventory> {
        None
    }

    fn verify(&self) -> Result<VerificationReport, NetworkError> {
        structural_report(
            &self.spec,
            &self.graph,
            self.n - 1,
            self.predicted_diameter(),
        )
    }

    fn router(&self) -> Box<dyn RouteOracle> {
        Box::new(TableOracle {
            table: self
                .table
                .get_or_init(|| RoutingTable::new(&self.graph))
                .clone(),
        })
    }

    fn prepare(&self, faults: &FaultSet, _alt_paths: usize) -> PreparedSim {
        prepare_hot_potato(&self.graph, faults)
    }
}
