//! The unified view of a network's graph-level structure.

use otis_graphs::{Digraph, StackGraph};
use otis_topologies::TopologySummary;

/// A borrowed view of a network's topology: point-to-point networks are
/// digraphs, multi-OPS networks are stack-graphs.
#[derive(Debug, Clone, Copy)]
pub enum NetworkTopology<'a> {
    /// A point-to-point digraph network (one arc = one optical link).
    PointToPoint(&'a Digraph),
    /// A multi-OPS network modelled by a stack-graph (one hyperarc = one OPS
    /// coupler).
    MultiOps(&'a StackGraph),
}

impl<'a> NetworkTopology<'a> {
    /// Number of processors.
    pub fn node_count(&self) -> usize {
        match self {
            NetworkTopology::PointToPoint(g) => g.node_count(),
            NetworkTopology::MultiOps(sg) => sg.node_count(),
        }
    }

    /// Number of links (arcs) or OPS couplers (hyperarcs).
    pub fn link_count(&self) -> usize {
        match self {
            NetworkTopology::PointToPoint(g) => g.arc_count(),
            NetworkTopology::MultiOps(sg) => sg.hyperarc_count(),
        }
    }

    /// The underlying digraph of a point-to-point network.
    pub fn digraph(&self) -> Option<&'a Digraph> {
        match self {
            NetworkTopology::PointToPoint(g) => Some(g),
            NetworkTopology::MultiOps(_) => None,
        }
    }

    /// The underlying stack-graph of a multi-OPS network.
    pub fn stack_graph(&self) -> Option<&'a StackGraph> {
        match self {
            NetworkTopology::PointToPoint(_) => None,
            NetworkTopology::MultiOps(sg) => Some(sg),
        }
    }

    /// An owned one-hop digraph on processors: the digraph itself for
    /// point-to-point networks, the flattened stack-graph for multi-OPS ones.
    pub fn one_hop_digraph(&self) -> Digraph {
        match self {
            NetworkTopology::PointToPoint(g) => (*g).clone(),
            NetworkTopology::MultiOps(sg) => sg.flatten(),
        }
    }

    /// The uniform property summary row used by the reproduction tables.
    pub fn summary(
        &self,
        name: impl Into<String>,
        predicted_diameter: Option<u32>,
    ) -> TopologySummary {
        match self {
            NetworkTopology::PointToPoint(g) => {
                TopologySummary::of_digraph(name, g, predicted_diameter)
            }
            NetworkTopology::MultiOps(sg) => {
                TopologySummary::of_stack_graph(name, sg, predicted_diameter)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_topologies::{kautz, Pops};

    #[test]
    fn point_to_point_accessors() {
        let g = kautz(2, 2);
        let t = NetworkTopology::PointToPoint(&g);
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.link_count(), 12);
        assert!(t.digraph().is_some());
        assert!(t.stack_graph().is_none());
        assert_eq!(t.one_hop_digraph().arc_count(), 12);
        assert_eq!(t.summary("KG(2,2)", Some(2)).nodes, 6);
    }

    #[test]
    fn multi_ops_accessors() {
        let pops = Pops::new(4, 2);
        let t = NetworkTopology::MultiOps(pops.stack_graph());
        assert_eq!(t.node_count(), 8);
        assert_eq!(t.link_count(), 4);
        assert!(t.digraph().is_none());
        assert!(t.stack_graph().is_some());
        assert_eq!(t.one_hop_digraph().node_count(), 8);
        assert_eq!(t.summary("POPS(4,2)", Some(1)).links, 4);
    }
}
