//! Typed errors of the facade.

use otis_core::VerificationError;
use std::fmt;

/// Why a spec string could not be turned into a [`crate::NetworkSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The input does not match `FAMILY(arg, ...)`.
    Syntax {
        /// The offending input.
        input: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The family mnemonic is not one of the supported ones.
    UnknownFamily {
        /// The offending input.
        input: String,
        /// The unrecognised mnemonic.
        family: String,
    },
    /// The family exists but was given the wrong number of arguments.
    Arity {
        /// The offending input.
        input: String,
        /// The family mnemonic.
        family: String,
        /// Human-readable expected signature.
        expected: &'static str,
        /// Number of arguments received.
        got: usize,
    },
    /// A parameter violates the family's bounds (e.g. a zero degree).
    ParameterOutOfRange {
        /// The rendered spec.
        spec: String,
        /// Which bound was violated.
        reason: &'static str,
    },
    /// The spec describes a network above [`crate::spec::MAX_NODES`]
    /// processors (or one whose size overflows `usize`).
    TooLarge {
        /// The rendered spec.
        spec: String,
        /// The cap that was exceeded.
        max_nodes: usize,
    },
    /// The spec describes a network above [`crate::spec::MAX_LINKS`] arcs or
    /// couplers (dense families hit this long before the node cap).
    TooManyLinks {
        /// The rendered spec.
        spec: String,
        /// The cap that was exceeded.
        max_links: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax { input, reason } => {
                write!(f, "cannot parse network spec '{input}': {reason}")
            }
            SpecError::UnknownFamily { input, family } => write!(
                f,
                "unknown network family '{family}' in '{input}' \
                 (supported: K, DB, KG, II, POPS, SK, SII)"
            ),
            SpecError::Arity { input, family, expected, got } => write!(
                f,
                "wrong number of arguments for {family} in '{input}': expected {expected}, got {got}"
            ),
            SpecError::ParameterOutOfRange { spec, reason } => {
                write!(f, "parameter out of range in {spec}: {reason}")
            }
            SpecError::TooLarge { spec, max_nodes } => {
                write!(f, "{spec} is too large: the facade caps networks at {max_nodes} processors")
            }
            SpecError::TooManyLinks { spec, max_links } => {
                write!(
                    f,
                    "{spec} is too dense: the facade caps networks at {max_links} links/couplers"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Any failure surfaced by the [`crate::Network`] facade.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The spec string or parameters were invalid.
    Spec(SpecError),
    /// A workload spec was invalid or could not be bound to the network
    /// (e.g. transpose traffic on a non-square processor count).
    Traffic(crate::traffic_spec::TrafficError),
    /// The optical design exists but failed its end-to-end verification.
    Verification(VerificationError),
    /// A family without an optical design failed its structural self-check
    /// (closed-form node count, regularity, connectivity, diameter).
    Structure {
        /// The network's name.
        network: String,
        /// What did not hold.
        detail: String,
    },
    /// A streaming result sink refused a row or could not finish — usually
    /// an I/O error from the writer behind a table/CSV/JSONL sink.
    Sink {
        /// The underlying error, rendered.
        detail: String,
    },
    /// The scenario grid's axis product overflows `usize`, so the engine
    /// refuses to expand it (see `ScenarioGrid::checked_cell_count`).
    GridTooLarge {
        /// Length of the spec axis.
        specs: usize,
        /// Length of the workload axis.
        workloads: usize,
        /// Length of the seed axis.
        seeds: usize,
        /// Length of the fault-pattern axis.
        fault_sets: usize,
        /// Length of the fault-schedule axis.
        schedules: usize,
        /// Length of the wavelength-count axis.
        wavelengths: usize,
    },
    /// A fault schedule could not be bound to a grid cell: an event targets
    /// a node/group outside the network's fault domain, or a scheduled
    /// failure duplicates one of the cell's static faults.
    Schedule(otis_sim::FaultScheduleError),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Spec(e) => write!(f, "{e}"),
            NetworkError::Traffic(e) => write!(f, "{e}"),
            NetworkError::Verification(e) => write!(f, "design verification failed: {e}"),
            NetworkError::Structure { network, detail } => {
                write!(f, "structural check of {network} failed: {detail}")
            }
            NetworkError::Sink { detail } => {
                write!(f, "result sink failed: {detail}")
            }
            NetworkError::GridTooLarge {
                specs,
                workloads,
                seeds,
                fault_sets,
                schedules,
                wavelengths,
            } => {
                write!(
                    f,
                    "scenario grid is too large: {specs} specs x {workloads} workloads x \
                     {seeds} seeds x {fault_sets} fault patterns x {schedules} fault \
                     schedules x {wavelengths} wavelength counts overflows the cell count"
                )
            }
            NetworkError::Schedule(e) => write!(f, "fault schedule cannot be bound: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Spec(e) => Some(e),
            NetworkError::Traffic(e) => Some(e),
            NetworkError::Verification(e) => Some(e),
            NetworkError::Structure { .. } => None,
            NetworkError::Sink { .. } => None,
            NetworkError::GridTooLarge { .. } => None,
            NetworkError::Schedule(e) => Some(e),
        }
    }
}

impl From<otis_sim::FaultScheduleError> for NetworkError {
    fn from(e: otis_sim::FaultScheduleError) -> Self {
        NetworkError::Schedule(e)
    }
}

impl From<SpecError> for NetworkError {
    fn from(e: SpecError) -> Self {
        NetworkError::Spec(e)
    }
}

impl From<crate::traffic_spec::TrafficError> for NetworkError {
    fn from(e: crate::traffic_spec::TrafficError) -> Self {
        NetworkError::Traffic(e)
    }
}

impl From<VerificationError> for NetworkError {
    fn from(e: VerificationError) -> Self {
        NetworkError::Verification(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SpecError::UnknownFamily {
            input: "ZZ(1)".into(),
            family: "ZZ".into(),
        };
        assert!(e.to_string().contains("ZZ"));
        assert!(e.to_string().contains("supported"));
        let n: NetworkError = e.into();
        assert!(n.to_string().contains("ZZ"));
        let v: NetworkError = VerificationError::ProcessorCountMismatch {
            design: 1,
            target: 2,
        }
        .into();
        assert!(v.to_string().contains("verification failed"));
        let s = NetworkError::Structure {
            network: "DB(2,3)".into(),
            detail: "oops".into(),
        };
        assert!(s.to_string().contains("DB(2,3)"));
        let sink = NetworkError::Sink {
            detail: "disk full".into(),
        };
        assert!(sink.to_string().contains("disk full"));
        let big = NetworkError::GridTooLarge {
            specs: usize::MAX,
            workloads: 2,
            seeds: 1,
            fault_sets: 1,
            schedules: 1,
            wavelengths: 1,
        };
        assert!(big.to_string().contains("too large"), "{big}");
        assert!(big.to_string().contains("overflows"), "{big}");
        let sched: NetworkError = otis_sim::FaultScheduleError::TargetOutOfRange {
            target: otis_sim::FaultTarget::Node(9),
            nodes: 6,
        }
        .into();
        assert!(sched.to_string().contains("fault schedule"), "{sched}");
        assert!(sched.to_string().contains('9'), "{sched}");
    }
}
