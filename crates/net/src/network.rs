//! The [`Network`] facade: one handle per network, built from a spec.

use crate::design::NetworkDesign;
use crate::error::NetworkError;
use crate::families;
use crate::family::NetworkFamily;
use crate::prepared::PreparedSim;
use crate::route::RouteOracle;
use crate::sim_options::SimOptions;
use crate::spec::NetworkSpec;
use crate::topology::NetworkTopology;
use crate::traffic_spec::{TrafficError, TrafficSpec};
use otis_core::VerificationReport;
use otis_optics::HardwareInventory;
use otis_routing::FaultSet;
use otis_sim::{DemandSpec, SimMetrics, TrafficPattern};
use otis_topologies::TopologySummary;

/// Any network of the reproduction, behind one uniform API.
///
/// A `Network` is built from a spec string (or a parsed [`NetworkSpec`]) and
/// exposes every layer of the codebase through one surface:
///
/// * [`Network::topology`] — the digraph / stack-graph structure;
/// * [`Network::design`] — the OTIS-based optical design, where the paper
///   gives one;
/// * [`Network::verify`] — end-to-end verification (signal tracing against
///   the target topology, or structural invariants for design-less
///   families);
/// * [`Network::router`] — a route oracle unifying the per-family routers;
/// * [`Network::simulate`] — the slotted simulator matching the family
///   (multi-OPS arbitration or hot-potato deflection).
///
/// ```
/// use otis_net::Network;
///
/// let network = Network::from_spec("SK(6,3,2)").unwrap();
/// let report = network.verify().unwrap();
/// assert_eq!(report.processors, 72);
/// assert_eq!(report.links, 48);
/// ```
#[derive(Debug)]
pub struct Network {
    inner: Box<dyn NetworkFamily>,
}

impl Network {
    /// Builds a network from a spec string such as `"SK(6,3,2)"`,
    /// `"POPS(9,8)"`, `"II(4,12)"`, `"KG(3,4)"`, `"DB(2,8)"`,
    /// `"SII(2,3,12)"` or `"K(5)"`.
    pub fn from_spec(spec: &str) -> Result<Self, NetworkError> {
        Self::new(spec.parse::<NetworkSpec>()?)
    }

    /// Builds a network from a parsed spec, re-validating its parameters so
    /// a directly-constructed [`NetworkSpec`] cannot panic the constructors.
    pub fn new(spec: NetworkSpec) -> Result<Self, NetworkError> {
        spec.validate()?;
        Ok(Network {
            inner: families::build(&spec),
        })
    }

    /// The spec this network was built from.
    pub fn spec(&self) -> &NetworkSpec {
        self.inner.spec()
    }

    /// The canonical name, e.g. `"SK(6,3,2)"`.
    pub fn name(&self) -> String {
        self.spec().to_string()
    }

    /// Whether this is a multi-OPS (stack-graph) network.
    pub fn is_multi_ops(&self) -> bool {
        self.spec().is_multi_ops()
    }

    /// The graph-level structure.
    pub fn topology(&self) -> NetworkTopology<'_> {
        self.inner.topology()
    }

    /// Number of processors.
    pub fn node_count(&self) -> usize {
        self.topology().node_count()
    }

    /// Number of point-to-point links or OPS couplers.
    pub fn link_count(&self) -> usize {
        self.topology().link_count()
    }

    /// The closed-form diameter predicted by the paper, when exact.
    pub fn predicted_diameter(&self) -> Option<u32> {
        self.inner.predicted_diameter()
    }

    /// The uniform property summary row (measured diameter, average
    /// distance, …) used by the reproduction tables.
    pub fn summary(&self) -> TopologySummary {
        self.topology()
            .summary(self.name(), self.predicted_diameter())
    }

    /// The OTIS-based optical design, for families the paper designs
    /// (`II`, `KG`, `POPS`, `SK`, `SII`); `None` for comparison-only
    /// families (`DB`, `K`).
    pub fn design(&self) -> Option<NetworkDesign> {
        self.inner.design()
    }

    /// The closed-form hardware inventory predicted by the paper, where one
    /// is stated (stack-Kautz designs).
    pub fn predicted_inventory(&self) -> Option<HardwareInventory> {
        self.inner.predicted_inventory()
    }

    /// End-to-end verification; see [`Network`] for what is checked per
    /// family.
    pub fn verify(&self) -> Result<VerificationReport, NetworkError> {
        self.inner.verify()
    }

    /// A route oracle over flat processor identifiers.
    pub fn router(&self) -> Box<dyn RouteOracle> {
        self.inner.router()
    }

    /// Prepares this network's immutable simulation kernel for the given
    /// fault pattern — the expensive half of a simulation (fault-filtered
    /// graph, routing/distance tables), built once.  Sweeps that vary only
    /// seeds, loads or traffic over one `(network, fault-pattern)` pair
    /// should prepare once and call [`PreparedSim::run`] per cell; the
    /// scenario engine does exactly that through its kernel cache.  No
    /// alternate routes are prepared; see
    /// [`Network::prepare_with_alternates`] for kernels that try Yen
    /// alternate paths before blocking.
    pub fn prepare(&self, faults: &FaultSet) -> PreparedSim {
        self.prepare_with_alternates(faults, 1)
    }

    /// Like [`Network::prepare`], but also builds the alternate-route table
    /// of the wavelength layer: in wavelength mode a hop whose primary
    /// channel has no free wavelength tries up to `alt_paths − 1` Yen
    /// alternate routes before counting a blocked packet.  `alt_paths` is
    /// kernel state — fixed here, ignored by [`PreparedSim::run`].  `1`
    /// prepares no alternates (identical to [`Network::prepare`]); for
    /// point-to-point families the knob is a no-op because deflection
    /// routing *is* alternate routing.
    pub fn prepare_with_alternates(&self, faults: &FaultSet, alt_paths: usize) -> PreparedSim {
        self.inner.prepare(faults, alt_paths)
    }

    /// The hardware cost of this network in optical parts, for
    /// cost-per-delivered-bit composites: the total part count of the OTIS
    /// design where the paper gives one, otherwise a `3 ×` link-count proxy
    /// (transmitter, medium, receiver per link) so design-less comparison
    /// families still land on a comparable scale.
    pub fn hardware_cost(&self) -> usize {
        match self.design() {
            Some(design) => design.inventory().total_parts(),
            None => 3 * self.link_count(),
        }
    }

    /// Runs a slotted simulation under the given traffic pattern: the
    /// one-shot prepare-then-run wrapper over [`Network::prepare`].
    pub fn simulate(&self, traffic: &TrafficPattern, options: &SimOptions) -> SimMetrics {
        self.inner.simulate(traffic, options)
    }

    /// Convenience wrapper: uniform traffic at the given load.
    pub fn simulate_uniform(&self, load: f64, options: &SimOptions) -> SimMetrics {
        self.simulate(&TrafficPattern::Uniform { load }, options)
    }

    /// Runs a slotted simulation under a parsed workload spec, binding it to
    /// this network first: value errors (NaN loads, negative rates) and
    /// topology preconditions (transpose needs a square processor count,
    /// bit-reversal a power of two, a hotspot's hot node or a Poisson
    /// destination must exist, trace events must address real processors)
    /// are typed refusals, never silently-degraded traffic.  Stationary
    /// patterns take the exact [`Network::simulate`] path; demand processes
    /// (`poisson`, `onoff`, `mix`, `trace`) prepare a kernel and drive it
    /// through [`PreparedSim::run_demand`].
    pub fn simulate_workload(
        &self,
        workload: &TrafficSpec,
        options: &SimOptions,
    ) -> Result<SimMetrics, NetworkError> {
        match workload.bind(self.node_count())? {
            DemandSpec::Pattern(pattern) => Ok(self.simulate(&pattern, options)),
            demand => {
                let mut source = demand.source().map_err(|e| {
                    NetworkError::from(TrafficError::TraceIo {
                        path: match &demand {
                            DemandSpec::Trace { path, .. } => path.clone(),
                            _ => unreachable!("only trace sources touch the filesystem"),
                        },
                        detail: e.to_string(),
                    })
                })?;
                let kernel = self.prepare_with_alternates(&options.faults, options.alt_paths);
                Ok(kernel.run_demand(&mut source, options))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_exposes_every_layer_for_sk() {
        let net = Network::from_spec("SK(6,3,2)").unwrap();
        assert_eq!(net.name(), "SK(6,3,2)");
        assert!(net.is_multi_ops());
        assert_eq!(net.node_count(), 72);
        assert_eq!(net.link_count(), 48);
        assert_eq!(net.predicted_diameter(), Some(2));

        let summary = net.summary();
        assert_eq!(summary.nodes, 72);
        assert!(summary.diameter_matches_prediction());

        let report = net.verify().unwrap();
        assert_eq!(report.processors, 72);
        assert_eq!(report.links, 48);

        let design = net.design().unwrap();
        assert_eq!(design.processor_count(), 72);
        assert_eq!(design.inventory(), net.predicted_inventory().unwrap());

        let router = net.router();
        let route = router.route(0, 71).unwrap();
        assert!(route.hop_count() <= 2);

        let metrics = net.simulate_uniform(0.2, &SimOptions::new(200, 7));
        assert!(metrics.delivered > 0);
        assert_eq!(
            metrics.injected,
            metrics.delivered + metrics.in_flight + metrics.dropped
        );
    }

    #[test]
    fn facade_works_for_point_to_point_families() {
        for spec in ["KG(2,3)", "II(3,12)", "DB(2,4)", "K(5)"] {
            let net = Network::from_spec(spec).unwrap();
            assert!(!net.is_multi_ops(), "{spec}");
            let report = net.verify().unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(report.processors, net.node_count(), "{spec}");
            let router = net.router();
            assert_eq!(router.node_count(), net.node_count(), "{spec}");
            let route = router.route(0, net.node_count() - 1).unwrap();
            assert_eq!(
                route.nodes().last(),
                Some(&(net.node_count() - 1)),
                "{spec}"
            );
            let metrics = net.simulate_uniform(0.3, &SimOptions::new(150, 3));
            assert_eq!(
                metrics.injected,
                metrics.delivered + metrics.in_flight + metrics.dropped,
                "{spec}"
            );
        }
    }

    #[test]
    fn design_availability_matches_the_paper() {
        assert!(Network::from_spec("SK(2,2,2)").unwrap().design().is_some());
        assert!(Network::from_spec("POPS(4,2)").unwrap().design().is_some());
        assert!(Network::from_spec("SII(2,2,5)").unwrap().design().is_some());
        assert!(Network::from_spec("KG(2,2)").unwrap().design().is_some());
        assert!(Network::from_spec("II(2,5)").unwrap().design().is_some());
        assert!(Network::from_spec("DB(2,3)").unwrap().design().is_none());
        assert!(Network::from_spec("K(4)").unwrap().design().is_none());
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        assert!(Network::from_spec("nope").is_err());
        assert!(Network::from_spec("SK(0,2,2)").is_err());
    }

    #[test]
    fn simulate_workload_binds_and_refuses() {
        let net = Network::from_spec("DB(2,5)").unwrap(); // 32 = 2^5 processors
        let options = SimOptions::new(150, 5);
        let bitrev: TrafficSpec = "bitrev(0.5)".parse().unwrap();
        let metrics = net.simulate_workload(&bitrev, &options).unwrap();
        assert!(metrics.delivered > 0);
        // 32 is not a perfect square: transpose traffic is a typed refusal.
        let transpose: TrafficSpec = "transpose(0.5)".parse().unwrap();
        let err = net.simulate_workload(&transpose, &options).unwrap_err();
        assert!(matches!(err, NetworkError::Traffic(_)), "{err}");
        // And the hot node must exist.
        let hotspot: TrafficSpec = "hotspot(0.4,32,0.2)".parse().unwrap();
        assert!(net.simulate_workload(&hotspot, &options).is_err());
    }

    #[test]
    fn pops_simulation_end_to_end() {
        let net = Network::from_spec("POPS(9,8)").unwrap();
        assert_eq!(net.node_count(), 72);
        let metrics = net.simulate(
            &TrafficPattern::Uniform { load: 0.1 },
            &SimOptions::new(300, 11),
        );
        assert!(metrics.delivered > 0);
        // Single-hop network: every delivered message took exactly one hop.
        assert!((metrics.average_hops() - 1.0).abs() < 1e-9);
    }
}
