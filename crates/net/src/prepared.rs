//! The prepared-simulation surface of the facade.
//!
//! [`crate::family::NetworkFamily::prepare`] splits simulation into the two
//! phases of the `otis-sim` kernels: an immutable [`PreparedSim`] — the
//! fault-filtered graph plus all routing/distance state, built once — and
//! cheap [`PreparedSim::run`] calls that only pay for the slot loop.  The
//! scenario engine caches these kernels per `(spec, fault-pattern)` pair so
//! a grid builds each one exactly once; `Network::simulate` remains the
//! one-shot prepare-then-run wrapper with byte-identical metrics.

use crate::sim_options::SimOptions;
use otis_routing::FaultSet;
use otis_sim::{
    DemandSource, FaultSchedule, FaultScheduleError, HotPotatoSimConfig, MultiOpsSimConfig,
    PreparedHotPotato, PreparedMultiOps, SimMetrics, SlotScratch, TrafficPattern,
};

/// The hot-potato run-scoped knobs of `options`.
fn hot_config(options: &SimOptions) -> HotPotatoSimConfig {
    HotPotatoSimConfig {
        slots: options.slots,
        seed: options.seed,
        max_hops: options.max_hops,
        wavelengths: options.wavelengths,
    }
}

/// The multi-OPS run-scoped knobs of `options`.
fn ops_config(options: &SimOptions) -> MultiOpsSimConfig {
    MultiOpsSimConfig {
        slots: options.slots,
        seed: options.seed,
        policy: options.policy,
        queue_limit: options.queue_limit,
        wavelengths: options.wavelengths,
    }
}

/// A prepared simulation kernel for one network under one fault pattern —
/// either simulator family behind one surface.  `Send + Sync`, so one
/// kernel can serve many worker threads at once.
#[derive(Debug, Clone)]
pub enum PreparedSim {
    /// The deflection-routing kernel of the point-to-point families.
    HotPotato(PreparedHotPotato),
    /// The coupler-arbitration kernel of the multi-OPS families.
    MultiOps(PreparedMultiOps),
}

impl PreparedSim {
    /// Executes one run.  Only the run-scoped options are read — `slots`,
    /// `seed`, `max_hops`, `wavelengths` for hot-potato kernels; `slots`,
    /// `seed`, `policy`, `queue_limit`, `wavelengths` for multi-OPS kernels.
    /// The fault pattern and the alternate-route count (`alt_paths`) were
    /// fixed at prepare time ([`PreparedSim::faults`],
    /// [`crate::Network::prepare_with_alternates`]); `options.faults` and
    /// `options.alt_paths` are ignored here, which is what lets a scenario
    /// engine reuse one kernel across cells that share a fault pattern.
    pub fn run(&self, traffic: &TrafficPattern, options: &SimOptions) -> SimMetrics {
        match self {
            PreparedSim::HotPotato(kernel) => kernel.run(traffic, &hot_config(options)),
            PreparedSim::MultiOps(kernel) => kernel.run(traffic, &ops_config(options)),
        }
    }

    /// Executes one run driven by a [`DemandSource`] instead of a
    /// stationary pattern — the entry point of the demand subsystem
    /// (Poisson arrivals, on/off bursts, trace replay).  Reads the same
    /// run-scoped options as [`PreparedSim::run`]; a
    /// `DemandSource::Pattern` source reproduces `run` byte for byte.
    pub fn run_demand(&self, demand: &mut DemandSource, options: &SimOptions) -> SimMetrics {
        match self {
            PreparedSim::HotPotato(kernel) => kernel.run_demand(demand, &hot_config(options)),
            PreparedSim::MultiOps(kernel) => kernel.run_demand(demand, &ops_config(options)),
        }
    }

    /// [`PreparedSim::run`] / [`PreparedSim::run_with_timeline`] through a
    /// caller-owned [`SlotScratch`] pool: the arena, queues and port masks
    /// of consecutive runs are reused instead of reallocated, byte-identical
    /// to the plain entry points.  A `None` timeline takes the exact legacy
    /// run path; the scenario engine hands each worker one pool for its
    /// whole lifetime and threads every cell through here.
    ///
    /// # Panics
    ///
    /// Panics if `self` and the timeline come from different simulator
    /// families.
    pub fn run_with_timeline_scratch(
        &self,
        timeline: Option<&PreparedTimeline>,
        traffic: &TrafficPattern,
        options: &SimOptions,
        scratch: &mut SlotScratch,
    ) -> SimMetrics {
        match (self, timeline) {
            (PreparedSim::HotPotato(kernel), None) => {
                kernel.run_scratch(traffic, &hot_config(options), scratch)
            }
            (PreparedSim::HotPotato(kernel), Some(PreparedTimeline::HotPotato(epochs))) => {
                kernel.run_with_timeline_scratch(epochs, traffic, &hot_config(options), scratch)
            }
            (PreparedSim::MultiOps(kernel), None) => {
                kernel.run_scratch(traffic, &ops_config(options), scratch)
            }
            (PreparedSim::MultiOps(kernel), Some(PreparedTimeline::MultiOps(epochs))) => {
                kernel.run_with_timeline_scratch(epochs, traffic, &ops_config(options), scratch)
            }
            _ => panic!("timeline and kernel are from different simulator families"),
        }
    }

    /// [`PreparedSim::run_with_timeline_scratch`] driven by a
    /// [`DemandSource`] instead of a stationary pattern.
    ///
    /// # Panics
    ///
    /// Panics if `self` and the timeline come from different simulator
    /// families.
    pub fn run_demand_with_timeline_scratch(
        &self,
        timeline: Option<&PreparedTimeline>,
        demand: &mut DemandSource,
        options: &SimOptions,
        scratch: &mut SlotScratch,
    ) -> SimMetrics {
        match (self, timeline) {
            (PreparedSim::HotPotato(kernel), None) => {
                kernel.run_demand_scratch(demand, &hot_config(options), scratch)
            }
            (PreparedSim::HotPotato(kernel), Some(PreparedTimeline::HotPotato(epochs))) => kernel
                .run_demand_with_timeline_scratch(epochs, demand, &hot_config(options), scratch),
            (PreparedSim::MultiOps(kernel), None) => {
                kernel.run_demand_scratch(demand, &ops_config(options), scratch)
            }
            (PreparedSim::MultiOps(kernel), Some(PreparedTimeline::MultiOps(epochs))) => kernel
                .run_demand_with_timeline_scratch(epochs, demand, &ops_config(options), scratch),
            _ => panic!("timeline and kernel are from different simulator families"),
        }
    }

    /// Derives the kernel for `faults` from this kernel by delta repair —
    /// `self` must be fault-free (prepared with an empty fault set).  Only
    /// routing state the faults actually touch is recomputed
    /// ([`PreparedHotPotato::repair_from`],
    /// [`PreparedMultiOps::repair_from`]); the result is bit-identical to
    /// preparing the fault pattern from scratch.  `alt_paths` must equal
    /// the value `self` was prepared with (hot-potato kernels ignore it,
    /// exactly as they do at prepare time).
    pub fn repair(&self, faults: &FaultSet, alt_paths: usize) -> PreparedSim {
        match self {
            PreparedSim::HotPotato(base) => {
                PreparedSim::HotPotato(PreparedHotPotato::repair_from(base, faults))
            }
            PreparedSim::MultiOps(base) => {
                PreparedSim::MultiOps(PreparedMultiOps::repair_from(base, faults, alt_paths))
            }
        }
    }

    /// Structural equality of the routing state underneath — distance
    /// tables for hot-potato kernels; flat routes and Yen alternates for
    /// multi-OPS kernels.  The bit-identity oracle of the delta-repair
    /// acceptance tests; hidden from docs (not part of the simulation
    /// surface).  Kernels of different families are never equal.
    #[doc(hidden)]
    pub fn routing_state_eq(&self, other: &PreparedSim) -> bool {
        match (self, other) {
            (PreparedSim::HotPotato(a), PreparedSim::HotPotato(b)) => a.routing_state_eq(b),
            (PreparedSim::MultiOps(a), PreparedSim::MultiOps(b)) => a.routing_state_eq(b),
            _ => false,
        }
    }

    /// The fault pattern this kernel was prepared with.
    pub fn faults(&self) -> &FaultSet {
        match self {
            PreparedSim::HotPotato(kernel) => kernel.faults(),
            PreparedSim::MultiOps(kernel) => kernel.router().faults(),
        }
    }

    /// Number of processors the kernel simulates.
    pub fn node_count(&self) -> usize {
        match self {
            PreparedSim::HotPotato(kernel) => kernel.node_count(),
            PreparedSim::MultiOps(kernel) => kernel.processor_count(),
        }
    }

    /// Binds a [`FaultSchedule`] against this kernel's fault domain and
    /// prepares one kernel per event slot, all delta-derived from `base`
    /// (the fault-free kernel of the same spec): failures via
    /// `repair_from`, recoveries via `recover_from` where the event only
    /// removes faults relative to the preceding epoch.  `initial` is the
    /// kernel the run starts on (it carries the cell's static fault
    /// pattern); its faults are the floor every epoch unions onto.
    ///
    /// # Panics
    ///
    /// Panics if `base` and `initial` come from different simulator
    /// families — the engine only ever pairs kernels of one spec.
    pub fn timeline(
        base: &PreparedSim,
        initial: &PreparedSim,
        schedule: &FaultSchedule,
        alt_paths: usize,
    ) -> Result<PreparedTimeline, FaultScheduleError> {
        match (base, initial) {
            (PreparedSim::HotPotato(base), PreparedSim::HotPotato(initial)) => {
                Ok(PreparedTimeline::HotPotato(
                    PreparedHotPotato::timeline_from(base, initial, schedule)?,
                ))
            }
            (PreparedSim::MultiOps(base), PreparedSim::MultiOps(initial)) => {
                Ok(PreparedTimeline::MultiOps(PreparedMultiOps::timeline_from(
                    base, initial, schedule, alt_paths,
                )?))
            }
            _ => panic!("timeline base and initial kernels are from different simulator families"),
        }
    }

    /// Executes one run under a fault timeline: at each event slot the
    /// active kernel is swapped for the scheduled one, in-flight messages
    /// are re-resolved against the new routing state, and the restoration
    /// metrics ([`SimMetrics::fault_events`] and friends) are tracked.  An
    /// empty timeline takes the exact code path of [`PreparedSim::run`] —
    /// byte-identical metrics, no swap machinery touched.
    ///
    /// # Panics
    ///
    /// Panics if `self` and `timeline` come from different simulator
    /// families.
    pub fn run_with_timeline(
        &self,
        timeline: &PreparedTimeline,
        traffic: &TrafficPattern,
        options: &SimOptions,
    ) -> SimMetrics {
        match (self, timeline) {
            (PreparedSim::HotPotato(kernel), PreparedTimeline::HotPotato(epochs)) => {
                kernel.run_with_timeline(epochs, traffic, &hot_config(options))
            }
            (PreparedSim::MultiOps(kernel), PreparedTimeline::MultiOps(epochs)) => {
                kernel.run_with_timeline(epochs, traffic, &ops_config(options))
            }
            _ => panic!("timeline and kernel are from different simulator families"),
        }
    }

    /// [`PreparedSim::run_with_timeline`] driven by a [`DemandSource`]:
    /// kernel swaps at event slots plus a stochastic or replayed workload.
    ///
    /// # Panics
    ///
    /// Panics if `self` and `timeline` come from different simulator
    /// families.
    pub fn run_demand_with_timeline(
        &self,
        timeline: &PreparedTimeline,
        demand: &mut DemandSource,
        options: &SimOptions,
    ) -> SimMetrics {
        match (self, timeline) {
            (PreparedSim::HotPotato(kernel), PreparedTimeline::HotPotato(epochs)) => {
                kernel.run_demand_with_timeline(epochs, demand, &hot_config(options))
            }
            (PreparedSim::MultiOps(kernel), PreparedTimeline::MultiOps(epochs)) => {
                kernel.run_demand_with_timeline(epochs, demand, &ops_config(options))
            }
            _ => panic!("timeline and kernel are from different simulator families"),
        }
    }
}

/// A bound fault schedule, prepared once per `(spec, fault-pattern,
/// schedule)` triple: the kernels the run swaps to, each tagged with the
/// slot it activates at.  Built by [`PreparedSim::timeline`] and consumed
/// by [`PreparedSim::run_with_timeline`]; the scenario engine caches these
/// exactly like base kernels so a grid prepares each epoch once.
#[derive(Debug, Clone)]
pub enum PreparedTimeline {
    /// Epoch kernels for a deflection-routing run.
    HotPotato(Vec<(u64, PreparedHotPotato)>),
    /// Epoch kernels for a coupler-arbitration run.
    MultiOps(Vec<(u64, PreparedMultiOps)>),
}

impl PreparedTimeline {
    /// Number of scheduled kernel swaps (epochs past the initial kernel).
    pub fn len(&self) -> usize {
        match self {
            PreparedTimeline::HotPotato(epochs) => epochs.len(),
            PreparedTimeline::MultiOps(epochs) => epochs.len(),
        }
    }

    /// `true` when the schedule bound to no events — the run takes the
    /// plain [`PreparedSim::run`] path.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    #[test]
    fn prepared_run_matches_simulate_for_both_families() {
        // The facade contract: simulate == prepare + run, byte for byte,
        // with and without faults, for one family of each kind.
        for spec in ["DB(2,4)", "SK(2,2,2)"] {
            let network = Network::from_spec(spec).unwrap();
            for faults in [FaultSet::new(), FaultSet::from_nodes([1])] {
                let options = SimOptions::new(300, 11).with_faults(faults.clone());
                let traffic = TrafficPattern::Uniform { load: 0.4 };
                let kernel = network.prepare(&faults);
                assert_eq!(kernel.faults(), &faults, "{spec}");
                let direct = network.simulate(&traffic, &options);
                // One kernel, several runs: all must match one-shot calls.
                for _ in 0..2 {
                    assert_eq!(kernel.run(&traffic, &options), direct, "{spec}");
                }
            }
        }
    }

    #[test]
    fn prepared_node_count_matches_network() {
        for spec in ["K(5)", "POPS(3,4)"] {
            let network = Network::from_spec(spec).unwrap();
            let kernel = network.prepare(&FaultSet::new());
            assert_eq!(kernel.node_count(), network.node_count(), "{spec}");
        }
    }

    #[test]
    fn empty_timeline_run_matches_plain_run_for_both_families() {
        // A schedule with no events must bind to an empty timeline and the
        // timeline run must be the plain run, byte for byte.
        let schedule = FaultSchedule::empty();
        for spec in ["DB(2,4)", "SK(2,2,2)"] {
            let network = Network::from_spec(spec).unwrap();
            let kernel = network.prepare(&FaultSet::new());
            let timeline = PreparedSim::timeline(&kernel, &kernel, &schedule, 1).unwrap();
            assert!(timeline.is_empty(), "{spec}");
            let options = SimOptions::new(200, 7);
            let traffic = TrafficPattern::Uniform { load: 0.5 };
            assert_eq!(
                kernel.run_with_timeline(&timeline, &traffic, &options),
                kernel.run(&traffic, &options),
                "{spec}"
            );
        }
    }

    #[test]
    fn scheduled_timeline_runs_and_counts_events_for_both_families() {
        let schedule: FaultSchedule = "fail(node 1)@20; recover@120".parse().unwrap();
        for spec in ["DB(2,4)", "SK(2,2,2)"] {
            let network = Network::from_spec(spec).unwrap();
            let kernel = network.prepare(&FaultSet::new());
            let timeline = PreparedSim::timeline(&kernel, &kernel, &schedule, 1).unwrap();
            assert_eq!(timeline.len(), 2, "{spec}");
            let options = SimOptions::new(300, 7);
            let traffic = TrafficPattern::Uniform { load: 0.5 };
            let metrics = kernel.run_with_timeline(&timeline, &traffic, &options);
            assert_eq!(metrics.fault_events, 2, "{spec}");
        }
    }

    #[test]
    fn out_of_range_schedule_target_fails_to_bind() {
        let network = Network::from_spec("DB(2,3)").unwrap();
        let kernel = network.prepare(&FaultSet::new());
        let schedule: FaultSchedule = "fail(node 99)@5".parse().unwrap();
        let err = PreparedSim::timeline(&kernel, &kernel, &schedule, 1).unwrap_err();
        assert!(err.to_string().contains("99"), "{err}");
    }
}
