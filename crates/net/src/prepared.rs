//! The prepared-simulation surface of the facade.
//!
//! [`crate::family::NetworkFamily::prepare`] splits simulation into the two
//! phases of the `otis-sim` kernels: an immutable [`PreparedSim`] — the
//! fault-filtered graph plus all routing/distance state, built once — and
//! cheap [`PreparedSim::run`] calls that only pay for the slot loop.  The
//! scenario engine caches these kernels per `(spec, fault-pattern)` pair so
//! a grid builds each one exactly once; `Network::simulate` remains the
//! one-shot prepare-then-run wrapper with byte-identical metrics.

use crate::sim_options::SimOptions;
use otis_routing::FaultSet;
use otis_sim::{
    HotPotatoSimConfig, MultiOpsSimConfig, PreparedHotPotato, PreparedMultiOps, SimMetrics,
    TrafficPattern,
};

/// A prepared simulation kernel for one network under one fault pattern —
/// either simulator family behind one surface.  `Send + Sync`, so one
/// kernel can serve many worker threads at once.
#[derive(Debug, Clone)]
pub enum PreparedSim {
    /// The deflection-routing kernel of the point-to-point families.
    HotPotato(PreparedHotPotato),
    /// The coupler-arbitration kernel of the multi-OPS families.
    MultiOps(PreparedMultiOps),
}

impl PreparedSim {
    /// Executes one run.  Only the run-scoped options are read — `slots`,
    /// `seed`, `max_hops`, `wavelengths` for hot-potato kernels; `slots`,
    /// `seed`, `policy`, `queue_limit`, `wavelengths` for multi-OPS kernels.
    /// The fault pattern and the alternate-route count (`alt_paths`) were
    /// fixed at prepare time ([`PreparedSim::faults`],
    /// [`crate::Network::prepare_with_alternates`]); `options.faults` and
    /// `options.alt_paths` are ignored here, which is what lets a scenario
    /// engine reuse one kernel across cells that share a fault pattern.
    pub fn run(&self, traffic: &TrafficPattern, options: &SimOptions) -> SimMetrics {
        match self {
            PreparedSim::HotPotato(kernel) => kernel.run(
                traffic,
                &HotPotatoSimConfig {
                    slots: options.slots,
                    seed: options.seed,
                    max_hops: options.max_hops,
                    wavelengths: options.wavelengths,
                },
            ),
            PreparedSim::MultiOps(kernel) => kernel.run(
                traffic,
                &MultiOpsSimConfig {
                    slots: options.slots,
                    seed: options.seed,
                    policy: options.policy,
                    queue_limit: options.queue_limit,
                    wavelengths: options.wavelengths,
                },
            ),
        }
    }

    /// Derives the kernel for `faults` from this kernel by delta repair —
    /// `self` must be fault-free (prepared with an empty fault set).  Only
    /// routing state the faults actually touch is recomputed
    /// ([`PreparedHotPotato::repair_from`],
    /// [`PreparedMultiOps::repair_from`]); the result is bit-identical to
    /// preparing the fault pattern from scratch.  `alt_paths` must equal
    /// the value `self` was prepared with (hot-potato kernels ignore it,
    /// exactly as they do at prepare time).
    pub fn repair(&self, faults: &FaultSet, alt_paths: usize) -> PreparedSim {
        match self {
            PreparedSim::HotPotato(base) => {
                PreparedSim::HotPotato(PreparedHotPotato::repair_from(base, faults))
            }
            PreparedSim::MultiOps(base) => {
                PreparedSim::MultiOps(PreparedMultiOps::repair_from(base, faults, alt_paths))
            }
        }
    }

    /// The fault pattern this kernel was prepared with.
    pub fn faults(&self) -> &FaultSet {
        match self {
            PreparedSim::HotPotato(kernel) => kernel.faults(),
            PreparedSim::MultiOps(kernel) => kernel.router().faults(),
        }
    }

    /// Number of processors the kernel simulates.
    pub fn node_count(&self) -> usize {
        match self {
            PreparedSim::HotPotato(kernel) => kernel.node_count(),
            PreparedSim::MultiOps(kernel) => kernel.processor_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    #[test]
    fn prepared_run_matches_simulate_for_both_families() {
        // The facade contract: simulate == prepare + run, byte for byte,
        // with and without faults, for one family of each kind.
        for spec in ["DB(2,4)", "SK(2,2,2)"] {
            let network = Network::from_spec(spec).unwrap();
            for faults in [FaultSet::new(), FaultSet::from_nodes([1])] {
                let options = SimOptions::new(300, 11).with_faults(faults.clone());
                let traffic = TrafficPattern::Uniform { load: 0.4 };
                let kernel = network.prepare(&faults);
                assert_eq!(kernel.faults(), &faults, "{spec}");
                let direct = network.simulate(&traffic, &options);
                // One kernel, several runs: all must match one-shot calls.
                for _ in 0..2 {
                    assert_eq!(kernel.run(&traffic, &options), direct, "{spec}");
                }
            }
        }
    }

    #[test]
    fn prepared_node_count_matches_network() {
        for spec in ["K(5)", "POPS(3,4)"] {
            let network = Network::from_spec(spec).unwrap();
            let kernel = network.prepare(&FaultSet::new());
            assert_eq!(kernel.node_count(), network.node_count(), "{spec}");
        }
    }
}
