//! The unified view of a network's optical design.

use otis_core::{MultiOpsDesign, PointToPointDesign};
use otis_optics::HardwareInventory;

/// An owned optical design, point-to-point or multi-OPS, as produced by
/// [`crate::Network::design`].
#[derive(Debug, Clone)]
pub enum NetworkDesign {
    /// A point-to-point design (Proposition 1 / Corollary 1 families).
    PointToPoint(PointToPointDesign),
    /// A multi-OPS design (POPS, stack-Kautz, stack-Imase–Itoh).
    MultiOps(MultiOpsDesign),
}

impl NetworkDesign {
    /// Number of processors of the design.
    pub fn processor_count(&self) -> usize {
        match self {
            NetworkDesign::PointToPoint(d) => d.processor_count(),
            NetworkDesign::MultiOps(d) => d.processor_count(),
        }
    }

    /// The parts list of the design.
    pub fn inventory(&self) -> HardwareInventory {
        match self {
            NetworkDesign::PointToPoint(d) => d.inventory(),
            NetworkDesign::MultiOps(d) => d.inventory(),
        }
    }

    /// Worst-case optical loss over all transmitter→receiver paths, in dB.
    pub fn worst_case_loss_db(&self) -> f64 {
        match self {
            NetworkDesign::PointToPoint(d) => d.worst_case_loss_db(),
            NetworkDesign::MultiOps(d) => d.worst_case_loss_db(),
        }
    }

    /// The point-to-point design, when this is one.
    pub fn as_point_to_point(&self) -> Option<&PointToPointDesign> {
        match self {
            NetworkDesign::PointToPoint(d) => Some(d),
            NetworkDesign::MultiOps(_) => None,
        }
    }

    /// The multi-OPS design, when this is one.
    pub fn as_multi_ops(&self) -> Option<&MultiOpsDesign> {
        match self {
            NetworkDesign::PointToPoint(_) => None,
            NetworkDesign::MultiOps(d) => Some(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_core::{ImaseItohDesign, PopsDesign};

    #[test]
    fn point_to_point_accessors() {
        let d = NetworkDesign::PointToPoint(ImaseItohDesign::new(2, 5).design().clone());
        assert_eq!(d.processor_count(), 5);
        assert!(d.inventory().otis_units() == 1);
        assert!(d.worst_case_loss_db() >= 0.0);
        assert!(d.as_point_to_point().is_some());
        assert!(d.as_multi_ops().is_none());
    }

    #[test]
    fn multi_ops_accessors() {
        let d = NetworkDesign::MultiOps(PopsDesign::new(2, 2).design().clone());
        assert_eq!(d.processor_count(), 4);
        assert!(d.as_multi_ops().is_some());
        assert!(d.as_point_to_point().is_none());
    }
}
