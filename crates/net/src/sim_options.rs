//! Family-independent simulation options.

use otis_routing::FaultSet;
use otis_sim::{ArbitrationPolicy, WavelengthConfig};

/// Options of one [`crate::Network::simulate`] run, covering both simulator
/// back-ends (the multi-OPS slotted simulator and the hot-potato baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Number of slots to simulate.
    pub slots: u64,
    /// Random seed (traffic, random arbitration, deflection tie-breaks).
    pub seed: u64,
    /// Per-coupler arbitration policy (multi-OPS networks only).
    pub policy: ArbitrationPolicy,
    /// Back-pressure queue limit per coupler, `0` = unlimited (multi-OPS
    /// networks only).
    pub queue_limit: usize,
    /// Livelock guard for deflection routing, `0` = disabled (point-to-point
    /// networks only).
    pub max_hops: u32,
    /// Faults both simulators route around (empty = intact network).  For
    /// point-to-point families the fault set names processors and links; for
    /// multi-OPS families it names *quotient* groups and couplers — the
    /// granularity of the paper's §2.5 `d − 1` survivability claim.
    /// Injections the surviving network cannot serve are refused, not
    /// counted as injected.
    pub faults: FaultSet,
    /// Wavelength capacity per channel.  The default (capacity 1, first
    /// fit) keeps both simulators on their legacy capacity-1 loops and
    /// leaves the wavelength metrics undefined.
    pub wavelengths: WavelengthConfig,
    /// Total routes tried per hop in wavelength mode: the primary plus up
    /// to `alt_paths − 1` Yen alternates, prepared at kernel-build time.
    /// `1` (the default) prepares no alternates.  Multi-OPS families only;
    /// hot-potato deflection is inherently alternate routing, so the knob
    /// is a no-op for point-to-point networks.
    pub alt_paths: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            slots: 1000,
            seed: 1,
            policy: ArbitrationPolicy::OldestFirst,
            queue_limit: 0,
            max_hops: 64,
            faults: FaultSet::new(),
            wavelengths: WavelengthConfig::default(),
            alt_paths: 1,
        }
    }
}

impl SimOptions {
    /// Options with the given slot count and seed, defaults elsewhere.
    pub fn new(slots: u64, seed: u64) -> Self {
        SimOptions {
            slots,
            seed,
            ..Default::default()
        }
    }

    /// The same options with the given fault set installed.
    pub fn with_faults(mut self, faults: FaultSet) -> Self {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_simulators() {
        let o = SimOptions::default();
        assert_eq!(o.slots, 1000);
        assert_eq!(o.policy, ArbitrationPolicy::OldestFirst);
        assert_eq!(o.queue_limit, 0);
        assert_eq!(o.max_hops, 64);
        assert!(o.faults.is_empty());
        assert_eq!(o.wavelengths, WavelengthConfig::default());
        assert_eq!(o.alt_paths, 1);
        let custom = SimOptions::new(500, 42);
        assert_eq!(custom.slots, 500);
        assert_eq!(custom.seed, 42);
        assert_eq!(custom.policy, o.policy);
    }

    #[test]
    fn with_faults_installs_the_fault_set() {
        let mut faults = FaultSet::new();
        faults.fail_node(3);
        let o = SimOptions::new(100, 1).with_faults(faults.clone());
        assert_eq!(o.faults, faults);
        assert_eq!(o.slots, 100);
    }
}
