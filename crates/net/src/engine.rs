//! The parallel scenario engine: declarative `(spec × workload × seed ×
//! fault pattern)` grids executed across scoped worker threads.
//!
//! Every workload scenario of the reproduction — the T5 comparison tables,
//! load/latency frontier scans, the `d − 1` fault-injection sweeps of §2.5 —
//! is a cartesian grid of independent simulation cells.  A [`ScenarioGrid`]
//! names that grid as data; [`run_grid`] executes its cells across
//! `std::thread::scope` workers (the [`crate::Network`] facade is
//! `Send + Sync`) and returns one [`ScenarioRow`] per cell **in grid order**,
//! byte-identical regardless of the worker count: each cell seeds its own
//! RNG, so parallel execution cannot perturb results.
//!
//! The workload axis is a list of [`TrafficSpec`]s, so non-uniform traffic —
//! permutations, hotspots, transpose, bit-reversal — sweeps exactly like an
//! offered-load scalar used to; [`ScenarioGrid::loads`] remains as sugar
//! that builds uniform workloads.  Every workload is *bound* to every
//! network up front ([`TrafficSpec::bind`]), so topology preconditions
//! (transpose needs a square processor count, bit-reversal a power of two)
//! surface as typed errors before any cell runs.
//!
//! Grid order is workloads outermost, then specs, then seeds, then fault
//! sets — matching the table shape of experiment T5, so
//! [`crate::scenarios::compare_specs`] is a one-seed, no-fault grid.

use crate::error::NetworkError;
use crate::network::Network;
use crate::scenarios::fmt_stat;
use crate::sim_options::SimOptions;
use crate::spec::NetworkSpec;
use crate::traffic_spec::TrafficSpec;
use otis_routing::FaultSet;
use otis_sim::{SimMetrics, TrafficPattern};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A declarative grid of simulation scenarios: every combination of spec,
/// workload, seed and fault pattern becomes one independent cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// The networks under test.
    pub specs: Vec<NetworkSpec>,
    /// The workloads driven through every network, outermost grid axis.
    /// [`ScenarioGrid::loads`] fills this with uniform traffic from plain
    /// offered-load scalars.
    pub workloads: Vec<TrafficSpec>,
    /// Random seeds; each cell's simulation is seeded independently.
    pub seeds: Vec<u64>,
    /// Fault patterns to inject; `[FaultSet::new()]` for intact runs.  For
    /// multi-OPS networks fault node ids name quotient groups, for
    /// point-to-point networks they name processors (see
    /// [`SimOptions::faults`]).
    pub fault_sets: Vec<FaultSet>,
    /// Shared simulation options (slots, arbitration, queue limit, TTL).
    /// The `seed` and `faults` fields are overwritten per cell.
    pub options: SimOptions,
}

impl ScenarioGrid {
    /// A grid over the given specs with one default seed, no faults, no
    /// workloads yet (zero cells until [`ScenarioGrid::workloads`] or
    /// [`ScenarioGrid::loads`] is set).
    pub fn new(specs: Vec<NetworkSpec>) -> Self {
        let options = SimOptions::default();
        ScenarioGrid {
            specs,
            workloads: Vec::new(),
            seeds: vec![options.seed],
            fault_sets: vec![FaultSet::new()],
            options,
        }
    }

    /// Sets uniform-traffic workloads at the given offered loads — sugar for
    /// [`ScenarioGrid::workloads`] with [`TrafficSpec::Uniform`] entries.
    pub fn loads(mut self, loads: &[f64]) -> Self {
        self.workloads = loads
            .iter()
            .map(|&load| TrafficSpec::Uniform { load })
            .collect();
        self
    }

    /// Sets the workload axis.
    pub fn workloads(mut self, workloads: Vec<TrafficSpec>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Sets the seeds.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Sets the fault patterns to sweep.
    pub fn fault_sets(mut self, fault_sets: Vec<FaultSet>) -> Self {
        self.fault_sets = fault_sets;
        self
    }

    /// Sets the slot count.
    pub fn slots(mut self, slots: u64) -> Self {
        self.options.slots = slots;
        self
    }

    /// Number of cells the grid expands to.
    pub fn cell_count(&self) -> usize {
        self.specs.len() * self.workloads.len() * self.seeds.len() * self.fault_sets.len()
    }

    /// Executes the grid; see [`run_grid`].
    pub fn run(&self, threads: usize) -> Result<Vec<ScenarioRow>, NetworkError> {
        run_grid(self, threads)
    }
}

/// The result of one grid cell: the cell's coordinates plus the full
/// simulation metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// The network simulated.
    pub spec: NetworkSpec,
    /// The workload driven through it.
    pub traffic: TrafficSpec,
    /// Nominal offered load, derived from the workload spec (messages per
    /// processor per slot).
    pub offered_load: f64,
    /// The seed this cell ran under.
    pub seed: u64,
    /// Number of injected faults (nodes plus arcs).
    pub fault_count: usize,
    /// The exact fault pattern of this cell.
    pub faults: FaultSet,
    /// The simulation metrics.
    pub metrics: SimMetrics,
}

impl ScenarioRow {
    /// Formats the row for the `scenarios` CLI and the reproduction harness.
    /// Undefined averages (zero deliveries) render as `-`.
    pub fn as_table_row(&self) -> String {
        format!(
            "{:<16} {:<20} {:>6} {:>8.3} {:>6} {:>6} {:>10.4} {} {} {:>8} {:>8}",
            self.spec.to_string(),
            self.traffic.to_string(),
            self.metrics.processors,
            self.offered_load,
            self.seed,
            self.fault_count,
            self.metrics.throughput(),
            fmt_stat(self.metrics.average_latency(), 10, 2),
            fmt_stat(self.metrics.average_hops(), 8, 2),
            self.metrics.max_hops,
            self.metrics.delivered,
        )
    }

    /// Header matching [`ScenarioRow::as_table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<16} {:<20} {:>6} {:>8} {:>6} {:>6} {:>10} {:>10} {:>8} {:>8} {:>8}",
            "network",
            "traffic",
            "procs",
            "load",
            "seed",
            "faults",
            "thruput",
            "latency",
            "hops",
            "maxhops",
            "delivrd"
        )
    }
}

/// One cell's coordinates into the grid's axes.
#[derive(Debug, Clone, Copy)]
struct Cell {
    spec: usize,
    workload: usize,
    seed: u64,
    fault_set: usize,
}

/// The number of worker threads [`crate::scenarios`] uses when the caller
/// does not choose one: the machine's available parallelism.
pub fn default_thread_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Executes every cell of the grid across `threads` scoped workers (clamped
/// to at least 1 and at most the cell count) and returns the rows in grid
/// order — workloads outermost, then specs, then seeds, then fault sets.
///
/// Every workload is bound to every network before execution starts, so an
/// unbindable combination (transpose traffic on a non-square network, a
/// hotspot aimed at a node that does not exist) is a typed error for the
/// whole grid, not a silently-degraded cell.
///
/// Results are independent of the thread count: cells are self-contained
/// (own RNG seed, own simulator instance) and each is written to its own
/// pre-assigned slot.  Workers pull cells from a shared atomic counter, so
/// uneven cell costs balance automatically.
pub fn run_grid(grid: &ScenarioGrid, threads: usize) -> Result<Vec<ScenarioRow>, NetworkError> {
    let networks: Vec<Network> = grid
        .specs
        .iter()
        .map(|&spec| Network::new(spec))
        .collect::<Result<_, _>>()?;

    // Bind every workload to every network up front: patterns[w][s] is
    // workload w ready to drive network s.
    let patterns: Vec<Vec<TrafficPattern>> = grid
        .workloads
        .iter()
        .map(|workload| {
            networks
                .iter()
                .map(|network| workload.bind(network.node_count()))
                .collect::<Result<_, _>>()
        })
        .collect::<Result<_, _>>()
        .map_err(NetworkError::from)?;

    let mut cells: Vec<Cell> = Vec::with_capacity(grid.cell_count());
    for workload in 0..grid.workloads.len() {
        for spec in 0..grid.specs.len() {
            for &seed in &grid.seeds {
                for fault_set in 0..grid.fault_sets.len() {
                    cells.push(Cell {
                        spec,
                        workload,
                        seed,
                        fault_set,
                    });
                }
            }
        }
    }

    let slots: Vec<OnceLock<ScenarioRow>> = (0..cells.len()).map(|_| OnceLock::new()).collect();
    let workers = threads.max(1).min(cells.len().max(1));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(index) else { break };
                let row = run_cell(
                    &networks[cell.spec],
                    &patterns[cell.workload][cell.spec],
                    grid,
                    cell,
                );
                slots[index]
                    .set(row)
                    .expect("each cell is claimed by exactly one worker");
            });
        }
    });
    Ok(slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every claimed cell completed"))
        .collect())
}

fn run_cell(
    network: &Network,
    pattern: &TrafficPattern,
    grid: &ScenarioGrid,
    cell: &Cell,
) -> ScenarioRow {
    let faults = grid.fault_sets[cell.fault_set].clone();
    let options = SimOptions {
        seed: cell.seed,
        faults: faults.clone(),
        ..grid.options.clone()
    };
    let traffic = grid.workloads[cell.workload];
    let metrics = network.simulate(pattern, &options);
    ScenarioRow {
        spec: *network.spec(),
        traffic,
        offered_load: traffic.offered_load(),
        seed: cell.seed,
        fault_count: faults.len(),
        faults,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_routing::node_fault_patterns_up_to;

    fn small_grid() -> ScenarioGrid {
        let specs = ["SK(2,2,2)", "POPS(3,4)", "DB(2,4)"]
            .iter()
            .map(|s| s.parse::<NetworkSpec>().unwrap())
            .collect();
        ScenarioGrid::new(specs)
            .loads(&[0.1, 0.5])
            .seeds(&[7, 11])
            .slots(120)
    }

    #[test]
    fn rows_are_identical_for_one_and_many_threads() {
        let grid = small_grid();
        let serial = run_grid(&grid, 1).unwrap();
        let parallel = run_grid(&grid, 8).unwrap();
        assert_eq!(serial.len(), grid.cell_count());
        assert_eq!(serial, parallel);
        // Oversubscription is also harmless.
        assert_eq!(serial, run_grid(&grid, 1000).unwrap());
        assert_eq!(serial, grid.run(0).unwrap());
    }

    #[test]
    fn rows_come_back_in_grid_order() {
        let grid = small_grid();
        let rows = run_grid(&grid, 4).unwrap();
        let mut expected = Vec::new();
        for &workload in &grid.workloads {
            for &spec in &grid.specs {
                for &seed in &grid.seeds {
                    expected.push((workload, spec, seed));
                }
            }
        }
        let got: Vec<_> = rows.iter().map(|r| (r.traffic, r.spec, r.seed)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn loads_sugar_builds_uniform_workloads() {
        let grid = small_grid();
        assert_eq!(
            grid.workloads,
            vec![
                TrafficSpec::Uniform { load: 0.1 },
                TrafficSpec::Uniform { load: 0.5 }
            ]
        );
        for row in run_grid(&grid, 2).unwrap() {
            assert_eq!(row.offered_load, row.traffic.offered_load());
        }
    }

    #[test]
    fn mixed_workload_rows_are_thread_count_independent() {
        // All three specs have 24+ processors; the permutation and hotspot
        // workloads bind to any size, so this grid mixes patterns freely.
        let specs = ["SK(2,2,2)", "POPS(3,4)", "DB(2,4)"]
            .iter()
            .map(|s| s.parse::<NetworkSpec>().unwrap())
            .collect();
        let workloads: Vec<TrafficSpec> = ["uniform(0.3)", "perm(0.5,7)", "hotspot(0.4,0,0.2)"]
            .iter()
            .map(|w| w.parse().unwrap())
            .collect();
        let grid = ScenarioGrid::new(specs)
            .workloads(workloads)
            .seeds(&[3])
            .slots(150);
        assert_eq!(grid.cell_count(), 9);
        let serial = run_grid(&grid, 1).unwrap();
        assert_eq!(serial, run_grid(&grid, 2).unwrap());
        assert_eq!(serial, run_grid(&grid, 64).unwrap());
        for row in &serial {
            assert!(row.metrics.delivered > 0, "{row:?}");
        }
    }

    #[test]
    fn empty_axes_yield_empty_results() {
        let grid = ScenarioGrid::new(vec!["K(4)".parse().unwrap()]);
        assert_eq!(grid.cell_count(), 0);
        assert!(run_grid(&grid, 4).unwrap().is_empty());
    }

    #[test]
    fn invalid_specs_surface_as_typed_errors() {
        let grid =
            ScenarioGrid::new(vec![NetworkSpec::StackKautz { s: 0, d: 2, k: 2 }]).loads(&[0.1]);
        assert!(run_grid(&grid, 2).is_err());
    }

    #[test]
    fn unbindable_workloads_surface_as_typed_errors_before_any_cell_runs() {
        // SK(2,2,2) has 12 processors: not a square, not a power of two, and
        // node 12 does not exist.  Each unbindable workload fails the whole
        // grid with the typed traffic error.
        let specs = vec!["SK(2,2,2)".parse::<NetworkSpec>().unwrap()];
        for bad in ["transpose(0.5)", "bitrev(0.5)", "hotspot(0.4,12,0.2)"] {
            let grid = ScenarioGrid::new(specs.clone())
                .workloads(vec![bad.parse().unwrap()])
                .slots(50);
            let err = run_grid(&grid, 2).unwrap_err();
            assert!(
                matches!(err, NetworkError::Traffic(_)),
                "{bad} should fail to bind: {err}"
            );
        }
        // The same patterns bind fine on networks meeting the precondition:
        // K(16) is both square and a power of two, and has a node 12.
        let ok = ScenarioGrid::new(vec!["K(16)".parse().unwrap()])
            .workloads(vec![
                "transpose(0.5)".parse().unwrap(),
                "bitrev(0.5)".parse().unwrap(),
                "hotspot(0.4,12,0.2)".parse().unwrap(),
            ])
            .slots(50);
        let rows = run_grid(&ok, 2).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.metrics.delivered > 0, "{row:?}");
        }
    }

    #[test]
    fn fault_sweep_confirms_the_k_plus_2_bound_on_a_small_kautz_instance() {
        // SK(2,2,2): quotient KG(2,2) with 6 groups, degree d = 2, diameter
        // k = 2.  Sweep every fault pattern of size 0..=d−1 (all 6 single-
        // group faults plus the intact baseline) through the engine and
        // check the §2.5 claim empirically: every delivered message used at
        // most k + 2 optical hops, and traffic still flows.
        let (d, k) = (2usize, 2usize);
        let groups = 6;
        let grid = ScenarioGrid::new(vec!["SK(2,2,2)".parse().unwrap()])
            .loads(&[0.3])
            .seeds(&[5])
            .fault_sets(node_fault_patterns_up_to(groups, d - 1))
            .slots(400);
        assert_eq!(grid.cell_count(), 1 + groups);
        let rows = run_grid(&grid, 4).unwrap();
        for row in &rows {
            assert!(row.metrics.delivered > 0, "{row:?}");
            assert!(
                row.metrics.max_hops as usize <= k + 2,
                "fault pattern {:?} produced a {}-hop route (bound k+2 = {})",
                row.faults.sorted_nodes(),
                row.metrics.max_hops,
                k + 2
            );
            assert_eq!(
                row.metrics.injected,
                row.metrics.delivered + row.metrics.in_flight + row.metrics.dropped
            );
        }
        // Faulty cells accept less traffic than the intact baseline.
        let intact = &rows[0];
        assert!(intact.faults.is_empty());
        for row in &rows[1..] {
            assert!(row.metrics.injected < intact.metrics.injected);
        }
    }

    #[test]
    fn table_rendering_handles_zero_deliveries() {
        let grid = ScenarioGrid::new(vec!["POPS(2,2)".parse().unwrap()])
            .loads(&[0.0])
            .slots(50);
        let rows = run_grid(&grid, 1).unwrap();
        assert_eq!(rows[0].metrics.delivered, 0);
        let rendered = rows[0].as_table_row();
        assert!(!rendered.contains("NaN"), "{rendered}");
        assert!(rendered.contains('-'), "{rendered}");
        assert_eq!(
            ScenarioRow::table_header().split_whitespace().count(),
            rendered.split_whitespace().count()
        );
    }
}
