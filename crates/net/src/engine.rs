//! The parallel scenario engine: declarative `(spec × workload × seed ×
//! fault pattern)` grids executed across scoped worker threads.
//!
//! Every workload scenario of the reproduction — the T5 comparison tables,
//! load/latency frontier scans, the `d − 1` fault-injection sweeps of §2.5 —
//! is a cartesian grid of independent simulation cells.  A [`ScenarioGrid`]
//! names that grid as data; [`run_grid`] executes its cells across
//! `std::thread::scope` workers (the [`crate::Network`] facade is
//! `Send + Sync`) and returns one [`ScenarioRow`] per cell **in grid order**,
//! byte-identical regardless of the worker count: each cell seeds its own
//! RNG, so parallel execution cannot perturb results.
//!
//! The workload axis is a list of [`TrafficSpec`]s, so non-uniform traffic —
//! permutations, hotspots, transpose, bit-reversal — sweeps exactly like an
//! offered-load scalar used to; [`ScenarioGrid::loads`] remains as sugar
//! that builds uniform workloads.  Every workload is *bound* to every
//! network up front ([`TrafficSpec::bind`]), so topology preconditions
//! (transpose needs a square processor count, bit-reversal a power of two)
//! surface as typed errors before any cell runs.
//!
//! Grid order is wavelength counts outermost, then fault schedules, then
//! workloads, then specs, then seeds, then fault sets — matching the table
//! shape of experiment T5 (the default single-entry wavelength and schedule
//! axes leave the historical order untouched), so
//! [`crate::scenarios::compare_specs`] is a one-seed, no-fault grid.
//!
//! Results *stream*: [`run_grid_streaming`] hands each completed cell to a
//! [`RowSink`] in grid order while later cells are still running, through a
//! small reorder buffer bounded by [`reorder_window`] — memory is
//! O(threads + window), not O(cells), so a million-cell grid can run to a
//! CSV or JSON-Lines file without ever materialising its rows.  [`run_grid`]
//! is the collect-everything convenience: [`run_grid_streaming`] plus a
//! [`CollectSink`].
//!
//! ## The prepared-kernel cache and delta repair
//!
//! Simulation is split into prepare/execute (see [`crate::prepared`]): the
//! expensive routing state — fault-filtered graph, distance tables, flat
//! route layouts — lives in an immutable [`PreparedSim`] kernel, and a
//! cell's run only pays for its slot loop.  The engine keys a cache of
//! these kernels on the `(spec, fault-pattern)` pair: one `OnceLock` slot
//! per pair, shared by every worker, so a grid materialises each distinct
//! kernel **exactly once** no matter how many cells (seeds × workloads)
//! share it or how many threads race to need it first.
//!
//! Fault-pattern kernels are not built from scratch.  Each spec gets one
//! *base* kernel — the fault-free preparation, built lazily on first need
//! and counted in [`StreamSummary::kernels_built`] — and every other
//! `(spec, fault-pattern)` slot is **delta-repaired** from that base
//! ([`PreparedSim::repair`], counted in
//! [`StreamSummary::kernels_repaired`]): only routing-table columns and
//! route pairs the faults actually touch are recomputed, which is far
//! cheaper than a full rebuild and bit-identical to one.  A fault-sweep
//! grid therefore performs exactly one full routing-state construction per
//! spec plus one cheap repair per non-empty fault pattern — the two
//! counters the cache tests pin (`built + repaired` = distinct exercised
//! pairs, with empty-fault slots sharing the base outright).
//!
//! Cached kernels live for the whole run (exactly-once materialisation
//! rules out eviction), so the cache's memory is O(specs × fault_sets)
//! kernels on top of the engine's O(threads + window) row buffering — the
//! trade-off is deliberate: fault axes are combinatorial in *patterns*, but
//! each kernel is only a routing table, and rebuilding one mid-run would
//! cost far more than holding it.
//!
//! ## Fault schedules and mid-run kernel swaps
//!
//! The sixth grid axis, [`ScenarioGrid::fault_schedules`], makes faults
//! *dynamic*: a [`FaultSchedule`] is an ordered list of
//! `fail(node n)@slot` / `recover@slot` events, and a cell running under a
//! non-empty schedule swaps its active kernel at each event slot instead of
//! simulating one static fault pattern.  The swap kernels are prepared once
//! per `(spec, fault-pattern, schedule)` triple — a [`PreparedTimeline`],
//! cached in its own `OnceLock` lattice exactly like the static kernels —
//! and every epoch kernel is delta-derived, never built from scratch:
//! failures repair *forward* from the spec's fault-free base
//! ([`PreparedSim::repair`]'s machinery), recoveries repair *backward*
//! toward fewer faults reusing the routing state both epochs share.  Each
//! epoch counts in [`StreamSummary::kernels_repaired`], and the number of
//! swaps the delivered rows actually performed is threaded out through
//! [`StreamSummary::kernel_swaps`].
//!
//! Schedules are bound up front — every `(spec, fault-pattern, schedule)`
//! combination is validated before any cell runs, so an event naming a node
//! outside the fault domain (processors for point-to-point networks,
//! quotient groups for multi-OPS) or duplicating a static fault is a typed
//! [`NetworkError::Schedule`] for the whole grid.  At the slot loop, a swap
//! re-resolves every in-flight message against the new routing tables:
//! messages stranded on a failed node (or whose destination became
//! unreachable) are dropped and counted in `dropped_by_failure`, separately
//! from congestion drops, and the restoration metrics (`fault_events`,
//! `in_flight_at_failure`, `restore_slots`, `post_failure_latency_peak`)
//! track how quickly delivery recovers.  The default single-entry axis is
//! the empty schedule, which takes the exact legacy run path — cells under
//! it stream rows byte-identical to a grid without the axis, at any thread
//! count.

use crate::error::NetworkError;
use crate::network::Network;
use crate::prepared::{PreparedSim, PreparedTimeline};
use crate::scenarios::fmt_stat;
use crate::sim_options::SimOptions;
use crate::sink::{CollectSink, RowSink};
use crate::spec::NetworkSpec;
use crate::traffic_spec::TrafficSpec;
use otis_routing::FaultSet;
use otis_sim::{DemandSpec, FaultSchedule, SimMetrics, SlotScratch, WavelengthConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, OnceLock};

/// A declarative grid of simulation scenarios: every combination of spec,
/// workload, seed and fault pattern becomes one independent cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// The networks under test.
    pub specs: Vec<NetworkSpec>,
    /// The workloads driven through every network, outermost grid axis.
    /// [`ScenarioGrid::loads`] fills this with uniform traffic from plain
    /// offered-load scalars.
    pub workloads: Vec<TrafficSpec>,
    /// Random seeds; each cell's simulation is seeded independently.
    pub seeds: Vec<u64>,
    /// Fault patterns to inject; `[FaultSet::new()]` for intact runs.  For
    /// multi-OPS networks fault node ids name quotient groups, for
    /// point-to-point networks they name processors (see
    /// [`SimOptions::faults`]).
    pub fault_sets: Vec<FaultSet>,
    /// Fault timelines to sweep; `[FaultSchedule::empty()]` for static
    /// runs.  A non-empty schedule swaps the cell's active kernel at each
    /// event slot (see the module docs); event node ids live in the same
    /// fault domain as [`ScenarioGrid::fault_sets`].  Every combination is
    /// bound before execution starts, so out-of-range targets and overlaps
    /// with static faults surface as typed errors for the whole grid.
    pub fault_schedules: Vec<FaultSchedule>,
    /// Wavelength counts to sweep, outermost grid axis — the workhorse of
    /// the blocking-ratio studies.  Every count must be at least 1; the
    /// default `[1]` keeps the simulators on their legacy capacity-1 loops
    /// and the sinks on the legacy column schema.  This axis is
    /// authoritative: it overrides `options.wavelengths.count` per cell
    /// (the assignment policy still comes from the options).
    pub wavelengths: Vec<usize>,
    /// Shared simulation options (slots, arbitration, queue limit, TTL,
    /// wavelength assignment policy, alternate-route count).  The `seed`,
    /// `faults` and `wavelengths.count` fields are overwritten per cell.
    pub options: SimOptions,
}

impl ScenarioGrid {
    /// A grid over the given specs with one default seed, no faults, no
    /// workloads yet (zero cells until [`ScenarioGrid::workloads`] or
    /// [`ScenarioGrid::loads`] is set).
    pub fn new(specs: Vec<NetworkSpec>) -> Self {
        let options = SimOptions::default();
        ScenarioGrid {
            specs,
            workloads: Vec::new(),
            seeds: vec![options.seed],
            fault_sets: vec![FaultSet::new()],
            fault_schedules: vec![FaultSchedule::empty()],
            wavelengths: vec![options.wavelengths.count],
            options,
        }
    }

    /// Sets uniform-traffic workloads at the given offered loads — sugar for
    /// [`ScenarioGrid::workloads`] with [`TrafficSpec::Uniform`] entries.
    pub fn loads(mut self, loads: &[f64]) -> Self {
        self.workloads = loads
            .iter()
            .map(|&load| TrafficSpec::Uniform { load })
            .collect();
        self
    }

    /// Sets the workload axis.
    pub fn workloads(mut self, workloads: Vec<TrafficSpec>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Sets the seeds.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Sets the fault patterns to sweep.
    pub fn fault_sets(mut self, fault_sets: Vec<FaultSet>) -> Self {
        self.fault_sets = fault_sets;
        self
    }

    /// Sets the fault timelines to sweep; see
    /// [`ScenarioGrid::fault_schedules`].
    pub fn fault_schedules(mut self, fault_schedules: Vec<FaultSchedule>) -> Self {
        self.fault_schedules = fault_schedules;
        self
    }

    /// Sets the wavelength counts to sweep (each must be at least 1).
    pub fn wavelengths(mut self, counts: &[usize]) -> Self {
        self.wavelengths = counts.to_vec();
        self
    }

    /// Sets the alternate-route count shared by every cell; see
    /// [`SimOptions::alt_paths`].
    pub fn alt_paths(mut self, alt_paths: usize) -> Self {
        self.options.alt_paths = alt_paths;
        self
    }

    /// Whether this grid exercises the wavelength layer at all: some cell
    /// multiplexes more than one wavelength, or alternate routes are
    /// prepared.  Sinks switch to the extended column schema (wavelength
    /// metrics plus the cost-per-delivered-bit composite) exactly when this
    /// is true, so capacity-1 grids stay byte-identical to the legacy
    /// output.
    pub fn wavelength_layer_enabled(&self) -> bool {
        self.wavelengths.iter().any(|&w| w > 1) || self.options.alt_paths > 1
    }

    /// Whether any cell of this grid runs under a non-empty fault schedule.
    /// Sinks append the restoration column group (fault-event counts,
    /// stranded-message drops, restore time, post-failure latency peak)
    /// exactly when this is true, so static grids keep the legacy schema.
    pub fn fault_schedule_enabled(&self) -> bool {
        self.fault_schedules.iter().any(|s| !s.is_empty())
    }

    /// Non-fatal configuration smells: combinations the engine will run but
    /// that almost certainly do not mean what the caller intended.  The
    /// `scenarios` CLI prints these on stderr before the run starts.
    pub fn warnings(&self) -> Vec<GridWarning> {
        let mut warnings = Vec::new();
        if self.options.alt_paths > 1
            && !self.specs.is_empty()
            && !self.specs.iter().any(NetworkSpec::is_multi_ops)
        {
            warnings.push(GridWarning::AltPathsIgnoredByHotPotato {
                alt_paths: self.options.alt_paths,
            });
        }
        if self.seeds.len() > 1 {
            for workload in self.workloads.iter().filter(|w| w.is_trace()) {
                warnings.push(GridWarning::TraceWorkloadWithMultipleSeeds {
                    workload: workload.to_string(),
                    seeds: self.seeds.len(),
                });
            }
        }
        warnings
    }

    /// Sets the slot count.
    pub fn slots(mut self, slots: u64) -> Self {
        self.options.slots = slots;
        self
    }

    /// Number of cells the grid expands to, saturating at `usize::MAX` when
    /// the axis product overflows (it used to be an unchecked product — a
    /// debug-mode panic).  The engine refuses to run an overflowing grid
    /// with the typed [`NetworkError::GridTooLarge`]; see
    /// [`ScenarioGrid::checked_cell_count`].
    pub fn cell_count(&self) -> usize {
        self.checked_cell_count().unwrap_or(usize::MAX)
    }

    /// Checked axis product: `None` when `specs × workloads × seeds ×
    /// fault_sets × fault_schedules × wavelengths` overflows `usize`.
    pub fn checked_cell_count(&self) -> Option<usize> {
        checked_product([
            self.specs.len(),
            self.workloads.len(),
            self.seeds.len(),
            self.fault_sets.len(),
            self.fault_schedules.len(),
            self.wavelengths.len(),
        ])
    }

    /// The cell at flat `index` in grid order (wavelength counts outermost,
    /// then fault schedules, then workloads, then specs, then seeds, then
    /// fault sets).  Only called for `index < cell_count()`, so every axis
    /// is non-empty.
    fn cell_at(&self, index: usize) -> Cell {
        let faults = self.fault_sets.len();
        let seeds = self.seeds.len();
        let specs = self.specs.len();
        let workloads = self.workloads.len();
        let schedules = self.fault_schedules.len();
        Cell {
            fault_set: index % faults,
            seed: self.seeds[(index / faults) % seeds],
            spec: (index / (faults * seeds)) % specs,
            workload: (index / (faults * seeds * specs)) % workloads,
            schedule: (index / (faults * seeds * specs * workloads)) % schedules,
            wavelengths: self.wavelengths[index / (faults * seeds * specs * workloads * schedules)],
        }
    }

    /// Executes the grid; see [`run_grid`].
    pub fn run(&self, threads: usize) -> Result<Vec<ScenarioRow>, NetworkError> {
        run_grid(self, threads)
    }

    /// Streams the grid's rows into `sink`; see [`run_grid_streaming`].
    pub fn run_streaming<S: RowSink + ?Sized>(
        &self,
        threads: usize,
        sink: &mut S,
    ) -> Result<StreamSummary, NetworkError> {
        run_grid_streaming(self, threads, sink)
    }
}

/// Checked product of the grid's axis lengths.
fn checked_product(axes: [usize; 6]) -> Option<usize> {
    axes.iter().try_fold(1usize, |acc, &n| acc.checked_mul(n))
}

/// The simulation work one row represents, in node-slots.  Saturating: a
/// pathological `slots × processors` product must clamp at `u64::MAX`, not
/// wrap the engine's throughput accounting around zero.
fn row_node_slots(slots: u64, processors: usize) -> u64 {
    slots.saturating_mul(processors as u64)
}

/// A non-fatal configuration smell reported by [`ScenarioGrid::warnings`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridWarning {
    /// `alt_paths > 1` on a grid whose spec list is hot-potato only:
    /// alternate routes are a multi-OPS routing mechanism (deflection
    /// routing adapts per slot on its own), so the option changes nothing
    /// on this grid.
    AltPathsIgnoredByHotPotato {
        /// The configured alternate-route count.
        alt_paths: usize,
    },
    /// A `trace(file)` workload crossed with more than one seed: trace
    /// replay is fully deterministic (the seed never reaches the injection
    /// side), so every seed re-runs the identical cell and the extra rows
    /// measure nothing new.
    TraceWorkloadWithMultipleSeeds {
        /// The trace workload in question, rendered as its spec string.
        workload: String,
        /// How many seeds the grid sweeps.
        seeds: usize,
    },
}

impl std::fmt::Display for GridWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridWarning::AltPathsIgnoredByHotPotato { alt_paths } => write!(
                f,
                "alt_paths = {alt_paths} has no effect: no spec in this grid is a multi-OPS \
                 network, and hot-potato routing ignores prepared alternate routes"
            ),
            GridWarning::TraceWorkloadWithMultipleSeeds { workload, seeds } => write!(
                f,
                "workload {workload} replays a recorded trace, which ignores the seed: all \
                 {seeds} seeds of the grid will produce identical rows for it"
            ),
        }
    }
}

/// The result of one grid cell: the cell's coordinates plus the full
/// simulation metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// The network simulated.
    pub spec: NetworkSpec,
    /// The workload driven through it.
    pub traffic: TrafficSpec,
    /// Nominal offered load (messages per processor per slot) — derived
    /// from the workload spec, except for traces, where it is the mean
    /// measured by the bind-time validation pass over the file.
    pub offered_load: f64,
    /// The seed this cell ran under.
    pub seed: u64,
    /// Number of injected faults (nodes plus arcs).
    pub fault_count: usize,
    /// The exact fault pattern of this cell.
    pub faults: FaultSet,
    /// The fault timeline this cell ran under; empty on static cells.
    pub fault_schedule: FaultSchedule,
    /// The network's hardware cost in optical parts
    /// ([`Network::hardware_cost`]), carried only when the grid exercises
    /// the wavelength layer ([`ScenarioGrid::wavelength_layer_enabled`]) —
    /// `None` on legacy capacity-1 grids, keeping their rows unchanged.
    pub hardware_cost: Option<usize>,
    /// The simulation metrics.
    pub metrics: SimMetrics,
}

impl ScenarioRow {
    /// Formats the row for the `scenarios` CLI and the reproduction harness.
    /// Undefined averages (zero deliveries) render as `-`.
    pub fn as_table_row(&self) -> String {
        format!(
            "{:<16} {:<20} {:>6} {} {:>6} {:>6} {:>10.4} {} {} {:>8} {:>8}",
            self.spec.to_string(),
            self.traffic.to_string(),
            self.metrics.processors,
            fmt_stat(self.offered_load, 8, 3),
            self.seed,
            self.fault_count,
            self.metrics.throughput(),
            fmt_stat(self.metrics.average_latency(), 10, 2),
            fmt_stat(self.metrics.average_hops(), 8, 2),
            self.metrics.max_hops,
            self.metrics.delivered,
        )
    }

    /// Header matching [`ScenarioRow::as_table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<16} {:<20} {:>6} {:>8} {:>6} {:>6} {:>10} {:>10} {:>8} {:>8} {:>8}",
            "network",
            "traffic",
            "procs",
            "load",
            "seed",
            "faults",
            "thruput",
            "latency",
            "hops",
            "maxhops",
            "delivrd"
        )
    }

    /// The hardware cost divided by the delivered message count — the
    /// cost-per-delivered-bit composite of the blocking-ratio studies (one
    /// message stands in for one bit; scaling by a payload size multiplies
    /// every row by the same constant).  `NaN` when the row carries no
    /// hardware cost (legacy capacity-1 grids) or nothing was delivered.
    pub fn cost_per_delivered_bit(&self) -> f64 {
        match self.hardware_cost {
            Some(cost) if self.metrics.delivered > 0 => cost as f64 / self.metrics.delivered as f64,
            _ => f64::NAN,
        }
    }

    /// [`ScenarioRow::as_table_row`] plus the wavelength-layer columns:
    /// wavelength count, blocked packets, blocking ratio, wavelength
    /// utilization, alternate-route rate and cost per delivered bit.
    /// Undefined statistics render as `-`.
    pub fn as_table_row_extended(&self) -> String {
        format!(
            "{} {:>6} {:>8} {} {} {} {}",
            self.as_table_row(),
            self.metrics.wavelengths,
            self.metrics.blocked,
            fmt_stat(self.metrics.blocking_ratio(), 9, 4),
            fmt_stat(self.metrics.wavelength_utilization(), 8, 4),
            fmt_stat(self.metrics.alt_route_rate(), 8, 4),
            fmt_stat(self.cost_per_delivered_bit(), 9, 4),
        )
    }

    /// Header matching [`ScenarioRow::as_table_row_extended`].
    pub fn table_header_extended() -> String {
        format!(
            "{} {:>6} {:>8} {:>9} {:>8} {:>8} {:>9}",
            Self::table_header(),
            "wavel",
            "blocked",
            "blkratio",
            "wl_util",
            "alt_rate",
            "cost_bit",
        )
    }

    /// [`ScenarioRow::as_table_row_extended`] plus the restoration columns:
    /// fault events, messages in flight at the first failure, messages
    /// stranded by failures, slots until the delivery rate recovered, the
    /// post-failure latency peak, and (last, variable-width) the schedule
    /// itself.  Restoration statistics are undefined on cells where no
    /// kernel swap happened and render as `-`.
    pub fn as_table_row_restoration(&self) -> String {
        let restoration = |value: u64| {
            if self.metrics.fault_events == 0 {
                f64::NAN
            } else {
                value as f64
            }
        };
        let restore_slots = if self.metrics.restore_slots == u64::MAX {
            f64::NAN
        } else {
            restoration(self.metrics.restore_slots)
        };
        format!(
            "{} {:>7} {} {} {} {} {}",
            self.as_table_row_extended(),
            self.metrics.fault_events,
            fmt_stat(restoration(self.metrics.in_flight_at_failure), 8, 0),
            fmt_stat(restoration(self.metrics.dropped_by_failure), 8, 0),
            fmt_stat(restore_slots, 8, 0),
            fmt_stat(restoration(self.metrics.post_failure_latency_peak), 8, 0),
            self.fault_schedule,
        )
    }

    /// Header matching [`ScenarioRow::as_table_row_restoration`].
    pub fn table_header_restoration() -> String {
        format!(
            "{} {:>7} {:>8} {:>8} {:>8} {:>8} {}",
            Self::table_header_extended(),
            "fevents",
            "inflight",
            "faildrop",
            "restore",
            "peak_lat",
            "schedule",
        )
    }
}

/// One cell's coordinates into the grid's axes.  `wavelengths` is the
/// wavelength *count* (not an axis index): the only thing a cell needs.
#[derive(Debug, Clone, Copy)]
struct Cell {
    spec: usize,
    workload: usize,
    seed: u64,
    fault_set: usize,
    schedule: usize,
    wavelengths: usize,
}

/// The number of worker threads [`crate::scenarios`] uses when the caller
/// does not choose one: the machine's available parallelism.
pub fn default_thread_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The reorder-window bound of [`run_grid_streaming`] for a run with
/// `threads` requested workers: at most this many completed rows are ever
/// buffered waiting for an earlier cell to finish.  Twice the worker count
/// keeps every worker busy (a worker whose cell is far ahead of the delivery
/// watermark parks until the window catches up) while bounding memory.
pub fn reorder_window(threads: usize) -> usize {
    2 * threads.max(1)
}

/// What a streaming run did: how many rows reached the sink, the largest
/// number of completed rows the reorder buffer ever held (always at most
/// [`reorder_window`] of the requested thread count), how many prepared
/// kernels were constructed or delta-repaired, and how much simulation work
/// the rows represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Rows delivered to the sink, equal to the grid's cell count on a
    /// completed run.
    pub rows: usize,
    /// Peak size of the reorder buffer — the memory high-water mark of the
    /// run, bounded by the reorder window, not the cell count.
    pub peak_buffered: usize,
    /// Fault-free base kernels constructed from scratch during the run.  On
    /// a completed run this equals the number of specs the grid actually
    /// exercised — one full routing-state construction per network, never
    /// per fault pattern and never per cell: every other `(spec, fault)`
    /// kernel is derived from its spec's base by delta repair.
    pub kernels_built: usize,
    /// Kernels derived from a base by delta repair
    /// ([`PreparedSim::repair`]) — one per distinct `(spec, fault-pattern)`
    /// pair with a non-empty fault set, shared across every seed/workload
    /// cell.  Empty-fault slots share the base outright and count in
    /// neither counter's repair tally, so on a completed fault-sweep run
    /// `kernels_built + kernels_repaired` equals the number of distinct
    /// exercised pairs.
    pub kernels_repaired: usize,
    /// Mid-run kernel swaps the delivered rows performed — the sum of
    /// `fault_events` across every row.  Zero on a schedule-free grid;
    /// on a scheduled grid this equals scheduled cells × events per
    /// schedule that fired within the slot budget.
    pub kernel_swaps: u64,
    /// Total simulation work delivered, in node-slots: the sum over every
    /// delivered row of `slots × processors` (saturating — an adversarial
    /// product clamps at `u64::MAX` instead of wrapping).  Dividing by
    /// wall-clock time gives the engine's throughput in node-slots/second —
    /// the size-independent rate large-N benchmarks report.
    pub node_slots: u64,
    /// Cells that ran on a worker's already-used [`SlotScratch`] pool — the
    /// arena, queues and port masks were reset, not reallocated.  Each
    /// worker owns one pool for its lifetime, so on a completed run this is
    /// `rows − workers'`, where `workers'` is the number of workers that ran
    /// at least one cell: exactly `rows − 1` single-threaded, and at least
    /// `rows − threads` otherwise.
    pub scratch_reuses: usize,
}

/// Executes every cell of the grid across `threads` scoped workers (clamped
/// to at least 1 and at most the cell count), delivering each completed row
/// to `sink` **in grid order** — workloads outermost, then specs, then
/// seeds, then fault sets — while later cells are still running.
///
/// Every workload is bound to every network before execution starts, so an
/// unbindable combination (transpose traffic on a non-square network, a
/// hotspot aimed at a node that does not exist) is a typed error for the
/// whole grid, not a silently-degraded cell.  A grid whose axis product
/// overflows `usize` is refused with [`NetworkError::GridTooLarge`].
///
/// The delivered row sequence is independent of the thread count: cells are
/// self-contained (own RNG seed, own simulator instance) and workers hand
/// completed rows to a reorder buffer keyed by cell index.  Workers pull
/// cell indices from a shared atomic counter, so uneven cell costs balance
/// automatically, but a worker may not start a cell more than
/// [`reorder_window`] cells ahead of the delivery watermark — that bounds
/// the engine's buffering at O(threads + window) rows regardless of the
/// cell count.  A sink error aborts the run and surfaces as
/// [`NetworkError::Sink`] (without calling `finish`).
pub fn run_grid_streaming<S: RowSink + ?Sized>(
    grid: &ScenarioGrid,
    threads: usize,
    sink: &mut S,
) -> Result<StreamSummary, NetworkError> {
    let cell_count = grid
        .checked_cell_count()
        .ok_or(NetworkError::GridTooLarge {
            specs: grid.specs.len(),
            workloads: grid.workloads.len(),
            seeds: grid.seeds.len(),
            fault_sets: grid.fault_sets.len(),
            schedules: grid.fault_schedules.len(),
            wavelengths: grid.wavelengths.len(),
        })?;
    let networks: Vec<Network> = grid
        .specs
        .iter()
        .map(|&spec| Network::new(spec))
        .collect::<Result<_, _>>()?;

    // Bind every non-empty schedule against every (spec, fault-pattern)
    // pair up front: an out-of-range event target or an overlap with a
    // static fault is a typed error for the whole grid, before any cell
    // runs.  Binding is cheap (no kernels are prepared here); the timeline
    // kernels themselves are materialised lazily in the cache below.
    for spec in &grid.specs {
        let domain = spec
            .fault_domain_size()
            .expect("Network::new validated the spec");
        for schedule in &grid.fault_schedules {
            if schedule.is_empty() {
                continue;
            }
            for faults in &grid.fault_sets {
                schedule.bind(domain, faults)?;
            }
        }
    }

    // Hardware costs feed the cost-per-delivered-bit composite; they are
    // only carried (and only computed — the design construction is not free)
    // when the grid exercises the wavelength layer, so legacy rows stay
    // unchanged.
    let hardware_costs: Option<Vec<usize>> = grid
        .wavelength_layer_enabled()
        .then(|| networks.iter().map(Network::hardware_cost).collect());

    // Bind every workload to every network up front: demands[w][s] is
    // workload w ready to drive network s.  Binding validates topology
    // preconditions — including a full streaming pass over every trace
    // file — so a bad workload is a typed error before any cell runs.
    let demands: Vec<Vec<DemandSpec>> = grid
        .workloads
        .iter()
        .map(|workload| {
            networks
                .iter()
                .map(|network| workload.bind(network.node_count()))
                .collect::<Result<_, _>>()
        })
        .collect::<Result<_, _>>()
        .map_err(NetworkError::from)?;

    sink.on_start(grid).map_err(sink_error)?;
    let mut summary = StreamSummary {
        rows: 0,
        peak_buffered: 0,
        kernels_built: 0,
        kernels_repaired: 0,
        kernel_swaps: 0,
        node_slots: 0,
        scratch_reuses: 0,
    };
    if cell_count == 0 {
        sink.finish().map_err(sink_error)?;
        return Ok(summary);
    }

    // The prepared-kernel cache: one lazily-filled slot per
    // (spec, fault-pattern) pair, shared across workers.  `OnceLock`
    // guarantees each slot is materialised exactly once even when several
    // workers hit it at the same time (late arrivals block until the winner
    // finishes, then share the kernel).  Only the per-spec fault-free *base*
    // is built from scratch (`kernels_built`); every faulted slot is
    // delta-repaired from its spec's base (`kernels_repaired`), and
    // empty-fault slots share the base outright.
    let kernels: Vec<OnceLock<PreparedSim>> = (0..grid.specs.len() * grid.fault_sets.len())
        .map(|_| OnceLock::new())
        .collect();
    let bases: Vec<OnceLock<PreparedSim>> =
        (0..grid.specs.len()).map(|_| OnceLock::new()).collect();
    // The timeline cache mirrors the kernel cache one axis deeper: one slot
    // per (spec, fault-pattern, schedule) triple, only ever materialised
    // for non-empty schedules.  Each epoch kernel inside a timeline is
    // delta-derived from the spec's base (or its predecessor epoch) and
    // counted in `kernels_repaired`.
    let timelines: Vec<OnceLock<PreparedTimeline>> =
        (0..grid.specs.len() * grid.fault_sets.len() * grid.fault_schedules.len())
            .map(|_| OnceLock::new())
            .collect();
    let kernels_built = AtomicUsize::new(0);
    let kernels_repaired = AtomicUsize::new(0);
    let scratch_reuses = AtomicUsize::new(0);

    let workers = threads.max(1).min(cell_count);
    let window = reorder_window(workers);
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    // The delivery watermark: rows 0..watermark have reached the sink.  A
    // worker may only *start* cell `i` once `i < watermark + window`, so at
    // most `window` completed rows can ever be waiting in the reorder
    // buffer.
    let watermark = Mutex::new(0usize);
    let advanced = Condvar::new();
    let (tx, rx) = mpsc::channel::<(usize, ScenarioRow)>();
    let mut sink_failure: Option<std::io::Error> = None;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, stop, watermark, advanced) = (&next, &stop, &watermark, &advanced);
            let (networks, demands) = (&networks, &demands);
            let (kernels, bases, timelines) = (&kernels, &bases, &timelines);
            let (kernels_built, kernels_repaired) = (&kernels_built, &kernels_repaired);
            let scratch_reuses = &scratch_reuses;
            let hardware_costs = &hardware_costs;
            scope.spawn(move || {
                // A panicking cell must not strand the other workers parked
                // on the condvar (the watermark would never reach them).
                let _guard = UnwindGuard {
                    stop,
                    watermark,
                    advanced,
                };
                // One scratch pool per worker, alive for the worker's whole
                // lifetime: every cell after the first runs on reset (not
                // reallocated) hot state.
                let mut scratch = SlotScratch::new();
                let mut cells_run = 0usize;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= cell_count {
                        break;
                    }
                    {
                        let mut delivered = watermark.lock().expect("no panics hold the watermark");
                        while index >= *delivered + window && !stop.load(Ordering::Relaxed) {
                            delivered = advanced
                                .wait(delivered)
                                .expect("no panics hold the watermark");
                        }
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let cell = grid.cell_at(index);
                    // Look the cell's prepared kernel up in the shared
                    // cache, materialising it on first use: the spec's
                    // fault-free base is the only from-scratch build, and
                    // every faulted kernel is delta-repaired from it.
                    let kernel = kernels[cell.spec * grid.fault_sets.len() + cell.fault_set]
                        .get_or_init(|| {
                            let base = bases[cell.spec].get_or_init(|| {
                                kernels_built.fetch_add(1, Ordering::Relaxed);
                                networks[cell.spec].prepare_with_alternates(
                                    &FaultSet::new(),
                                    grid.options.alt_paths,
                                )
                            });
                            let faults = &grid.fault_sets[cell.fault_set];
                            if faults.is_empty() {
                                base.clone()
                            } else {
                                kernels_repaired.fetch_add(1, Ordering::Relaxed);
                                base.repair(faults, grid.options.alt_paths)
                            }
                        });
                    // A non-empty schedule additionally needs its timeline
                    // of swap kernels — one cached preparation per
                    // (spec, fault-pattern, schedule) triple.  Empty
                    // schedules skip the lookup entirely: their cells take
                    // the exact legacy run path.
                    let schedule = &grid.fault_schedules[cell.schedule];
                    let timeline = (!schedule.is_empty()).then(|| {
                        let slot = (cell.spec * grid.fault_sets.len() + cell.fault_set)
                            * grid.fault_schedules.len()
                            + cell.schedule;
                        timelines[slot].get_or_init(|| {
                            // The base was materialised by the kernel
                            // lookup above (every kernel slot fills its
                            // spec's base first).
                            let base = bases[cell.spec]
                                .get()
                                .expect("the kernel cache fills the base first");
                            let timeline = PreparedSim::timeline(
                                base,
                                kernel,
                                schedule,
                                grid.options.alt_paths,
                            )
                            .expect("schedules were bound before execution started");
                            kernels_repaired.fetch_add(timeline.len(), Ordering::Relaxed);
                            timeline
                        })
                    });
                    let row = run_cell(
                        kernel,
                        timeline,
                        &networks[cell.spec],
                        &demands[cell.workload][cell.spec],
                        grid,
                        &cell,
                        hardware_costs.as_ref().map(|costs| costs[cell.spec]),
                        &mut scratch,
                    );
                    cells_run += 1;
                    if tx.send((index, row)).is_err() {
                        break;
                    }
                }
                scratch_reuses.fetch_add(cells_run.saturating_sub(1), Ordering::Relaxed);
            });
        }
        drop(tx);

        // Deliver rows in grid order on the caller's thread: out-of-order
        // completions park in the reorder buffer until the gap fills.  The
        // guard wakes parked workers if a sink panics mid-delivery; without
        // it the scope would block joining them forever.
        let _guard = UnwindGuard {
            stop: &stop,
            watermark: &watermark,
            advanced: &advanced,
        };
        let mut pending: BTreeMap<usize, ScenarioRow> = BTreeMap::new();
        let mut next_to_deliver = 0usize;
        'receive: while let Ok((index, row)) = rx.recv() {
            pending.insert(index, row);
            summary.peak_buffered = summary.peak_buffered.max(pending.len());
            while let Some(row) = pending.remove(&next_to_deliver) {
                let row_work = row_node_slots(row.metrics.slots, row.metrics.processors);
                let row_swaps = row.metrics.fault_events;
                if let Err(e) = sink.on_row(next_to_deliver, row) {
                    sink_failure = Some(e);
                    // Set the stop flag *under the watermark lock*: a worker
                    // checks the flag with that lock held before parking, so
                    // holding it here means no worker can be between its
                    // check and its wait when the notification fires — the
                    // classic lost-wakeup race that would park it forever.
                    {
                        let _guard = watermark.lock().expect("no panics hold the watermark");
                        stop.store(true, Ordering::Relaxed);
                    }
                    advanced.notify_all();
                    break 'receive;
                }
                next_to_deliver += 1;
                summary.rows += 1;
                summary.kernel_swaps += row_swaps;
                summary.node_slots = summary.node_slots.saturating_add(row_work);
                *watermark.lock().expect("no panics hold the watermark") = next_to_deliver;
                advanced.notify_all();
            }
            if next_to_deliver == cell_count {
                break;
            }
        }
        // Dropping `rx` here makes any remaining `tx.send` fail, so workers
        // that were mid-cell during an abort exit promptly.
        drop(rx);
    });

    summary.kernels_built = kernels_built.load(Ordering::Relaxed);
    summary.kernels_repaired = kernels_repaired.load(Ordering::Relaxed);
    summary.scratch_reuses = scratch_reuses.load(Ordering::Relaxed);
    match sink_failure {
        Some(e) => Err(sink_error(e)),
        None => {
            sink.finish().map_err(sink_error)?;
            Ok(summary)
        }
    }
}

/// Wraps a sink's I/O error into the facade's typed error.
fn sink_error(e: std::io::Error) -> NetworkError {
    NetworkError::Sink {
        detail: e.to_string(),
    }
}

/// Wakes parked workers when its thread unwinds.  Without this, a panic in
/// the delivery loop (a panicking sink) or in a worker cell would leave the
/// other workers parked on the condvar forever, and `std::thread::scope`
/// would block joining them instead of propagating the panic.
struct UnwindGuard<'a> {
    stop: &'a AtomicBool,
    watermark: &'a Mutex<usize>,
    advanced: &'a Condvar,
}

impl Drop for UnwindGuard<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        // Hold the watermark lock while storing the flag so no worker can be
        // between its stop-check and its wait when the notification fires
        // (the lost-wakeup race).  A poisoned lock still locks the mutex —
        // the guard inside the error is what matters.
        let guard = self.watermark.lock();
        self.stop.store(true, Ordering::Relaxed);
        drop(guard);
        self.advanced.notify_all();
    }
}

/// Executes every cell of the grid and returns the rows in grid order — a
/// thin wrapper over [`run_grid_streaming`] with a [`CollectSink`], kept for
/// callers that want the whole result set in memory (`compare_specs`, the
/// frontier scan, tests).  Rows are byte-identical at any thread count.
pub fn run_grid(grid: &ScenarioGrid, threads: usize) -> Result<Vec<ScenarioRow>, NetworkError> {
    let mut sink = CollectSink::new();
    run_grid_streaming(grid, threads, &mut sink)?;
    Ok(sink.into_rows())
}

/// Executes one cell on its cached prepared kernel: only the slot loop runs
/// here — the routing state was built when the kernel first entered the
/// cache.  The cell's fault set is cloned once, into the options, and the
/// row is built from that same copy.  The wavelength axis overrides the
/// per-run wavelength count; the assignment policy is shared grid-wide.  A
/// cell under a non-empty schedule runs the timeline path (mid-run kernel
/// swaps); `None` takes the exact legacy run.  The worker's scratch pool is
/// threaded through so the slot loop reuses hot state across cells.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    kernel: &PreparedSim,
    timeline: Option<&PreparedTimeline>,
    network: &Network,
    demand: &DemandSpec,
    grid: &ScenarioGrid,
    cell: &Cell,
    hardware_cost: Option<usize>,
    scratch: &mut SlotScratch,
) -> ScenarioRow {
    let options = SimOptions {
        seed: cell.seed,
        faults: grid.fault_sets[cell.fault_set].clone(),
        wavelengths: WavelengthConfig {
            count: cell.wavelengths,
            assignment: grid.options.wavelengths.assignment,
        },
        ..grid.options.clone()
    };
    let traffic = grid.workloads[cell.workload].clone();
    let metrics = match demand {
        // Stationary patterns take the scratch-pooled form of the legacy
        // entry points — byte-identical to them, which is the contract of
        // the checked-in goldens.
        DemandSpec::Pattern(pattern) => {
            kernel.run_with_timeline_scratch(timeline, pattern, &options, scratch)
        }
        demand => {
            // Stochastic and replayed workloads get a fresh per-cell
            // source; trace files were already streamed once at bind time.
            let mut source = demand
                .source()
                .expect("trace file vanished after bind-time validation");
            kernel.run_demand_with_timeline_scratch(timeline, &mut source, &options, scratch)
        }
    };
    ScenarioRow {
        spec: *network.spec(),
        // The *bound* demand, not the raw workload spec: for traces the
        // bind-time pass measured the file's mean load, which the raw spec
        // cannot know (every other variant reports the same value either
        // way).
        offered_load: demand.offered_load(),
        traffic,
        seed: cell.seed,
        fault_count: options.faults.len(),
        faults: options.faults,
        fault_schedule: grid.fault_schedules[cell.schedule].clone(),
        hardware_cost,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_routing::node_fault_patterns_up_to;
    use std::io;

    /// Records every callback for order/lifecycle assertions, optionally
    /// failing after a fixed number of rows.
    #[derive(Default)]
    struct RecordingSink {
        started: usize,
        finished: usize,
        indices: Vec<usize>,
        rows: Vec<ScenarioRow>,
        fail_after: Option<usize>,
    }

    impl RowSink for RecordingSink {
        fn on_start(&mut self, _grid: &ScenarioGrid) -> io::Result<()> {
            self.started += 1;
            Ok(())
        }

        fn on_row(&mut self, index: usize, row: ScenarioRow) -> io::Result<()> {
            if self.fail_after == Some(self.indices.len()) {
                return Err(io::Error::other("sink refused the row"));
            }
            self.indices.push(index);
            self.rows.push(row);
            Ok(())
        }

        fn finish(&mut self) -> io::Result<()> {
            self.finished += 1;
            Ok(())
        }
    }

    fn small_grid() -> ScenarioGrid {
        let specs = ["SK(2,2,2)", "POPS(3,4)", "DB(2,4)"]
            .iter()
            .map(|s| s.parse::<NetworkSpec>().unwrap())
            .collect();
        ScenarioGrid::new(specs)
            .loads(&[0.1, 0.5])
            .seeds(&[7, 11])
            .slots(120)
    }

    #[test]
    fn rows_are_identical_for_one_and_many_threads() {
        let grid = small_grid();
        let serial = run_grid(&grid, 1).unwrap();
        let parallel = run_grid(&grid, 8).unwrap();
        assert_eq!(serial.len(), grid.cell_count());
        assert_eq!(serial, parallel);
        // Oversubscription is also harmless.
        assert_eq!(serial, run_grid(&grid, 1000).unwrap());
        assert_eq!(serial, grid.run(0).unwrap());
    }

    #[test]
    fn rows_come_back_in_grid_order() {
        let grid = small_grid();
        let rows = run_grid(&grid, 4).unwrap();
        let mut expected = Vec::new();
        for workload in &grid.workloads {
            for &spec in &grid.specs {
                for &seed in &grid.seeds {
                    expected.push((workload.clone(), spec, seed));
                }
            }
        }
        let got: Vec<_> = rows
            .iter()
            .map(|r| (r.traffic.clone(), r.spec, r.seed))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn loads_sugar_builds_uniform_workloads() {
        let grid = small_grid();
        assert_eq!(
            grid.workloads,
            vec![
                TrafficSpec::Uniform { load: 0.1 },
                TrafficSpec::Uniform { load: 0.5 }
            ]
        );
        for row in run_grid(&grid, 2).unwrap() {
            assert_eq!(row.offered_load, row.traffic.offered_load());
        }
    }

    #[test]
    fn mixed_workload_rows_are_thread_count_independent() {
        // All three specs have 24+ processors; the permutation and hotspot
        // workloads bind to any size, so this grid mixes patterns freely.
        let specs = ["SK(2,2,2)", "POPS(3,4)", "DB(2,4)"]
            .iter()
            .map(|s| s.parse::<NetworkSpec>().unwrap())
            .collect();
        let workloads: Vec<TrafficSpec> = ["uniform(0.3)", "perm(0.5,7)", "hotspot(0.4,0,0.2)"]
            .iter()
            .map(|w| w.parse().unwrap())
            .collect();
        let grid = ScenarioGrid::new(specs)
            .workloads(workloads)
            .seeds(&[3])
            .slots(150);
        assert_eq!(grid.cell_count(), 9);
        let serial = run_grid(&grid, 1).unwrap();
        assert_eq!(serial, run_grid(&grid, 2).unwrap());
        assert_eq!(serial, run_grid(&grid, 64).unwrap());
        for row in &serial {
            assert!(row.metrics.delivered > 0, "{row:?}");
        }
    }

    #[test]
    fn empty_axes_yield_empty_results() {
        let grid = ScenarioGrid::new(vec!["K(4)".parse().unwrap()]);
        assert_eq!(grid.cell_count(), 0);
        assert!(run_grid(&grid, 4).unwrap().is_empty());
    }

    #[test]
    fn invalid_specs_surface_as_typed_errors() {
        let grid =
            ScenarioGrid::new(vec![NetworkSpec::StackKautz { s: 0, d: 2, k: 2 }]).loads(&[0.1]);
        assert!(run_grid(&grid, 2).is_err());
    }

    #[test]
    fn unbindable_workloads_surface_as_typed_errors_before_any_cell_runs() {
        // SK(2,2,2) has 12 processors: not a square, not a power of two, and
        // node 12 does not exist.  Each unbindable workload fails the whole
        // grid with the typed traffic error.
        let specs = vec!["SK(2,2,2)".parse::<NetworkSpec>().unwrap()];
        for bad in ["transpose(0.5)", "bitrev(0.5)", "hotspot(0.4,12,0.2)"] {
            let grid = ScenarioGrid::new(specs.clone())
                .workloads(vec![bad.parse().unwrap()])
                .slots(50);
            let err = run_grid(&grid, 2).unwrap_err();
            assert!(
                matches!(err, NetworkError::Traffic(_)),
                "{bad} should fail to bind: {err}"
            );
        }
        // The same patterns bind fine on networks meeting the precondition:
        // K(16) is both square and a power of two, and has a node 12.
        let ok = ScenarioGrid::new(vec!["K(16)".parse().unwrap()])
            .workloads(vec![
                "transpose(0.5)".parse().unwrap(),
                "bitrev(0.5)".parse().unwrap(),
                "hotspot(0.4,12,0.2)".parse().unwrap(),
            ])
            .slots(50);
        let rows = run_grid(&ok, 2).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.metrics.delivered > 0, "{row:?}");
        }
    }

    #[test]
    fn fault_sweep_confirms_the_k_plus_2_bound_on_a_small_kautz_instance() {
        // SK(2,2,2): quotient KG(2,2) with 6 groups, degree d = 2, diameter
        // k = 2.  Sweep every fault pattern of size 0..=d−1 (all 6 single-
        // group faults plus the intact baseline) through the engine and
        // check the §2.5 claim empirically: every delivered message used at
        // most k + 2 optical hops, and traffic still flows.
        let (d, k) = (2usize, 2usize);
        let groups = 6;
        let grid = ScenarioGrid::new(vec!["SK(2,2,2)".parse().unwrap()])
            .loads(&[0.3])
            .seeds(&[5])
            .fault_sets(node_fault_patterns_up_to(groups, d - 1))
            .slots(400);
        assert_eq!(grid.cell_count(), 1 + groups);
        let rows = run_grid(&grid, 4).unwrap();
        for row in &rows {
            assert!(row.metrics.delivered > 0, "{row:?}");
            assert!(
                row.metrics.max_hops as usize <= k + 2,
                "fault pattern {:?} produced a {}-hop route (bound k+2 = {})",
                row.faults.sorted_nodes(),
                row.metrics.max_hops,
                k + 2
            );
            assert_eq!(
                row.metrics.injected,
                row.metrics.delivered + row.metrics.in_flight + row.metrics.dropped
            );
        }
        // Faulty cells accept less traffic than the intact baseline.
        let intact = &rows[0];
        assert!(intact.faults.is_empty());
        for row in &rows[1..] {
            assert!(row.metrics.injected < intact.metrics.injected);
        }
    }

    #[test]
    fn run_grid_is_streaming_plus_collect_sink() {
        // The wrapper contract: run_grid == run_grid_streaming + CollectSink,
        // byte for byte, at any thread count.
        let grid = small_grid();
        let wrapped = run_grid(&grid, 4).unwrap();
        for threads in [1, 2, 64] {
            let mut sink = crate::sink::CollectSink::new();
            let summary = run_grid_streaming(&grid, threads, &mut sink).unwrap();
            assert_eq!(summary.rows, grid.cell_count());
            let streamed = sink.into_rows();
            assert_eq!(wrapped, streamed);
            let wrapped_table: Vec<String> = wrapped.iter().map(|r| r.as_table_row()).collect();
            let streamed_table: Vec<String> = streamed.iter().map(|r| r.as_table_row()).collect();
            assert_eq!(wrapped_table, streamed_table);
        }
    }

    #[test]
    fn streaming_delivers_in_grid_order_with_bounded_buffering() {
        let grid = small_grid();
        for threads in [1usize, 3, 8] {
            let mut sink = RecordingSink::default();
            let summary = run_grid_streaming(&grid, threads, &mut sink).unwrap();
            assert_eq!(sink.started, 1);
            assert_eq!(sink.finished, 1);
            // Rows arrive as index 0, 1, 2, ... with no gaps or reordering.
            assert_eq!(sink.indices, (0..grid.cell_count()).collect::<Vec<_>>());
            // Peak buffering is bounded by the reorder window, not the cell
            // count — the constant-memory claim of the streaming engine.
            assert!(
                summary.peak_buffered <= reorder_window(threads),
                "peak {} exceeds window {} at {threads} threads",
                summary.peak_buffered,
                reorder_window(threads)
            );
            assert_eq!(summary.rows, grid.cell_count());
        }
    }

    #[test]
    fn streamed_row_sequence_is_thread_count_independent() {
        // Mixed workloads; 1, 2 and 64 threads must stream identical rows.
        let specs = ["SK(2,2,2)", "POPS(3,4)", "DB(2,4)"]
            .iter()
            .map(|s| s.parse::<NetworkSpec>().unwrap())
            .collect();
        let workloads: Vec<TrafficSpec> = ["uniform(0.3)", "perm(0.5,7)", "hotspot(0.4,0,0.2)"]
            .iter()
            .map(|w| w.parse().unwrap())
            .collect();
        let grid = ScenarioGrid::new(specs)
            .workloads(workloads)
            .seeds(&[3, 9])
            .slots(120);
        let mut baseline = RecordingSink::default();
        run_grid_streaming(&grid, 1, &mut baseline).unwrap();
        for threads in [2usize, 64] {
            let mut sink = RecordingSink::default();
            run_grid_streaming(&grid, threads, &mut sink).unwrap();
            assert_eq!(baseline.rows, sink.rows, "{threads} threads diverged");
            assert_eq!(baseline.indices, sink.indices);
        }
    }

    #[test]
    fn sink_errors_abort_the_run_as_typed_errors() {
        let grid = small_grid();
        let mut sink = RecordingSink {
            fail_after: Some(2),
            ..RecordingSink::default()
        };
        let err = run_grid_streaming(&grid, 4, &mut sink).unwrap_err();
        assert!(matches!(err, NetworkError::Sink { .. }), "{err}");
        assert!(err.to_string().contains("refused"), "{err}");
        // The two rows before the failure were delivered; finish was not
        // called on the aborted run.
        assert_eq!(sink.indices, vec![0, 1]);
        assert_eq!(sink.finished, 0);
    }

    #[test]
    fn a_panicking_sink_propagates_instead_of_hanging_the_scope() {
        // Regression: a panic unwinding out of the delivery loop used to
        // leave workers parked on the reorder-window condvar with no one
        // left to advance the watermark — thread::scope then blocked
        // joining them forever.  The unwind guard wakes them, so the panic
        // propagates out of run_grid_streaming promptly.
        struct PanickingSink;
        impl RowSink for PanickingSink {
            fn on_row(&mut self, _index: usize, _row: ScenarioRow) -> io::Result<()> {
                panic!("sink exploded");
            }
        }
        // 18 cells at 4 threads (window 8): late cells park while cell 0
        // streams, so the hang would be real without the guard.
        let grid = small_grid().seeds(&[1, 2, 3, 5, 7, 11]).loads(&[0.2]);
        assert_eq!(grid.cell_count(), 18);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_grid_streaming(&grid, 4, &mut PanickingSink)
        }));
        let panic = result.expect_err("the sink panic must propagate");
        let message = panic.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "sink exploded");
    }

    #[test]
    fn zero_cell_grids_still_open_and_close_the_sink() {
        let grid = ScenarioGrid::new(vec!["K(4)".parse().unwrap()]);
        let mut sink = RecordingSink::default();
        let summary = run_grid_streaming(&grid, 4, &mut sink).unwrap();
        assert_eq!(summary.rows, 0);
        assert_eq!(summary.peak_buffered, 0);
        assert_eq!(sink.started, 1);
        assert_eq!(sink.finished, 1);
        assert!(sink.indices.is_empty());
    }

    #[test]
    fn hundred_cell_grid_builds_each_kernel_exactly_once() {
        // The prepared-kernel cache contract: a grid of 140 cells spanning
        // 2 specs × 7 fault patterns materialises each distinct
        // (spec, fault-pattern) pair exactly once at any thread count —
        // 2 from-scratch fault-free bases plus 6 delta repairs per spec —
        // while seeds and workloads reuse the cached routing state.  Both
        // counters are threaded out through the stream summary.
        let specs: Vec<NetworkSpec> = ["SK(2,2,2)", "DB(2,3)"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        // 7 patterns: the intact baseline plus one single fault per id 0..6
        // (valid both as SK quotient groups, 6 of them, and DB processors).
        let grid = ScenarioGrid::new(specs)
            .loads(&[0.2, 0.6])
            .seeds(&[1, 2, 3, 4, 5])
            .fault_sets(node_fault_patterns_up_to(6, 1))
            .slots(40);
        assert_eq!(grid.cell_count(), 140);
        let mut baseline_rows = None;
        for threads in [1usize, 2, 8] {
            let mut sink = crate::sink::CollectSink::new();
            let summary = run_grid_streaming(&grid, threads, &mut sink).unwrap();
            assert_eq!(summary.rows, 140);
            assert_eq!(
                summary.kernels_built, 2,
                "exactly one fault-free base per spec ({threads} threads)"
            );
            assert_eq!(
                summary.kernels_repaired, 12,
                "every non-empty fault pattern must be delta-repaired exactly once per spec \
                 ({threads} threads)"
            );
            assert_eq!(
                summary.kernels_built + summary.kernels_repaired,
                14,
                "built + repaired must cover each distinct (spec, fault-pattern) pair once \
                 ({threads} threads)"
            );
            let rows = sink.into_rows();
            match &baseline_rows {
                None => baseline_rows = Some(rows),
                Some(baseline) => assert_eq!(baseline, &rows, "{threads} threads diverged"),
            }
        }
    }

    #[test]
    fn cell_counts_use_checked_multiplication() {
        assert_eq!(checked_product([3, 2, 2, 1, 1, 1]), Some(12));
        assert_eq!(checked_product([0, 5, 5, 5, 5, 5]), Some(0));
        assert_eq!(checked_product([usize::MAX, 2, 1, 1, 1, 1]), None);
        assert_eq!(checked_product([1 << 32, 1 << 32, 1, 2, 1, 1]), None);
        let grid = small_grid();
        assert_eq!(grid.checked_cell_count(), Some(grid.cell_count()));
    }

    #[test]
    fn node_slot_accounting_saturates_instead_of_wrapping() {
        // Satellite contract: the throughput accounting must clamp, not
        // wrap, on adversarial slots × processors products.
        assert_eq!(row_node_slots(120, 24), 2880);
        assert_eq!(row_node_slots(u64::MAX, 2), u64::MAX);
        assert_eq!(row_node_slots(u64::MAX, 1), u64::MAX);
        assert_eq!(row_node_slots(0, usize::MAX), 0);
        assert_eq!(
            u64::MAX.saturating_add(row_node_slots(1 << 32, 1 << 31)),
            u64::MAX
        );
    }

    #[test]
    fn wavelength_axis_multiplies_cells_and_flags_the_layer() {
        let base = small_grid();
        assert_eq!(base.wavelengths, vec![1]);
        assert!(!base.wavelength_layer_enabled());
        assert!(base.clone().alt_paths(2).wavelength_layer_enabled());
        let swept = base.clone().wavelengths(&[1, 4]);
        assert!(swept.wavelength_layer_enabled());
        assert_eq!(swept.cell_count(), 2 * base.cell_count());
        // Wavelengths are the outermost axis: the first half of the rows is
        // the whole capacity-1 grid, the second half the same grid at 4.
        let rows = run_grid(&swept, 4).unwrap();
        let half = base.cell_count();
        for (i, row) in rows.iter().enumerate() {
            // Capacity-1 cells stay on the legacy loop (sentinel 0); the
            // multiplexed half reports its count through the metrics.
            let expected = if i < half { 0 } else { 4 };
            assert_eq!(row.metrics.wavelengths, expected, "row {i}");
            assert!(row.hardware_cost.is_some(), "row {i}");
        }
        // The capacity-1 half matches the plain grid cell for cell, except
        // for the hardware-cost column the enabled layer switches on.
        let plain = run_grid(&base, 2).unwrap();
        for (swept_row, plain_row) in rows[..half].iter().zip(&plain) {
            assert!(plain_row.hardware_cost.is_none());
            assert_eq!(swept_row.metrics, plain_row.metrics);
            assert_eq!(swept_row.spec, plain_row.spec);
        }
    }

    #[test]
    fn fault_schedule_axis_multiplies_cells_and_counts_swaps() {
        // One spec, two schedules: the empty one (legacy static run) and a
        // fail/recover pair.  The axis doubles the cell count; the static
        // cell reports no fault events, the scheduled cell exactly two, and
        // the summary threads both the epoch preparations (as repairs) and
        // the performed swaps out.  Byte-identical rows at any thread count.
        let schedule: FaultSchedule = "fail(node 1)@20; recover@80".parse().unwrap();
        let grid = ScenarioGrid::new(vec!["DB(2,4)".parse().unwrap()])
            .loads(&[0.3])
            .seeds(&[7])
            .fault_schedules(vec![FaultSchedule::empty(), schedule.clone()])
            .slots(200);
        assert_eq!(grid.cell_count(), 2);
        assert!(grid.fault_schedule_enabled());
        assert!(!small_grid().fault_schedule_enabled());
        let mut baseline = None;
        for threads in [1usize, 2, 8] {
            let mut sink = crate::sink::CollectSink::new();
            let summary = run_grid_streaming(&grid, threads, &mut sink).unwrap();
            assert_eq!(summary.rows, 2);
            assert_eq!(summary.kernels_built, 1, "{threads} threads");
            assert_eq!(
                summary.kernels_repaired, 2,
                "both timeline epochs must be delta-derived ({threads} threads)"
            );
            assert_eq!(summary.kernel_swaps, 2, "{threads} threads");
            let rows = sink.into_rows();
            assert!(rows[0].fault_schedule.is_empty());
            assert_eq!(rows[0].metrics.fault_events, 0);
            assert_eq!(rows[1].fault_schedule, schedule);
            assert_eq!(rows[1].metrics.fault_events, 2);
            assert!(rows[1].metrics.restore_slots < u64::MAX, "{:?}", rows[1]);
            match &baseline {
                None => baseline = Some(rows),
                Some(expected) => assert_eq!(expected, &rows, "{threads} threads diverged"),
            }
        }
    }

    #[test]
    fn schedule_validation_rejects_bad_targets_before_any_cell_runs() {
        // An event outside the fault domain fails the whole grid with the
        // typed error, before the sink is even opened.
        let grid = ScenarioGrid::new(vec!["DB(2,3)".parse().unwrap()])
            .loads(&[0.3])
            .fault_schedules(vec!["fail(node 99)@5".parse().unwrap()])
            .slots(50);
        let mut sink = RecordingSink::default();
        let err = run_grid_streaming(&grid, 2, &mut sink).unwrap_err();
        assert!(matches!(err, NetworkError::Schedule(_)), "{err}");
        assert_eq!(sink.started, 0);
        // So does a scheduled failure duplicating a static fault.
        let grid = ScenarioGrid::new(vec!["DB(2,3)".parse().unwrap()])
            .loads(&[0.3])
            .fault_sets(vec![FaultSet::from_nodes([1])])
            .fault_schedules(vec!["fail(node 1)@5".parse().unwrap()])
            .slots(50);
        let err = run_grid(&grid, 2).unwrap_err();
        assert!(matches!(err, NetworkError::Schedule(_)), "{err}");
    }

    #[test]
    fn warnings_flag_alt_paths_on_hot_potato_only_grids() {
        // Satellite contract: alt_paths on a grid with no multi-OPS spec
        // was a silent no-op — now it is a typed warning.
        let hot_potato_only =
            ScenarioGrid::new(vec!["DB(2,4)".parse().unwrap(), "K(4)".parse().unwrap()]);
        assert!(hot_potato_only.warnings().is_empty());
        let warned = hot_potato_only.alt_paths(3);
        let warnings = warned.warnings();
        assert_eq!(
            warnings,
            vec![GridWarning::AltPathsIgnoredByHotPotato { alt_paths: 3 }]
        );
        assert!(warnings[0].to_string().contains("alt_paths = 3"));
        // A multi-OPS spec anywhere in the list consumes the option.
        let mixed = ScenarioGrid::new(vec![
            "DB(2,4)".parse().unwrap(),
            "SK(2,2,2)".parse().unwrap(),
        ])
        .alt_paths(3);
        assert!(mixed.warnings().is_empty());
    }

    #[test]
    fn table_rendering_handles_zero_deliveries() {
        let grid = ScenarioGrid::new(vec!["POPS(2,2)".parse().unwrap()])
            .loads(&[0.0])
            .slots(50);
        let rows = run_grid(&grid, 1).unwrap();
        assert_eq!(rows[0].metrics.delivered, 0);
        let rendered = rows[0].as_table_row();
        assert!(!rendered.contains("NaN"), "{rendered}");
        assert!(rendered.contains('-'), "{rendered}");
        assert_eq!(
            ScenarioRow::table_header().split_whitespace().count(),
            rendered.split_whitespace().count()
        );
    }
}
