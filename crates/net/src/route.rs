//! The unified routing surface.
//!
//! `otis-routing` ships one router per family (word-label Kautz routing,
//! arithmetic Imase–Itoh routing, quotient-table stack routing, BFS tables
//! for everything else).  The facade erases the differences behind the
//! object-safe [`RouteOracle`] trait: ask any network for a route between two
//! flat processor identifiers and get back a uniform [`Route`].

use otis_graphs::NodeId;
pub use otis_routing::stack::StackHop;
pub use otis_routing::StackRoute;
use otis_routing::{imase_itoh_route, kautz_route, RoutingTable, StackRouter};

/// A route between two processors of any network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// A node path of a point-to-point network, from source to destination
    /// inclusive (a single node when source equals destination).
    PointToPoint(Vec<NodeId>),
    /// A multi-OPS route: one OPS coupler per optical hop.
    MultiOps(StackRoute),
}

impl Route {
    /// Number of optical hops of the route.
    pub fn hop_count(&self) -> usize {
        match self {
            Route::PointToPoint(path) => path.len().saturating_sub(1),
            Route::MultiOps(r) => r.len(),
        }
    }

    /// The sequence of processors visited, source first, destination last.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Route::PointToPoint(path) => path.clone(),
            Route::MultiOps(r) => {
                let mut nodes = Vec::with_capacity(r.len() + 1);
                nodes.push(r.source);
                nodes.extend(r.hops.iter().map(|h| h.receiver));
                nodes
            }
        }
    }
}

/// An object-safe route oracle over flat processor identifiers.
pub trait RouteOracle: std::fmt::Debug {
    /// Number of processors the oracle routes over.
    fn node_count(&self) -> usize;

    /// A route from `src` to `dst`, or `None` when either identifier is out
    /// of range or no path exists.
    fn route(&self, src: NodeId, dst: NodeId) -> Option<Route>;

    /// Number of optical hops of [`RouteOracle::route`].
    fn hop_count(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        self.route(src, dst).map(|r| r.hop_count())
    }
}

/// Word-label shortest-path routing on the Kautz graph `KG(d, k)`.
#[derive(Debug, Clone)]
pub(crate) struct KautzOracle {
    pub d: usize,
    pub k: usize,
    pub n: usize,
}

impl RouteOracle for KautzOracle {
    fn node_count(&self) -> usize {
        self.n
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        if src >= self.n || dst >= self.n {
            return None;
        }
        Some(Route::PointToPoint(kautz_route(self.d, self.k, src, dst)))
    }
}

/// Arithmetic (base `−d` digit) routing on the Imase–Itoh graph `II(d, n)`.
#[derive(Debug, Clone)]
pub(crate) struct ImaseItohOracle {
    pub d: usize,
    pub n: usize,
}

impl RouteOracle for ImaseItohOracle {
    fn node_count(&self) -> usize {
        self.n
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        if src >= self.n || dst >= self.n {
            return None;
        }
        Some(Route::PointToPoint(imase_itoh_route(
            self.d, self.n, src, dst,
        )))
    }
}

/// BFS-table routing over an arbitrary digraph (de Bruijn, complete, …).
#[derive(Debug)]
pub(crate) struct TableOracle {
    pub table: RoutingTable,
}

impl RouteOracle for TableOracle {
    fn node_count(&self) -> usize {
        self.table.node_count()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        if src >= self.node_count() || dst >= self.node_count() {
            return None;
        }
        self.table.route(src, dst).map(Route::PointToPoint)
    }
}

/// Quotient-table routing over any stack-graph network (POPS, SK, SII).
#[derive(Debug)]
pub(crate) struct StackOracle {
    pub router: StackRouter,
}

impl RouteOracle for StackOracle {
    fn node_count(&self) -> usize {
        self.router.stack_graph().node_count()
    }

    fn route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        if src >= self.node_count() || dst >= self.node_count() {
            return None;
        }
        self.router.route(src, dst).map(Route::MultiOps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otis_topologies::{de_bruijn, StackKautz};

    #[test]
    fn kautz_oracle_routes_within_k() {
        let oracle = KautzOracle { d: 2, k: 3, n: 12 };
        for src in 0..12 {
            for dst in 0..12 {
                let route = oracle.route(src, dst).unwrap();
                assert!(route.hop_count() <= 3);
                assert_eq!(route.nodes().first(), Some(&src));
                assert_eq!(route.nodes().last(), Some(&dst));
            }
        }
        assert!(oracle.route(12, 0).is_none());
        assert_eq!(oracle.hop_count(0, 0), Some(0));
    }

    #[test]
    fn table_oracle_matches_bfs_distances() {
        let g = de_bruijn(2, 3);
        let table = RoutingTable::new(&g);
        let oracle = TableOracle {
            table: RoutingTable::new(&g),
        };
        for src in 0..8 {
            for dst in 0..8 {
                assert_eq!(
                    oracle.hop_count(src, dst).map(|h| h as u32),
                    table.distance(src, dst)
                );
            }
        }
    }

    #[test]
    fn stack_oracle_routes_and_reports_nodes() {
        let sk = StackKautz::new(2, 2, 2);
        let oracle = StackOracle {
            router: StackRouter::new(sk.stack_graph().clone()),
        };
        assert_eq!(oracle.node_count(), sk.node_count());
        for src in 0..sk.node_count() {
            for dst in 0..sk.node_count() {
                let route = oracle.route(src, dst).unwrap();
                assert!(route.hop_count() <= 2);
                let nodes = route.nodes();
                assert_eq!(nodes.first(), Some(&src));
                assert_eq!(nodes.last(), Some(&dst));
            }
        }
        assert!(oracle.route(0, sk.node_count()).is_none());
    }

    #[test]
    fn imase_itoh_oracle_is_in_range_guarded() {
        let oracle = ImaseItohOracle { d: 3, n: 12 };
        assert!(oracle.route(0, 11).is_some());
        assert!(oracle.route(0, 12).is_none());
    }
}
