//! # otis-net
//!
//! The unified, spec-driven facade of the OTIS lightwave-network
//! reproduction.  The paper's argument is inherently *comparative* — POPS
//! vs. stack-Kautz vs. single-OPS de Bruijn under the same traffic — so any
//! network must be addressable as a uniform parameterized object.  This
//! crate provides exactly that:
//!
//! * [`NetworkSpec`] — the spec language: `"SK(6,3,2)"`, `"POPS(9,8)"`,
//!   `"II(4,12)"`, `"KG(3,4)"`, `"DB(2,8)"`, `"SII(2,3,12)"`, `"K(5)"`;
//! * [`Network`] — the facade: [`Network::topology`], [`Network::design`],
//!   [`Network::verify`], [`Network::router`] and [`Network::simulate`] give
//!   every family the same five-layer surface;
//! * [`TrafficSpec`] — the workload spec language, mirroring the network
//!   one: stationary patterns `"uniform(0.3)"`, `"perm(0.5,7)"`,
//!   `"hotspot(0.4,0,0.2)"`, `"transpose(0.5)"`, `"bitrev(0.5)"` and the
//!   demand processes `"poisson(0.3)"`, `"poisson(0.3,0)"`,
//!   `"onoff(0.6,16,48)"`, `"mix(0.1,0.9,0.05)"`, `"trace(file.trc)"`,
//!   with typed validation at parse time (NaN/negative rates refused) and
//!   topology-aware checks at bind time (trace node ids validated against
//!   the processor count, with the trace's own line numbers);
//! * [`scenarios`] — comparison scenarios as *data*: a list of specs plus a
//!   list of loads (experiment T5 of the reproduction harness);
//! * [`engine`] — the parallel scenario engine: declarative
//!   `(spec × workload × seed × fault pattern)` grids executed across scoped
//!   worker threads with deterministic, thread-count-independent results.
//!   Fault injection is plumbed through [`SimOptions::faults`] using
//!   [`FaultSet`] from the routing layer;
//! * [`prepared`] — the prepare/execute split behind simulation:
//!   [`Network::prepare`] builds an immutable [`PreparedSim`] kernel (the
//!   fault-filtered graph and all routing state) once per
//!   `(network, fault-pattern)` pair, cheap [`PreparedSim::run`] calls pay
//!   only for the slot loop, and the engine caches kernels on exactly that
//!   key so a grid builds each one exactly once;
//! * [`sink`] — the streaming result surface: [`run_grid_streaming`] hands
//!   completed cells to a [`RowSink`] in deterministic grid order through a
//!   bounded reorder buffer (memory O(threads + window), not O(cells)), with
//!   built-in [`CollectSink`], [`TableSink`], [`CsvSink`] and
//!   [`JsonLinesSink`] sinks and format-aware sentinels (an undefined
//!   average is `-` in the table, empty in CSV, `null` in JSONL);
//! * [`config`] — the scenario config-file format: one line-oriented `.scn`
//!   file declares specs, workloads, seeds, slots, faults, wavelengths,
//!   alternate routes, threads, output format and output path for a whole
//!   study ([`parse_scenario_config`]).
//!
//! ## The fault-timeline layer
//!
//! Faults can also be *dynamic*: a [`FaultSchedule`] (re-exported from
//! `otis-sim`, round-trippable like the other spec languages —
//! `"fail(node 3)@32; recover@96"`) swaps a run's active kernel at scheduled
//! slots, delta-deriving every epoch kernel from the fault-free base and
//! re-resolving in-flight messages against the new routing tables.  The
//! grid sweeps schedules as a first-class axis
//! ([`ScenarioGrid::fault_schedules`], the `.scn` `fault_schedule` key), the
//! prepared surface exposes the same machinery as
//! [`PreparedSim::timeline`] / [`PreparedTimeline`], and sinks append the
//! restoration columns (`fault_events`, `in_flight_at_failure`,
//! `dropped_by_failure`, `restore_slots`, `post_failure_latency_peak`)
//! exactly when a grid schedules faults — schedule-free grids stream
//! byte-identical legacy output.
//!
//! ## The wavelength layer
//!
//! Both simulators optionally multiplex `W` wavelengths per optical channel
//! ([`SimOptions::wavelengths`], re-exported [`WavelengthConfig`] /
//! [`WavelengthAssignment`] from `otis-sim`); multi-OPS kernels can
//! additionally try Yen alternate routes before counting a blocked packet
//! ([`SimOptions::alt_paths`], [`Network::prepare_with_alternates`]).  The
//! scenario grid sweeps wavelength counts as a first-class axis
//! ([`ScenarioGrid::wavelengths`]), and sinks extend their schema with the
//! blocking-ratio, utilization, alternate-route-rate and
//! cost-per-delivered-bit columns exactly when a grid exercises the layer —
//! capacity-1 grids stream byte-identical legacy output.
//!
//! ## Quick example
//!
//! ```
//! use otis_net::{Network, SimOptions};
//!
//! // The paper's worked example, end to end, from one string.
//! let sk = Network::from_spec("SK(6,3,2)").unwrap();
//! let report = sk.verify().unwrap();
//! assert_eq!(report.processors, 72);
//! assert_eq!(report.links, 48);
//!
//! // Routing and simulation through the same handle.
//! assert!(sk.router().route(0, 71).unwrap().hop_count() <= 2);
//! let metrics = Network::from_spec("POPS(9,8)")
//!     .unwrap()
//!     .simulate_uniform(0.2, &SimOptions::new(200, 42));
//! assert!(metrics.delivered > 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod config;
pub mod design;
pub mod engine;
pub mod error;
mod families;
pub mod family;
pub mod network;
pub mod prepared;
pub mod route;
pub mod scenarios;
pub mod sim_options;
pub mod sink;
pub mod spec;
pub mod topology;
pub mod traffic_spec;

pub use config::{parse_scenario_config, split_top_level, ConfigError, ScenarioConfig};
pub use design::NetworkDesign;
pub use engine::{
    default_thread_count, reorder_window, run_grid, run_grid_streaming, GridWarning, ScenarioGrid,
    ScenarioRow, StreamSummary,
};
pub use error::{NetworkError, SpecError};
pub use family::NetworkFamily;
pub use network::Network;
pub use otis_routing::FaultSet;
pub use otis_sim::{
    validate_trace, DemandSource, DemandSpec, FaultAction, FaultEvent, FaultSchedule,
    FaultScheduleError, FaultTarget, TraceError, TraceReplay, TraceStats, WavelengthAssignment,
    WavelengthConfig,
};
pub use prepared::{PreparedSim, PreparedTimeline};
pub use route::{Route, RouteOracle};
pub use scenarios::{
    compare_networks, compare_spec_strs, compare_specs, frontier_scan, saturation_point,
    ComparisonRow, FrontierPoint,
};
pub use sim_options::SimOptions;
pub use sink::{
    CollectSink, CsvSink, FieldValue, JsonLinesSink, OutputFormat, RowSink, TableSink,
    UnknownFormat,
};
pub use spec::NetworkSpec;
pub use topology::NetworkTopology;
pub use traffic_spec::{TrafficError, TrafficSpec};
