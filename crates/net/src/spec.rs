//! The network specification language.
//!
//! Every network family of the reproduction is addressable by a short spec
//! string — `"SK(6,3,2)"`, `"POPS(9,8)"`, `"II(4,12)"`, `"KG(3,4)"`,
//! `"DB(2,8)"`, `"SII(2,3,12)"`, `"K(5)"` — mirroring the paper's notation.
//! [`NetworkSpec`] is the parsed, validated form: a comparison scenario, a
//! sweep or a CLI invocation can then be *data* (a list of spec strings)
//! instead of per-family constructor plumbing.
//!
//! Parsing ([`std::str::FromStr`]) and rendering ([`std::fmt::Display`])
//! round-trip: `spec.to_string().parse()` always yields `spec` back.

use crate::error::SpecError;
use std::fmt;
use std::str::FromStr;

/// Upper bound on the processor count a spec may describe, guarding the
/// constructors (which would otherwise happily allocate) against typos like
/// `"KG(9,12)"`.
pub const MAX_NODES: usize = 1 << 22;

/// Upper bound on the arc/coupler count a spec may describe.  Node and link
/// caps are separate because dense families (the complete digraph above all)
/// reach enormous arc counts at modest node counts.
pub const MAX_LINKS: usize = 1 << 24;

/// A parsed, family-tagged network specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkSpec {
    /// Complete digraph `K(n)` — `n` nodes, arcs between all ordered pairs.
    Complete {
        /// Number of nodes.
        n: usize,
    },
    /// de Bruijn digraph `DB(d, k)` — `d^k` nodes of degree `d`, diameter `k`.
    DeBruijn {
        /// Degree.
        d: usize,
        /// Diameter.
        k: usize,
    },
    /// Kautz graph `KG(d, k)` — `d^(k-1)(d+1)` nodes of degree `d`,
    /// diameter `k`.
    Kautz {
        /// Degree.
        d: usize,
        /// Diameter.
        k: usize,
    },
    /// Imase–Itoh graph `II(d, n)` — `n` nodes of degree `d`, any `n`.
    ImaseItoh {
        /// Degree.
        d: usize,
        /// Number of nodes.
        n: usize,
    },
    /// Partitioned optical passive star `POPS(t, g)` — `t·g` processors in
    /// `g` groups of `t`, `g²` OPS couplers, single-hop.
    Pops {
        /// Group size (OPS coupler degree).
        t: usize,
        /// Number of groups.
        g: usize,
    },
    /// Stack-Kautz `SK(s, d, k)` — `ς(s, KG⁺(d, k))`, multi-hop multi-OPS.
    StackKautz {
        /// Stacking factor (group size, coupler degree).
        s: usize,
        /// Kautz degree.
        d: usize,
        /// Diameter.
        k: usize,
    },
    /// Stack-Imase–Itoh `SII(s, d, n)` — `ς(s, II⁺(d, n))`, any group count.
    StackImaseItoh {
        /// Stacking factor (group size, coupler degree).
        s: usize,
        /// Imase–Itoh degree.
        d: usize,
        /// Number of groups.
        n: usize,
    },
}

impl NetworkSpec {
    /// The family mnemonic used in the spec syntax (`"SK"`, `"POPS"`, …).
    pub fn family_name(&self) -> &'static str {
        match self {
            NetworkSpec::Complete { .. } => "K",
            NetworkSpec::DeBruijn { .. } => "DB",
            NetworkSpec::Kautz { .. } => "KG",
            NetworkSpec::ImaseItoh { .. } => "II",
            NetworkSpec::Pops { .. } => "POPS",
            NetworkSpec::StackKautz { .. } => "SK",
            NetworkSpec::StackImaseItoh { .. } => "SII",
        }
    }

    /// Whether the spec describes a multi-OPS (stack-graph) network, as
    /// opposed to a point-to-point digraph network.
    pub fn is_multi_ops(&self) -> bool {
        matches!(
            self,
            NetworkSpec::Pops { .. }
                | NetworkSpec::StackKautz { .. }
                | NetworkSpec::StackImaseItoh { .. }
        )
    }

    /// Closed-form processor count, or `None` when it overflows `usize`.
    pub fn node_count(&self) -> Option<usize> {
        match *self {
            NetworkSpec::Complete { n } => Some(n),
            NetworkSpec::DeBruijn { d, k } => checked_pow(d, k),
            NetworkSpec::Kautz { d, k } => kautz_nodes(d, k),
            NetworkSpec::ImaseItoh { n, .. } => Some(n),
            NetworkSpec::Pops { t, g } => t.checked_mul(g),
            NetworkSpec::StackKautz { s, d, k } => kautz_nodes(d, k)?.checked_mul(s),
            NetworkSpec::StackImaseItoh { s, n, .. } => s.checked_mul(n),
        }
    }

    /// The size of the family's fault domain — the id space fault-pattern
    /// node ids (static [`otis_routing::FaultSet`]s and scheduled
    /// fault-timeline events alike) are interpreted over: quotient groups
    /// for multi-OPS families, processors for point-to-point families.
    /// `None` when the closed form overflows `usize`.
    pub fn fault_domain_size(&self) -> Option<usize> {
        match *self {
            NetworkSpec::Pops { g, .. } => Some(g),
            NetworkSpec::StackKautz { d, k, .. } => kautz_nodes(d, k),
            NetworkSpec::StackImaseItoh { n, .. } => Some(n),
            _ => self.node_count(),
        }
    }

    /// Closed-form link count — arcs for point-to-point families, OPS
    /// couplers for multi-OPS families — or `None` when the family has no
    /// simple closed form (`SII`, whose `II⁺` loop count depends on `n`).
    pub fn link_count(&self) -> Option<usize> {
        match *self {
            NetworkSpec::Complete { n } => n.checked_mul(n.saturating_sub(1)),
            NetworkSpec::DeBruijn { d, k } => checked_pow(d, k)?.checked_mul(d),
            NetworkSpec::Kautz { d, k } => kautz_nodes(d, k)?.checked_mul(d),
            NetworkSpec::ImaseItoh { d, n } => n.checked_mul(d),
            NetworkSpec::Pops { g, .. } => g.checked_mul(g),
            NetworkSpec::StackKautz { d, k, .. } => {
                kautz_nodes(d, k)?.checked_mul(d.checked_add(1)?)
            }
            NetworkSpec::StackImaseItoh { .. } => None,
        }
    }

    /// An upper bound on [`NetworkSpec::link_count`], defined for every
    /// family (`SII`'s `II⁺(d, n)` quotient has at most `n·(d+1)` arcs).
    fn link_upper_bound(&self) -> Option<usize> {
        match *self {
            NetworkSpec::StackImaseItoh { d, n, .. } => n.checked_mul(d.checked_add(1)?),
            _ => self.link_count(),
        }
    }

    /// Checks the parameter bounds of the family and the [`MAX_NODES`] /
    /// [`MAX_LINKS`] size caps, so constructing the network cannot panic or
    /// exhaust memory.
    pub fn validate(&self) -> Result<(), SpecError> {
        let bounds_ok = match *self {
            NetworkSpec::Complete { n } => n >= 1,
            NetworkSpec::DeBruijn { d, k } | NetworkSpec::Kautz { d, k } => d >= 1 && k >= 1,
            NetworkSpec::ImaseItoh { d, n } => d >= 1 && n >= 1,
            NetworkSpec::Pops { t, g } => t >= 1 && g >= 1,
            NetworkSpec::StackKautz { s, d, k } => s >= 1 && d >= 1 && k >= 1,
            NetworkSpec::StackImaseItoh { s, d, n } => s >= 1 && d >= 1 && n >= 1,
        };
        if !bounds_ok {
            return Err(SpecError::ParameterOutOfRange {
                spec: self.to_string(),
                reason: "every parameter must be at least 1",
            });
        }
        match self.node_count() {
            Some(n) if n <= MAX_NODES => {}
            _ => {
                return Err(SpecError::TooLarge {
                    spec: self.to_string(),
                    max_nodes: MAX_NODES,
                })
            }
        }
        match self.link_upper_bound() {
            Some(l) if l <= MAX_LINKS => Ok(()),
            _ => Err(SpecError::TooManyLinks {
                spec: self.to_string(),
                max_links: MAX_LINKS,
            }),
        }
    }
}

fn checked_pow(base: usize, exp: usize) -> Option<usize> {
    u32::try_from(exp).ok().and_then(|e| base.checked_pow(e))
}

fn kautz_nodes(d: usize, k: usize) -> Option<usize> {
    checked_pow(d, k.checked_sub(1)?)?.checked_mul(d.checked_add(1)?)
}

impl fmt::Display for NetworkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NetworkSpec::Complete { n } => write!(f, "K({n})"),
            NetworkSpec::DeBruijn { d, k } => write!(f, "DB({d},{k})"),
            NetworkSpec::Kautz { d, k } => write!(f, "KG({d},{k})"),
            NetworkSpec::ImaseItoh { d, n } => write!(f, "II({d},{n})"),
            NetworkSpec::Pops { t, g } => write!(f, "POPS({t},{g})"),
            NetworkSpec::StackKautz { s, d, k } => write!(f, "SK({s},{d},{k})"),
            NetworkSpec::StackImaseItoh { s, d, n } => write!(f, "SII({s},{d},{n})"),
        }
    }
}

impl FromStr for NetworkSpec {
    type Err = SpecError;

    fn from_str(input: &str) -> Result<Self, Self::Err> {
        let text = input.trim();
        let open = text.find('(').ok_or_else(|| SpecError::Syntax {
            input: input.to_string(),
            reason: "expected FAMILY(arg, ...)",
        })?;
        if !text.ends_with(')') {
            return Err(SpecError::Syntax {
                input: input.to_string(),
                reason: "missing closing parenthesis",
            });
        }
        let family = text[..open].trim().to_ascii_uppercase();
        let args: Vec<usize> = text[open + 1..text.len() - 1]
            .split(',')
            .map(|a| {
                a.trim().parse::<usize>().map_err(|_| SpecError::Syntax {
                    input: input.to_string(),
                    reason: "arguments must be non-negative integers",
                })
            })
            .collect::<Result<_, _>>()?;

        let arity_error = |expected: &'static str| SpecError::Arity {
            input: input.to_string(),
            family: family.clone(),
            expected,
            got: args.len(),
        };
        let spec = match family.as_str() {
            "K" => match args[..] {
                [n] => NetworkSpec::Complete { n },
                _ => return Err(arity_error("1 argument: K(n)")),
            },
            // "B" is the paper's name for de Bruijn graphs; accept both.
            "DB" | "B" => match args[..] {
                [d, k] => NetworkSpec::DeBruijn { d, k },
                _ => return Err(arity_error("2 arguments: DB(d,k)")),
            },
            "KG" => match args[..] {
                [d, k] => NetworkSpec::Kautz { d, k },
                _ => return Err(arity_error("2 arguments: KG(d,k)")),
            },
            "II" => match args[..] {
                [d, n] => NetworkSpec::ImaseItoh { d, n },
                _ => return Err(arity_error("2 arguments: II(d,n)")),
            },
            "POPS" => match args[..] {
                [t, g] => NetworkSpec::Pops { t, g },
                _ => return Err(arity_error("2 arguments: POPS(t,g)")),
            },
            "SK" => match args[..] {
                [s, d, k] => NetworkSpec::StackKautz { s, d, k },
                _ => return Err(arity_error("3 arguments: SK(s,d,k)")),
            },
            "SII" => match args[..] {
                [s, d, n] => NetworkSpec::StackImaseItoh { s, d, n },
                _ => return Err(arity_error("3 arguments: SII(s,d,n)")),
            },
            _ => {
                return Err(SpecError::UnknownFamily {
                    input: input.to_string(),
                    family,
                })
            }
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_family() {
        let cases = [
            ("K(5)", NetworkSpec::Complete { n: 5 }),
            ("DB(2,8)", NetworkSpec::DeBruijn { d: 2, k: 8 }),
            ("KG(3,4)", NetworkSpec::Kautz { d: 3, k: 4 }),
            ("II(4,12)", NetworkSpec::ImaseItoh { d: 4, n: 12 }),
            ("POPS(9,8)", NetworkSpec::Pops { t: 9, g: 8 }),
            ("SK(6,3,2)", NetworkSpec::StackKautz { s: 6, d: 3, k: 2 }),
            (
                "SII(2,3,12)",
                NetworkSpec::StackImaseItoh { s: 2, d: 3, n: 12 },
            ),
        ];
        for (text, expected) in cases {
            assert_eq!(text.parse::<NetworkSpec>().unwrap(), expected, "{text}");
            // Display round-trips through the parser.
            assert_eq!(expected.to_string(), text);
            assert_eq!(
                expected.to_string().parse::<NetworkSpec>().unwrap(),
                expected
            );
        }
    }

    #[test]
    fn tolerant_syntax() {
        assert_eq!(
            "  sk( 6 , 3 ,2 )  ".parse::<NetworkSpec>().unwrap(),
            NetworkSpec::StackKautz { s: 6, d: 3, k: 2 }
        );
        assert_eq!(
            "B(2,6)".parse::<NetworkSpec>().unwrap(),
            NetworkSpec::DeBruijn { d: 2, k: 6 }
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "SK", "SK(", "SK 6,3,2", "SK(6,3)", "POPS(9)", "XX(1,2)", "KG(a,b)",
        ] {
            assert!(
                bad.parse::<NetworkSpec>().is_err(),
                "{bad} should not parse"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_parameters() {
        for bad in ["K(0)", "KG(0,2)", "POPS(0,3)", "SK(0,2,2)", "SII(1,0,5)"] {
            assert!(
                bad.parse::<NetworkSpec>().is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_oversized_networks() {
        let err = "KG(9,12)".parse::<NetworkSpec>().unwrap_err();
        assert!(err.to_string().contains("large"), "{err}");
        // Overflowing node counts are also "too large", not a panic.
        assert!("DB(10,40)".parse::<NetworkSpec>().is_err());
        // An extreme degree must not overflow the d + 1 in the Kautz closed
        // form (typed error, no panic even in debug builds).
        assert!("KG(18446744073709551615,1)".parse::<NetworkSpec>().is_err());
    }

    #[test]
    fn rejects_overdense_networks() {
        // Dense families blow the arc budget long before the node cap: the
        // complete digraph on 10^5 nodes has ~10^10 arcs.
        let err = "K(100000)".parse::<NetworkSpec>().unwrap_err();
        assert!(err.to_string().contains("dense"), "{err}");
        // SII has no exact link closed form; its n·(d+1) bound still caps it.
        assert!("SII(1,8000000,4)".parse::<NetworkSpec>().is_err());
        // Modest sizes stay well within both caps.
        assert!("K(1000)".parse::<NetworkSpec>().is_ok());
    }

    #[test]
    fn closed_forms() {
        let sk: NetworkSpec = "SK(6,3,2)".parse().unwrap();
        assert_eq!(sk.node_count(), Some(72));
        assert_eq!(sk.link_count(), Some(48));
        let pops: NetworkSpec = "POPS(9,8)".parse().unwrap();
        assert_eq!(pops.node_count(), Some(72));
        assert_eq!(pops.link_count(), Some(64));
        let kg: NetworkSpec = "KG(3,4)".parse().unwrap();
        assert_eq!(kg.node_count(), Some(108));
        assert_eq!(kg.link_count(), Some(324));
        assert!(kg.validate().is_ok());
        assert!(!kg.is_multi_ops());
        assert!(sk.is_multi_ops());
        assert_eq!(sk.family_name(), "SK");
    }
}
