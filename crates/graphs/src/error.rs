//! Error types shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing or manipulating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier was outside the valid range `0..n`.
    NodeOutOfRange {
        /// The offending node identifier.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An arc identifier was outside the valid range `0..m`.
    ArcOutOfRange {
        /// The offending arc identifier.
        arc: usize,
        /// The number of arcs in the graph.
        m: usize,
    },
    /// A hyperarc identifier was outside the valid range.
    HyperArcOutOfRange {
        /// The offending hyperarc identifier.
        arc: usize,
        /// The number of hyperarcs in the hypergraph.
        m: usize,
    },
    /// A parameter combination does not define a valid object
    /// (for example a stacking factor of zero).
    InvalidParameter {
        /// Human readable description of the violated constraint.
        reason: String,
    },
    /// The two graphs handed to an operation have incompatible sizes.
    SizeMismatch {
        /// Size of the left-hand graph.
        left: usize,
        /// Size of the right-hand graph.
        right: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::ArcOutOfRange { arc, m } => {
                write!(f, "arc {arc} out of range for graph with {m} arcs")
            }
            GraphError::HyperArcOutOfRange { arc, m } => {
                write!(
                    f,
                    "hyperarc {arc} out of range for hypergraph with {m} hyperarcs"
                )
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
            GraphError::SizeMismatch { left, right } => {
                write!(f, "size mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience constructor for [`GraphError::InvalidParameter`].
pub fn invalid_parameter(reason: impl Into<String>) -> GraphError {
    GraphError::InvalidParameter {
        reason: reason.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_node_out_of_range() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 4 };
        assert_eq!(e.to_string(), "node 7 out of range for graph with 4 nodes");
    }

    #[test]
    fn display_invalid_parameter() {
        let e = invalid_parameter("stacking factor must be >= 1");
        assert!(e.to_string().contains("stacking factor"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::SizeMismatch { left: 1, right: 2 },
            GraphError::SizeMismatch { left: 1, right: 2 }
        );
        assert_ne!(
            GraphError::SizeMismatch { left: 1, right: 2 },
            GraphError::SizeMismatch { left: 2, right: 1 }
        );
    }
}
