//! Digraph isomorphism utilities.
//!
//! The reproduction needs isomorphism in two places:
//!
//! 1. **Labelled relabelling**: Corollary 1 of the paper identifies the Kautz
//!    graph `KG(d, k)` with the Imase–Itoh graph `II(d, d^(k-1)(d+1))`.  The
//!    identification comes with an *explicit* node bijection (word labels to
//!    integers), so checking it only requires applying a relabelling and
//!    comparing arc multisets — [`relabel`] + [`Digraph::same_arcs`].
//! 2. **Unlabelled isomorphism** for small instances (for example checking
//!    `L(KG(d,k)) ≅ KG(d,k+1)` without constructing the textbook bijection).
//!    [`are_isomorphic`] implements a refinement-guided backtracking search
//!    adequate for the small, highly regular graphs in the test-suite.

use crate::digraph::{Arc, Digraph, NodeId};

/// Applies a node bijection to `g`: node `u` of the input becomes node
/// `mapping[u]` of the output. `mapping` must be a permutation of `0..n`.
///
/// # Panics
/// Panics when `mapping` is not a permutation of the node set.
pub fn relabel(g: &Digraph, mapping: &[NodeId]) -> Digraph {
    let n = g.node_count();
    assert_eq!(mapping.len(), n, "mapping length must equal node count");
    let mut seen = vec![false; n];
    for &image in mapping {
        assert!(image < n, "mapping image {image} out of range");
        assert!(
            !seen[image],
            "mapping is not injective (image {image} repeated)"
        );
        seen[image] = true;
    }
    let arcs: Vec<Arc> = g
        .arcs()
        .iter()
        .map(|a| Arc::new(mapping[a.source], mapping[a.target]))
        .collect();
    Digraph::from_arcs(n, &arcs)
}

/// Returns `true` if the two digraphs are identical as *labelled* digraphs:
/// same node count and same multiset of arcs.
pub fn is_identical(a: &Digraph, b: &Digraph) -> bool {
    a.same_arcs(b)
}

/// Checks whether `mapping` is an isomorphism from `a` to `b` (arc
/// multiplicities included).
pub fn is_isomorphism(a: &Digraph, b: &Digraph, mapping: &[NodeId]) -> bool {
    if a.node_count() != b.node_count()
        || a.arc_count() != b.arc_count()
        || mapping.len() != a.node_count()
    {
        return false;
    }
    let mut seen = vec![false; b.node_count()];
    for &image in mapping {
        if image >= b.node_count() || seen[image] {
            return false;
        }
        seen[image] = true;
    }
    relabel(a, mapping).same_arcs(b)
}

/// Degree-signature of a node used to prune the isomorphism search:
/// (out-degree, in-degree, number of loops, sorted multiset of neighbour
/// out-degrees).  Invariant under isomorphism.
fn signature(g: &Digraph, u: NodeId) -> (usize, usize, usize, Vec<usize>) {
    let loops = g.out_neighbors(u).iter().filter(|&&v| v == u).count();
    let mut nbr_degrees: Vec<usize> = g
        .out_neighbors(u)
        .iter()
        .map(|&v| g.out_degree(v))
        .collect();
    nbr_degrees.sort_unstable();
    (g.out_degree(u), g.in_degree(u), loops, nbr_degrees)
}

/// Attempts to decide whether two digraphs are isomorphic, returning a witness
/// mapping when they are.
///
/// Backtracking with degree-signature pruning; intended for the small (≲ a few
/// hundred node) instances that appear in tests and figure reproduction, not
/// as a general-purpose isomorphism solver.
pub fn find_isomorphism(a: &Digraph, b: &Digraph) -> Option<Vec<NodeId>> {
    let n = a.node_count();
    if n != b.node_count() || a.arc_count() != b.arc_count() {
        return None;
    }
    if n == 0 {
        return Some(Vec::new());
    }

    let sig_a: Vec<_> = (0..n).map(|u| signature(a, u)).collect();
    let sig_b: Vec<_> = (0..n).map(|u| signature(b, u)).collect();
    {
        let mut sa = sig_a.clone();
        let mut sb = sig_b.clone();
        sa.sort();
        sb.sort();
        if sa != sb {
            return None;
        }
    }

    // Candidate images of each node of `a`: nodes of `b` with the same signature.
    let mut candidates: Vec<Vec<NodeId>> = (0..n)
        .map(|u| (0..n).filter(|&v| sig_a[u] == sig_b[v]).collect())
        .collect();

    // Order the nodes of `a` from fewest candidates to most (most constrained first).
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by_key(|&u| candidates[u].len());
    // Pre-index position in the order for partial consistency checks.
    for c in candidates.iter_mut() {
        c.sort_unstable();
    }

    let mut mapping: Vec<Option<NodeId>> = vec![None; n];
    let mut used = vec![false; n];

    fn consistent(
        a: &Digraph,
        b: &Digraph,
        mapping: &[Option<NodeId>],
        u: NodeId,
        img: NodeId,
    ) -> bool {
        // All already-mapped neighbours must have their adjacency preserved in
        // both directions with correct multiplicities.
        for (x, &mx) in mapping.iter().enumerate() {
            let Some(mx) = mx else { continue };
            if a.arc_multiplicity(u, x) != b.arc_multiplicity(img, mx) {
                return false;
            }
            if a.arc_multiplicity(x, u) != b.arc_multiplicity(mx, img) {
                return false;
            }
        }
        a.arc_multiplicity(u, u) == b.arc_multiplicity(img, img)
    }

    fn backtrack(
        a: &Digraph,
        b: &Digraph,
        order: &[NodeId],
        candidates: &[Vec<NodeId>],
        mapping: &mut Vec<Option<NodeId>>,
        used: &mut Vec<bool>,
        depth: usize,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let u = order[depth];
        for &img in &candidates[u] {
            if used[img] || !consistent(a, b, mapping, u, img) {
                continue;
            }
            mapping[u] = Some(img);
            used[img] = true;
            if backtrack(a, b, order, candidates, mapping, used, depth + 1) {
                return true;
            }
            mapping[u] = None;
            used[img] = false;
        }
        false
    }

    if backtrack(a, b, &order, &candidates, &mut mapping, &mut used, 0) {
        Some(mapping.into_iter().map(|m| m.unwrap()).collect())
    } else {
        None
    }
}

/// Returns `true` when [`find_isomorphism`] succeeds.
pub fn are_isomorphic(a: &Digraph, b: &Digraph) -> bool {
    find_isomorphism(a, b).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;

    fn cycle(n: usize) -> Digraph {
        let mut b = DigraphBuilder::new(n);
        for u in 0..n {
            b.add_arc(u, (u + 1) % n);
        }
        b.build()
    }

    #[test]
    fn relabel_roundtrip() {
        let g = cycle(5);
        let perm = vec![2, 3, 4, 0, 1];
        let h = relabel(&g, &perm);
        // Applying the inverse brings us back.
        let mut inv = vec![0; 5];
        for (u, &img) in perm.iter().enumerate() {
            inv[img] = u;
        }
        assert!(relabel(&h, &inv).same_arcs(&g));
        assert!(is_isomorphism(&g, &h, &perm));
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn relabel_rejects_non_permutation() {
        relabel(&cycle(3), &[0, 0, 1]);
    }

    #[test]
    fn rotated_cycles_are_isomorphic() {
        let g = cycle(6);
        let h = relabel(&g, &[3, 4, 5, 0, 1, 2]);
        assert!(are_isomorphic(&g, &h));
    }

    #[test]
    fn cycle_vs_two_cycles_not_isomorphic() {
        let g = cycle(6);
        let h = Digraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert_eq!(g.arc_count(), h.arc_count());
        assert!(!are_isomorphic(&g, &h));
    }

    #[test]
    fn different_sizes_not_isomorphic() {
        assert!(!are_isomorphic(&cycle(4), &cycle(5)));
    }

    #[test]
    fn loops_matter() {
        let g = Digraph::from_edges(2, &[(0, 1), (1, 0), (0, 0)]);
        let h = Digraph::from_edges(2, &[(0, 1), (1, 0), (1, 1)]);
        // These are isomorphic (swap the two nodes).
        assert!(are_isomorphic(&g, &h));
        let k = Digraph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert!(!are_isomorphic(&g, &k));
    }

    #[test]
    fn multiplicity_is_respected() {
        let g = Digraph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        let h = Digraph::from_edges(2, &[(0, 1), (1, 0), (1, 0)]);
        assert!(are_isomorphic(&g, &h));
        let k = Digraph::from_edges(2, &[(0, 1), (1, 0), (0, 0)]);
        assert!(!are_isomorphic(&g, &k));
    }

    #[test]
    fn witness_is_a_real_isomorphism() {
        let g = cycle(7);
        let h = relabel(&g, &[6, 5, 4, 3, 2, 1, 0]);
        let w = find_isomorphism(&g, &h).unwrap();
        assert!(is_isomorphism(&g, &h, &w));
    }

    #[test]
    fn identical_graphs() {
        let g = cycle(4);
        assert!(is_identical(&g, &g.clone()));
        assert!(!is_identical(&g, &cycle(5)));
    }

    #[test]
    fn empty_graphs_are_isomorphic() {
        assert!(are_isomorphic(&Digraph::empty(0), &Digraph::empty(0)));
        assert!(are_isomorphic(&Digraph::empty(3), &Digraph::empty(3)));
    }
}
