//! Dense adjacency matrices.
//!
//! Small topology instances (the worked examples of the paper) are easier to
//! check through their adjacency matrices: matrix powers count walks, so
//! `A^k > 0` everywhere certifies diameter ≤ k, and the (d, k) Moore-style
//! bounds used to argue Kautz optimality are naturally phrased this way.

use crate::digraph::Digraph;

/// A dense adjacency matrix with `u64` entries (walk counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyMatrix {
    n: usize,
    data: Vec<u64>,
}

impl AdjacencyMatrix {
    /// The zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        AdjacencyMatrix {
            n,
            data: vec![0; n * n],
        }
    }

    /// The identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Builds the adjacency matrix of a digraph; entry `(u, v)` is the number
    /// of parallel arcs from `u` to `v`.
    pub fn from_digraph(g: &Digraph) -> Self {
        let mut m = Self::zeros(g.node_count());
        for a in g.arcs() {
            let idx = a.source * m.n + a.target;
            m.data[idx] += 1;
        }
        m
    }

    /// Dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> u64 {
        self.data[row * self.n + col]
    }

    /// Sets entry `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: u64) {
        self.data[row * self.n + col] = value;
    }

    /// Matrix product `self * other` (saturating on overflow so that walk
    /// counts of large powers stay well defined for positivity tests).
    pub fn multiply(&self, other: &AdjacencyMatrix) -> AdjacencyMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut out = AdjacencyMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                for j in 0..n {
                    let cur = out.get(i, j);
                    out.set(i, j, cur.saturating_add(a.saturating_mul(other.get(k, j))));
                }
            }
        }
        out
    }

    /// Matrix power `self^e` (with `self^0 = I`).
    pub fn power(&self, e: u32) -> AdjacencyMatrix {
        let mut result = AdjacencyMatrix::identity(self.n);
        let mut base = self.clone();
        let mut exp = e;
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.multiply(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.multiply(&base);
            }
        }
        result
    }

    /// Number of directed walks of length exactly `len` from `u` to `v`.
    pub fn walk_count(&self, u: usize, v: usize, len: u32) -> u64 {
        self.power(len).get(u, v)
    }

    /// Returns `true` if `I + A + A² + … + A^k` has no zero entry, i.e. every
    /// ordered pair of nodes is joined by a walk of length at most `k`.
    /// This is exactly the statement "diameter ≤ k".
    pub fn covers_within(&self, k: u32) -> bool {
        let n = self.n;
        let mut acc = AdjacencyMatrix::identity(n);
        let mut pow = AdjacencyMatrix::identity(n);
        for _ in 0..k {
            pow = pow.multiply(self);
            for i in 0..n * n {
                acc.data[i] = acc.data[i].saturating_add(pow.data[i]);
            }
        }
        acc.data.iter().all(|&x| x > 0)
    }

    /// Sum of all entries (total arc count for an adjacency matrix).
    pub fn total(&self) -> u64 {
        self.data.iter().fold(0u64, |acc, &x| acc.saturating_add(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;

    fn cycle(n: usize) -> Digraph {
        let mut b = DigraphBuilder::new(n);
        for u in 0..n {
            b.add_arc(u, (u + 1) % n);
        }
        b.build()
    }

    #[test]
    fn from_digraph_counts_multiplicity() {
        let g = Digraph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        let m = AdjacencyMatrix::from_digraph(&g);
        assert_eq!(m.get(0, 1), 2);
        assert_eq!(m.get(1, 0), 1);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn identity_and_power_zero() {
        let m = AdjacencyMatrix::from_digraph(&cycle(4));
        assert_eq!(m.power(0), AdjacencyMatrix::identity(4));
    }

    #[test]
    fn walk_counts_on_cycle() {
        let m = AdjacencyMatrix::from_digraph(&cycle(4));
        // Exactly one walk of length 4 from a node back to itself.
        assert_eq!(m.walk_count(0, 0, 4), 1);
        assert_eq!(m.walk_count(0, 0, 3), 0);
        assert_eq!(m.walk_count(0, 2, 2), 1);
    }

    #[test]
    fn covers_within_matches_diameter() {
        let m = AdjacencyMatrix::from_digraph(&cycle(5));
        assert!(!m.covers_within(3));
        assert!(m.covers_within(4));
        assert!(m.covers_within(10));
    }

    #[test]
    fn walk_counts_on_complete_digraph() {
        // K_3 without loops: number of closed walks of length 2 from a node is 2.
        let mut b = DigraphBuilder::new(3);
        for u in 0..3 {
            for v in 0..3 {
                if u != v {
                    b.add_arc(u, v);
                }
            }
        }
        let m = AdjacencyMatrix::from_digraph(&b.build());
        assert_eq!(m.walk_count(0, 0, 2), 2);
        assert_eq!(m.walk_count(0, 1, 2), 1);
    }

    #[test]
    fn multiply_dimension_checked() {
        let a = AdjacencyMatrix::zeros(2);
        let b = AdjacencyMatrix::zeros(3);
        let result = std::panic::catch_unwind(|| a.multiply(&b));
        assert!(result.is_err());
    }

    #[test]
    fn saturating_behaviour() {
        let mut m = AdjacencyMatrix::zeros(1);
        m.set(0, 0, u64::MAX);
        let sq = m.multiply(&m);
        assert_eq!(sq.get(0, 0), u64::MAX);
    }
}
