//! Per-channel wavelength-occupancy maps backed by word-wide bitmasks.
//!
//! A multi-wavelength OPS coupler (or a WDM point-to-point link) carries up
//! to `W` messages per slot, one per wavelength.  The simulators track which
//! wavelengths of which channel are in use *within the current slot* with a
//! [`SpectrumMap`]: one bitmask per channel, `W` bits wide, packed into
//! `u64` words — the classic `fs_usage` boolean-array idiom of spectrum
//! assignment studies, but word-wide so clearing and searching are a handful
//! of machine operations instead of a per-wavelength loop.
//!
//! The map is allocation-free after construction: [`SpectrumMap::clear`]
//! resets every mask in place, so a slotted simulator can clear it at the
//! top of each slot without touching the allocator — the same per-slot
//! discipline as the prepared kernels' message buffers.

/// Wavelength occupancy of every channel (coupler or arc) of a network,
/// scoped to one time slot.  Bit `w` of channel `c`'s mask is set when
/// wavelength `w` on channel `c` is carrying a message this slot.
#[derive(Debug, Clone)]
pub struct SpectrumMap {
    channels: usize,
    wavelengths: usize,
    /// Words per channel: `ceil(wavelengths / 64)`.
    words: usize,
    /// The packed masks, `words` consecutive words per channel.
    bits: Vec<u64>,
    /// Cached per-channel occupancy count, so capacity checks are O(1).
    used: Vec<usize>,
}

impl SpectrumMap {
    /// A map over `channels` channels of `wavelengths` wavelengths each,
    /// all free.  `wavelengths` must be at least 1.
    pub fn new(channels: usize, wavelengths: usize) -> Self {
        assert!(
            wavelengths >= 1,
            "a channel carries at least one wavelength"
        );
        let words = wavelengths.div_ceil(64);
        SpectrumMap {
            channels,
            wavelengths,
            words,
            bits: vec![0; channels * words],
            used: vec![0; channels],
        }
    }

    /// Number of channels tracked.
    pub fn channel_count(&self) -> usize {
        self.channels
    }

    /// Wavelengths per channel.
    pub fn wavelength_count(&self) -> usize {
        self.wavelengths
    }

    /// Frees every wavelength of every channel, in place (no allocation) —
    /// called at the top of each simulated slot.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.used.fill(0);
    }

    /// The word range of one channel's mask.
    fn span(&self, channel: usize) -> std::ops::Range<usize> {
        let start = channel * self.words;
        start..start + self.words
    }

    /// Whether wavelength `w` of `channel` is free.
    pub fn is_free(&self, channel: usize, w: usize) -> bool {
        debug_assert!(w < self.wavelengths);
        self.bits[channel * self.words + w / 64] & (1u64 << (w % 64)) == 0
    }

    /// Marks wavelength `w` of `channel` busy; returns `false` when it
    /// already was (and leaves the map unchanged).
    pub fn occupy(&mut self, channel: usize, w: usize) -> bool {
        debug_assert!(w < self.wavelengths);
        let word = channel * self.words + w / 64;
        let bit = 1u64 << (w % 64);
        if self.bits[word] & bit != 0 {
            return false;
        }
        self.bits[word] |= bit;
        self.used[channel] += 1;
        true
    }

    /// Frees wavelength `w` of `channel`; returns `false` when it already
    /// was free.
    pub fn release(&mut self, channel: usize, w: usize) -> bool {
        debug_assert!(w < self.wavelengths);
        let word = channel * self.words + w / 64;
        let bit = 1u64 << (w % 64);
        if self.bits[word] & bit == 0 {
            return false;
        }
        self.bits[word] &= !bit;
        self.used[channel] -= 1;
        true
    }

    /// Number of busy wavelengths on `channel`.
    pub fn occupied_count(&self, channel: usize) -> usize {
        self.used[channel]
    }

    /// Number of free wavelengths on `channel`.
    pub fn free_count(&self, channel: usize) -> usize {
        self.wavelengths - self.used[channel]
    }

    /// Whether every wavelength of `channel` is busy — the per-slot capacity
    /// check of the wavelength-mode slot loops.
    pub fn is_full(&self, channel: usize) -> bool {
        self.used[channel] == self.wavelengths
    }

    /// The lowest-indexed free wavelength of `channel` (first-fit
    /// assignment), or `None` when the channel is full.  A trailing-zeros
    /// scan over the inverted words, so the cost is O(words), not
    /// O(wavelengths).
    pub fn first_free(&self, channel: usize) -> Option<usize> {
        for (i, word) in self.bits[self.span(channel)].iter().enumerate() {
            let free = !word;
            if free != 0 {
                let w = i * 64 + free.trailing_zeros() as usize;
                return (w < self.wavelengths).then_some(w);
            }
        }
        None
    }

    /// The `n`-th free wavelength of `channel` in increasing index order
    /// (`n` is 0-based), or `None` when fewer than `n + 1` wavelengths are
    /// free — the lookup behind uniform-random assignment.
    pub fn nth_free(&self, channel: usize, n: usize) -> Option<usize> {
        let mut remaining = n;
        for (i, word) in self.bits[self.span(channel)].iter().enumerate() {
            let mut free = !word;
            if i == self.words - 1 && !self.wavelengths.is_multiple_of(64) {
                // Mask off the padding bits past the last real wavelength.
                free &= (1u64 << (self.wavelengths % 64)) - 1;
            }
            let count = free.count_ones() as usize;
            if remaining < count {
                // Select the (remaining+1)-th set bit of `free`.
                let mut bits = free;
                for _ in 0..remaining {
                    bits &= bits - 1;
                }
                return Some(i * 64 + bits.trailing_zeros() as usize);
            }
            remaining -= count;
        }
        None
    }

    /// Total busy wavelengths across all channels.
    pub fn total_occupied(&self) -> usize {
        self.used.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_is_all_free() {
        let m = SpectrumMap::new(3, 4);
        assert_eq!(m.channel_count(), 3);
        assert_eq!(m.wavelength_count(), 4);
        for c in 0..3 {
            assert_eq!(m.free_count(c), 4);
            assert_eq!(m.occupied_count(c), 0);
            assert!(!m.is_full(c));
            assert_eq!(m.first_free(c), Some(0));
            for w in 0..4 {
                assert!(m.is_free(c, w));
            }
        }
        assert_eq!(m.total_occupied(), 0);
    }

    #[test]
    fn occupy_release_round_trip() {
        let mut m = SpectrumMap::new(2, 3);
        assert!(m.occupy(1, 2));
        assert!(!m.occupy(1, 2), "double occupy must be refused");
        assert!(!m.is_free(1, 2));
        assert_eq!(m.occupied_count(1), 1);
        assert_eq!(m.occupied_count(0), 0);
        assert!(m.release(1, 2));
        assert!(!m.release(1, 2), "double release must be refused");
        assert!(m.is_free(1, 2));
        assert_eq!(m.total_occupied(), 0);
    }

    #[test]
    fn first_fit_skips_occupied_wavelengths() {
        let mut m = SpectrumMap::new(1, 4);
        m.occupy(0, 0);
        m.occupy(0, 1);
        assert_eq!(m.first_free(0), Some(2));
        m.occupy(0, 2);
        m.occupy(0, 3);
        assert!(m.is_full(0));
        assert_eq!(m.first_free(0), None);
    }

    #[test]
    fn nth_free_indexes_the_free_set() {
        let mut m = SpectrumMap::new(1, 5);
        m.occupy(0, 1);
        m.occupy(0, 3);
        // Free set: {0, 2, 4}.
        assert_eq!(m.nth_free(0, 0), Some(0));
        assert_eq!(m.nth_free(0, 1), Some(2));
        assert_eq!(m.nth_free(0, 2), Some(4));
        assert_eq!(m.nth_free(0, 3), None);
    }

    #[test]
    fn wide_masks_span_multiple_words() {
        let mut m = SpectrumMap::new(2, 130);
        for w in 0..129 {
            assert!(m.occupy(1, w));
        }
        assert_eq!(m.free_count(1), 1);
        assert_eq!(m.first_free(1), Some(129));
        assert_eq!(m.nth_free(1, 0), Some(129));
        assert!(m.occupy(1, 129));
        assert!(m.is_full(1));
        assert_eq!(m.first_free(1), None);
        assert_eq!(m.nth_free(1, 0), None);
        // The other channel is untouched.
        assert_eq!(m.free_count(0), 130);
    }

    #[test]
    fn clear_resets_everything_in_place() {
        let mut m = SpectrumMap::new(3, 2);
        m.occupy(0, 0);
        m.occupy(2, 1);
        m.clear();
        assert_eq!(m.total_occupied(), 0);
        for c in 0..3 {
            assert_eq!(m.first_free(c), Some(0));
        }
    }

    #[test]
    fn single_wavelength_degenerates_to_a_busy_flag() {
        let mut m = SpectrumMap::new(2, 1);
        assert_eq!(m.first_free(0), Some(0));
        m.occupy(0, 0);
        assert!(m.is_full(0));
        assert!(!m.is_full(1));
    }

    #[test]
    #[should_panic(expected = "at least one wavelength")]
    fn zero_wavelengths_are_refused() {
        SpectrumMap::new(1, 0);
    }
}
