//! Graph algorithms used throughout the reproduction.
//!
//! All algorithms operate on the CSR [`crate::Digraph`] and are written for
//! the sizes relevant to the paper (up to a few hundred thousand nodes for
//! the largest Kautz/Imase–Itoh sweeps). They favour simple, allocation-aware
//! implementations: distance vectors are reused where possible and BFS uses a
//! flat `VecDeque` frontier.

pub mod bfs;
pub mod connectivity;
pub mod diameter;
pub mod euler;
pub mod hamilton;
pub mod paths;
pub mod yen;

pub use bfs::{bfs_distances, bfs_distances_into, reachable_count};
pub use connectivity::{is_strongly_connected, strongly_connected_components};
pub use diameter::{average_distance, diameter, eccentricity, radius};
pub use euler::{eulerian_circuit, is_eulerian};
pub use hamilton::{hamiltonian_cycle, is_hamiltonian};
pub use paths::{
    all_shortest_path_lengths_from, is_valid_path, shortest_path, shortest_path_avoiding,
};
pub use yen::{k_shortest_paths, k_shortest_paths_avoiding};
