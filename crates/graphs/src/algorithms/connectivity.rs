//! Strong connectivity (Tarjan's algorithm, iterative).

use crate::digraph::{Digraph, NodeId};

/// Computes the strongly connected components of `g`.
///
/// Returns a vector `comp` with `comp[u]` being the component index of node
/// `u`. Component indices are in reverse topological order of the condensation
/// (a property of Tarjan's algorithm), numbered from 0.
pub fn strongly_connected_components(g: &Digraph) -> Vec<usize> {
    let n = g.node_count();
    const UNVISITED: usize = usize::MAX;

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS stack: (node, next-neighbour-position).
    let mut call_stack: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (u, ref mut pos)) = call_stack.last_mut() {
            let neighbors = g.out_neighbors(u);
            if *pos < neighbors.len() {
                let v = neighbors[*pos];
                *pos += 1;
                if index[v] == UNVISITED {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call_stack.push((v, 0));
                } else if on_stack[v] {
                    lowlink[u] = lowlink[u].min(index[v]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[u]);
                }
                if lowlink[u] == index[u] {
                    // u is the root of an SCC; pop it off.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == u {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Returns `true` if the digraph is strongly connected (every node reaches
/// every other node by a directed path). The empty digraph is considered
/// strongly connected; a single node is as well.
pub fn is_strongly_connected(g: &Digraph) -> bool {
    if g.node_count() <= 1 {
        return true;
    }
    let comp = strongly_connected_components(g);
    comp.iter().all(|&c| c == comp[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;

    #[test]
    fn cycle_is_strongly_connected() {
        let mut b = DigraphBuilder::new(5);
        for u in 0..5 {
            b.add_arc(u, (u + 1) % 5);
        }
        assert!(is_strongly_connected(&b.build()));
    }

    #[test]
    fn path_is_not_strongly_connected() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!is_strongly_connected(&g));
        let comp = strongly_connected_components(&g);
        // Three singleton components.
        assert_eq!(
            comp.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn two_cycles_joined_one_way() {
        // Cycle {0,1,2} -> cycle {3,4} via arc 2->3; not strongly connected.
        let g = Digraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]);
        assert!(!is_strongly_connected(&g));
        let comp = strongly_connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn condensation_order_is_reverse_topological() {
        // 0 -> 1; Tarjan assigns the sink component (1) a smaller index.
        let g = Digraph::from_edges(2, &[(0, 1)]);
        let comp = strongly_connected_components(&g);
        assert!(comp[1] < comp[0]);
    }

    #[test]
    fn trivial_graphs() {
        assert!(is_strongly_connected(&Digraph::empty(0)));
        assert!(is_strongly_connected(&Digraph::empty(1)));
        assert!(!is_strongly_connected(&Digraph::empty(2)));
    }

    #[test]
    fn loops_do_not_break_scc() {
        let g = Digraph::from_edges(2, &[(0, 1), (1, 0), (0, 0)]);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn deep_graph_does_not_overflow_stack() {
        // A long path plus a return arc: one big SCC, depth ~200k would
        // overflow a recursive implementation.
        let n = 200_000;
        let mut b = DigraphBuilder::with_capacity(n, n + 1);
        for u in 0..n - 1 {
            b.add_arc(u, u + 1);
        }
        b.add_arc(n - 1, 0);
        assert!(is_strongly_connected(&b.build()));
    }
}
