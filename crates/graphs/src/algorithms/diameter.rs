//! Eccentricity, radius, diameter and average distance.
//!
//! The paper states closed-form diameters for its topology families (Kautz
//! `KG(d,k)` has diameter `k`, Imase–Itoh `II(d,n)` has diameter `⌈log_d n⌉`,
//! the stack-Kautz inherits the diameter of its quotient).  These functions
//! compute the quantities from scratch so that the reproduction can *check*
//! the closed forms instead of assuming them.

use crate::algorithms::bfs::{bfs_distances_into, UNREACHABLE};
use crate::digraph::{Digraph, NodeId};

/// Eccentricity of `u`: the maximum BFS distance from `u` to any node.
///
/// Returns `None` if some node is unreachable from `u`.
pub fn eccentricity(g: &Digraph, u: NodeId) -> Option<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    bfs_distances_into(g, u, &mut dist);
    let mut ecc = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Diameter of the digraph: the maximum eccentricity over all nodes.
///
/// Returns `None` when the digraph is not strongly connected (some ordered
/// pair has no directed path) or has no nodes.
pub fn diameter(g: &Digraph) -> Option<u32> {
    if g.node_count() == 0 {
        return None;
    }
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut best = 0u32;
    for u in 0..g.node_count() {
        bfs_distances_into(g, u, &mut dist);
        for &d in &dist {
            if d == UNREACHABLE {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

/// Radius of the digraph: the minimum eccentricity over all nodes.
///
/// Returns `None` when no node reaches every other node.
pub fn radius(g: &Digraph) -> Option<u32> {
    let mut best: Option<u32> = None;
    for u in 0..g.node_count() {
        if let Some(e) = eccentricity(g, u) {
            best = Some(best.map_or(e, |b| b.min(e)));
        }
    }
    best
}

/// Average directed distance over all ordered pairs `(u, v)` with `u != v`.
///
/// Returns `None` for graphs with fewer than two nodes or when some ordered
/// pair is disconnected.
pub fn average_distance(g: &Digraph) -> Option<f64> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let mut dist = vec![UNREACHABLE; n];
    let mut total: u64 = 0;
    for u in 0..n {
        bfs_distances_into(g, u, &mut dist);
        for (v, &d) in dist.iter().enumerate() {
            if v == u {
                continue;
            }
            if d == UNREACHABLE {
                return None;
            }
            total += u64::from(d);
        }
    }
    Some(total as f64 / (n as f64 * (n as f64 - 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;

    fn cycle(n: usize) -> Digraph {
        let mut b = DigraphBuilder::new(n);
        for u in 0..n {
            b.add_arc(u, (u + 1) % n);
        }
        b.build()
    }

    fn complete(n: usize) -> Digraph {
        let mut b = DigraphBuilder::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    b.add_arc(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn cycle_diameter() {
        assert_eq!(diameter(&cycle(6)), Some(5));
        assert_eq!(radius(&cycle(6)), Some(5));
        assert_eq!(eccentricity(&cycle(6), 3), Some(5));
    }

    #[test]
    fn complete_diameter() {
        assert_eq!(diameter(&complete(5)), Some(1));
        assert_eq!(average_distance(&complete(5)), Some(1.0));
    }

    #[test]
    fn disconnected_returns_none() {
        let g = Digraph::from_edges(3, &[(0, 1)]);
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
        assert_eq!(average_distance(&g), None);
        assert_eq!(radius(&g), None);
    }

    #[test]
    fn radius_with_partial_reachability() {
        // Star out of node 0: node 0 reaches everyone (ecc 1), others reach nobody.
        let g = Digraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(radius(&g), Some(1));
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn average_distance_cycle() {
        // In a directed 4-cycle the distances from any node are 1, 2, 3.
        let g = cycle(4);
        assert_eq!(average_distance(&g), Some(2.0));
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(diameter(&Digraph::empty(0)), None);
        assert_eq!(average_distance(&Digraph::empty(1)), None);
        assert_eq!(diameter(&Digraph::empty(1)), Some(0));
    }
}
