//! Yen's k-shortest loopless paths on unit-weight digraphs.
//!
//! Alternate routing needs more than one candidate path per node pair: when
//! every wavelength of the primary route's first channel is busy, the
//! simulator tries the second-shortest route, then the third, before
//! declaring a packet blocked.  This module provides the classical Yen
//! construction specialised to unit arc weights (every BFS sub-search is a
//! [`shortest_path_avoiding`] call) and to loopless (simple) paths, which is
//! what a deflection-free alternate route must be.
//!
//! Determinism: the candidate pool is ranked by `(length, lexicographic
//! node sequence)` and no hash ordering is involved anywhere, so the
//! returned list depends only on the digraph — prepared simulation kernels
//! built from it are reproducible across runs and threads.

use crate::algorithms::paths::shortest_path_avoiding;
use crate::digraph::{Digraph, NodeId};

/// Up to `k` shortest loopless paths from `source` to `target`, shortest
/// first; length ties among competing candidates are broken toward the
/// lexicographically smaller node sequence.  Returns fewer than `k` paths
/// when the graph does not contain that many distinct simple paths (and an
/// empty vector when `target` is unreachable or `k == 0`).
///
/// The self-pair `source == target` has exactly one loopless path, the
/// trivial `[source]`.
pub fn k_shortest_paths(g: &Digraph, source: NodeId, target: NodeId, k: usize) -> Vec<Vec<NodeId>> {
    k_shortest_paths_avoiding(g, source, target, k, |_, _| false)
}

/// [`k_shortest_paths`] restricted to arcs for which `blocked(u, v)` is
/// `false` — the fault-filtered variant used when alternate routes must
/// avoid a failure pattern (a failed node is modelled by blocking all of
/// its incident arcs, exactly as in [`shortest_path_avoiding`]).
pub fn k_shortest_paths_avoiding<F>(
    g: &Digraph,
    source: NodeId,
    target: NodeId,
    k: usize,
    blocked: F,
) -> Vec<Vec<NodeId>>
where
    F: Fn(NodeId, NodeId) -> bool,
{
    if k == 0 {
        return Vec::new();
    }
    let Some(first) = shortest_path_avoiding(g, source, target, &blocked) else {
        return Vec::new();
    };
    let mut accepted: Vec<Vec<NodeId>> = vec![first];
    // Candidate pool of not-yet-accepted deviations, kept sorted on demand.
    let mut candidates: Vec<Vec<NodeId>> = Vec::new();

    while accepted.len() < k {
        let prev = accepted.last().expect("accepted is never empty").clone();
        // Deviate from every prefix of the most recently accepted path.
        for i in 0..prev.len().saturating_sub(1) {
            let spur = prev[i];
            let root = &prev[..=i];
            // Arcs leaving the spur node that would recreate a known path
            // sharing this root must be excluded from the spur search.
            let spur_search = shortest_path_avoiding(g, spur, target, |u, v| {
                if blocked(u, v) {
                    return true;
                }
                // Keep the total path loopless: the spur path may not
                // revisit any root node before the spur itself.
                if root[..i].contains(&v) {
                    return true;
                }
                u == spur
                    && (accepted.iter().chain(candidates.iter()))
                        .any(|p| p.len() > i + 1 && p[..=i] == *root && p[i + 1] == v)
            });
            if let Some(spur_path) = spur_search {
                let mut total = root[..i].to_vec();
                total.extend(spur_path);
                if !accepted.contains(&total) && !candidates.contains(&total) {
                    candidates.push(total);
                }
            }
        }
        // Promote the best remaining candidate: shortest, then smallest in
        // node-sequence order.
        let Some(best) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.len().cmp(&b.len()).then_with(|| a.cmp(b)))
            .map(|(idx, _)| idx)
        else {
            break;
        };
        accepted.push(candidates.swap_remove(best));
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::paths::is_valid_path;
    use crate::digraph::Digraph;
    use crate::line_digraph::line_digraph_iterated;

    /// B(d, n): nodes are the `d^n` strings over a `d`-ary alphabet, arcs
    /// shift one symbol in.  Includes the `d` self-loops.
    fn de_bruijn(d: usize, n: usize) -> Digraph {
        let size = d.pow(n as u32);
        let mut edges = Vec::new();
        for u in 0..size {
            for a in 0..d {
                edges.push((u, (u * d + a) % size));
            }
        }
        Digraph::from_edges(size, &edges)
    }

    /// K(d, k) built as the iterated line digraph `L^{k-1}(K_{d+1})`.
    fn kautz(d: usize, k: usize) -> Digraph {
        let n = d + 1;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        line_digraph_iterated(&Digraph::from_edges(n, &edges), k - 1)
    }

    /// Every simple path from `source` to `target`, by exhaustive DFS —
    /// the ground truth Yen's construction is checked against.
    fn all_simple_paths(
        g: &Digraph,
        source: NodeId,
        target: NodeId,
        blocked: &dyn Fn(NodeId, NodeId) -> bool,
    ) -> Vec<Vec<NodeId>> {
        fn dfs(
            g: &Digraph,
            target: NodeId,
            blocked: &dyn Fn(NodeId, NodeId) -> bool,
            path: &mut Vec<NodeId>,
            on_path: &mut Vec<bool>,
            out: &mut Vec<Vec<NodeId>>,
        ) {
            let u = *path.last().unwrap();
            if u == target {
                out.push(path.clone());
                return;
            }
            for &v in g.out_neighbors(u) {
                if on_path[v] || blocked(u, v) {
                    continue;
                }
                on_path[v] = true;
                path.push(v);
                dfs(g, target, blocked, path, on_path, out);
                path.pop();
                on_path[v] = false;
            }
        }
        let mut out = Vec::new();
        let mut on_path = vec![false; g.node_count()];
        on_path[source] = true;
        dfs(
            g,
            target,
            blocked,
            &mut vec![source],
            &mut on_path,
            &mut out,
        );
        out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        out
    }

    fn is_loopless(path: &[NodeId]) -> bool {
        let mut sorted = path.to_vec();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] != w[1])
    }

    fn check_against_enumeration(
        g: &Digraph,
        source: NodeId,
        target: NodeId,
        k: usize,
        blocked: &dyn Fn(NodeId, NodeId) -> bool,
    ) {
        let yen = k_shortest_paths_avoiding(g, source, target, k, blocked);
        let truth = all_simple_paths(g, source, target, blocked);
        assert_eq!(
            yen.len(),
            truth.len().min(k),
            "yen must find exactly min(k, #simple paths) paths for {source}->{target}"
        );
        for (i, p) in yen.iter().enumerate() {
            assert!(is_valid_path(g, p), "invalid path {p:?}");
            assert!(is_loopless(p), "path with a loop {p:?}");
            assert_eq!(*p.first().unwrap(), source);
            assert_eq!(*p.last().unwrap(), target);
            assert!(
                !p.windows(2).any(|w| blocked(w[0], w[1])),
                "path {p:?} crosses a blocked arc"
            );
            // Sorted-by-length, and each rank matches the true k-smallest
            // lengths (the paths themselves may differ only within a
            // same-length tie class, which the lexicographic rule pins too).
            if i > 0 {
                assert!(yen[i - 1].len() <= p.len(), "paths out of length order");
            }
            assert_eq!(
                p.len(),
                truth[i].len(),
                "rank {i} has wrong length: yen {:?} vs truth {:?}",
                yen[i],
                truth[i]
            );
        }
        // Distinctness.
        for i in 0..yen.len() {
            for j in i + 1..yen.len() {
                assert_ne!(yen[i], yen[j], "duplicate path at ranks {i}/{j}");
            }
        }
    }

    #[test]
    fn matches_enumeration_on_de_bruijn() {
        let g = de_bruijn(2, 2);
        let unblocked: &dyn Fn(NodeId, NodeId) -> bool = &|_, _| false;
        for source in 0..g.node_count() {
            for target in 0..g.node_count() {
                if source == target {
                    continue;
                }
                for k in [1, 2, 3, 8, 64] {
                    check_against_enumeration(&g, source, target, k, unblocked);
                }
            }
        }
    }

    #[test]
    fn matches_enumeration_on_kautz() {
        let g = kautz(2, 2);
        let unblocked: &dyn Fn(NodeId, NodeId) -> bool = &|_, _| false;
        for source in 0..g.node_count() {
            for target in 0..g.node_count() {
                if source == target {
                    continue;
                }
                for k in [1, 3, 16] {
                    check_against_enumeration(&g, source, target, k, unblocked);
                }
            }
        }
    }

    #[test]
    fn fault_filtered_paths_avoid_the_failed_node() {
        let g = kautz(2, 3);
        // Model node 0 failing: block every arc touching it.
        let blocked: &dyn Fn(NodeId, NodeId) -> bool = &|u, v| u == 0 || v == 0;
        for source in 1..g.node_count().min(6) {
            for target in 1..g.node_count().min(6) {
                if source == target {
                    continue;
                }
                check_against_enumeration(&g, source, target, 4, blocked);
            }
        }
    }

    #[test]
    fn self_pair_yields_the_trivial_path() {
        let g = de_bruijn(2, 2);
        assert_eq!(k_shortest_paths(&g, 1, 1, 3), vec![vec![1]]);
    }

    #[test]
    fn k_zero_and_unreachable_targets_yield_nothing() {
        let g = Digraph::from_edges(3, &[(0, 1)]);
        assert!(k_shortest_paths(&g, 0, 1, 0).is_empty());
        assert!(k_shortest_paths(&g, 0, 2, 4).is_empty());
        assert!(k_shortest_paths(&g, 1, 0, 4).is_empty());
    }

    #[test]
    fn ranking_is_deterministic_and_lexicographic_within_ties() {
        // Two disjoint length-2 routes 0->3: via 1 and via 2.
        let g = Digraph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let paths = k_shortest_paths(&g, 0, 3, 4);
        assert_eq!(paths, vec![vec![0, 1, 3], vec![0, 2, 3]]);
    }
}
