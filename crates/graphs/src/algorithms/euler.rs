//! Eulerian circuits in digraphs.
//!
//! The paper notes (§2.5) that the Kautz graph is both Eulerian and
//! Hamiltonian; these checks let the reproduction verify that claim on
//! concrete instances rather than citing it.

use crate::algorithms::connectivity::is_strongly_connected;
use crate::digraph::{Digraph, NodeId};

/// Returns `true` if the digraph has an Eulerian circuit: it is connected (in
/// the strong sense, once isolated nodes are ignored) and every node has
/// equal in- and out-degree.
///
/// Loops are allowed; they contribute one to both degrees of their node.
pub fn is_eulerian(g: &Digraph) -> bool {
    if g.arc_count() == 0 {
        // Degenerate but conventional: a graph with no arcs has a trivial
        // (empty) Eulerian circuit.
        return true;
    }
    for u in 0..g.node_count() {
        if g.in_degree(u) != g.out_degree(u) {
            return false;
        }
    }
    // Strong connectivity restricted to non-isolated nodes.
    let keep: Vec<bool> = (0..g.node_count())
        .map(|u| g.in_degree(u) + g.out_degree(u) > 0)
        .collect();
    let (sub, _) = g.induced_subgraph(&keep);
    is_strongly_connected(&sub)
}

/// Computes an Eulerian circuit using Hierholzer's algorithm, returned as a
/// sequence of nodes whose consecutive pairs are arcs and which starts and
/// ends at the same node. Returns `None` when the digraph is not Eulerian or
/// has no arcs.
pub fn eulerian_circuit(g: &Digraph) -> Option<Vec<NodeId>> {
    if g.arc_count() == 0 || !is_eulerian(g) {
        return None;
    }
    let start = (0..g.node_count()).find(|&u| g.out_degree(u) > 0)?;
    // next_unused[u] = index into out_neighbors(u) of the next unused arc.
    let mut next_unused = vec![0usize; g.node_count()];
    let mut stack = vec![start];
    let mut circuit = Vec::with_capacity(g.arc_count() + 1);
    while let Some(&u) = stack.last() {
        let nbrs = g.out_neighbors(u);
        if next_unused[u] < nbrs.len() {
            let v = nbrs[next_unused[u]];
            next_unused[u] += 1;
            stack.push(v);
        } else {
            circuit.push(u);
            stack.pop();
        }
    }
    circuit.reverse();
    if circuit.len() != g.arc_count() + 1 {
        return None;
    }
    Some(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;

    fn cycle(n: usize) -> Digraph {
        let mut b = DigraphBuilder::new(n);
        for u in 0..n {
            b.add_arc(u, (u + 1) % n);
        }
        b.build()
    }

    fn complete(n: usize) -> Digraph {
        let mut b = DigraphBuilder::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    b.add_arc(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn cycle_is_eulerian() {
        assert!(is_eulerian(&cycle(5)));
        let c = eulerian_circuit(&cycle(5)).unwrap();
        assert_eq!(c.len(), 6);
        assert_eq!(c.first(), c.last());
    }

    #[test]
    fn complete_digraph_is_eulerian() {
        let g = complete(4);
        assert!(is_eulerian(&g));
        let c = eulerian_circuit(&g).unwrap();
        assert_eq!(c.len(), g.arc_count() + 1);
        // Every consecutive pair must be an arc and each arc used exactly once.
        let mut used = std::collections::HashMap::new();
        for w in c.windows(2) {
            assert!(g.has_arc(w[0], w[1]));
            *used.entry((w[0], w[1])).or_insert(0usize) += 1;
        }
        assert!(used.values().all(|&c| c == 1));
        assert_eq!(used.len(), g.arc_count());
    }

    #[test]
    fn unbalanced_is_not_eulerian() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!is_eulerian(&g));
        assert!(eulerian_circuit(&g).is_none());
    }

    #[test]
    fn disconnected_balanced_is_not_eulerian() {
        // Two disjoint 2-cycles: balanced but not connected.
        let g = Digraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        assert!(!is_eulerian(&g));
    }

    #[test]
    fn isolated_nodes_are_ignored() {
        // A 3-cycle plus two isolated nodes is still Eulerian.
        let g = Digraph::from_edges(5, &[(0, 1), (1, 2), (2, 0)]);
        assert!(is_eulerian(&g));
    }

    #[test]
    fn loops_are_traversed() {
        let g = Digraph::from_edges(2, &[(0, 1), (1, 0), (0, 0)]);
        assert!(is_eulerian(&g));
        let c = eulerian_circuit(&g).unwrap();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn empty_graph_convention() {
        assert!(is_eulerian(&Digraph::empty(3)));
        assert!(eulerian_circuit(&Digraph::empty(3)).is_none());
    }
}
