//! Hamiltonian cycles in digraphs (exact backtracking for small instances).
//!
//! Hamiltonicity is NP-hard in general; the reproduction only needs it for
//! small Kautz instances (the paper asserts Kautz graphs are Hamiltonian), so
//! a pruned backtracking search is sufficient.  The search is deterministic
//! and bounded by `max_steps` so that tests cannot hang on adversarial
//! inputs.

use crate::digraph::{Digraph, NodeId};

/// Default work bound for the backtracking search (number of extension
/// attempts before giving up).
pub const DEFAULT_MAX_STEPS: u64 = 50_000_000;

/// Attempts to find a Hamiltonian cycle, returned as a sequence of the `n`
/// distinct nodes in visiting order (the closing arc back to the first node
/// is implicit and guaranteed to exist).
///
/// Returns `Ok(Some(cycle))` if one is found, `Ok(None)` if the search proves
/// there is none, and `Err(steps)` if the work bound was exhausted first.
pub fn hamiltonian_cycle_bounded(g: &Digraph, max_steps: u64) -> Result<Option<Vec<NodeId>>, u64> {
    let n = g.node_count();
    if n == 0 {
        return Ok(None);
    }
    if n == 1 {
        return Ok(if g.has_arc(0, 0) { Some(vec![0]) } else { None });
    }
    // Quick necessary condition: every node needs in/out degree >= 1 ignoring loops.
    for u in 0..n {
        let out_ok = g.out_neighbors(u).iter().any(|&v| v != u);
        let in_ok = g.in_neighbors(u).iter().any(|&v| v != u);
        if !out_ok || !in_ok {
            return Ok(None);
        }
    }

    let mut visited = vec![false; n];
    let mut path = Vec::with_capacity(n);
    let mut steps = 0u64;
    path.push(0);
    visited[0] = true;
    if backtrack(g, &mut path, &mut visited, &mut steps, max_steps) {
        return Ok(Some(path));
    }
    if steps >= max_steps {
        Err(steps)
    } else {
        Ok(None)
    }
}

fn backtrack(
    g: &Digraph,
    path: &mut Vec<NodeId>,
    visited: &mut [bool],
    steps: &mut u64,
    max_steps: u64,
) -> bool {
    let n = g.node_count();
    if path.len() == n {
        return g.has_arc(*path.last().unwrap(), path[0]);
    }
    if *steps >= max_steps {
        return false;
    }
    let u = *path.last().unwrap();
    for &v in g.out_neighbors(u) {
        if visited[v] {
            continue;
        }
        *steps += 1;
        visited[v] = true;
        path.push(v);
        if backtrack(g, path, visited, steps, max_steps) {
            return true;
        }
        path.pop();
        visited[v] = false;
        if *steps >= max_steps {
            return false;
        }
    }
    false
}

/// Convenience wrapper around [`hamiltonian_cycle_bounded`] with the default
/// work bound; an exhausted bound is reported as "no cycle found" (`None`).
pub fn hamiltonian_cycle(g: &Digraph) -> Option<Vec<NodeId>> {
    hamiltonian_cycle_bounded(g, DEFAULT_MAX_STEPS).unwrap_or(None)
}

/// Returns `true` if a Hamiltonian cycle was found within the default bound.
pub fn is_hamiltonian(g: &Digraph) -> bool {
    hamiltonian_cycle(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;

    fn cycle(n: usize) -> Digraph {
        let mut b = DigraphBuilder::new(n);
        for u in 0..n {
            b.add_arc(u, (u + 1) % n);
        }
        b.build()
    }

    #[test]
    fn directed_cycle_is_hamiltonian() {
        let g = cycle(7);
        let c = hamiltonian_cycle(&g).unwrap();
        assert_eq!(c.len(), 7);
        // All nodes distinct.
        let set: std::collections::HashSet<_> = c.iter().collect();
        assert_eq!(set.len(), 7);
        // Consecutive arcs plus the closing arc exist.
        for w in c.windows(2) {
            assert!(g.has_arc(w[0], w[1]));
        }
        assert!(g.has_arc(*c.last().unwrap(), c[0]));
    }

    #[test]
    fn path_is_not_hamiltonian() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(!is_hamiltonian(&g));
    }

    #[test]
    fn complete_digraph_is_hamiltonian() {
        let mut b = DigraphBuilder::new(5);
        for u in 0..5 {
            for v in 0..5 {
                if u != v {
                    b.add_arc(u, v);
                }
            }
        }
        assert!(is_hamiltonian(&b.build()));
    }

    #[test]
    fn single_node_needs_a_loop() {
        assert!(!is_hamiltonian(&Digraph::empty(1)));
        assert!(is_hamiltonian(&Digraph::from_edges(1, &[(0, 0)])));
    }

    #[test]
    fn empty_graph_is_not_hamiltonian() {
        assert!(!is_hamiltonian(&Digraph::empty(0)));
        assert!(!is_hamiltonian(&Digraph::empty(3)));
    }

    #[test]
    fn bounded_search_reports_exhaustion() {
        // A moderately sized graph with a tiny budget must report exhaustion
        // rather than claiming "no cycle".
        let mut b = DigraphBuilder::new(12);
        for u in 0..12 {
            for v in 0..12 {
                if u != v {
                    b.add_arc(u, v);
                }
            }
        }
        let g = b.build();
        match hamiltonian_cycle_bounded(&g, 3) {
            Err(steps) => assert!(steps >= 3),
            Ok(Some(_)) => { /* found extremely fast; also acceptable */ }
            Ok(None) => panic!("must not claim non-Hamiltonian when the bound is exhausted"),
        }
    }

    #[test]
    fn loops_do_not_count_as_progress() {
        // Two nodes with loops but only a one-way arc between them.
        let g = Digraph::from_edges(2, &[(0, 0), (1, 1), (0, 1)]);
        assert!(!is_hamiltonian(&g));
    }
}
