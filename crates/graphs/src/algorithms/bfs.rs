//! Breadth-first search primitives.

use crate::digraph::{Digraph, NodeId};
use std::collections::VecDeque;

/// Sentinel distance meaning "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Returns the vector of BFS distances (in arcs) from `source` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`]. Loops never shorten a distance, and
/// multi-arcs behave like single arcs, so the result is the usual unweighted
/// shortest-path distance.
pub fn bfs_distances(g: &Digraph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    bfs_distances_into(g, source, &mut dist);
    dist
}

/// In-place variant of [`bfs_distances`]: fills `dist` (which must have length
/// `g.node_count()`) and avoids reallocation across repeated calls.
///
/// This is the inner loop of diameter computation over all sources, so it is
/// written to touch each arc at most once.
pub fn bfs_distances_into(g: &Digraph, source: NodeId, dist: &mut [u32]) {
    assert_eq!(
        dist.len(),
        g.node_count(),
        "distance buffer has wrong length"
    );
    assert!(source < g.node_count(), "source out of range");
    for d in dist.iter_mut() {
        *d = UNREACHABLE;
    }
    let mut queue = VecDeque::with_capacity(64);
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in g.out_neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
}

/// Number of nodes reachable from `source` (including `source` itself).
pub fn reachable_count(g: &Digraph, source: NodeId) -> usize {
    bfs_distances(g, source)
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;

    fn path(n: usize) -> Digraph {
        let mut b = DigraphBuilder::new(n);
        for u in 0..n - 1 {
            b.add_arc(u, u + 1);
        }
        b.build()
    }

    #[test]
    fn distances_on_a_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs_distances(&g, 2);
        assert_eq!(d2[0], UNREACHABLE);
        assert_eq!(d2[4], 2);
    }

    #[test]
    fn loops_do_not_affect_distances() {
        let g = path(3).with_loops();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn reachability_count() {
        let g = path(4);
        assert_eq!(reachable_count(&g, 0), 4);
        assert_eq!(reachable_count(&g, 3), 1);
    }

    #[test]
    fn into_variant_reuses_buffer() {
        let g = path(4);
        let mut buf = vec![0u32; 4];
        bfs_distances_into(&g, 1, &mut buf);
        assert_eq!(buf, vec![UNREACHABLE, 0, 1, 2]);
        bfs_distances_into(&g, 0, &mut buf);
        assert_eq!(buf, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn into_variant_checks_length() {
        let g = path(4);
        let mut buf = vec![0u32; 3];
        bfs_distances_into(&g, 0, &mut buf);
    }
}
