//! Explicit shortest paths, including fault-avoiding variants.
//!
//! Routing on Kautz-like topologies is normally done from node labels
//! (see the `otis-routing` crate); the functions here are the *reference*
//! implementations the label-based routers are checked against, plus the
//! fault-avoiding search used to validate the fault-tolerance claims of the
//! paper (§2.5: a routing of length at most `k + 2` surviving `d − 1` faults).

use crate::digraph::{Digraph, NodeId};
use std::collections::VecDeque;

/// Returns one shortest directed path from `source` to `target` as a vector
/// of nodes (starting with `source`, ending with `target`), or `None` if
/// `target` is unreachable.
///
/// A path from a node to itself is the single-node path `[source]`.
pub fn shortest_path(g: &Digraph, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    shortest_path_avoiding(g, source, target, |_, _| false)
}

/// Shortest path that never uses an arc `(u, v)` for which `blocked(u, v)`
/// returns `true`. Used for fault-tolerant routing validation: faults are
/// expressed as a blocked-arc predicate (a failed node is modelled by
/// blocking all of its incident arcs).
pub fn shortest_path_avoiding<F>(
    g: &Digraph,
    source: NodeId,
    target: NodeId,
    blocked: F,
) -> Option<Vec<NodeId>>
where
    F: Fn(NodeId, NodeId) -> bool,
{
    assert!(
        source < g.node_count() && target < g.node_count(),
        "endpoint out of range"
    );
    if source == target {
        return Some(vec![source]);
    }
    let n = g.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[source] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.out_neighbors(u) {
            if seen[v] || blocked(u, v) {
                continue;
            }
            seen[v] = true;
            parent[v] = Some(u);
            if v == target {
                // Reconstruct.
                let mut path = vec![v];
                let mut cur = v;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(v);
        }
    }
    None
}

/// Histogram of shortest-path lengths from `source`: entry `i` counts the
/// nodes at distance exactly `i`. Unreachable nodes are not counted.
pub fn all_shortest_path_lengths_from(g: &Digraph, source: NodeId) -> Vec<usize> {
    let dist = crate::algorithms::bfs::bfs_distances(g, source);
    let max = dist
        .iter()
        .filter(|&&d| d != crate::algorithms::bfs::UNREACHABLE)
        .max()
        .copied()
        .unwrap_or(0);
    let mut hist = vec![0usize; max as usize + 1];
    for &d in &dist {
        if d != crate::algorithms::bfs::UNREACHABLE {
            hist[d as usize] += 1;
        }
    }
    hist
}

/// Checks that `path` is a valid directed path in `g` from `path[0]` to
/// `path[last]` (every consecutive pair is an arc).  The empty path is not
/// valid; a single node path is valid if the node exists.
pub fn is_valid_path(g: &Digraph, path: &[NodeId]) -> bool {
    if path.is_empty() {
        return false;
    }
    if path.iter().any(|&u| u >= g.node_count()) {
        return false;
    }
    path.windows(2).all(|w| g.has_arc(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;

    fn grid_like() -> Digraph {
        // 0 -> 1 -> 2
        //  \        ^
        //   -> 3 ---+
        Digraph::from_edges(4, &[(0, 1), (1, 2), (0, 3), (3, 2)])
    }

    #[test]
    fn finds_a_shortest_path() {
        let g = grid_like();
        let p = shortest_path(&g, 0, 2).unwrap();
        assert_eq!(p.len(), 3);
        assert!(is_valid_path(&g, &p));
        assert_eq!(p[0], 0);
        assert_eq!(p[2], 2);
    }

    #[test]
    fn self_path_is_trivial() {
        let g = grid_like();
        assert_eq!(shortest_path(&g, 1, 1), Some(vec![1]));
    }

    #[test]
    fn unreachable_gives_none() {
        let g = grid_like();
        assert_eq!(shortest_path(&g, 2, 0), None);
    }

    #[test]
    fn avoiding_blocked_arc_takes_detour() {
        let g = grid_like();
        let p = shortest_path_avoiding(&g, 0, 2, |u, v| (u, v) == (1, 2)).unwrap();
        assert_eq!(p, vec![0, 3, 2]);
        let none = shortest_path_avoiding(&g, 0, 2, |_, v| v == 2);
        assert_eq!(none, None);
    }

    #[test]
    fn length_histogram() {
        let g = grid_like();
        let hist = all_shortest_path_lengths_from(&g, 0);
        // distance 0: {0}; distance 1: {1,3}; distance 2: {2}
        assert_eq!(hist, vec![1, 2, 1]);
    }

    #[test]
    fn path_validation() {
        let g = grid_like();
        assert!(is_valid_path(&g, &[0, 1, 2]));
        assert!(is_valid_path(&g, &[3]));
        assert!(!is_valid_path(&g, &[]));
        assert!(!is_valid_path(&g, &[0, 2]));
        assert!(!is_valid_path(&g, &[0, 9]));
    }

    #[test]
    fn bfs_shortest_path_is_minimal() {
        let mut b = DigraphBuilder::new(6);
        // Two routes 0->5: length 2 via 4, length 4 via 1,2,3.
        b.add_arc(0, 1).add_arc(1, 2).add_arc(2, 3).add_arc(3, 5);
        b.add_arc(0, 4).add_arc(4, 5);
        let g = b.build();
        assert_eq!(shortest_path(&g, 0, 5).unwrap().len(), 3);
    }
}
