//! The line-digraph operator `L(G)` and its iterates.
//!
//! Fiol, Yebra and Alegre (1984) showed that the Kautz graph can be defined
//! by line-digraph iteration: `KG(d, 1) = K_{d+1}` (the complete digraph
//! without loops) and `KG(d, k) = L^{k-1}(K_{d+1})`.  The paper uses that
//! characterisation (Fig. 6) alongside the word-label definition; the
//! reproduction constructs Kautz graphs both ways and checks they agree.
//!
//! In `L(G)` there is one node per arc of `G`, and an arc from (the node
//! representing) arc `a = (u, v)` to arc `b = (v, w)` whenever `a`'s head is
//! `b`'s tail.

use crate::digraph::{Arc, Digraph};

/// Computes the line digraph `L(G)`.
///
/// The node of `L(G)` with identifier `i` corresponds to the arc of `G` with
/// identifier `i` (insertion order), so callers can recover the
/// correspondence through [`Digraph::arc`].
pub fn line_digraph(g: &Digraph) -> Digraph {
    let m = g.arc_count();
    // Number of arcs of L(G) = sum over nodes v of in_deg(v) * out_deg(v).
    let mut arc_estimate = 0usize;
    for v in 0..g.node_count() {
        arc_estimate += g.in_degree(v) * g.out_degree(v);
    }
    let mut arcs = Vec::with_capacity(arc_estimate);
    for (a_id, a) in g.arcs().iter().enumerate() {
        // Arcs leaving the head of `a`.
        for &b_id in g.out_arc_ids(a.target) {
            arcs.push(Arc::new(a_id, b_id));
        }
    }
    Digraph::from_arcs(m, &arcs)
}

/// Applies the line-digraph operator `times` times; `times == 0` returns a
/// copy of `g`.
pub fn line_digraph_iterated(g: &Digraph, times: usize) -> Digraph {
    let mut current = g.clone();
    for _ in 0..times {
        current = line_digraph(&current);
    }
    current
}

/// Number of nodes `L(G)` will have (the number of arcs of `G`).
pub fn line_digraph_order(g: &Digraph) -> usize {
    g.arc_count()
}

/// Number of arcs `L(G)` will have: `Σ_v indeg(v)·outdeg(v)`.
pub fn line_digraph_size(g: &Digraph) -> usize {
    (0..g.node_count())
        .map(|v| g.in_degree(v) * g.out_degree(v))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{diameter, is_strongly_connected};
    use crate::digraph::DigraphBuilder;

    fn complete_without_loops(n: usize) -> Digraph {
        let mut b = DigraphBuilder::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    b.add_arc(u, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn line_of_cycle_is_cycle() {
        let mut b = DigraphBuilder::new(4);
        for u in 0..4 {
            b.add_arc(u, (u + 1) % 4);
        }
        let g = b.build();
        let l = line_digraph(&g);
        assert_eq!(l.node_count(), 4);
        assert_eq!(l.arc_count(), 4);
        assert!(is_strongly_connected(&l));
        assert!(l.is_d_regular(1));
    }

    #[test]
    fn size_formulas_match() {
        let g = complete_without_loops(4);
        let l = line_digraph(&g);
        assert_eq!(l.node_count(), line_digraph_order(&g));
        assert_eq!(l.arc_count(), line_digraph_size(&g));
        // K_4 without loops: 12 arcs, each node has in=out=3 so L has 12 nodes
        // and 4 * 3 * 3 = 36 arcs.
        assert_eq!(l.node_count(), 12);
        assert_eq!(l.arc_count(), 36);
    }

    #[test]
    fn line_digraph_preserves_d_regularity() {
        let g = complete_without_loops(3); // 2-regular
        let l = line_digraph(&g);
        assert!(l.is_d_regular(2));
        let ll = line_digraph(&l);
        assert!(ll.is_d_regular(2));
    }

    #[test]
    fn kautz_by_iteration_has_expected_order_and_diameter() {
        // KG(2, k) = L^{k-1}(K_3): N = 2^{k-1} * 3, diameter k.
        let k3 = complete_without_loops(3);
        for k in 1..=5usize {
            let g = line_digraph_iterated(&k3, k - 1);
            assert_eq!(g.node_count(), 3 * (1 << (k - 1)));
            assert_eq!(diameter(&g), Some(k as u32));
        }
    }

    #[test]
    fn iterated_zero_is_identity() {
        let g = complete_without_loops(4);
        let same = line_digraph_iterated(&g, 0);
        assert!(g.same_arcs(&same));
    }

    #[test]
    fn line_digraph_of_empty() {
        let g = Digraph::empty(3);
        let l = line_digraph(&g);
        assert_eq!(l.node_count(), 0);
        assert_eq!(l.arc_count(), 0);
    }

    #[test]
    fn loop_becomes_loop() {
        // A single node with a loop: L(G) has one node (the loop arc) and one
        // arc (loop follows itself).
        let g = Digraph::from_edges(1, &[(0, 0)]);
        let l = line_digraph(&g);
        assert_eq!(l.node_count(), 1);
        assert_eq!(l.arc_count(), 1);
        assert!(l.has_arc(0, 0));
    }
}
