//! # otis-graphs
//!
//! Directed-graph, directed-hypergraph and *stack-graph* substrate used by the
//! OTIS lightwave-network reproduction.
//!
//! The paper "OTIS-Based Multi-Hop Multi-OPS Lightwave Networks" (Coudert,
//! Ferreira, Muñoz, 1999) analyses optical interconnection networks with
//! graph-theoretical tools:
//!
//! * point-to-point networks are modelled by **digraphs** (Kautz, Imase–Itoh,
//!   de Bruijn, complete digraphs, …);
//! * one-to-many (OPS-coupler based) networks are modelled by **directed
//!   hypergraphs**, and more specifically by **stack-graphs** `ς(s, G)`
//!   obtained by piling up `s` copies of a digraph `G` and viewing each stack
//!   of arcs as a single hyperarc (Definition 1 of the paper).
//!
//! This crate provides those three structures along with the algorithms the
//! reproduction needs: BFS / shortest paths, eccentricity and diameter,
//! strong connectivity, Eulerian and Hamiltonian checks, the line-digraph
//! operator `L(G)` (used to define Kautz graphs iteratively), Yen's
//! k-shortest loopless paths (alternate routes for the wavelength layer),
//! isomorphism checks specialised for the labelled families used in the
//! paper, and per-channel wavelength-occupancy bitmasks
//! ([`spectrum::SpectrumMap`]) for multi-wavelength capacity studies.
//!
//! The crate is dependency-light by design (only `rand` for randomised
//! algorithms) so that the rest of the workspace can build on a stable,
//! auditable substrate.
//!
//! ## Quick example
//!
//! ```
//! use otis_graphs::{Digraph, DigraphBuilder};
//! use otis_graphs::algorithms::{diameter, is_strongly_connected};
//!
//! // A directed 4-cycle.
//! let mut b = DigraphBuilder::new(4);
//! for u in 0..4 {
//!     b.add_arc(u, (u + 1) % 4);
//! }
//! let g: Digraph = b.build();
//! assert!(is_strongly_connected(&g));
//! assert_eq!(diameter(&g), Some(3));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod algorithms;
pub mod digraph;
pub mod error;
pub mod hyper;
pub mod isomorphism;
pub mod line_digraph;
pub mod matrix;
pub mod spectrum;
pub mod stack;

pub use digraph::{Arc, Digraph, DigraphBuilder, NodeId};
pub use error::GraphError;
pub use hyper::{HyperArc, Hypergraph};
pub use isomorphism::{are_isomorphic, is_identical, relabel};
pub use line_digraph::{line_digraph, line_digraph_iterated};
pub use matrix::AdjacencyMatrix;
pub use spectrum::SpectrumMap;
pub use stack::{StackGraph, StackNode};
