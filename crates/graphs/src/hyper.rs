//! Directed hypergraphs.
//!
//! One-to-many optical networks are modelled by hypergraphs (Berge): an OPS
//! coupler of degree `s` is a **hyperarc** whose tail is the set of `s`
//! processors that can transmit into the coupler and whose head is the set of
//! `s` processors that receive everything the coupler broadcasts (Fig. 3 of
//! the paper).  This module provides a minimal directed-hypergraph type with
//! exactly the operations the reproduction needs: construction, incidence
//! queries, degree statistics, and conversion to the underlying "flattened"
//! digraph (replace every hyperarc by the complete bipartite set of arcs from
//! its tail to its head), which is how hop-distances in multi-OPS networks
//! are defined.

use crate::digraph::{Digraph, DigraphBuilder, NodeId};
use crate::error::GraphError;

/// A directed hyperarc: every node of `tail` can transmit, every node of
/// `head` receives the transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperArc {
    /// Nodes that may send through this hyperarc (inputs of the OPS coupler).
    pub tail: Vec<NodeId>,
    /// Nodes that receive from this hyperarc (outputs of the OPS coupler).
    pub head: Vec<NodeId>,
}

impl HyperArc {
    /// Creates a hyperarc from explicit tail and head node sets.
    pub fn new(tail: Vec<NodeId>, head: Vec<NodeId>) -> Self {
        HyperArc { tail, head }
    }

    /// Size of the tail (number of possible senders).
    pub fn tail_size(&self) -> usize {
        self.tail.len()
    }

    /// Size of the head (number of receivers).
    pub fn head_size(&self) -> usize {
        self.head.len()
    }

    /// The *degree* of the hyperarc in the OPS sense: an `OPS(s, z)` coupler
    /// has `s` inputs and `z` outputs and is "of degree s" when `s == z`.
    /// Returns `Some(s)` when tail and head have the same size `s`.
    pub fn ops_degree(&self) -> Option<usize> {
        if self.tail.len() == self.head.len() {
            Some(self.tail.len())
        } else {
            None
        }
    }

    /// Canonical form with sorted tail and head, used for comparisons that
    /// must not depend on enumeration order.
    pub fn canonical(&self) -> (Vec<NodeId>, Vec<NodeId>) {
        let mut t = self.tail.clone();
        let mut h = self.head.clone();
        t.sort_unstable();
        h.sort_unstable();
        (t, h)
    }
}

/// A directed hypergraph on nodes `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    n: usize,
    arcs: Vec<HyperArc>,
}

impl Hypergraph {
    /// Creates an empty hypergraph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Hypergraph {
            n,
            arcs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of hyperarcs.
    pub fn hyperarc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Adds a hyperarc; all endpoints must be valid nodes.
    pub fn add_hyperarc(&mut self, arc: HyperArc) -> Result<usize, GraphError> {
        for &u in arc.tail.iter().chain(arc.head.iter()) {
            if u >= self.n {
                return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
            }
        }
        self.arcs.push(arc);
        Ok(self.arcs.len() - 1)
    }

    /// All hyperarcs in insertion order.
    pub fn hyperarcs(&self) -> &[HyperArc] {
        &self.arcs
    }

    /// The hyperarc with a given identifier.
    pub fn hyperarc(&self, id: usize) -> Result<&HyperArc, GraphError> {
        self.arcs.get(id).ok_or(GraphError::HyperArcOutOfRange {
            arc: id,
            m: self.arcs.len(),
        })
    }

    /// Identifiers of the hyperarcs node `u` can transmit on.
    pub fn out_hyperarcs(&self, u: NodeId) -> Vec<usize> {
        self.arcs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.tail.contains(&u))
            .map(|(i, _)| i)
            .collect()
    }

    /// Identifiers of the hyperarcs node `u` receives from.
    pub fn in_hyperarcs(&self, u: NodeId) -> Vec<usize> {
        self.arcs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.head.contains(&u))
            .map(|(i, _)| i)
            .collect()
    }

    /// Out-degree of a node in the hypergraph sense: the number of hyperarcs
    /// it can transmit on. For an OPS network this is the number of optical
    /// transmitters the processor needs (one per coupler it feeds) or, with a
    /// tunable transmitter, the tuning range.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.arcs.iter().filter(|a| a.tail.contains(&u)).count()
    }

    /// In-degree of a node: the number of hyperarcs it listens to.
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.arcs.iter().filter(|a| a.head.contains(&u)).count()
    }

    /// The set of nodes reachable from `u` in a single hop (union of the heads
    /// of the hyperarcs whose tail contains `u`), sorted and deduplicated.
    pub fn one_hop_neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .arcs
            .iter()
            .filter(|a| a.tail.contains(&u))
            .flat_map(|a| a.head.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Flattens every hyperarc into the complete bipartite set of ordinary
    /// arcs from its tail to its head.  Hop distances in the multi-OPS
    /// network are, by definition, distances in this flattened digraph.
    pub fn flatten(&self) -> Digraph {
        let m: usize = self.arcs.iter().map(|a| a.tail.len() * a.head.len()).sum();
        let mut b = DigraphBuilder::with_capacity(self.n, m);
        for a in &self.arcs {
            for &u in &a.tail {
                for &v in &a.head {
                    b.add_arc(u, v);
                }
            }
        }
        b.build()
    }

    /// Returns `true` when the two hypergraphs have the same node count and
    /// the same multiset of hyperarcs up to tail/head enumeration order.
    pub fn same_hyperarcs(&self, other: &Hypergraph) -> bool {
        if self.n != other.n || self.arcs.len() != other.arcs.len() {
            return false;
        }
        let mut a: Vec<_> = self.arcs.iter().map(HyperArc::canonical).collect();
        let mut b: Vec<_> = other.arcs.iter().map(HyperArc::canonical).collect();
        a.sort();
        b.sort();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::diameter;

    /// The degree-4 OPS coupler of Fig. 2/3: sources {0,1,2,3}, destinations {4..7}.
    fn single_coupler() -> Hypergraph {
        let mut h = Hypergraph::new(8);
        h.add_hyperarc(HyperArc::new(vec![0, 1, 2, 3], vec![4, 5, 6, 7]))
            .unwrap();
        h
    }

    #[test]
    fn coupler_as_hyperarc() {
        let h = single_coupler();
        assert_eq!(h.hyperarc_count(), 1);
        let a = h.hyperarc(0).unwrap();
        assert_eq!(a.ops_degree(), Some(4));
        assert_eq!(h.out_degree(0), 1);
        assert_eq!(h.in_degree(5), 1);
        assert_eq!(h.in_degree(0), 0);
        assert_eq!(h.one_hop_neighbors(2), vec![4, 5, 6, 7]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut h = Hypergraph::new(3);
        let err = h.add_hyperarc(HyperArc::new(vec![0], vec![5])).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, n: 3 }));
        assert!(h.hyperarc(0).is_err());
    }

    #[test]
    fn flatten_is_complete_bipartite_per_hyperarc() {
        let h = single_coupler();
        let g = h.flatten();
        assert_eq!(g.arc_count(), 16);
        for u in 0..4 {
            for v in 4..8 {
                assert!(g.has_arc(u, v));
            }
        }
        assert!(!g.has_arc(4, 0));
    }

    #[test]
    fn incidence_queries() {
        let mut h = Hypergraph::new(6);
        h.add_hyperarc(HyperArc::new(vec![0, 1], vec![2, 3]))
            .unwrap();
        h.add_hyperarc(HyperArc::new(vec![2, 3], vec![4, 5]))
            .unwrap();
        h.add_hyperarc(HyperArc::new(vec![4, 5], vec![0, 1]))
            .unwrap();
        assert_eq!(h.out_hyperarcs(2), vec![1]);
        assert_eq!(h.in_hyperarcs(2), vec![0]);
        // The flattened 3-stage ring has diameter 3 at the node level.
        assert_eq!(diameter(&h.flatten()), Some(3));
    }

    #[test]
    fn non_square_coupler_degree() {
        let a = HyperArc::new(vec![0, 1, 2], vec![3, 4]);
        assert_eq!(a.ops_degree(), None);
        assert_eq!(a.tail_size(), 3);
        assert_eq!(a.head_size(), 2);
    }

    #[test]
    fn same_hyperarcs_is_order_insensitive() {
        let mut h1 = Hypergraph::new(4);
        h1.add_hyperarc(HyperArc::new(vec![0, 1], vec![2, 3]))
            .unwrap();
        h1.add_hyperarc(HyperArc::new(vec![2], vec![0])).unwrap();
        let mut h2 = Hypergraph::new(4);
        h2.add_hyperarc(HyperArc::new(vec![2], vec![0])).unwrap();
        h2.add_hyperarc(HyperArc::new(vec![1, 0], vec![3, 2]))
            .unwrap();
        assert!(h1.same_hyperarcs(&h2));
        let mut h3 = Hypergraph::new(4);
        h3.add_hyperarc(HyperArc::new(vec![0, 1], vec![2, 3]))
            .unwrap();
        h3.add_hyperarc(HyperArc::new(vec![3], vec![0])).unwrap();
        assert!(!h1.same_hyperarcs(&h3));
    }
}
